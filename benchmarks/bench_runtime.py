"""E10: runtime scaling of the full WORMS pipeline.

The paper advertises O(n log n) end to end (n = |M| + |T|).  The table
normalizes wall time by n*log2(n); near-flat values confirm the bound for
the reduction + MPHTF + conversion path.
"""

from __future__ import annotations

import math
import time

from benchmarks.common import emit_table
from repro.core import solve_worms
from repro.policies import WormsPolicy
from repro.tree import beps_shape_tree
from repro.workloads import uniform_instance


def test_e10_pipeline_scaling(benchmark):
    rows = []
    for n_msgs in (500, 2000, 8000, 32000):
        topo = beps_shape_tree(64, 0.5, max(64, n_msgs // 16))
        inst = uniform_instance(topo, n_msgs, P=4, B=64, seed=7)
        n = inst.n
        start = time.perf_counter()
        solve_worms(inst)
        elapsed = time.perf_counter() - start
        rows.append(
            [
                n_msgs,
                n,
                round(elapsed * 1e3, 1),
                round(elapsed * 1e6 / (n * math.log2(n)), 2),
            ]
        )
    emit_table(
        "E10_runtime",
        ["|M|", "n = |M|+|T|", "time (ms)", "us per n*log2(n)"],
        rows,
        note="full pipeline (packed sets -> reduction -> MPHTF -> Lemma 8 "
        "-> Lemma 1 incl. simulator verification).",
    )
    inst = uniform_instance(beps_shape_tree(64, 0.5, 128), 2000, P=4, B=64, seed=7)
    benchmark(lambda: WormsPolicy().schedule(inst))
