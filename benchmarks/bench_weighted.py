"""E11: the weighted extension — priority purges.

The reduction target is weighted, so the pipeline supports per-message
weights natively.  Scenario: a purge where 5% of the deletes are
regulator-deadline "priority" operations (weight 50) among background
deletes (weight 1).  Weight-aware scheduling should pull the priority
completions dramatically forward at negligible cost to the rest.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit_table
from repro.analysis.lower_bounds import worms_lower_bound
from repro.analysis.stats import weighted_total_completion
from repro.core.worms import WORMSInstance
from repro.dam import validate_valid
from repro.policies import GreedyBatchPolicy, WormsPolicy
from repro.tree import Message, beps_shape_tree
from repro.util.rng import make_rng


def make_priority_instance(seed: int):
    topo = beps_shape_tree(64, 0.5, 256)
    rng = make_rng(seed)
    n = 2000
    leaves = np.asarray(topo.leaves)
    msgs = [Message(i, int(rng.choice(leaves))) for i in range(n)]
    weights = np.ones(n)
    priority = rng.choice(n, size=n // 20, replace=False)
    weights[priority] = 50.0
    return (
        WORMSInstance(topo, msgs, P=4, B=64, weights=list(weights)),
        priority,
    )


def test_e11_priority_purge(benchmark):
    rows = []
    for seed in (0, 1):
        inst, priority = make_priority_instance(seed)
        unweighted = WORMSInstance(inst.topology, inst.messages, P=4, B=64)

        worms_w = validate_valid(inst, WormsPolicy().schedule(inst))
        worms_u = validate_valid(inst, WormsPolicy().schedule(unweighted))
        greedy = validate_valid(inst, GreedyBatchPolicy().schedule(inst))
        lb = worms_lower_bound(inst)
        for label, res in (
            ("worms weighted", worms_w),
            ("worms unweighted", worms_u),
            ("greedy (weight-blind)", greedy),
        ):
            rows.append(
                [
                    seed,
                    label,
                    float(np.mean(res.completion_times[priority])),
                    float(np.mean(res.completion_times)),
                    round(
                        weighted_total_completion(inst, res.completion_times)
                        / lb,
                        2,
                    ),
                ]
            )
    emit_table(
        "E11_priority_purge",
        ["seed", "scheduler", "priority mean", "overall mean", "wSum/LB"],
        rows,
        note="5% of 2000 deletes carry weight 50.  Weight-aware WORMS "
        "completes them several times earlier for a small overall-mean "
        "cost; weight-blind schedulers cannot.",
    )
    inst, _ = make_priority_instance(0)
    benchmark(lambda: WormsPolicy().schedule(inst))
