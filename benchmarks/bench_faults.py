"""E12: resilience under fault injection — inflation and the fault path cost.

Two questions:

* how much completion time does each policy lose as the fault rate
  rises (mean and p99 inflation vs its own fault-free run), and
* does the resilience machinery cost anything when nothing fails (it
  must not: the zero-fault path is byte-identical to the gated
  executor).

The table shows graceful degradation: inflation grows roughly linearly
with the fault rate for every closed-loop policy, while the same
schedules replayed *open-loop* (fixed schedule, no retries) simply stop
completing messages — the cascade the resilient executor exists to
prevent.
"""

from __future__ import annotations

from benchmarks.common import emit_table
from repro.analysis.resilience import resilience_sweep
from repro.dam.simulator import simulate
from repro.faults import FaultInjector, FaultPlan
from repro.policies import GatedExecutor, ResilientExecutor, WormsPolicy
from repro.tree import beps_shape_tree
from repro.workloads import uniform_instance

RATES = (0.05, 0.1, 0.2)


def make_instance(n_messages: int = 800, seed: int = 0):
    B, P = 32, 4
    topo = beps_shape_tree(B=B, eps=0.5, n_leaves=128)
    return uniform_instance(topo, n_messages, P=P, B=B, seed=seed)


def test_e12_fault_inflation(benchmark):
    inst = make_instance()
    cells = resilience_sweep(inst, fault_rates=RATES, seed=0)
    rows = [c.row() for c in cells]
    emit_table(
        "E12_fault_inflation",
        ["policy", "rate", "mean", "p99", "IOs", "mean-x", "p99-x",
         "retries", "replans"],
        rows,
        note="closed-loop resilient execution; inflation vs the policy's "
        "own fault-free run.  All realized schedules validate.",
    )
    ordered = [f for _t, f in WormsPolicy().schedule(inst).iter_timed()]
    injector = FaultInjector(FaultPlan.uniform(0.1), seed=0)
    benchmark(
        lambda: ResilientExecutor(inst, injector).run(list(ordered))
    )


def test_e12_open_vs_closed_loop(benchmark):
    """Open-loop replay under faults loses messages; closed-loop does not."""
    inst = make_instance(400)
    sched = WormsPolicy().schedule(inst)
    ordered = [f for _t, f in sched.iter_timed()]
    rows = []
    for rate in RATES:
        injector = FaultInjector(FaultPlan.uniform(rate), seed=1)
        open_loop = simulate(inst, sched, faults=injector)
        lost = int((open_loop.completion_times == 0).sum())
        closed = ResilientExecutor(
            inst, FaultInjector(FaultPlan.uniform(rate), seed=1)
        ).run(list(ordered))
        closed_sim = simulate(inst, closed)
        rows.append([
            rate,
            lost,
            int((closed_sim.completion_times == 0).sum()),
            len(open_loop.fault_events),
            closed.n_steps,
        ])
    emit_table(
        "E12_open_vs_closed_loop",
        ["rate", "open-loop lost", "closed-loop lost", "events", "IOs"],
        rows,
        note="open-loop = fixed schedule replayed under faults (messages "
        "strand mid-tree); closed-loop = resilient executor (always "
        "completes).",
    )
    injector = FaultInjector(FaultPlan.uniform(0.1), seed=1)
    benchmark(lambda: simulate(inst, sched, faults=injector))


def test_e12_zero_fault_overhead(benchmark):
    """The fault path must cost nothing when no faults are configured."""
    inst = make_instance()
    ordered = [f for _t, f in WormsPolicy().schedule(inst).iter_timed()]
    gated = GatedExecutor(inst).run(list(ordered))
    resilient = ResilientExecutor(inst).run(list(ordered))
    assert gated.steps == resilient.steps, "zero-fault path diverged"
    emit_table(
        "E12_zero_fault_overhead",
        ["executor", "IOs", "flushes"],
        [["gated", gated.n_steps, gated.n_flushes],
         ["resilient", resilient.n_steps, resilient.n_flushes]],
        note="byte-identical schedules: resilience is free until a fault "
        "fires.",
    )
    benchmark(lambda: ResilientExecutor(inst).run(list(ordered)))
