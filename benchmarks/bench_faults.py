"""E12/E13: resilience under fault injection — inflation and path costs.

Four questions:

* how much completion time does each policy lose as the fault rate
  rises (mean and p99 inflation vs its own fault-free run) — under iid
  faults and under correlated Markov-modulated bursts;
* does the resilience machinery cost anything when nothing fails (it
  must not: the zero-fault path is byte-identical to the gated
  executor);
* what does crash-consistent journaling cost (it must be pay-as-you-go:
  zero when off, IO-bound when on, and never change the schedule);
* did the executor scan optimizations actually buy the promised
  headroom at multi-million-message scale (before/after timings).
"""

from __future__ import annotations

import time

from benchmarks.common import emit_table
from repro.analysis.resilience import resilience_sweep
from repro.dam.simulator import simulate
from repro.faults import FaultInjector, FaultPlan
from repro.policies import GatedExecutor, ResilientExecutor, WormsPolicy
from repro.tree import balanced_tree, beps_shape_tree
from repro.workloads import uniform_instance

RATES = (0.05, 0.1, 0.2)

RESILIENCE_HEADERS = ["policy", "rate", "mean", "p99", "IOs", "mean-x",
                      "p99-x", "retries", "replans", "stalled"]


def make_instance(n_messages: int = 800, seed: int = 0):
    B, P = 32, 4
    topo = beps_shape_tree(B=B, eps=0.5, n_leaves=128)
    return uniform_instance(topo, n_messages, P=P, B=B, seed=seed)


def test_e12_fault_inflation(benchmark):
    inst = make_instance()
    cells = resilience_sweep(inst, fault_rates=RATES, seed=0)
    rows = [c.row() for c in cells]
    emit_table(
        "E12_fault_inflation",
        RESILIENCE_HEADERS,
        rows,
        note="closed-loop resilient execution; inflation vs the policy's "
        "own fault-free run.  All realized schedules validate.",
    )
    ordered = [f for _t, f in WormsPolicy().schedule(inst).iter_timed()]
    injector = FaultInjector(FaultPlan.uniform(0.1), seed=0)
    benchmark(
        lambda: ResilientExecutor(inst, injector).run(list(ordered))
    )


def test_e12_open_vs_closed_loop(benchmark):
    """Open-loop replay under faults loses messages; closed-loop does not."""
    inst = make_instance(400)
    sched = WormsPolicy().schedule(inst)
    ordered = [f for _t, f in sched.iter_timed()]
    rows = []
    for rate in RATES:
        injector = FaultInjector(FaultPlan.uniform(rate), seed=1)
        open_loop = simulate(inst, sched, faults=injector)
        lost = int((open_loop.completion_times == 0).sum())
        closed = ResilientExecutor(
            inst, FaultInjector(FaultPlan.uniform(rate), seed=1)
        ).run(list(ordered))
        closed_sim = simulate(inst, closed)
        rows.append([
            rate,
            lost,
            int((closed_sim.completion_times == 0).sum()),
            len(open_loop.fault_events),
            closed.n_steps,
        ])
    emit_table(
        "E12_open_vs_closed_loop",
        ["rate", "open-loop lost", "closed-loop lost", "events", "IOs"],
        rows,
        note="open-loop = fixed schedule replayed under faults (messages "
        "strand mid-tree); closed-loop = resilient executor (always "
        "completes).",
    )
    injector = FaultInjector(FaultPlan.uniform(0.1), seed=1)
    benchmark(lambda: simulate(inst, sched, faults=injector))


def test_e12_zero_fault_overhead(benchmark):
    """The fault path must cost nothing when no faults are configured."""
    inst = make_instance()
    ordered = [f for _t, f in WormsPolicy().schedule(inst).iter_timed()]
    gated = GatedExecutor(inst).run(list(ordered))
    resilient = ResilientExecutor(inst).run(list(ordered))
    assert gated.steps == resilient.steps, "zero-fault path diverged"
    emit_table(
        "E12_zero_fault_overhead",
        ["executor", "IOs", "flushes"],
        [["gated", gated.n_steps, gated.n_flushes],
         ["resilient", resilient.n_steps, resilient.n_flushes]],
        note="byte-identical schedules: resilience is free until a fault "
        "fires.",
    )
    benchmark(lambda: ResilientExecutor(inst).run(list(ordered)))


def test_e13_burst_inflation(benchmark):
    """Correlated bursts: the regime fault-aware admission is built for.

    Uses a dense tree (every node on a root-leaf path carries traffic)
    so a burst's subtree actually intersects in-flight flushes; on the
    sparse B^eps tree most bursts land on idle subtrees and the table
    degenerates to all-1.0 inflation.
    """
    inst = uniform_instance(balanced_tree(3, 3), 800, P=2, B=12, seed=0)
    rows = []
    for fault_aware in (False, True):
        cells = resilience_sweep(
            inst, [WormsPolicy()], fault_rates=(0.2, 0.4, 0.8), seed=0,
            burst=True, fault_aware=fault_aware,
        )
        for c in cells:
            rows.append(
                [("aware" if fault_aware else "blind")] + c.row()[1:]
                + [c.stats.stalled_skips, c.stats.fault_aware_skips,
                   c.stats.wait_steps]
            )
    emit_table(
        "E13_burst_inflation",
        ["admission"] + RESILIENCE_HEADERS[1:]
        + ["probes", "cached-skips", "waits"],
        rows,
        note="Markov-modulated stall -> partial -> failed bursts on a "
        "random subtree (BurstPlan.from_rate); blind = reactive recovery "
        "only, aware = --fault-aware admission (stall-window cache + "
        "degraded-capacity triage).",
    )
    ordered = [f for _t, f in WormsPolicy().schedule(inst).iter_timed()]
    from repro.faults import BurstInjector, BurstPlan

    benchmark(
        lambda: ResilientExecutor(
            inst,
            BurstInjector(FaultPlan.none(), BurstPlan.from_rate(0.2),
                          inst.topology, seed=0),
            fault_aware=True,
        ).run(list(ordered))
    )


def test_e13_journal_overhead(benchmark, tmp_path):
    """Journaling must not change the schedule; cost is write-bound."""
    inst = make_instance()
    ordered = [f for _t, f in WormsPolicy().schedule(inst).iter_timed()]
    bare = GatedExecutor(inst).run(list(ordered))
    rows = [["off", "-", bare.n_steps, bare.n_flushes, 0]]
    for every in (64, 8, 1):
        path = tmp_path / f"cp{every}.journal"
        journaled = GatedExecutor(
            inst, journal=path, checkpoint_every=every
        ).run(list(ordered))
        assert journaled.steps == bare.steps, "journaling changed decisions"
        rows.append(
            ["on", every, journaled.n_steps, journaled.n_flushes,
             path.stat().st_size]
        )
    emit_table(
        "E13_journal_overhead",
        ["journal", "checkpoint-every", "IOs", "flushes", "bytes"],
        rows,
        note="identical realized schedules in every row; denser "
        "checkpoints buy less replay on recovery for more bytes.",
    )
    path = tmp_path / "bench.journal"
    benchmark(
        lambda: GatedExecutor(inst, journal=path).run(list(ordered))
    )


#: Pre-optimization timings, measured at commit e2ed945 (the PR 1 tree)
#: with the same script as the "after" column: balanced_tree(4, 4),
#: P=4, B=64, seed=3, FaultPlan.uniform(0.05), seed=9, retry_budget=6.
#: The bottleneck was FaultInjector._rng building a fresh numpy
#: Generator per query (~25 us x ~200k queries at n=20k).
_SCAN_BASELINES = {20000: (0.17, 6.31), 100000: (3.31, 138.70)}


def test_e13_scan_optimization(benchmark):
    """Before/after wall-clock of the executor scan + injector memo."""
    rows = []
    for n, (clean_before, faulty_before) in _SCAN_BASELINES.items():
        topo = balanced_tree(4, 4)
        inst = uniform_instance(topo, n, P=4, B=64, seed=3)
        ordered = [f for _t, f in WormsPolicy().schedule(inst).iter_timed()]
        t0 = time.perf_counter()
        GatedExecutor(inst).run(list(ordered))
        clean_after = time.perf_counter() - t0
        injector = FaultInjector(FaultPlan.uniform(0.05), seed=9)
        t0 = time.perf_counter()
        ResilientExecutor(
            inst, injector, retry_budget=6, max_replans=4
        ).run(list(ordered))
        faulty_after = time.perf_counter() - t0
        rows.append([
            n, clean_before, round(clean_after, 2), faulty_before,
            round(faulty_after, 2),
            f"{faulty_before / max(faulty_after, 1e-9):.1f}x",
        ])
    emit_table(
        "E13_scan_optimization",
        ["messages", "clean-before (s)", "clean-after (s)",
         "faulty-before (s)", "faulty-after (s)", "faulty speedup"],
        rows,
        note="before = commit e2ed945; after = memoized fault draws + "
        "O(1) first-message reject + static parking + lazy pending "
        "compaction.  Realized schedules are byte-identical to before.",
    )
    topo = balanced_tree(4, 4)
    inst = uniform_instance(topo, 20000, P=4, B=64, seed=3)
    ordered = [f for _t, f in WormsPolicy().schedule(inst).iter_timed()]
    benchmark(lambda: GatedExecutor(inst).run(list(ordered)))
