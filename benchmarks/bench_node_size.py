"""E3: sweep of the node/flush capacity B.

B controls how much write-optimization can batch: larger B means more
messages per IO but also a higher packing threshold (packed sets need
B/6 related messages).  The crossover against eager flushing moves with
B exactly as the model predicts.
"""

from __future__ import annotations

from benchmarks.common import emit_table
from repro.analysis.lower_bounds import worms_lower_bound
from repro.analysis.stats import compare_policies
from repro.policies import EagerPolicy, GreedyBatchPolicy, WormsPolicy
from repro.tree import balanced_tree
from repro.workloads import uniform_instance


def test_e3_node_size_sweep(benchmark):
    topo = balanced_tree(4, 4)  # 256 leaves, height 4 (B-independent shape)
    rows = []
    for B in (8, 16, 32, 64, 128, 256):
        inst = uniform_instance(topo, 2000, P=4, B=B, seed=2)
        stats = compare_policies(
            inst, [EagerPolicy(), GreedyBatchPolicy(), WormsPolicy()]
        )
        lb = worms_lower_bound(inst)
        rows.append(
            [
                B,
                stats["eager"].mean,
                stats["greedy-batch"].mean,
                stats["worms"].mean,
                round(stats["worms"].total / lb, 2),
            ]
        )
    emit_table(
        "E3_node_size",
        ["B", "eager mean", "greedy mean", "worms mean", "worms/LB"],
        rows,
        note="eager is B-independent (one message per flush); the batching "
        "policies improve with B until the backlog cannot fill batches.",
    )
    inst = uniform_instance(topo, 1000, P=4, B=64, seed=2)
    benchmark(lambda: GreedyBatchPolicy().schedule(inst))
