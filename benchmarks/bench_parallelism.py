"""E2: sweep of DAM parallelism P.

The paper's guarantee is an O(1)-approximation *for any P*.  This bench
checks the practical counterpart: the WORMS scheduler's advantage (and its
distance to the certified lower bound) is stable as P grows, and all
policies speed up roughly linearly in P until work runs out.
"""

from __future__ import annotations

from benchmarks.common import emit_table
from repro.analysis.lower_bounds import worms_lower_bound
from repro.analysis.stats import compare_policies
from repro.policies import EagerPolicy, GreedyBatchPolicy, WormsPolicy
from repro.tree import beps_shape_tree
from repro.workloads import uniform_instance


def test_e2_parallelism_sweep(benchmark):
    B = 64
    topo = beps_shape_tree(B=B, eps=0.5, n_leaves=256)
    rows = []
    for P in (1, 2, 4, 8, 16):
        inst = uniform_instance(topo, 2000, P=P, B=B, seed=1)
        stats = compare_policies(
            inst, [EagerPolicy(), GreedyBatchPolicy(), WormsPolicy()]
        )
        lb = worms_lower_bound(inst)
        rows.append(
            [
                P,
                stats["eager"].mean,
                stats["greedy-batch"].mean,
                stats["worms"].mean,
                round(stats["worms"].total / lb, 2),
            ]
        )
    emit_table(
        "E2_parallelism",
        ["P", "eager mean", "greedy mean", "worms mean", "worms/LB"],
        rows,
        note="2000 messages, 512 leaves, B=64.  The worms/LB ratio stays "
        "O(1) across P, the empirical analogue of the any-P guarantee.",
    )
    inst = uniform_instance(topo, 1000, P=4, B=B, seed=1)
    benchmark(lambda: WormsPolicy().schedule(inst))
