"""E4: MPHTF approximation quality for P | outtree, p_j = 1 | Sum wC.

Against the exact DP on small instances (the paper proves <= 4; we
measure the real distribution), and against certified combinatorial lower
bounds at scale.  Also reports the baselines, showing why density-based
priorities matter.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit_table
from repro.analysis.lower_bounds import scheduling_lower_bound
from repro.scheduling import (
    bfs_order_schedule,
    brute_force_optimal,
    mphtf_schedule,
    phtf_schedule,
    random_outtree_instance,
    schedule_cost,
    weight_greedy_schedule,
)
from repro.scheduling.baselines import subtree_weight_schedule

ALGOS = {
    "mphtf": mphtf_schedule,
    "phtf": phtf_schedule,
    "weight-greedy": weight_greedy_schedule,
    "subtree-weight": subtree_weight_schedule,
    "bfs-order": bfs_order_schedule,
}


def test_e4_ratio_vs_exact(benchmark):
    ratios = {name: [] for name in ALGOS}
    for seed in range(120):
        inst = random_outtree_instance(
            10, P=2, n_roots=3, seed=seed, zero_weight_fraction=0.3
        )
        opt, _ = brute_force_optimal(inst)
        if opt == 0:
            continue
        for name, algo in ALGOS.items():
            ratios[name].append(schedule_cost(inst, algo(inst)) / opt)
    rows = [
        [name, float(np.mean(r)), float(np.percentile(r, 95)), float(np.max(r))]
        for name, r in ratios.items()
    ]
    emit_table(
        "E4_sched_ratio_vs_exact",
        ["algorithm", "mean ratio", "p95 ratio", "max ratio"],
        rows,
        note="120 random 10-task forests, P=2.  MPHTF stays well under its "
        "proven 4x; PHTF is near-optimal on average but carries no bound.",
    )
    assert max(ratios["mphtf"]) <= 4.0
    inst = random_outtree_instance(10, P=2, seed=0)
    benchmark(lambda: brute_force_optimal(inst))


def test_e4_ratio_vs_lower_bound_at_scale(benchmark):
    rows = []
    for n in (100, 1000, 5000):
        ratios = {name: [] for name in ALGOS}
        for seed in range(5):
            inst = random_outtree_instance(
                n, P=4, n_roots=5, seed=seed, zero_weight_fraction=0.3
            )
            lb = scheduling_lower_bound(inst)
            for name, algo in ALGOS.items():
                ratios[name].append(schedule_cost(inst, algo(inst)) / lb)
        rows.append(
            [n] + [float(np.mean(ratios[name])) for name in ALGOS]
        )
    emit_table(
        "E4_sched_ratio_vs_LB",
        ["n tasks"] + list(ALGOS),
        rows,
        note="ratios against the certified (capacity, depth) lower bound; "
        "the paper's cost^f route is unsound as stated (finding R1).",
    )
    inst = random_outtree_instance(2000, P=4, seed=0)
    benchmark(lambda: mphtf_schedule(inst))
