"""E12: the LSM-side analogue of the WORMS story.

The paper points at the correspondence between B^epsilon-tree flushing and
LSM compaction.  Here a secure-delete backlog must drain through the
levels of an LSM-tree; we compare compaction scheduling policies on the
mean completion IO of the backlog:

* leveling (topmost-first cascade) — the greedy-batch analogue;
* tiering — the lazier, write-cheaper classic;
* backlog-driven (pending-marker density) — the WORMS analogue.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit_table
from repro.lsm import (
    BacklogDrivenPolicy,
    LevelingPolicy,
    LSMTree,
    TieringPolicy,
)

POLICIES = [LevelingPolicy(), TieringPolicy(), BacklogDrivenPolicy()]


def build_tree(seed: int, n_records: int) -> LSMTree:
    tree = LSMTree(memtable_capacity=32, size_ratio=4, n_levels=4)
    rng = np.random.default_rng(seed)
    for k in rng.permutation(n_records):
        tree.put(int(k), int(k))
        tree.maintain(LevelingPolicy())
    return tree


def run_backlog(policy, seed: int, n_records: int, n_deletes: int):
    tree = build_tree(seed, n_records)
    rng = np.random.default_rng(seed + 1)
    doomed = rng.choice(n_records, size=n_deletes, replace=False)
    start_io = tree.io_blocks
    ops = [tree.secure_delete(int(k)) for k in doomed]
    done = tree.drain_backlog(policy)
    completions = np.array([done[op].io_time - start_io for op in ops])
    return completions, tree.io_blocks - start_io


def test_e12_lsm_backlog(benchmark):
    rows = []
    for n_deletes in (50, 200):
        for policy in POLICIES:
            comps = []
            totals = []
            for seed in (0, 1):
                c, total = run_backlog(policy, seed, 2000, n_deletes)
                comps.append(c)
                totals.append(total)
            all_c = np.concatenate(comps)
            rows.append(
                [
                    n_deletes,
                    policy.name,
                    float(all_c.mean()),
                    float(np.percentile(all_c, 95)),
                    float(np.mean(totals)),
                ]
            )
    emit_table(
        "E12_lsm_backlog",
        ["backlog", "compaction policy", "mean done (IO)", "p95", "total IO"],
        rows,
        note="secure deletes complete when their tombstone compacts into "
        "the bottom level.  The backlog-driven (density) scheduler is the "
        "WORMS analogue on the LSM side.",
    )
    benchmark(lambda: run_backlog(BacklogDrivenPolicy(), 2, 500, 30))
