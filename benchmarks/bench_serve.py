"""E14: the serving layer — sojourn latency under load, overload, faults.

The offline experiments measure completion *steps* of a fixed batch; a
service instead cares about sojourn time (completion - arrival + 1) as
the offered load approaches and passes the machine's capacity.  Three
tables: the latency/load curve for an open Poisson stream, shard
scaling at fixed per-shard load, and bounded-queue overload behaviour
(shed fraction + surviving tail latency), plus a multi-tenant fairness
table for the QoS subsystem.  Machine-readable summaries land in
``results/serve_metrics.json`` (steady-state snapshots, the legacy CI
artifact) and ``results/BENCH_serve.json`` (every table's raw rows,
including per-tenant fairness).
"""

from __future__ import annotations

import json
import os

from benchmarks.common import RESULTS_DIR, emit_table
from repro.serve import ServeConfig, ServiceLoop, TenantSpec

ARTIFACT = "BENCH_serve.json"


def run(cfg: ServeConfig):
    return ServiceLoop(cfg).run()


def _artifact(update: dict) -> None:
    """Merge ``update`` into ``results/BENCH_serve.json``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, ARTIFACT)
    doc = {}
    if os.path.exists(path):
        with open(path) as fh:
            doc = json.load(fh)
    doc.update(update)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)


def test_e14_latency_vs_load(benchmark):
    rows = []
    artifacts = {}
    for rate in (2.0, 4.0, 8.0, 12.0, 16.0):
        cfg = ServeConfig(arrivals="poisson", rate=rate, messages=2000,
                          shards=4, P=4, B=16, seed=14)
        snap = run(cfg).snapshot
        s = snap["sojourn"]
        rows.append([
            rate, snap["n_steps"], s["p50"], s["p95"], s["p99"], s["max"],
            snap["throughput"],
        ])
        artifacts[f"poisson_rate_{rate:g}"] = snap
    emit_table(
        "E14_serve_latency",
        ["rate", "steps", "p50", "p95", "p99", "max", "msgs/step"],
        rows,
        note="sojourn (steps) of an open Poisson stream, 4 shards, P=4 "
        "B=16.  Below capacity the tail tracks the tree height; past it "
        "sojourn grows with the backlog.",
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "serve_metrics.json"), "w") as fh:
        json.dump(artifacts, fh, indent=2, sort_keys=True)
    _artifact({"latency_vs_load": rows})
    benchmark(
        lambda: run(ServeConfig(arrivals="poisson", rate=8.0, messages=500,
                                shards=4, seed=14))
    )


def test_e14_shard_scaling(benchmark):
    rows = []
    for shards in (1, 2, 4, 8):
        # Fixed per-shard load: the total rate scales with the fleet.
        cfg = ServeConfig(arrivals="poisson", rate=3.0 * shards,
                          messages=400 * shards, shards=shards, P=4, B=16,
                          seed=7)
        snap = run(cfg).snapshot
        s = snap["sojourn"]
        rows.append([shards, 3.0 * shards, snap["n_steps"], s["p50"],
                     s["p99"], snap["throughput"]])
    emit_table(
        "E14_serve_shard_scaling",
        ["shards", "rate", "steps", "p50", "p99", "msgs/step"],
        rows,
        note="per-shard load held at 3 msgs/step; near-flat p99 means "
        "key-range routing spreads the stream evenly.",
    )
    _artifact({"shard_scaling": rows})
    benchmark(
        lambda: run(ServeConfig(arrivals="poisson", rate=6.0, messages=300,
                                shards=2, seed=7))
    )


def test_e14_overload_shedding(benchmark):
    rows = []
    for rate in (8.0, 32.0, 128.0):
        cfg = ServeConfig(arrivals="poisson", rate=rate, messages=2000,
                          shards=2, P=2, B=8, max_queue=64,
                          max_root_backlog=32, seed=9)
        snap = run(cfg).snapshot
        s = snap["sojourn"]
        shed_pct = 100.0 * snap["shed"] / snap["arrived"]
        rows.append([rate, snap["completed"], snap["shed"], shed_pct,
                     s["p50"], s["p99"]])
        assert snap["completed"] + snap["shed"] == snap["arrived"]
    emit_table(
        "E14_serve_overload",
        ["rate", "completed", "shed", "shed %", "p50", "p99"],
        rows,
        note="bounded queues (64) + root backlog (32) on an undersized "
        "machine (2 shards, P=2, B=8).  Admission sheds the excess "
        "instead of letting sojourn diverge: the surviving tail stays "
        "bounded while the shed fraction absorbs the overload.",
    )
    _artifact({"overload_shedding": rows})
    benchmark(
        lambda: run(ServeConfig(arrivals="poisson", rate=64.0, messages=400,
                                shards=2, P=2, B=8, max_queue=64,
                                max_root_backlog=32, seed=9))
    )


def test_e14_faulty_serving(benchmark):
    rows = []
    for fault_rate, aware in ((0.0, False), (0.2, False), (0.2, True)):
        cfg = ServeConfig(arrivals="mmpp", rate=3.0, burst_rate=24.0,
                          messages=1200, shards=4, P=4, B=16, seed=11,
                          fault_rate=fault_rate, fault_aware=aware,
                          fault_seed=5)
        report = run(cfg)
        snap = report.snapshot
        s = snap["sojourn"]
        retries = sum(st.failed_attempts + st.partial_deliveries
                      for st in report.shard_stats)
        stalls = sum(st.stalled_skips for st in report.shard_stats)
        rows.append([
            fault_rate, "yes" if aware else "no", snap["n_steps"],
            s["p50"], s["p99"], s["max"], retries, stalls,
        ])
    emit_table(
        "E14_serve_faults",
        ["fault rate", "aware", "steps", "p50", "p99", "max", "retries",
         "stall skips"],
        rows,
        note="bursty (MMPP) stream under injected faults.  Fault-aware "
        "triage caches observed stall windows, so it burns far fewer "
        "attempts on frozen nodes and shaves the tail slightly; the "
        "median is set by the tree height either way.",
    )
    benchmark(
        lambda: run(ServeConfig(arrivals="mmpp", rate=3.0, burst_rate=24.0,
                                messages=300, shards=2, seed=11,
                                fault_rate=0.2, fault_seed=5))
    )


def test_e14_tenant_fairness(benchmark):
    """Per-tenant QoS: weighted-fair admission under 10:1 offered load.

    Two scenarios on the same undersized machine: equal weights (the
    hot tenant absorbs its own overload; admitted service stays ~1:1)
    and a 2:1-weighted hot tenant with a sojourn SLO tight enough to
    trip (its queue is purged and its door closes; the light tenant is
    never shed).
    """
    scenarios = {
        "equal_weights_10_to_1": (
            TenantSpec(name="hot", rate=30.0, messages=600),
            TenantSpec(name="light", rate=3.0, messages=600),
        ),
        "weighted_2_to_1_with_slo": (
            TenantSpec(name="hot", rate=30.0, messages=600, weight=2.0,
                       slo_sojourn=12, buffer_quota=8),
            TenantSpec(name="light", rate=3.0, messages=600),
        ),
    }
    rows = []
    art = {}
    for label, tenants in scenarios.items():
        cfg = ServeConfig(messages=1200, shards=2, P=2, B=8, seed=14,
                          max_root_backlog=16, max_queue=64, epoch=4,
                          tenants=tenants)
        snap = run(cfg).snapshot
        for trow in snap["tenants"]:
            sj = trow["sojourn"]
            slo = trow["slo"]
            rows.append([
                label, trow["tenant"], trow["weight"], trow["arrived"],
                trow["completed"], trow["shed"], trow["throughput"],
                sj["p50"], sj["p99"],
                slo["trips"] if slo else "-",
            ])
            assert trow["arrived"] == trow["completed"] + trow["shed"]
        art[label] = snap["tenants"]
    emit_table(
        "E14_tenant_fairness",
        ["scenario", "tenant", "weight", "arrived", "completed", "shed",
         "msgs/step", "p50", "p99", "slo trips"],
        rows,
        note="two tenants at 10:1 offered load on an undersized machine "
        "(2 shards, P=2, B=8).  Deficit-round-robin admission keeps "
        "completed throughput near the weight ratio while the hot "
        "tenant sheds at its own lane bound; the SLO scenario also "
        "purges the hot tenant's queue whenever its p99 target trips.",
    )
    _artifact({"tenant_fairness": art})
    benchmark(
        lambda: run(ServeConfig(
            messages=300, shards=2, P=2, B=8, seed=14,
            max_root_backlog=16, max_queue=64,
            tenants=(TenantSpec(name="hot", rate=30.0, messages=270),
                     TenantSpec(name="light", rate=3.0, messages=30)),
        ))
    )
