"""E14: the serving layer — sojourn latency under load, overload, faults.

The offline experiments measure completion *steps* of a fixed batch; a
service instead cares about sojourn time (completion - arrival + 1) as
the offered load approaches and passes the machine's capacity.  Three
tables: the latency/load curve for an open Poisson stream, shard
scaling at fixed per-shard load, and bounded-queue overload behaviour
(shed fraction + surviving tail latency).  A machine-readable summary of
the steady-state runs lands in ``results/serve_metrics.json`` for the CI
artifact.
"""

from __future__ import annotations

import json
import os

from benchmarks.common import RESULTS_DIR, emit_table
from repro.serve import ServeConfig, ServiceLoop


def run(cfg: ServeConfig):
    return ServiceLoop(cfg).run()


def test_e14_latency_vs_load(benchmark):
    rows = []
    artifacts = {}
    for rate in (2.0, 4.0, 8.0, 12.0, 16.0):
        cfg = ServeConfig(arrivals="poisson", rate=rate, messages=2000,
                          shards=4, P=4, B=16, seed=14)
        snap = run(cfg).snapshot
        s = snap["sojourn"]
        rows.append([
            rate, snap["n_steps"], s["p50"], s["p95"], s["p99"], s["max"],
            snap["throughput"],
        ])
        artifacts[f"poisson_rate_{rate:g}"] = snap
    emit_table(
        "E14_serve_latency",
        ["rate", "steps", "p50", "p95", "p99", "max", "msgs/step"],
        rows,
        note="sojourn (steps) of an open Poisson stream, 4 shards, P=4 "
        "B=16.  Below capacity the tail tracks the tree height; past it "
        "sojourn grows with the backlog.",
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "serve_metrics.json"), "w") as fh:
        json.dump(artifacts, fh, indent=2, sort_keys=True)
    benchmark(
        lambda: run(ServeConfig(arrivals="poisson", rate=8.0, messages=500,
                                shards=4, seed=14))
    )


def test_e14_shard_scaling(benchmark):
    rows = []
    for shards in (1, 2, 4, 8):
        # Fixed per-shard load: the total rate scales with the fleet.
        cfg = ServeConfig(arrivals="poisson", rate=3.0 * shards,
                          messages=400 * shards, shards=shards, P=4, B=16,
                          seed=7)
        snap = run(cfg).snapshot
        s = snap["sojourn"]
        rows.append([shards, 3.0 * shards, snap["n_steps"], s["p50"],
                     s["p99"], snap["throughput"]])
    emit_table(
        "E14_serve_shard_scaling",
        ["shards", "rate", "steps", "p50", "p99", "msgs/step"],
        rows,
        note="per-shard load held at 3 msgs/step; near-flat p99 means "
        "key-range routing spreads the stream evenly.",
    )
    benchmark(
        lambda: run(ServeConfig(arrivals="poisson", rate=6.0, messages=300,
                                shards=2, seed=7))
    )


def test_e14_overload_shedding(benchmark):
    rows = []
    for rate in (8.0, 32.0, 128.0):
        cfg = ServeConfig(arrivals="poisson", rate=rate, messages=2000,
                          shards=2, P=2, B=8, max_queue=64,
                          max_root_backlog=32, seed=9)
        snap = run(cfg).snapshot
        s = snap["sojourn"]
        shed_pct = 100.0 * snap["shed"] / snap["arrived"]
        rows.append([rate, snap["completed"], snap["shed"], shed_pct,
                     s["p50"], s["p99"]])
        assert snap["completed"] + snap["shed"] == snap["arrived"]
    emit_table(
        "E14_serve_overload",
        ["rate", "completed", "shed", "shed %", "p50", "p99"],
        rows,
        note="bounded queues (64) + root backlog (32) on an undersized "
        "machine (2 shards, P=2, B=8).  Admission sheds the excess "
        "instead of letting sojourn diverge: the surviving tail stays "
        "bounded while the shed fraction absorbs the overload.",
    )
    benchmark(
        lambda: run(ServeConfig(arrivals="poisson", rate=64.0, messages=400,
                                shards=2, P=2, B=8, max_queue=64,
                                max_root_backlog=32, seed=9))
    )


def test_e14_faulty_serving(benchmark):
    rows = []
    for fault_rate, aware in ((0.0, False), (0.2, False), (0.2, True)):
        cfg = ServeConfig(arrivals="mmpp", rate=3.0, burst_rate=24.0,
                          messages=1200, shards=4, P=4, B=16, seed=11,
                          fault_rate=fault_rate, fault_aware=aware,
                          fault_seed=5)
        report = run(cfg)
        snap = report.snapshot
        s = snap["sojourn"]
        retries = sum(st.failed_attempts + st.partial_deliveries
                      for st in report.shard_stats)
        stalls = sum(st.stalled_skips for st in report.shard_stats)
        rows.append([
            fault_rate, "yes" if aware else "no", snap["n_steps"],
            s["p50"], s["p99"], s["max"], retries, stalls,
        ])
    emit_table(
        "E14_serve_faults",
        ["fault rate", "aware", "steps", "p50", "p99", "max", "retries",
         "stall skips"],
        rows,
        note="bursty (MMPP) stream under injected faults.  Fault-aware "
        "triage caches observed stall windows, so it burns far fewer "
        "attempts on frozen nodes and shaves the tail slightly; the "
        "median is set by the tree height either way.",
    )
    benchmark(
        lambda: run(ServeConfig(arrivals="mmpp", rate=3.0, burst_rate=24.0,
                                messages=300, shards=2, seed=11,
                                fault_rate=0.2, fault_seed=5))
    )
