"""E7: the Lemma 1 conversion — validity rate and measured inflation.

Findings R2/R4: the literal Section-3.1 construction usually produces a
valid schedule whose cost inflation is far below the proven c1 = 169, but
on a minority of instances it violates the space requirement (a gap in
the paper's validity proof around U_r chain splitting) and the package
falls back to the always-valid serial schedule.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit_table
from repro.core.packed import build_packed_sets
from repro.core.reduction import reduce_to_scheduling
from repro.core.task_to_flush import task_schedule_to_flush_schedule
from repro.core.valid_conversion import (
    literal_lemma1_schedule,
    serial_fallback_schedule,
)
from repro.dam import simulate
from repro.scheduling import mphtf_schedule
from repro.tree import random_tree
from repro.workloads import uniform_instance


def run_case(seed: int, height: int, n_msgs: int, P: int, B: int):
    topo = random_tree(height=height, min_fanout=2, max_fanout=3, seed=seed)
    inst = uniform_instance(topo, n_msgs, P=P, B=B, seed=seed)
    packed = build_packed_sets(inst)
    red = reduce_to_scheduling(inst, packed)
    over = task_schedule_to_flush_schedule(red, mphtf_schedule(red.scheduling))
    over_cost = simulate(inst, over).total_completion_time
    lit = literal_lemma1_schedule(inst, packed, over)
    lit_res = simulate(inst, lit)
    fb = serial_fallback_schedule(inst, packed, over)
    fb_cost = simulate(inst, fb).total_completion_time
    return over_cost, lit_res, fb_cost


def test_e7_lemma1_validity_and_inflation(benchmark):
    rng = np.random.default_rng(0)
    valid, invalid = 0, 0
    inflations, fb_inflations = [], []
    for trial in range(40):
        over_cost, lit_res, fb_cost = run_case(
            seed=trial,
            height=int(rng.integers(1, 4)),
            n_msgs=int(rng.integers(20, 400)),
            P=int(rng.integers(1, 4)),
            B=int(rng.integers(6, 48)),
        )
        if over_cost == 0:
            continue
        if lit_res.is_valid:
            valid += 1
            inflations.append(lit_res.total_completion_time / over_cost)
        else:
            invalid += 1
        fb_inflations.append(fb_cost / over_cost)
    emit_table(
        "E7_lemma1",
        ["metric", "value"],
        [
            ["literal construction valid", valid],
            ["literal construction invalid (fallback)", invalid],
            ["median inflation when valid", float(np.median(inflations))],
            ["max inflation when valid", float(np.max(inflations))],
            ["paper's proven constant c1", 169],
            ["median fallback inflation", float(np.median(fb_inflations))],
        ],
        note="inflation = valid cost / overfilling cost.  The literal "
        "construction's measured constant is ~10-40x below the proof's "
        "169; its occasional invalidity is finding R4.",
    )
    assert valid > invalid  # the construction works on the clear majority
    benchmark(
        lambda: run_case(seed=3, height=3, n_msgs=200, P=2, B=32)
    )
