"""E6: end-to-end approximation quality of the WORMS pipeline.

The paper proves total completion time <= 4 * c1^2 ~ 114k times optimal
(constants from Lemmas 1, 9, 14).  Measured against certified lower
bounds, the literal pipeline lands around 3-30x and the practical
executor variant around 1.5-4x — the gap is entirely Lemma 1's timeline
dilation, quantified stage by stage here.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit_table
from repro.analysis.lower_bounds import worms_lower_bound
from repro.core import solve_worms
from repro.dam import validate_valid
from repro.policies import WormsPolicy
from repro.tree import balanced_tree, beps_shape_tree
from repro.workloads import uniform_instance, zipf_instance


def test_e6_pipeline_ratio(benchmark):
    rows = []
    for label, topo, n, theta in (
        ("uniform/small", balanced_tree(3, 3), 300, 0.0),
        ("uniform/large", beps_shape_tree(64, 0.5, 256), 2000, 0.0),
        ("zipf-1.0", beps_shape_tree(64, 0.5, 256), 2000, 1.0),
    ):
        lit_ratios, prac_ratios, stage = [], [], []
        for seed in range(3):
            inst = zipf_instance(topo, n, P=4, B=64, theta=theta, seed=seed)
            lb = worms_lower_bound(inst)
            res = solve_worms(inst)
            lit_ratios.append(res.total_completion_time / lb)
            stage.append(res.overfilling_result.total_completion_time / lb)
            prac = validate_valid(inst, WormsPolicy().schedule(inst))
            prac_ratios.append(prac.total_completion_time / lb)
        rows.append(
            [
                label,
                float(np.mean(stage)),
                float(np.mean(lit_ratios)),
                float(np.mean(prac_ratios)),
            ]
        )
    emit_table(
        "E6_worms_ratio",
        ["workload", "overfilling/LB", "literal pipeline/LB", "practical/LB"],
        rows,
        note="paper's worst-case constant is 4*169^2; measured constants "
        "are orders of magnitude smaller (finding R2).  The overfilling "
        "column isolates the MPHTF+reduction quality before Lemma 1.",
    )
    inst = uniform_instance(balanced_tree(3, 3), 300, P=4, B=64, seed=0)
    benchmark(lambda: solve_worms(inst))
