"""E16: long-run performance stability — stall windows and pacing.

Mean throughput hides the failure mode that matters in production
(Luo & Carey, PAPERS.md): windows where the service goes dark while
amortized maintenance catches up.  Three tables: the stall profile of
the two MMPP scenarios, the de-amortization trade-off curve
(``--pace`` budget vs stall length / tail sojourn / mean), and the
acceptance demonstration that a paced flash-crowd run shortens its
worst stall *and* its p99.9 sojourn for a bounded mean regression.
Raw documents land in ``results/BENCH_stability.json`` — the
schema-versioned perf curve future PRs extend.

The full multi-million-op runs are nightly-only (``-m nightly``); the
push-time tables use shorter seeded runs of the same scenarios.
"""

from __future__ import annotations

import json
import os

import pytest

from benchmarks.common import RESULTS_DIR, emit_table
from repro.stability import StabilityConfig, run_stability

ARTIFACT = "BENCH_stability.json"

#: The acceptance-criterion run: seeded flash-crowd with compaction
#: interference (fault pipeline), big flushes on a tall tree.  The
#: paced variant must shorten the worst stall and the p99.9 tail at
#: <= 15% mean regression (asserted in test_e16_pacing_tradeoff).
DEMO = dict(scenario="flash-crowd", messages=8000, seed=1,
            fault_rate=0.05, B=32, height=4)
DEMO_PACE = 32


def _artifact(update: dict) -> None:
    """Merge ``update`` into ``results/BENCH_stability.json``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, ARTIFACT)
    doc = {}
    if os.path.exists(path):
        with open(path) as fh:
            doc = json.load(fh)
    doc.update(update)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)


def _row(doc: dict) -> list:
    stalls, soj = doc["stalls"], doc["sojourn"]
    p999 = soj["p999"] if soj["p999"] is not None else float("nan")
    return [doc["windows"]["n"], stalls["count"], stalls["stalled_windows"],
            stalls["max_len"], soj["p50"], soj["p99"], p999, soj["mean"]]


def test_e16_stall_scenarios(benchmark):
    rows = []
    art = {}
    for scenario, messages in (("diurnal", 30_000), ("flash-crowd", 8000)):
        cfg = StabilityConfig(scenario=scenario, messages=messages, seed=1,
                              fault_rate=0.05, B=32, height=4)
        doc = run_stability(cfg)
        a = doc["stalls"]["attribution"]
        rows.append([scenario, messages, *_row(doc),
                     a["interference"], a["arrival-lull"], a["backlog"]])
        art[scenario] = doc
    emit_table(
        "E16_stability_scenarios",
        ["scenario", "msgs", "windows", "stalls", "stall wins", "max len",
         "p50", "p99", "p99.9", "mean", "interf", "lull", "backlog"],
        rows,
        note="stall profile of the two MMPP regimes under 5% fault "
        "interference.  Diurnal lulls are attributed to arrivals, not "
        "counted against the engine; flash-crowd stalls are "
        "interference- and backlog-driven.",
    )
    _artifact({"scenarios": art})
    benchmark(
        lambda: run_stability(
            StabilityConfig(scenario="diurnal", messages=2000, seed=1)
        )
    )


def test_e16_pacing_tradeoff(benchmark):
    """The acceptance demonstration: pace flattens the worst stall and
    the p99.9 tail of the flash-crowd run at a bounded mean cost."""
    rows = []
    art = {}
    docs = {}
    for pace in (0, 16, DEMO_PACE, 64):
        doc = run_stability(StabilityConfig(**DEMO, pace=pace))
        docs[pace] = doc
        label = str(pace) if pace else "off"
        bound = doc["pace"]["max_step_work"] if pace else "-"
        rows.append([label, bound, *_row(doc)])
        art[f"pace_{label}"] = doc
        if pace:
            # The controller's contract: realized per-step flushed work
            # never exceeds the budget, on any shard, at any step.
            assert doc["pace"]["max_step_work"] <= pace, doc["pace"]
    emit_table(
        "E16_pacing_tradeoff",
        ["pace", "step work", "windows", "stalls", "stall wins", "max len",
         "p50", "p99", "p99.9", "mean"],
        rows,
        note="flash-crowd + 5% interference, pace budget sweep.  Tight "
        "budgets (16) throttle the catch-up drain and hurt everything; "
        "loose budgets (64) change nothing; the right budget (32) "
        "shortens the worst stall and the p99.9 tail for ~1% mean "
        "regression — the Das-Iacono-Nekrich trade.",
    )
    base, paced = docs[0], docs[DEMO_PACE]
    assert paced["stalls"]["max_len"] < base["stalls"]["max_len"], (
        paced["stalls"], base["stalls"])
    assert paced["sojourn"]["p999"] < base["sojourn"]["p999"], (
        paced["sojourn"], base["sojourn"])
    regression = (paced["sojourn"]["mean"] - base["sojourn"]["mean"]) \
        / base["sojourn"]["mean"]
    assert regression <= 0.15, regression
    art["criterion"] = {
        "max_stall_len": {"unpaced": base["stalls"]["max_len"],
                          "paced": paced["stalls"]["max_len"]},
        "p999": {"unpaced": base["sojourn"]["p999"],
                 "paced": paced["sojourn"]["p999"]},
        "mean_regression": round(regression, 4),
        "pace": DEMO_PACE,
    }
    _artifact({"pacing_tradeoff": art})
    benchmark(
        lambda: run_stability(
            StabilityConfig(scenario="flash-crowd", messages=1000, seed=1,
                            pace=8)
        )
    )


@pytest.mark.nightly
def test_e16_longrun_nightly(benchmark):
    """Multi-million-op stability runs (nightly: ~15 min of sim time)."""
    rows = []
    art = {}
    for scenario, pace in (("diurnal", 0), ("flash-crowd", 0),
                           ("flash-crowd", DEMO_PACE)):
        cfg = StabilityConfig(scenario=scenario, messages=2_000_000, seed=1,
                              fault_rate=0.05, B=32, height=4, pace=pace)
        doc = run_stability(cfg)
        label = f"{scenario}{'_paced' if pace else ''}"
        rows.append([label, *_row(doc)])
        # The long windows series dominates the artifact; keep the
        # distributions and drop the raw per-window counters.
        slim = {k: v for k, v in doc.items() if k != "windows"}
        slim["windows"] = {"window_steps": doc["windows"]["window_steps"],
                           "n": doc["windows"]["n"]}
        art[label] = slim
        if pace:
            assert doc["pace"]["max_step_work"] <= pace, doc["pace"]
    emit_table(
        "E16_stability_longrun",
        ["run", "windows", "stalls", "stall wins", "max len",
         "p50", "p99", "p99.9", "mean"],
        rows,
        note="2M-message seeded runs; with n >= 1000 completions per "
        "run the p99.9 guard is always satisfied, so the tail column "
        "is exact, not n/a.",
    )
    _artifact({"longrun": art})
    benchmark(
        lambda: run_stability(
            StabilityConfig(scenario="diurnal", messages=2000, seed=1)
        )
    )
