"""F1-F4: the paper's illustrative figures as executable artifacts.

The brief announcement has no experimental tables; its four figures are
worked examples.  Each bench regenerates the figure's content from our
implementation and asserts the properties the figure illustrates.
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")  # allow `tests.conftest` import when run from repo root

from benchmarks.common import emit_table
from repro.analysis.npc import (
    build_gadget,
    canonical_gadget_schedule,
    solve_three_partition,
)
from repro.core.packed import build_packed_sets
from repro.core.reduction import reduce_to_scheduling
from repro.core.worms import WORMSInstance
from repro.dam import simulate, validate_valid
from repro.dam.schedule import Flush, FlushSchedule
from repro.tree import Message, path_tree
from tests.conftest import fig2_worms_instance


def test_fig1_cascade(benchmark):
    """Figure 1: a 3-node cascade completes in 2 steps via a temporary
    overflow that a valid schedule is allowed to have."""

    def run():
        B = 4
        topo = path_tree(2)
        msgs = [Message(i, 2) for i in range(6)]
        inst = WORMSInstance(
            topo, msgs, P=1, B=B, start_nodes=[1, 1, 1, 1, 0, 0]
        )
        s = FlushSchedule()
        s.add(1, Flush(0, 1, (4, 5)))
        s.add(2, Flush(1, 2, (0, 1, 2, 3)))
        s.add(3, Flush(1, 2, (4, 5)))
        return inst, s

    inst, s = run()
    res = simulate(inst, s, track_occupancy=True)
    assert res.is_valid
    emit_table(
        "F1_cascade",
        ["property", "value"],
        [
            ["valid", res.is_valid],
            ["peak occupancy of v2 (B=4)", res.max_occupancy[1]],
            ["red messages complete at", int(res.completion_times[4])],
            ["steps used", res.n_steps],
        ],
        note="v2 transiently holds 6 > B yet the schedule is valid "
        "(surplus leaves on the next step), reproducing Fig. 1.",
    )
    benchmark(lambda: simulate(*run()))


def test_fig2_packed_sets(benchmark):
    """Figure 2: packed nodes and packed sets of the example instance."""
    inst = fig2_worms_instance()
    packed = benchmark(lambda: build_packed_sets(inst))
    packed.check_invariants()
    rows = []
    for v in packed.packed_nodes:
        sets = [s for s in packed.sets if s.parent_node == v]
        rows.append(
            [
                v,
                sum(s.size for s in sets),
                len(sets),
                " ".join(str(s.size) for s in sets),
            ]
        )
    emit_table(
        "F2_packed_sets",
        ["packed node", "packed contents", "#sets", "set sizes"],
        rows,
        note="Figure 2 labels: root=3, leaf=40, 11, 36, 14; the right "
        "child computes to 15 by Definition (figure label 23: finding R3).",
    )


def test_fig3_reduction(benchmark):
    """Figure 3: the reduced scheduling instance of the Fig. 2 example."""
    inst = fig2_worms_instance()
    red = benchmark(lambda: reduce_to_scheduling(inst))
    sched = red.scheduling
    weighted = [
        (j, int(sched.weights[j]), red.task_edges[j].dest)
        for j in range(sched.n_tasks)
        if sched.weights[j] > 0
    ]
    emit_table(
        "F3_reduction",
        ["total tasks", "zero-weight tasks", "weighted tasks", "total weight"],
        [
            [
                sched.n_tasks,
                sched.n_tasks - len(weighted),
                len(weighted),
                int(sched.total_weight),
            ]
        ],
        note="leaf-delivery tasks carry the message counts, matching the "
        "leaf labels of Figure 3; all internal tasks have weight 0.",
    )
    assert int(sched.total_weight) == inst.n_messages


def test_fig4_np_gadget(benchmark):
    """Figure 4 / Lemma 15: the 3-partition gadget behaves as proven."""
    yes = [6, 7, 7, 6, 8, 6]
    no = [7, 9, 11, 7, 9, 9]  # all odd, K even: no triple can sum to K

    def solve():
        return solve_three_partition(yes), solve_three_partition(no)

    part_yes, part_no = benchmark(solve)
    assert part_yes is not None and part_no is None
    g = build_gadget(yes)
    sched = canonical_gadget_schedule(g, part_yes)
    res = validate_valid(g.instance, sched)
    emit_table(
        "F4_np_gadget",
        ["instance", "3-partition", "B", "makespan", "cost", "C1 bound"],
        [
            ["YES", str(part_yes), g.B, res.max_completion_time,
             res.total_completion_time, g.C1],
            ["NO", "none exists", build_gadget(no).B, "-", "-",
             build_gadget(no).C1],
        ],
        note="YES instances admit a 4n'-flush schedule within C1; "
        "NO instances provably cannot (each r->x flush of a non-K triple "
        "overflows B).",
    )
    assert res.max_completion_time == 4 * g.n_groups
    assert res.total_completion_time <= g.C1
