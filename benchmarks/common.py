"""Shared helpers for the benchmark harness.

Every experiment prints its table (visible with ``pytest -s``) *and*
writes it to ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can
quote stable artifacts.  pytest-benchmark times a representative kernel of
each experiment; the tables themselves are computed once per run.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_table(
    name: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    note: str = "",
) -> str:
    """Format, print, and persist an experiment table; returns the text."""
    rows = [list(r) for r in rows]
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [f"== {name} =="]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append(
            "  ".join(_fmt(v).rjust(w) for v, w in zip(r, widths))
        )
    if note:
        lines.append(f"note: {note}")
    text = "\n".join(lines)
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    return text


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)
