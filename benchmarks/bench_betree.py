"""E13: the read-write asymmetry of the B^epsilon-tree substrate.

The paper's opening premise: write-optimization makes inserts nearly free
(amortized o(1) IOs when B >> height) while queries pay the full
root-to-leaf cost — which is exactly why root-to-leaf operations are the
odd ones out.  This bench measures amortized insert IOs vs per-query IOs
across B on our dictionary.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit_table
from repro.tree.betree import BeTree


def measure(B: int, n: int = 4000, seed: int = 0):
    tree = BeTree(B=B, eps=0.5)
    rng = np.random.default_rng(seed)
    keys = rng.permutation(n)
    for k in keys:
        tree.insert(int(k), int(k))
    insert_ios = tree.io.total / n
    tree.io.reset()
    probes = keys[:500]
    for k in probes:
        tree.query(int(k))
    query_ios = tree.io.total / len(probes)
    return insert_ios, query_ios, tree.height


def test_e13_write_optimization_asymmetry(benchmark):
    rows = []
    for B in (8, 16, 32, 64, 128):
        ins, qry, height = measure(B)
        rows.append([B, height, round(ins, 3), round(qry, 3),
                     round(qry / ins, 1)])
    emit_table(
        "E13_betree_asymmetry",
        ["B", "height", "insert IOs (amortized)", "query IOs", "ratio"],
        rows,
        note="4000 random inserts + 500 point queries.  Larger B batches "
        "more per flush: amortized insert cost falls while query cost "
        "tracks the (shrinking) height — the WOD asymmetry that motivates "
        "treating root-to-leaf operations specially.",
    )
    ins, qry, _ = measure(64)
    assert ins < qry  # the asymmetry itself
    benchmark(lambda: measure(32, n=1500))
