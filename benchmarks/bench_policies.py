"""E1: eager vs lazy vs greedy vs WORMS — mean completion vs backlog size.

The paper's headline claim: classic techniques force an "unsavory choice"
(eager = terrible throughput, lazy = terrible straggler latency) and the
WORMS scheduler is the middle ground.  On scattered backlogs (messages per
leaf << B) the density-guided scheduler beats even idealized greedy
batching; eager loses by an order of magnitude throughout.
"""

from __future__ import annotations

from benchmarks.common import emit_table
from repro.analysis.lower_bounds import worms_lower_bound
from repro.analysis.stats import compare_policies
from repro.policies import (
    EagerPolicy,
    GreedyBatchPolicy,
    LazyThresholdPolicy,
    WormsPolicy,
)
from repro.tree import beps_shape_tree
from repro.workloads import uniform_instance

POLICIES = [
    EagerPolicy(),
    LazyThresholdPolicy(),
    GreedyBatchPolicy(),
    WormsPolicy(),
]


def sweep(n_messages: int, seed: int = 0):
    B, P = 64, 4
    topo = beps_shape_tree(B=B, eps=0.5, n_leaves=256)
    inst = uniform_instance(topo, n_messages, P=P, B=B, seed=seed)
    stats = compare_policies(inst, POLICIES)
    return inst, stats


def test_e1_policy_comparison(benchmark):
    rows = []
    for n in (250, 500, 1000, 2000, 4000):
        inst, stats = sweep(n)
        lb = worms_lower_bound(inst)
        row = [n]
        for policy in POLICIES:
            row.append(stats[policy.name].mean)
        row.append(round(lb / n, 2))  # LB per message, for scale
        rows.append(row)
    emit_table(
        "E1_policy_mean_completion",
        ["|M|"] + [p.name for p in POLICIES] + ["LB/msg"],
        rows,
        note="mean completion time (IOs); height-3 B^eps tree, 512 leaves, "
        "P=4, B=64.  WORMS is the best or near-best at every size; eager "
        "is ~10x off; lazy/greedy batching trail once messages scatter.",
    )
    benchmark(lambda: WormsPolicy().schedule(sweep(1000)[0]))


def test_e1_tail_latency(benchmark):
    """The straggler view: p95 and max, same sweep."""
    rows = []
    for n in (500, 2000):
        _inst, stats = sweep(n)
        for policy in POLICIES:
            s = stats[policy.name]
            rows.append([n, policy.name, s.mean, s.p95, s.max, s.n_steps])
    emit_table(
        "E1_tail_latency",
        ["|M|", "policy", "mean", "p95", "max", "IOs"],
        rows,
        note="total IO budget (steps) doubles as the throughput metric.",
    )
    benchmark(lambda: GreedyBatchPolicy().schedule(sweep(500)[0]))
