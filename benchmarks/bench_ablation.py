"""Ablations of the design choices DESIGN.md calls out.

* packing threshold denominator (paper: 6) — smaller sets start sooner,
  larger sets batch better;
* MPHTF vs PHTF priorities under the practical gated executor — PHTF
  avoids MPHTF's half-speed dilation but drops the (paper's) worst-case
  story;
* MPHTF within-tree order: density vs FIFO.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit_table
from repro.analysis.lower_bounds import worms_lower_bound
from repro.core.packed import build_packed_sets
from repro.core.reduction import reduce_to_scheduling
from repro.core.task_to_flush import task_schedule_to_flush_schedule
from repro.dam import validate_valid
from repro.policies import PhtfWormsPolicy, WormsPolicy
from repro.policies.executor import execute_flush_list
from repro.scheduling import mphtf_schedule
from repro.tree import beps_shape_tree
from repro.workloads import uniform_instance, zipf_instance


def test_ablation_packing_threshold(benchmark):
    topo = beps_shape_tree(64, 0.5, 256)
    rows = []
    # denom >= 3 keeps every set within one flush (a group can reach
    # ~3B/denom after the leftover merge); denom=2 would exceed B.
    for denom in (3, 4, 6, 12, 24):
        ratios = []
        for seed in range(3):
            inst = uniform_instance(topo, 2000, P=4, B=64, seed=seed)
            packed = build_packed_sets(inst, denom=denom)
            red = reduce_to_scheduling(inst, packed)
            over = task_schedule_to_flush_schedule(
                red, mphtf_schedule(red.scheduling)
            )
            ordered = [f for _t, f in over.iter_timed()]
            res = validate_valid(inst, execute_flush_list(inst, ordered))
            ratios.append(res.total_completion_time / worms_lower_bound(inst))
        rows.append([f"B/{denom}", float(np.mean(ratios))])
    emit_table(
        "ABL_packing_threshold",
        ["packing threshold", "cost / LB"],
        rows,
        note="measured: larger sets (up to B/3) batch better on uniform "
        "backlogs; the paper's B/6 costs ~25% over B/3 but buys the "
        "factor-two slack its proofs use; small thresholds waste flush "
        "capacity fast.",
    )
    inst = uniform_instance(topo, 500, P=4, B=64, seed=0)
    benchmark(lambda: build_packed_sets(inst, denom=6))


def test_ablation_mphtf_vs_phtf_executor(benchmark):
    topo = beps_shape_tree(64, 0.5, 256)
    rows = []
    for label, theta in (("uniform", 0.0), ("zipf-1", 1.0)):
        m_ratios, p_ratios = [], []
        for seed in range(3):
            inst = zipf_instance(topo, 2000, P=4, B=64, theta=theta, seed=seed)
            lb = worms_lower_bound(inst)
            m = validate_valid(inst, WormsPolicy().schedule(inst))
            p = validate_valid(inst, PhtfWormsPolicy().schedule(inst))
            m_ratios.append(m.total_completion_time / lb)
            p_ratios.append(p.total_completion_time / lb)
        rows.append([label, float(np.mean(m_ratios)), float(np.mean(p_ratios))])
    emit_table(
        "ABL_mphtf_vs_phtf",
        ["workload", "mphtf priorities / LB", "phtf priorities / LB"],
        rows,
        note="under the gated executor the 2x dilation of MPHTF mostly "
        "disappears (the executor re-compacts); PHTF priorities are "
        "sometimes marginally better but carry no worst-case story.",
    )
    inst = uniform_instance(topo, 500, P=4, B=64, seed=1)
    benchmark(lambda: PhtfWormsPolicy().schedule(inst))
