"""E9: the online probe (Section 5 future work).

Messages arrive over time; the online density heuristic is compared, on
flow time, against (a) eager handling at release and (b) the offline
clairvoyant WORMS schedule of the same message set (a bound that ignores
releases).  The question the paper leaves open is how much clairvoyance
buys — measured here as the online/offline flow gap across arrival rates.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit_table
from repro.dam import validate_valid
from repro.policies import (
    EagerPolicy,
    OnlineArrival,
    WormsPolicy,
    online_density_schedule,
)
from repro.tree import beps_shape_tree
from repro.workloads import uniform_instance


def test_e9_online_vs_offline(benchmark):
    topo = beps_shape_tree(64, 0.5, 256)
    n_msgs, P, B = 1500, 4, 64
    rows = []
    for horizon in (1, 100, 400, 1600):
        inst = uniform_instance(topo, n_msgs, P=P, B=B, seed=6)
        rng = np.random.default_rng(horizon)
        releases = np.sort(rng.integers(1, horizon + 1, size=n_msgs))
        arrivals = [OnlineArrival(m, int(t)) for m, t in enumerate(releases)]

        online = validate_valid(
            inst, online_density_schedule(inst, arrivals)
        )
        online_flow = float((online.completion_times - releases).mean())

        offline = validate_valid(inst, WormsPolicy().schedule(inst))
        offline_flow = float((offline.completion_times - releases).mean())

        # Eager at release: process messages in release order.
        order = list(np.argsort(releases, kind="stable"))
        eager = validate_valid(inst, EagerPolicy(order=order).schedule(inst))
        eager_flow = float((eager.completion_times - releases).mean())

        rows.append([horizon, online_flow, offline_flow, eager_flow])
    emit_table(
        "E9_online",
        ["arrival horizon", "online flow", "offline* flow", "eager flow"],
        rows,
        note="mean flow time (completion - release).  *offline ignores "
        "releases (lower bound reference).  With slow arrivals the online "
        "heuristic approaches per-batch optimal behaviour.",
    )
    inst = uniform_instance(topo, 500, P=P, B=B, seed=6)
    benchmark(lambda: online_density_schedule(inst))
