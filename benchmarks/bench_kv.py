"""E15: the durable KV engine — ingest, recovery, and scrub rates.

The robustness work has exact-recovery tests; this experiment gives it
*numbers*: sustained ingest throughput (WAL append + memtable + flush +
WORMS-scheduled compaction), crash-recovery time as a function of the
un-flushed WAL suffix, and the scrubber's full-verify rate.  A
machine-readable summary lands in ``results/BENCH_kv.json`` so the perf
trajectory of the storage layer has data points from day one.

Times here are wall-clock (the engine does real I/O); the tables quote
rates, which are stable enough across CI runners to spot order-of-
magnitude regressions, not microsecond drift.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.common import RESULTS_DIR, emit_table
from repro.lsm.disk import KVStore, run_scrub

ARTIFACT = "BENCH_kv.json"


def _ingest(home, n_ops, *, key_space=512, memtable_capacity=256,
            sync=False) -> "tuple[KVStore, float]":
    store = KVStore(home, memtable_capacity=memtable_capacity,
                    size_ratio=4, sync=sync)
    t0 = time.perf_counter()
    for i in range(1, n_ops + 1):
        key = f"k{i % key_space:06d}"
        if i % 9 == 0:
            store.delete(key)
        else:
            store.put(key, {"seq": i, "v": i * 7919 % 100003})
    elapsed = time.perf_counter() - t0
    return store, elapsed


def _artifact(update: dict) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, ARTIFACT)
    doc = {}
    if os.path.exists(path):
        with open(path) as fh:
            doc = json.load(fh)
    doc.update(update)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)


def test_e15_ingest_throughput(tmp_path, benchmark):
    rows = []
    art = {}
    for n_ops in (2_000, 8_000):
        store, elapsed = _ingest(tmp_path / f"ingest{n_ops}", n_ops)
        stats = store.stats()
        store.close()
        rate = n_ops / elapsed
        # Each flush rotates the WAL, so the generation counts flushes.
        rows.append([
            n_ops, f"{elapsed * 1e3:.0f}ms", rate, stats["wal_gen"],
            stats["manifest_version"], len(stats["levels"]),
        ])
        art[f"ingest_{n_ops}"] = {
            "ops": n_ops, "seconds": elapsed, "ops_per_sec": rate,
            "flushes": stats["wal_gen"],
            "manifest_version": stats["manifest_version"],
            "levels": stats["levels"],
        }
    emit_table(
        "E15_kv_ingest",
        ["ops", "wall", "ops/s", "flushes", "manifest", "levels"],
        rows,
        note="mixed put/delete stream, 512-key space, memtable=256, "
        "T=4, sync=False (page-cache durability: the SIGKILL fault "
        "model).  Includes inline WORMS-scheduled compaction.",
    )
    _artifact(art)
    benchmark(lambda: _ingest(
        tmp_path / f"b{time.monotonic_ns()}", 500
    )[0].close())


def test_e15_recovery_time(tmp_path, benchmark):
    """Reopen cost ~ size of the un-flushed WAL suffix, not the store."""
    rows = []
    art = {}
    for wal_ops in (100, 1_000, 4_000):
        home = tmp_path / f"rec{wal_ops}"
        # A settled store plus `wal_ops` operations past the last flush:
        # exactly the replay work a crash leaves behind.
        store, _ = _ingest(home, 4_000, memtable_capacity=256)
        store.flush_memtable()
        base_seq = store.stats()["seq"]
        store.sync_wal()
        cap = store.memtable_capacity
        store.memtable_capacity = wal_ops + 1  # hold the suffix in the WAL
        for i in range(wal_ops):
            store.put(f"r{i % 64:04d}", i)
        store.memtable_capacity = cap
        del store  # crash: no close, no flush
        t0 = time.perf_counter()
        store = KVStore(home, memtable_capacity=256, size_ratio=4,
                        sync=False)
        elapsed = time.perf_counter() - t0
        recovered = store.stats()["seq"] - base_seq
        assert recovered == wal_ops
        store.close()
        rows.append([
            wal_ops, f"{elapsed * 1e3:.1f}ms", wal_ops / elapsed,
        ])
        art[f"recovery_{wal_ops}"] = {
            "wal_records": wal_ops, "seconds": elapsed,
            "records_per_sec": wal_ops / elapsed,
        }
    emit_table(
        "E15_kv_recovery",
        ["wal records", "reopen", "records/s"],
        rows,
        note="SIGKILL-style abandon then reopen; replay cost scales "
        "with the acknowledged-but-unflushed suffix only.",
    )
    _artifact(art)
    home = tmp_path / "rb"
    store, _ = _ingest(home, 1_000)
    del store
    benchmark(lambda: KVStore(home, sync=False).close())


def test_e15_scrub_rate(tmp_path, benchmark):
    home = tmp_path / "scrub"
    store, _ = _ingest(home, 8_000)
    store.flush_memtable()
    live_bytes = sum(
        (store.directory / m.name).stat().st_size
        for m in store.manifest.live_files()
    )
    t0 = time.perf_counter()
    report = run_scrub(store, repair=False)
    elapsed = time.perf_counter() - t0
    assert report.clean
    store.close()
    emit_table(
        "E15_kv_scrub",
        ["files", "blocks", "bytes", "wall", "MB/s"],
        [[
            report.files_checked, report.blocks_checked, live_bytes,
            f"{elapsed * 1e3:.1f}ms", live_bytes / elapsed / 1e6,
        ]],
        note="full read-only verify of every live block + WAL chain; "
        "the proactive-detection cost a deployment would pay per cycle.",
    )
    _artifact({"scrub": {
        "files": report.files_checked, "blocks": report.blocks_checked,
        "bytes": live_bytes, "seconds": elapsed,
        "mb_per_sec": live_bytes / elapsed / 1e6,
    }})
    store = KVStore(home, sync=False)
    benchmark(lambda: run_scrub(store, repair=False))
    store.close()
