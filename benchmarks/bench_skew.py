"""E8: skew sensitivity — Zipf sweep and the clustered nightly purge.

Skew is where scheduling decisions matter: hot subtrees should complete
first (they carry the mean), and cold stragglers should not be able to
stall the hot traffic.  Also covers the single-leaf burst corner (pure
batching, every policy near-optimal) as a calibration row.
"""

from __future__ import annotations

from benchmarks.common import emit_table
from repro.analysis.lower_bounds import worms_lower_bound
from repro.analysis.stats import compare_policies
from repro.policies import EagerPolicy, GreedyBatchPolicy, WormsPolicy
from repro.tree import beps_shape_tree
from repro.workloads import (
    clustered_purge_instance,
    single_leaf_burst_instance,
    uniform_instance,
    zipf_instance,
)

POLICIES = [EagerPolicy(), GreedyBatchPolicy(), WormsPolicy()]


def test_e8_zipf_sweep(benchmark):
    topo = beps_shape_tree(64, 0.5, 256)
    rows = []
    for theta in (0.0, 0.5, 1.0, 1.5, 2.0):
        inst = zipf_instance(topo, 2000, P=4, B=64, theta=theta, seed=4)
        stats = compare_policies(inst, POLICIES)
        lb = worms_lower_bound(inst)
        rows.append(
            [
                theta,
                stats["eager"].mean,
                stats["greedy-batch"].mean,
                stats["worms"].mean,
                round(stats["worms"].total / lb, 2),
            ]
        )
    emit_table(
        "E8_zipf",
        ["theta", "eager mean", "greedy mean", "worms mean", "worms/LB"],
        rows,
        note="rising skew concentrates work and narrows the gap between "
        "batching policies; worms keeps the lead while traffic is spread.",
    )
    inst = zipf_instance(topo, 1000, P=4, B=64, theta=1.0, seed=4)
    benchmark(lambda: WormsPolicy().schedule(inst))


def test_e8_clustered_purge_and_burst(benchmark):
    topo = beps_shape_tree(64, 0.5, 256)
    rows = []
    for label, inst in (
        (
            "clustered 90/10",
            clustered_purge_instance(
                topo, 2000, P=4, B=64, n_clusters=2, cluster_fraction=0.9, seed=5
            ),
        ),
        (
            "single-leaf burst",
            single_leaf_burst_instance(topo, 2000, P=4, B=64, seed=5),
        ),
        ("uniform (ref)", uniform_instance(topo, 2000, P=4, B=64, seed=5)),
    ):
        stats = compare_policies(inst, POLICIES)
        rows.append(
            [label]
            + [stats[p.name].mean for p in POLICIES]
            + [round(stats["worms"].total / max(1, worms_lower_bound(inst)), 2)]
        )
    emit_table(
        "E8_clustered",
        ["workload"] + [p.name for p in POLICIES] + ["worms/LB"],
        rows,
        note="the nightly-purge cluster pattern is the paper's motivating "
        "scenario; the burst row calibrates: all batching policies "
        "converge when everything targets one leaf.",
    )
    inst = clustered_purge_instance(topo, 1000, P=4, B=64, seed=5)
    benchmark(lambda: GreedyBatchPolicy().schedule(inst))
