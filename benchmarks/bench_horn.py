"""E5: Horn's algorithm — optimality for P=1 and O(n log n) scaling.

The paper notes Horn's algorithm runs in O(n log n) with a priority-queue
implementation; our pairing-heap density computation is the costly part.
The scaling rows report time per n*log2(n) unit, which should be roughly
flat (it is), and the optimality rows certify against the exact DP.
"""

from __future__ import annotations

import math
import time

from benchmarks.common import emit_table
from repro.scheduling import (
    brute_force_optimal,
    compute_horn,
    horn_schedule,
    random_outtree_instance,
    schedule_cost,
)


def test_e5_horn_optimality(benchmark):
    exact_hits = 0
    trials = 60
    for seed in range(trials):
        inst = random_outtree_instance(
            9, P=1, n_roots=2, seed=seed, zero_weight_fraction=0.25
        )
        opt, _ = brute_force_optimal(inst)
        cost = schedule_cost(inst, horn_schedule(inst))
        exact_hits += abs(cost - opt) < 1e-9
    emit_table(
        "E5_horn_optimality",
        ["trials", "optimal"],
        [[trials, exact_hits]],
        note="Horn's algorithm (density greedy) matches the exact optimum "
        "on every P=1 instance, as Lemma 10 states.",
    )
    assert exact_hits == trials
    inst = random_outtree_instance(9, P=1, seed=0)
    benchmark(lambda: horn_schedule(inst))


def test_e5_horn_scaling(benchmark):
    rows = []
    for n in (1000, 4000, 16000, 64000):
        inst = random_outtree_instance(n, P=1, n_roots=3, seed=1)
        start = time.perf_counter()
        horn = compute_horn(inst)
        horn_schedule(inst, horn)
        elapsed = time.perf_counter() - start
        rows.append(
            [n, round(elapsed * 1e3, 1), round(elapsed * 1e9 / (n * math.log2(n)), 1)]
        )
    emit_table(
        "E5_horn_scaling",
        ["n tasks", "time (ms)", "ns per n*log2(n)"],
        rows,
        note="near-constant normalized time = the advertised O(n log n).",
    )
    inst = random_outtree_instance(10000, P=1, seed=1)
    benchmark(lambda: compute_horn(inst))
