"""File-layer crash injection for execution journals.

Where :mod:`repro.faults.injector` models a faulty *machine*, this module
models a faulty *filesystem interaction*: the damage a real kill, power
cut, or bit rot leaves in an append-only journal file.  Three primitives
cover the failure modes the journal's torn-tail rule must absorb or
detect (see :mod:`repro.dam.journal`):

* :func:`truncate_at` — the file ends mid-record (process killed while
  the tail was being written);
* :func:`tear_last_record` — a short write chopped bytes off the final
  record only;
* :func:`flip_byte` — bit rot / a misdirected write damaged a byte in
  place (mid-file flips must surface as typed corruption errors, never
  as silently wrong recoveries).

All functions operate on a *copy* by default (``out=`` path), because
tests and fuzzers want to damage the same reference journal many ways;
pass ``in_place=True`` to damage the original.  :class:`CrashInjector`
wraps them with a seeded RNG for randomized crash-point sweeps.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path

import numpy as np

from repro.util.errors import InvalidInstanceError


def _materialize(path: Path, out: "Path | None", in_place: bool) -> Path:
    if in_place:
        return path
    if out is None:
        raise InvalidInstanceError(
            "crash injection needs an output path (or in_place=True)"
        )
    shutil.copyfile(path, out)
    return out


def truncate_at(
    path: "str | os.PathLike", offset: int, *,
    out: "str | os.PathLike | None" = None, in_place: bool = False,
) -> Path:
    """Cut the journal to its first ``offset`` bytes (a kill mid-append).

    ``offset`` may be any value in ``[0, filesize]`` — byte granularity
    is the point: the kill-at-any-offset property quantifies over all of
    them.  Returns the damaged file's path.
    """
    path = Path(path)
    size = path.stat().st_size
    if not (0 <= offset <= size):
        raise InvalidInstanceError(
            f"truncation offset {offset} outside file of {size} byte(s)"
        )
    target = _materialize(path, Path(out) if out is not None else None,
                          in_place)
    with open(target, "r+b") as f:
        f.truncate(offset)
    return target


def tear_last_record(
    path: "str | os.PathLike", n_bytes: int = 1, *,
    out: "str | os.PathLike | None" = None, in_place: bool = False,
) -> Path:
    """Chop ``n_bytes`` off the end of the file (a short final write)."""
    path = Path(path)
    size = path.stat().st_size
    if not (0 <= n_bytes <= size):
        raise InvalidInstanceError(
            f"cannot tear {n_bytes} byte(s) off a {size}-byte file"
        )
    return truncate_at(path, size - n_bytes, out=out, in_place=in_place)


def flip_byte(
    path: "str | os.PathLike", offset: int, *, xor: int = 0xFF,
    out: "str | os.PathLike | None" = None, in_place: bool = False,
) -> Path:
    """XOR the byte at ``offset`` with ``xor`` (bit rot in place).

    Aim it at a record's checksum bytes to exercise the corruption
    detector, or anywhere in a payload — CRC-32 catches both.
    """
    path = Path(path)
    size = path.stat().st_size
    if not (0 <= offset < size):
        raise InvalidInstanceError(
            f"flip offset {offset} outside file of {size} byte(s)"
        )
    if not (1 <= xor <= 0xFF):
        raise InvalidInstanceError(f"xor mask must be in [1, 255], got {xor}")
    target = _materialize(path, Path(out) if out is not None else None,
                          in_place)
    with open(target, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ xor]))
    return target


class CrashInjector:
    """Seeded random crash points for fuzz sweeps over one journal file.

    Each call draws independently from a deterministic stream, so a fuzz
    run is reproducible from its seed alone.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng = np.random.default_rng(np.random.SeedSequence(self.seed))

    def random_truncation(
        self, path: "str | os.PathLike", *,
        out: "str | os.PathLike | None" = None, in_place: bool = False,
    ) -> "tuple[Path, int]":
        """Truncate at a uniform random offset; returns (path, offset)."""
        size = Path(path).stat().st_size
        offset = int(self._rng.integers(0, size + 1))
        return (
            truncate_at(path, offset, out=out, in_place=in_place), offset
        )

    def random_flip(
        self, path: "str | os.PathLike", *,
        out: "str | os.PathLike | None" = None, in_place: bool = False,
    ) -> "tuple[Path, int]":
        """Flip a uniform random byte; returns (path, offset)."""
        size = Path(path).stat().st_size
        if size == 0:
            raise InvalidInstanceError("cannot flip a byte in an empty file")
        offset = int(self._rng.integers(0, size))
        xor = int(self._rng.integers(1, 256))
        return (
            flip_byte(path, offset, xor=xor, out=out, in_place=in_place),
            offset,
        )
