"""Fault injection for the DAM machine: plans, injectors, events.

The paper's guarantees assume a fault-free DAM machine — every scheduled
flush succeeds and every IO completes in its step.  This package models
the transient failures real write-optimized stores see and is consumed
by two layers:

* :func:`repro.dam.simulator.simulate` accepts an injector for
  *open-loop* replay (what happens to a fixed schedule under faults —
  it breaks, and the violation report shows how);
* :class:`repro.policies.resilient.ResilientExecutor` consults an
  injector *closed-loop* while executing, retrying and re-planning so
  the realized schedule stays valid (see ``docs/MODEL.md``).
"""

from repro.faults.bursts import (
    BurstInjector,
    BurstPlan,
    PHASE_CALM,
    PHASE_FAILED,
    PHASE_PARTIAL,
    PHASE_STALL,
)
from repro.faults.chaos import (
    CHAOS_CORRUPT,
    CHAOS_DISK_FAULT,
    CHAOS_KILL,
    CHAOS_KILL_WORKER,
    CHAOS_KINDS,
    CHAOS_STALL,
    ChaosEvent,
    ChaosInjector,
    ChaosPlan,
)
from repro.faults.crashes import (
    CrashInjector,
    flip_byte,
    tear_last_record,
    truncate_at,
)
from repro.faults.iofaults import (
    CHAOS_DISK_FAULT_SPECS,
    FaultFS,
    FaultRule,
    chaos_disk_fault_spec,
    classify_path,
    parse_plan,
    parse_rule,
)
from repro.faults.injector import (
    FaultEvent,
    FaultInjector,
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_PARTIAL,
)
from repro.faults.plan import (
    DEGRADED_P,
    FAILED_FLUSH,
    FAULT_KINDS,
    FaultPlan,
    NODE_STALL,
    PARTIAL_FLUSH,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultEvent",
    "BurstPlan",
    "BurstInjector",
    "PHASE_CALM",
    "PHASE_STALL",
    "PHASE_PARTIAL",
    "PHASE_FAILED",
    "ChaosEvent",
    "ChaosInjector",
    "ChaosPlan",
    "CHAOS_KILL",
    "CHAOS_STALL",
    "CHAOS_CORRUPT",
    "CHAOS_KILL_WORKER",
    "CHAOS_DISK_FAULT",
    "CHAOS_KINDS",
    "FaultFS",
    "FaultRule",
    "parse_plan",
    "parse_rule",
    "classify_path",
    "chaos_disk_fault_spec",
    "CHAOS_DISK_FAULT_SPECS",
    "CrashInjector",
    "truncate_at",
    "tear_last_record",
    "flip_byte",
    "FAULT_KINDS",
    "FAILED_FLUSH",
    "PARTIAL_FLUSH",
    "NODE_STALL",
    "DEGRADED_P",
    "OUTCOME_OK",
    "OUTCOME_FAILED",
    "OUTCOME_PARTIAL",
]
