"""Fault plans: which DAM faults fire, how often, for how long.

A :class:`FaultPlan` is a declarative description of the fault
environment a replay or execution runs under.  Four fault kinds model
the transient failures write-optimized stores actually see (cf. Luo &
Carey on LSM performance hiccups):

* **failed flush** — a scheduled flush silently no-ops for the step
  (lost write; the IO slot is consumed, nothing moves);
* **partial flush** — a flush applies to only a subset of its messages
  and the remainder must be redelivered (torn batch / short write);
* **node stall** — all IOs touching a node are blocked for
  ``stall_duration`` consecutive steps (compaction pause, slow disk);
* **degraded parallelism** — the machine's ``P`` drops to
  ``degraded_p_floor`` for ``degraded_p_duration`` steps (device queue
  saturation, background work stealing bandwidth).

Plans are pure data; all randomness lives in
:class:`repro.faults.injector.FaultInjector`, which derives every fault
decision deterministically from ``(seed, kind, step, coordinates)`` so
that replays are reproducible and independent of query order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import InvalidInstanceError

#: Fault kinds (also used as :class:`FaultEvent` tags).
FAILED_FLUSH = "failed_flush"
PARTIAL_FLUSH = "partial_flush"
NODE_STALL = "node_stall"
DEGRADED_P = "degraded_parallelism"
DROPPED_FLUSH = "dropped_over_capacity"

FAULT_KINDS = (FAILED_FLUSH, PARTIAL_FLUSH, NODE_STALL, DEGRADED_P)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Rates and durations for each fault kind (all rates per opportunity).

    Attributes
    ----------
    failed_flush_rate:
        Probability that an attempted flush silently no-ops.
    partial_flush_rate:
        Probability that an attempted flush of >= 2 messages delivers
        only a proper subset (single-message flushes cannot be partial;
        they fail outright or succeed).
    stall_rate:
        Per-node, per-step probability that a stall *starts* at that
        node; while stalled, every flush into or out of the node is
        blocked.
    stall_duration:
        Length of each stall window in steps.
    degraded_p_rate:
        Per-step probability that a degraded-parallelism window starts.
    degraded_p_duration:
        Length of each degraded window in steps.
    degraded_p_floor:
        The value ``P`` drops to inside a degraded window (>= 1 so the
        machine always makes progress).
    """

    failed_flush_rate: float = 0.0
    partial_flush_rate: float = 0.0
    stall_rate: float = 0.0
    stall_duration: int = 2
    degraded_p_rate: float = 0.0
    degraded_p_duration: int = 3
    degraded_p_floor: int = 1

    def __post_init__(self) -> None:
        for name in ("failed_flush_rate", "partial_flush_rate",
                     "stall_rate", "degraded_p_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise InvalidInstanceError(f"{name} must be in [0, 1], got {rate}")
        if self.failed_flush_rate + self.partial_flush_rate > 1.0:
            raise InvalidInstanceError(
                "failed_flush_rate + partial_flush_rate must be <= 1, got "
                f"{self.failed_flush_rate} + {self.partial_flush_rate}"
            )
        if self.stall_duration < 1:
            raise InvalidInstanceError(
                f"stall_duration must be >= 1, got {self.stall_duration}"
            )
        if self.degraded_p_duration < 1:
            raise InvalidInstanceError(
                f"degraded_p_duration must be >= 1, got {self.degraded_p_duration}"
            )
        if self.degraded_p_floor < 1:
            raise InvalidInstanceError(
                f"degraded_p_floor must be >= 1, got {self.degraded_p_floor}"
            )

    @property
    def is_zero(self) -> bool:
        """True iff no fault can ever fire under this plan."""
        return (
            self.failed_flush_rate == 0.0
            and self.partial_flush_rate == 0.0
            and self.stall_rate == 0.0
            and self.degraded_p_rate == 0.0
        )

    @classmethod
    def none(cls) -> "FaultPlan":
        """The fault-free plan (every injector query is a no-op)."""
        return cls()

    @classmethod
    def uniform(cls, rate: float, *, stall_duration: int = 2,
                degraded_p_duration: int = 3) -> "FaultPlan":
        """One-knob plan used by sweeps: scale every kind from ``rate``.

        Flush-level faults get the full rate (split between outright
        failures and partial deliveries); node stalls and degraded
        windows, whose blast radius is much larger, get a quarter of it.
        """
        if not (0.0 <= rate <= 1.0):
            raise InvalidInstanceError(f"rate must be in [0, 1], got {rate}")
        return cls(
            failed_flush_rate=rate / 2,
            partial_flush_rate=rate / 2,
            stall_rate=rate / 4,
            stall_duration=stall_duration,
            degraded_p_rate=rate / 4,
            degraded_p_duration=degraded_p_duration,
        )
