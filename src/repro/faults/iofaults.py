"""Syscall-level I/O fault injection: the errfs-style ``FaultFS`` shim.

Where :mod:`repro.faults.crashes` damages files *at rest* (truncate,
flip) and chaos kills whole shards, this module makes the disk lie
while the process lives: a :class:`FaultFS` handle substituted for
:data:`repro.util.fsio.REAL_FS` raises ``EIO``, raises ``ENOSPC``,
silently writes short, fails ``fsync``, or sleeps — at exact,
deterministic operation indices, scoped by what kind of file the
operation touches.

Fault plans are written in a tiny DSL, one rule per clause::

    op ":" class ":" kind ["@" index ["x" count]]

    op     open | read | write | fsync | fsync-dir | replace |
           unlink | truncate | *
    class  wal | sstable | manifest | journal | *
    kind   eio | enospc | short | slow | fsync-fail
    index  0-based index of the first faulted operation, counted
           per (op, class); omitted = 0
    count  how many consecutive operations fault; 0 = every one from
           ``index`` on; omitted = 1 (omitting ``@index`` entirely
           means "@0x0": every matching operation)

Examples: ``write:wal:enospc@3`` (the 4th WAL write fails with
``ENOSPC``), ``fsync-fail:manifest`` (every manifest fsync fails),
``read:sstable:eio@0x2`` (the first two SSTable block reads error).
``fsync-fail`` is sugar for ``kind=eio`` pinned to ``op=fsync``.

Determinism: a ``FaultFS`` is a pure function of its rules and the
sequence of operations the program performs — per-(op, class) counters,
no clocks, no RNG — so the same seeded run faults at the same syscall
every time.  Fault-free code paths never see the shim at all: handles
default to :data:`~repro.util.fsio.REAL_FS` (see
:mod:`repro.util.fsio`).
"""

from __future__ import annotations

import errno
import os
import time
from dataclasses import dataclass

from repro.util.atomic import TMP_INFIX
from repro.util.errors import InvalidInstanceError
from repro.util.fsio import (
    REAL_FS,
    RealFS,
    current_fs,
    install,
    installed,
    resolve,
)

#: Path classes a rule can scope to (plus the ``*`` wildcard).
CLASS_WAL = "wal"
CLASS_SSTABLE = "sstable"
CLASS_MANIFEST = "manifest"
CLASS_JOURNAL = "journal"
PATH_CLASSES = (CLASS_WAL, CLASS_SSTABLE, CLASS_MANIFEST, CLASS_JOURNAL)

#: Operations a rule can scope to (plus the ``*`` wildcard).
OP_OPEN = "open"
OP_READ = "read"
OP_WRITE = "write"
OP_FSYNC = "fsync"
OP_FSYNC_DIR = "fsync-dir"
OP_REPLACE = "replace"
OP_UNLINK = "unlink"
OP_TRUNCATE = "truncate"
IO_OPS = (OP_OPEN, OP_READ, OP_WRITE, OP_FSYNC, OP_FSYNC_DIR,
          OP_REPLACE, OP_UNLINK, OP_TRUNCATE)

#: Fault kinds (``fsync-fail`` normalizes to ``eio`` on ``fsync``).
KIND_EIO = "eio"
KIND_ENOSPC = "enospc"
KIND_SHORT = "short"
KIND_SLOW = "slow"
IO_FAULT_KINDS = (KIND_EIO, KIND_ENOSPC, KIND_SHORT, KIND_SLOW)

#: The menu a chaos ``disk-fault`` event draws its plan from.  Order is
#: part of the determinism contract: event spec = menu[draw % len].
CHAOS_DISK_FAULT_SPECS = (
    "write:wal:enospc",
    "fsync:wal:eio",
    "read:sstable:eio",
    "write:sstable:enospc",
    "fsync-dir:manifest:eio",
)


def classify_path(path) -> str:
    """The path class of ``path`` (final filename decides).

    Temporary names from the atomic-rename protocol classify as their
    destination (``MANIFEST.tmp-123`` is a manifest write, not a
    journal one).  Anything that is not a WAL generation, an SSTable,
    or the manifest — execution journals, store directories, probe
    files — falls into the ``journal`` class.
    """
    name = os.path.basename(os.fspath(path))
    cut = name.find(TMP_INFIX)
    if cut != -1:
        name = name[:cut]
    if name.startswith("wal-") and name.endswith(".log"):
        return CLASS_WAL
    if name.startswith("sst-") and name.endswith(".sst"):
        return CLASS_SSTABLE
    if name == "MANIFEST":
        return CLASS_MANIFEST
    return CLASS_JOURNAL


@dataclass(frozen=True)
class FaultRule:
    """One clause of a fault plan (see the module DSL)."""

    op: str
    path_class: str
    kind: str
    index: int = 0
    count: int = 0
    #: seconds a ``slow`` rule sleeps (wall-clock only; never bytes).
    delay: float = 0.005

    def __post_init__(self) -> None:
        if self.op not in IO_OPS and self.op != "*":
            raise InvalidInstanceError(
                f"unknown io op {self.op!r}; pick one of {IO_OPS} or '*'"
            )
        if self.path_class not in PATH_CLASSES and self.path_class != "*":
            raise InvalidInstanceError(
                f"unknown path class {self.path_class!r}; "
                f"pick one of {PATH_CLASSES} or '*'"
            )
        if self.kind not in IO_FAULT_KINDS:
            raise InvalidInstanceError(
                f"unknown fault kind {self.kind!r}; "
                f"pick one of {IO_FAULT_KINDS}"
            )
        if self.index < 0 or self.count < 0:
            raise InvalidInstanceError(
                f"index/count must be >= 0, got @{self.index}x{self.count}"
            )

    def to_spec(self) -> str:
        """The DSL clause this rule round-trips through."""
        return (f"{self.op}:{self.path_class}:{self.kind}"
                f"@{self.index}x{self.count}")


def parse_rule(clause: str) -> FaultRule:
    """One DSL clause -> :class:`FaultRule`."""
    parts = clause.strip().split(":")
    if len(parts) == 2 and parts[0] == "fsync-fail":
        # Shorthand without an op: "fsync-fail:wal[@i[xN]]".
        parts = ["fsync", parts[1], "fsync-fail"]
    if len(parts) != 3:
        raise InvalidInstanceError(
            f"bad fault clause {clause!r}; expected op:class:kind[@i[xN]]"
        )
    op, cls, tail = parts
    index, count = 0, 0
    if "@" in tail:
        kind, _, pos = tail.partition("@")
        idx_s, _, cnt_s = pos.partition("x")
        try:
            index = int(idx_s)
            count = int(cnt_s) if cnt_s else 1
        except ValueError:
            raise InvalidInstanceError(
                f"bad fault position {pos!r} in {clause!r}"
            ) from None
    else:
        kind = tail
    if kind == "fsync-fail":
        if op not in ("*", OP_FSYNC, OP_FSYNC_DIR):
            raise InvalidInstanceError(
                f"fsync-fail applies to fsync ops, not {op!r}"
            )
        kind = KIND_EIO
        if op == "*":
            op = OP_FSYNC
    return FaultRule(op=op, path_class=cls, kind=kind,
                     index=index, count=count)


def parse_plan(spec: str) -> "tuple[FaultRule, ...]":
    """A comma-separated plan spec -> rules (empty spec -> no rules)."""
    return tuple(
        parse_rule(clause)
        for clause in spec.split(",") if clause.strip()
    )


class FaultFS(RealFS):
    """A filesystem handle that injects faults per a deterministic plan.

    Every operation first classifies its path, bumps the per-(op,
    class) counter, and checks the rules; unmatched operations fall
    through to the real OS call.  Matched operations raise
    ``OSError(EIO)``/``OSError(ENOSPC)``, silently write/read short
    (half the bytes — the CRC layers catch it later), or sleep.

    The instance records what it did: :attr:`fired` is the ordered log
    of injected faults, :attr:`counters` the operation census — both
    are what the fuzz sweeps and the chaos drills assert against.
    ``armed=False`` (or :meth:`disarm`) turns the shim into a pure
    pass-through counter.
    """

    def __init__(self, rules="", *, armed: bool = True) -> None:
        if isinstance(rules, str):
            rules = parse_plan(rules)
        self.rules: "tuple[FaultRule, ...]" = tuple(rules)
        self.armed = armed
        #: (op, class) -> operations seen (matched or not).
        self.counters: "dict[tuple[str, str], int]" = {}
        #: ordered log of injected faults.
        self.fired: "list[dict]" = []

    def to_spec(self) -> str:
        """The full plan as a DSL string (round-trips)."""
        return ",".join(r.to_spec() for r in self.rules)

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def reset(self) -> None:
        """Clear counters and the fired log (rules stay)."""
        self.counters.clear()
        self.fired.clear()

    # -- matching ----------------------------------------------------

    def _match(self, op: str, path, *, of=None) -> "FaultRule | None":
        cls = classify_path(path if of is None else of)
        key = (op, cls)
        i = self.counters.get(key, 0)
        self.counters[key] = i + 1
        if not self.armed:
            return None
        for rule in self.rules:
            if rule.op != op and rule.op != "*":
                continue
            if rule.path_class != cls and rule.path_class != "*":
                continue
            if i < rule.index:
                continue
            if rule.count and i >= rule.index + rule.count:
                continue
            self.fired.append({
                "op": op, "class": cls, "kind": rule.kind,
                "path": str(path), "index": i,
            })
            return rule
        return None

    def _raise(self, rule: FaultRule, path) -> None:
        """Raise the rule's error (``short`` escalates to ``EIO`` on
        operations that have no short form)."""
        if rule.kind == KIND_ENOSPC:
            raise OSError(errno.ENOSPC, "injected ENOSPC", str(path))
        raise OSError(errno.EIO, "injected EIO", str(path))

    # -- operations --------------------------------------------------

    def open(self, path, mode: str = "rb"):
        rule = self._match(OP_OPEN, path)
        if rule is not None:
            if rule.kind == KIND_SLOW:
                time.sleep(rule.delay)
            else:
                self._raise(rule, path)
        return open(path, mode)

    def read(self, f, n: int = -1) -> bytes:
        rule = self._match(OP_READ, f.name)
        if rule is not None:
            if rule.kind == KIND_SLOW:
                time.sleep(rule.delay)
            elif rule.kind == KIND_SHORT:
                data = f.read(n)
                return data[: len(data) // 2]
            else:
                self._raise(rule, f.name)
        return f.read(n)

    def read_bytes(self, path) -> bytes:
        rule = self._match(OP_READ, path)
        if rule is not None:
            if rule.kind == KIND_SLOW:
                time.sleep(rule.delay)
            elif rule.kind == KIND_SHORT:
                with open(path, "rb") as f:
                    data = f.read()
                return data[: len(data) // 2]
            else:
                self._raise(rule, path)
        with open(path, "rb") as f:
            return f.read()

    def write(self, f, data: bytes) -> int:
        rule = self._match(OP_WRITE, f.name)
        if rule is not None:
            if rule.kind == KIND_SLOW:
                time.sleep(rule.delay)
            elif rule.kind == KIND_SHORT:
                # The lying disk: accept half the bytes, report success.
                return f.write(data[: len(data) // 2])
            else:
                self._raise(rule, f.name)
        return f.write(data)

    def fsync(self, f) -> None:
        rule = self._match(OP_FSYNC, f.name)
        if rule is not None:
            if rule.kind == KIND_SLOW:
                time.sleep(rule.delay)
            else:
                self._raise(rule, f.name)
        os.fsync(f.fileno())

    def truncate(self, f, length: int) -> None:
        rule = self._match(OP_TRUNCATE, f.name)
        if rule is not None:
            if rule.kind == KIND_SLOW:
                time.sleep(rule.delay)
            else:
                self._raise(rule, f.name)
        f.truncate(length)

    def replace(self, src, dst) -> None:
        rule = self._match(OP_REPLACE, dst)
        if rule is not None:
            if rule.kind == KIND_SLOW:
                time.sleep(rule.delay)
            else:
                self._raise(rule, dst)
        os.replace(src, dst)

    def unlink(self, path) -> None:
        rule = self._match(OP_UNLINK, path)
        if rule is not None:
            if rule.kind == KIND_SLOW:
                time.sleep(rule.delay)
            else:
                self._raise(rule, path)
        os.unlink(path)

    def fsync_dir(self, path, *, of=None) -> None:
        rule = self._match(OP_FSYNC_DIR, path, of=of)
        if rule is not None:
            if rule.kind == KIND_SLOW:
                time.sleep(rule.delay)
            else:
                self._raise(rule, path)
        super().fsync_dir(path, of=of)


def chaos_disk_fault_spec(draw: int) -> str:
    """The plan spec a chaos ``disk-fault`` event with ``draw`` uses."""
    return CHAOS_DISK_FAULT_SPECS[draw % len(CHAOS_DISK_FAULT_SPECS)]


__all__ = [
    "FaultFS",
    "FaultRule",
    "parse_plan",
    "parse_rule",
    "classify_path",
    "chaos_disk_fault_spec",
    "CHAOS_DISK_FAULT_SPECS",
    "PATH_CLASSES",
    "IO_OPS",
    "IO_FAULT_KINDS",
    "CLASS_WAL",
    "CLASS_SSTABLE",
    "CLASS_MANIFEST",
    "CLASS_JOURNAL",
    "OP_OPEN",
    "OP_READ",
    "OP_WRITE",
    "OP_FSYNC",
    "OP_FSYNC_DIR",
    "OP_REPLACE",
    "OP_UNLINK",
    "OP_TRUNCATE",
    "KIND_EIO",
    "KIND_ENOSPC",
    "KIND_SHORT",
    "KIND_SLOW",
    # re-exported fs-handle seam (canonical home: repro.util.fsio)
    "RealFS",
    "REAL_FS",
    "current_fs",
    "install",
    "installed",
    "resolve",
]
