"""Deterministic fault injection for DAM replays and executors.

The injector answers three questions the execution stack asks every
step — how many IO slots survive (:meth:`FaultInjector.effective_p`),
which nodes are frozen (:meth:`FaultInjector.is_stalled`), and what a
given flush attempt actually does (:meth:`FaultInjector.flush_outcome`).

Every answer is a pure function of ``(seed, fault kind, step,
coordinates)``: each decision draws from a generator seeded by a
:class:`numpy.random.SeedSequence` whose ``spawn_key`` encodes the
event's coordinates.  Two consequences the rest of the stack relies on:

* **replay stability** — the same plan + seed produces the same fault
  pattern no matter how many times, or in what order, the injector is
  queried (the simulator and the resilient executor can disagree about
  *when* they ask without disagreeing about *what* happens);
* **retry independence** — a flush retried at a later step is a new
  event (different step coordinate) and re-rolls its fate, which is what
  makes bounded retry meaningful.

Injected faults are recorded as :class:`FaultEvent` values on
``injector.events`` (deduplicated for window-style faults) so reports
can show what actually fired.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.plan import (
    DEGRADED_P,
    FAILED_FLUSH,
    FaultPlan,
    NODE_STALL,
    PARTIAL_FLUSH,
)

#: ``flush_outcome`` statuses.
OUTCOME_OK = "ok"
OUTCOME_FAILED = "failed"
OUTCOME_PARTIAL = "partial"

#: Stable small integers namespacing the per-kind random streams.
_KIND_IDS = {
    FAILED_FLUSH: 1,  # shared with PARTIAL_FLUSH: one draw decides both
    NODE_STALL: 2,
    DEGRADED_P: 3,
}


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One fault that actually fired during a replay/execution."""

    kind: str
    step: int
    node: int = -1
    detail: str = ""

    def __repr__(self) -> str:
        where = f" node={self.node}" if self.node >= 0 else ""
        return f"FaultEvent({self.kind}, t={self.step}{where}: {self.detail})"


class FaultInjector:
    """Stateless fault decisions + a log of the faults that fired.

    One injector instance may be shared across replays of the same run;
    ``events`` accumulates (deduplicated) and can be cleared between
    replays with :meth:`reset_events`.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = int(seed)
        self.events: list[FaultEvent] = []
        self._logged: set[tuple] = set()
        # Memoized uniforms: each (kind, coords) draw is a pure function
        # of the seed, so caching changes nothing about the fault pattern
        # but removes the dominant cost of hot-loop queries (constructing
        # a numpy Generator per draw is ~25us; a dict hit is ~40ns).
        self._uniforms: dict[tuple, float] = {}

    @property
    def is_zero_plan(self) -> bool:
        """True iff no fault can ever fire (executors may skip all queries).

        Subclasses with extra fault sources (e.g. the burst chain)
        override this; the executors consult it instead of reaching into
        ``plan.is_zero`` directly.
        """
        return self.plan.is_zero

    def reset_events(self) -> None:
        """Clear the fault log (decisions are unaffected — they are pure)."""
        self.events.clear()
        self._logged.clear()

    # ------------------------------------------------------------------
    # Deterministic per-event randomness
    # ------------------------------------------------------------------
    def _rng(self, kind: str, *coords: int) -> np.random.Generator:
        key = (_KIND_IDS[kind],) + tuple(int(c) & 0xFFFFFFFF for c in coords)
        return np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=key)
        )

    def _uniform(self, kind: str, *coords: int) -> float:
        """The (memoized) uniform [0, 1) draw for one fault opportunity."""
        key = (kind,) + coords
        u = self._uniforms.get(key)
        if u is None:
            u = float(self._rng(kind, *coords).random())
            self._uniforms[key] = u
        return u

    def _log(self, event: FaultEvent, dedup_key: tuple) -> None:
        if dedup_key not in self._logged:
            self._logged.add(dedup_key)
            self.events.append(event)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def effective_p(self, t: int, P: int) -> int:
        """IO slots available at step ``t`` (``P`` outside degraded windows)."""
        plan = self.plan
        if plan.degraded_p_rate == 0.0:
            return P
        lo = max(1, t - plan.degraded_p_duration + 1)
        for t0 in range(lo, t + 1):
            if self._uniform(DEGRADED_P, t0) < plan.degraded_p_rate:
                eff = min(P, plan.degraded_p_floor)
                self._log(
                    FaultEvent(
                        DEGRADED_P,
                        t0,
                        detail=(
                            f"P={P} -> {eff} for "
                            f"{plan.degraded_p_duration} step(s)"
                        ),
                    ),
                    (DEGRADED_P, t0),
                )
                return eff
        return P

    def is_stalled(self, t: int, node: int) -> bool:
        """True iff ``node``'s IOs are blocked at step ``t``."""
        plan = self.plan
        if plan.stall_rate == 0.0:
            return False
        lo = max(1, t - plan.stall_duration + 1)
        for t0 in range(lo, t + 1):
            if self._uniform(NODE_STALL, t0, node) < plan.stall_rate:
                self._log(
                    FaultEvent(
                        NODE_STALL,
                        t0,
                        node=node,
                        detail=f"stalled for {plan.stall_duration} step(s)",
                    ),
                    (NODE_STALL, t0, node),
                )
                return True
        return False

    def stall_window_end(self, t: int, node: int) -> "int | None":
        """Last step of the stall window covering ``(t, node)``, or None.

        Fault-aware admission (:class:`~repro.policies.resilient.
        ResilientExecutor` with ``fault_aware=True``) uses this to model
        an operator who, on observing a stall, knows the device's pause
        duration and parks work on that node until the window closes
        instead of re-probing it every step.
        """
        plan = self.plan
        if plan.stall_rate == 0.0:
            return None
        end = None
        lo = max(1, t - plan.stall_duration + 1)
        for t0 in range(lo, t + 1):
            if self._uniform(NODE_STALL, t0, node) < plan.stall_rate:
                window_end = t0 + plan.stall_duration - 1
                if end is None or window_end > end:
                    end = window_end
        return end

    def flush_outcome(
        self, t: int, src: int, dest: int, messages: "tuple[int, ...]"
    ) -> "tuple[str, tuple[int, ...]]":
        """Fate of a flush attempted at step ``t``.

        Returns ``(status, delivered)``: ``("ok", messages)``,
        ``("failed", ())``, or ``("partial", subset)`` with a nonempty
        proper subset that was delivered (the caller must redeliver the
        rest).  A single-message flush is never partial.
        """
        plan = self.plan
        if plan.failed_flush_rate == 0.0 and plan.partial_flush_rate == 0.0:
            return OUTCOME_OK, messages
        coords = (t, src, dest, min(messages, default=0))
        u = self._uniform(FAILED_FLUSH, *coords)
        if u < plan.failed_flush_rate:
            self._log(
                FaultEvent(
                    FAILED_FLUSH,
                    t,
                    node=src,
                    detail=f"flush {src}->{dest} ({len(messages)} msgs) no-oped",
                ),
                (FAILED_FLUSH, t, src, dest),
            )
            return OUTCOME_FAILED, ()
        if (
            u < plan.failed_flush_rate + plan.partial_flush_rate
            and len(messages) >= 2
        ):
            # Partial outcomes need the generator itself for the subset
            # draws; re-create it and burn the uniform already consumed
            # via the memo so the stream position (and thus the chosen
            # subset) is byte-identical to the unmemoized implementation.
            rng = self._rng(FAILED_FLUSH, *coords)
            rng.random()
            k = int(rng.integers(1, len(messages)))
            picked = rng.choice(len(messages), size=k, replace=False)
            delivered = tuple(sorted(messages[i] for i in picked))
            self._log(
                FaultEvent(
                    PARTIAL_FLUSH,
                    t,
                    node=src,
                    detail=(
                        f"flush {src}->{dest} delivered {k}/{len(messages)} msgs"
                    ),
                ),
                (PARTIAL_FLUSH, t, src, dest),
            )
            return OUTCOME_PARTIAL, delivered
        return OUTCOME_OK, messages

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.seed}, plan={self.plan!r}, "
            f"{len(self.events)} event(s) fired)"
        )
