"""Markov-modulated correlated fault bursts on tree subtrees.

The base :class:`~repro.faults.injector.FaultInjector` draws every fault
independently per coordinate, but real devices fail in *bursts*: a slow
disk first stalls, then starts tearing batches, then drops writes — and
the blast radius is a physical neighbourhood (here: a subtree), not
scattered coordinates (cf. Luo & Carey on correlated LSM write stalls).

:class:`BurstInjector` layers a hidden Markov chain over the base
injector.  The chain has four phases, each lasting
``BurstPlan.phase_duration`` steps::

    calm --burst_rate--> stall --escalation--> partial --escalation--> failed
      ^                    |                      |                       |
      +---- (1-escalation) +--- (1-escalation) --+----------- always ----+

At burst start a subtree root is drawn; for the lifetime of the burst
every fault the chain emits targets that subtree only:

* **stall phase** — every node in the subtree is stalled;
* **partial phase** — flushes touching the subtree tear
  (``partial_rate`` per attempt);
* **failed phase** — flushes touching the subtree no-op
  (``failed_rate`` per attempt).

The chain is evaluated lazily from the seed alone and memoized per step,
so burst decisions inherit the base injector's replay stability: the
same plan + seed produce the same burst timeline regardless of query
order, and retried flushes re-roll only their own outcome draw, never
the phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.injector import (
    FaultEvent,
    FaultInjector,
    OUTCOME_FAILED,
    OUTCOME_PARTIAL,
    OUTCOME_OK,
    _KIND_IDS,
)
from repro.faults.plan import FaultPlan
from repro.tree.topology import TreeTopology
from repro.util.errors import InvalidInstanceError

#: Burst phases (and the FaultEvent kinds burst activity is logged under).
PHASE_CALM = "calm"
PHASE_STALL = "burst_stall"
PHASE_PARTIAL = "burst_partial"
PHASE_FAILED = "burst_failed"

_ESCALATION = {PHASE_STALL: PHASE_PARTIAL, PHASE_PARTIAL: PHASE_FAILED}

#: Private random-stream namespaces for the chain (see injector._KIND_IDS).
_BURST_CHAIN = "burst_chain"
_BURST_NODE = "burst_node"
_BURST_OUTCOME = "burst_outcome"
_KIND_IDS.setdefault(_BURST_CHAIN, 4)
_KIND_IDS.setdefault(_BURST_NODE, 5)
_KIND_IDS.setdefault(_BURST_OUTCOME, 6)


@dataclass(frozen=True, slots=True)
class BurstPlan:
    """Parameters of the burst chain (pure data, like :class:`FaultPlan`).

    Attributes
    ----------
    burst_rate:
        Per-step probability that a burst starts while the chain is calm.
    escalation:
        Probability that a finishing phase escalates to the next one
        (stall -> partial -> failed) instead of returning to calm.
    phase_duration:
        Steps each phase lasts before the chain transitions.
    partial_rate:
        Per-attempt tear probability for flushes touching the burst
        subtree during the partial phase.
    failed_rate:
        Per-attempt no-op probability for flushes touching the burst
        subtree during the failed phase.
    """

    burst_rate: float = 0.0
    escalation: float = 0.6
    phase_duration: int = 3
    partial_rate: float = 0.9
    failed_rate: float = 0.9

    def __post_init__(self) -> None:
        for name in ("burst_rate", "escalation", "partial_rate",
                     "failed_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise InvalidInstanceError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if self.phase_duration < 1:
            raise InvalidInstanceError(
                f"phase_duration must be >= 1, got {self.phase_duration}"
            )

    @property
    def is_zero(self) -> bool:
        """True iff the chain can never leave the calm phase."""
        return self.burst_rate == 0.0

    @classmethod
    def from_rate(cls, rate: float, *, phase_duration: int = 3) -> "BurstPlan":
        """One-knob plan for sweeps: comparable pressure to the iid plans.

        A burst window has a much larger blast radius than one iid fault,
        so the start rate gets a quarter of ``rate`` (mirroring how
        :meth:`FaultPlan.uniform` discounts stalls), while escalation
        scales with ``rate`` so higher pressure also means deeper
        stall -> partial -> failed cascades.
        """
        if not (0.0 <= rate <= 1.0):
            raise InvalidInstanceError(f"rate must be in [0, 1], got {rate}")
        return cls(
            burst_rate=rate / 4,
            escalation=min(1.0, 0.4 + rate),
            phase_duration=phase_duration,
        )


class BurstInjector(FaultInjector):
    """Base iid faults + a Markov burst chain over one subtree at a time.

    Parameters
    ----------
    plan:
        Base iid fault plan (may be :meth:`FaultPlan.none` for
        bursts-only injection).
    bursts:
        The :class:`BurstPlan` driving the chain.
    topology:
        Tree the burst subtrees are drawn from.
    seed:
        Shared seed for the base injector and the chain.
    """

    def __init__(
        self,
        plan: FaultPlan,
        bursts: BurstPlan,
        topology: TreeTopology,
        seed: int = 0,
    ) -> None:
        super().__init__(plan, seed)
        self.bursts = bursts
        self.topology = topology
        #: _phases[t - 1] = (phase, subtree_root) at step t; grown lazily.
        self._phases: list[tuple[str, int]] = []
        #: _ages[t - 1] = steps the phase at t has been running, inclusive.
        self._ages: list[int] = []
        self._member_cache: dict[tuple[int, int], bool] = {}

    @property
    def is_zero_plan(self) -> bool:
        """True iff neither the base plan nor the chain can ever fire."""
        return self.plan.is_zero and self.bursts.is_zero

    # ------------------------------------------------------------------
    # The chain
    # ------------------------------------------------------------------
    def phase_at(self, t: int) -> "tuple[str, int]":
        """``(phase, subtree_root)`` at step ``t`` (root is -1 while calm)."""
        if t < 1:
            return PHASE_CALM, -1
        bp = self.bursts
        if bp.is_zero:
            return PHASE_CALM, -1
        while len(self._phases) < t:
            step = len(self._phases) + 1
            if not self._phases:
                prev, node, age = PHASE_CALM, -1, 0
            else:
                prev, node = self._phases[-1]
                age = self._ages[-1]
            if prev == PHASE_CALM:
                if self._uniform(_BURST_CHAIN, step) < bp.burst_rate:
                    node = self._pick_subtree(step)
                    self._append_phase(PHASE_STALL, node, 1)
                    self._log(
                        FaultEvent(
                            PHASE_STALL, step, node=node,
                            detail=(
                                f"burst begins on subtree({node}) for "
                                f"{bp.phase_duration} step(s)"
                            ),
                        ),
                        (PHASE_STALL, step, node),
                    )
                else:
                    self._append_phase(PHASE_CALM, -1, 1)
            elif age < bp.phase_duration:
                self._append_phase(prev, node, age + 1)
            else:
                nxt = _ESCALATION.get(prev)
                if nxt is not None and (
                    self._uniform(_BURST_CHAIN, step) < bp.escalation
                ):
                    self._append_phase(nxt, node, 1)
                    self._log(
                        FaultEvent(
                            nxt, step, node=node,
                            detail=(
                                f"burst escalates on subtree({node}) for "
                                f"{bp.phase_duration} step(s)"
                            ),
                        ),
                        (nxt, step, node),
                    )
                else:
                    self._append_phase(PHASE_CALM, -1, 1)
        return self._phases[t - 1]

    def _append_phase(self, phase: str, node: int, age: int) -> None:
        self._phases.append((phase, node))
        self._ages.append(age)

    def _pick_subtree(self, step: int) -> int:
        """Draw the burst's subtree root (any non-root node)."""
        topo = self.topology
        n = topo.n_nodes
        if n <= 1:
            return topo.root
        rng = self._rng(_BURST_NODE, step)
        node = int(rng.integers(0, n - 1))
        # Skip the root: a whole-tree burst would just be a global stall.
        return node + 1 if node >= topo.root else node

    def _in_burst(self, node: int, burst_root: int) -> bool:
        key = (node, burst_root)
        hit = self._member_cache.get(key)
        if hit is None:
            hit = self.topology.is_descendant(node, burst_root)
            self._member_cache[key] = hit
        return hit

    # ------------------------------------------------------------------
    # Overridden queries: chain first, base plan second
    # ------------------------------------------------------------------
    def is_stalled(self, t: int, node: int) -> bool:
        phase, root = self.phase_at(t)
        if phase == PHASE_STALL and self._in_burst(node, root):
            return True
        return super().is_stalled(t, node)

    def stall_window_end(self, t: int, node: int) -> "int | None":
        end = super().stall_window_end(t, node)
        phase, root = self.phase_at(t)
        if phase == PHASE_STALL and self._in_burst(node, root):
            # The stall phase runs at least to the end of its block; the
            # conservative bound is the current step's phase extent.
            step = t
            while self.phase_at(step + 1) == (PHASE_STALL, root):
                step += 1
            if end is None or step > end:
                end = step
        return end

    def flush_outcome(
        self, t: int, src: int, dest: int, messages: "tuple[int, ...]"
    ) -> "tuple[str, tuple[int, ...]]":
        phase, root = self.phase_at(t)
        if phase in (PHASE_PARTIAL, PHASE_FAILED) and (
            self._in_burst(src, root) or self._in_burst(dest, root)
        ):
            bp = self.bursts
            coords = (t, src, dest, min(messages, default=0))
            u = self._uniform(_BURST_OUTCOME, *coords)
            if phase == PHASE_FAILED and u < bp.failed_rate:
                self._log(
                    FaultEvent(
                        PHASE_FAILED, t, node=src,
                        detail=(
                            f"flush {src}->{dest} ({len(messages)} msgs) "
                            f"no-oped inside burst(subtree {root})"
                        ),
                    ),
                    (PHASE_FAILED, t, src, dest),
                )
                return OUTCOME_FAILED, ()
            if (
                phase == PHASE_PARTIAL
                and u < bp.partial_rate
                and len(messages) >= 2
            ):
                rng = self._rng(_BURST_OUTCOME, *coords)
                rng.random()  # burn the memoized deciding uniform
                k = int(rng.integers(1, len(messages)))
                picked = rng.choice(len(messages), size=k, replace=False)
                delivered = tuple(sorted(messages[i] for i in picked))
                self._log(
                    FaultEvent(
                        PHASE_PARTIAL, t, node=src,
                        detail=(
                            f"flush {src}->{dest} delivered "
                            f"{k}/{len(messages)} msgs inside "
                            f"burst(subtree {root})"
                        ),
                    ),
                    (PHASE_PARTIAL, t, src, dest),
                )
                return OUTCOME_PARTIAL, delivered
            return OUTCOME_OK, messages
        return super().flush_outcome(t, src, dest, messages)

    def __repr__(self) -> str:
        return (
            f"BurstInjector(seed={self.seed}, plan={self.plan!r}, "
            f"bursts={self.bursts!r}, {len(self.events)} event(s) fired)"
        )
