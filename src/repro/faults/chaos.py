"""Whole-shard chaos scenarios for the supervised serving loop.

The iid injector (:mod:`repro.faults.injector`) and the burst chain
(:mod:`repro.faults.bursts`) model *device*-granularity trouble: a node
stalls, a flush tears.  Supervision needs the next blast radius up — a
whole shard wedging, dying, or corrupting its journal — which is what a
chaos drill exercises.  This module composes the existing injectors into
that shape:

* :class:`ChaosPlan` — a deterministic timeline of :class:`ChaosEvent`
  values (``kill`` / ``stall`` / ``corrupt``, each aimed at one shard at
  one step), drawn once from a seed by :meth:`ChaosPlan.draw` and
  JSON-round-trippable so a supervised journal can embed the scenario in
  its ``meta`` and recovery can re-derive the identical run;
* :class:`ChaosInjector` — a per-shard fault injector that layers the
  plan's whole-shard stall windows over any base injector: during a
  window *every* node of the shard is stalled (the signature the
  supervisor's heartbeats classify as a stalled epoch), outside it the
  base injector answers unchanged.

``kill`` and ``corrupt`` events are *not* injector queries — the
supervised loop applies them directly (wiping the shard engine,
poisoning its restart source) because they model failures of the machine
running the shard, not of the shard's IOs.  The injector only carries
the stall windows, which is what keeps every chaos decision a pure
function of ``(seed, step, shard)`` with the same replay stability as
the rest of the fault stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.injector import (
    FaultEvent,
    FaultInjector,
    OUTCOME_FAILED,
    _KIND_IDS,
)
from repro.faults.plan import FaultPlan
from repro.util.errors import InvalidInstanceError

#: Chaos event kinds.
CHAOS_KILL = "kill"
CHAOS_STALL = "stall"
CHAOS_CORRUPT = "corrupt"
#: Kill the worker *process* hosting the shard (a real SIGKILL under the
#: multi-process driver; thread/sequential drivers degrade it to a
#: simulated ``kill``).  Appended last so the sort index of the original
#: kinds — and therefore every existing drill's event order — is stable.
CHAOS_KILL_WORKER = "kill-worker"
#: Open a syscall-level I/O fault window over the shard's durable store:
#: a :class:`~repro.faults.iofaults.FaultFS` armed with ``spec`` is
#: installed for ``duration`` steps, then removed.  Appended last (same
#: sort-index stability argument as ``kill-worker``).
CHAOS_DISK_FAULT = "disk-fault"
CHAOS_KINDS = (
    CHAOS_KILL, CHAOS_STALL, CHAOS_CORRUPT, CHAOS_KILL_WORKER,
    CHAOS_DISK_FAULT,
)

#: FaultEvent kind for a whole-shard stall window (see _KIND_IDS).
_CHAOS_STALL_EVENT = "chaos_stall"
_KIND_IDS.setdefault(_CHAOS_STALL_EVENT, 7)


@dataclass(frozen=True, slots=True)
class ChaosEvent:
    """One scheduled shard-level failure.

    Attributes
    ----------
    step:
        1-based DAM step at which the event fires.
    kind:
        ``kill`` (the shard loses all in-memory state and must restart
        from its journal), ``stall`` (every node of the shard freezes
        for ``duration`` steps), ``corrupt`` (the shard's restart
        source is poisoned, so the next restart attempt raises a typed
        :class:`~repro.util.errors.JournalCorruptionError`),
        ``kill-worker`` (the OS process hosting the shard is SIGKILLed;
        under a threads-only driver this degrades to ``kill``), or
        ``disk-fault`` (the shard's durable store sees injected syscall
        faults — ``spec`` is a :mod:`repro.faults.iofaults` plan — for
        ``duration`` steps).
    shard:
        Target shard id.
    duration:
        Window length in steps (meaningful for ``stall`` and
        ``disk-fault``; 0 otherwise).
    spec:
        Fault-plan DSL string (``disk-fault`` only; empty otherwise).
    """

    step: int
    kind: str
    shard: int
    duration: int = 0
    spec: str = ""

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise InvalidInstanceError(
                f"unknown chaos event kind {self.kind!r}"
            )
        if self.step < 1:
            raise InvalidInstanceError(
                f"chaos events fire at steps >= 1, got {self.step}"
            )
        if self.shard < 0:
            raise InvalidInstanceError(
                f"shard must be >= 0, got {self.shard}"
            )
        if self.kind == CHAOS_STALL and self.duration < 1:
            raise InvalidInstanceError(
                f"stall events need duration >= 1, got {self.duration}"
            )
        if self.kind == CHAOS_DISK_FAULT:
            if self.duration < 1:
                raise InvalidInstanceError(
                    "disk-fault events need duration >= 1, got "
                    f"{self.duration}"
                )
            if not self.spec:
                raise InvalidInstanceError(
                    "disk-fault events need a fault-plan spec"
                )
            # Parse eagerly so a bad plan fails at draw/load time, not
            # mid-drill.  Local import: iofaults is dependency-free.
            from repro.faults.iofaults import parse_plan

            parse_plan(self.spec)
        elif self.spec:
            raise InvalidInstanceError(
                f"{self.kind} events carry no fault-plan spec"
            )


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic, JSON-round-trippable chaos timeline."""

    events: "tuple[ChaosEvent, ...]" = ()

    @property
    def is_zero(self) -> bool:
        return not self.events

    def events_at(self, step: int) -> "list[ChaosEvent]":
        """Events firing at 1-based ``step`` (shard order, kills first)."""
        hits = [e for e in self.events if e.step == step]
        hits.sort(key=lambda e: (e.shard, CHAOS_KINDS.index(e.kind)))
        return hits

    def stall_windows(self, shard: int) -> "list[tuple[int, int]]":
        """Inclusive ``(start, end)`` stall windows aimed at ``shard``."""
        return sorted(
            (e.step, e.step + e.duration - 1)
            for e in self.events
            if e.kind == CHAOS_STALL and e.shard == shard
        )

    @classmethod
    def draw(
        cls,
        *,
        shards: int,
        horizon: int,
        seed: int = 0,
        kills: int = 1,
        stalls: int = 1,
        corrupts: int = 0,
        kill_workers: int = 0,
        disk_faults: int = 0,
        stall_duration: int = 8,
        disk_fault_duration: int = 4,
    ) -> "ChaosPlan":
        """Draw a scenario: all placement is a pure function of ``seed``.

        ``horizon`` bounds the steps events may land on (they are drawn
        uniformly from ``[2, horizon]`` so step 1 always runs clean and
        the first arrivals are routed before anything breaks).
        """
        if shards < 1:
            raise InvalidInstanceError(f"shards must be >= 1, got {shards}")
        if horizon < 2:
            raise InvalidInstanceError(
                f"horizon must be >= 2, got {horizon}"
            )
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=(int(seed) & 0xFFFFFFFF, 0x5EED_C4A05)
            )
        )
        from repro.faults.iofaults import chaos_disk_fault_spec

        events = []
        for kind, count in (
            (CHAOS_KILL, kills),
            (CHAOS_STALL, stalls),
            (CHAOS_CORRUPT, corrupts),
            (CHAOS_KILL_WORKER, kill_workers),
            (CHAOS_DISK_FAULT, disk_faults),
        ):
            for _ in range(int(count)):
                if kind == CHAOS_STALL:
                    duration = int(stall_duration)
                elif kind == CHAOS_DISK_FAULT:
                    duration = int(disk_fault_duration)
                else:
                    duration = 0
                events.append(ChaosEvent(
                    step=int(rng.integers(2, horizon + 1)),
                    kind=kind,
                    shard=int(rng.integers(0, shards)),
                    duration=duration,
                    spec=(
                        chaos_disk_fault_spec(int(rng.integers(0, 1 << 30)))
                        if kind == CHAOS_DISK_FAULT else ""
                    ),
                ))
        events.sort(key=lambda e: (e.step, e.shard, CHAOS_KINDS.index(e.kind)))
        return cls(tuple(events))

    # -- meta round trip ----------------------------------------------
    def to_meta(self) -> "list[list]":
        """JSON-ready form for a journal ``meta`` payload.

        Events without a fault-plan spec serialize as the original
        4-element rows, so pre-``disk-fault`` journals' meta bytes are
        reproduced exactly; only ``disk-fault`` events append their
        spec as a fifth element.
        """
        return [
            (
                [e.step, e.kind, e.shard, e.duration, e.spec]
                if e.spec else [e.step, e.kind, e.shard, e.duration]
            )
            for e in self.events
        ]

    @classmethod
    def from_meta(cls, payload: "list[list]") -> "ChaosPlan":
        """Inverse of :meth:`to_meta` (4- or 5-element rows)."""
        return cls(tuple(
            ChaosEvent(
                int(row[0]), str(row[1]), int(row[2]), int(row[3]),
                spec=str(row[4]) if len(row) > 4 else "",
            )
            for row in payload
        ))


class ChaosInjector(FaultInjector):
    """Whole-shard stall windows layered over an optional base injector.

    Built per shard by the supervised loop from
    ``ChaosPlan.stall_windows(shard)``.  Inside a window every node is
    stalled and :meth:`stall_window_end` reports the window's end (so
    fault-aware admission parks arrivals instead of re-probing); outside
    a window every query falls through to ``base`` — which may be the
    config-derived iid injector, a :class:`~repro.faults.bursts.
    BurstInjector`, or ``None`` for chaos-only runs.
    """

    def __init__(
        self,
        windows: "list[tuple[int, int]]",
        *,
        base: "FaultInjector | None" = None,
        shard_id: int = -1,
        seed: int = 0,
    ) -> None:
        super().__init__(
            base.plan if base is not None else FaultPlan.none(), seed
        )
        self.base = base
        self.shard_id = int(shard_id)
        self.windows = sorted(
            (int(a), int(b)) for a, b in windows
        )
        for a, b in self.windows:
            if b < a:
                raise InvalidInstanceError(
                    f"stall window ({a}, {b}) ends before it starts"
                )

    @property
    def is_zero_plan(self) -> bool:
        base_zero = self.base is None or self.base.is_zero_plan
        return base_zero and not self.windows

    def _window_end(self, t: int) -> "int | None":
        """End of the window covering ``t`` (max over overlaps), or None."""
        end = None
        for a, b in self.windows:
            if a <= t <= b and (end is None or b > end):
                end = b
        return end

    # -- queries: windows first, base second ---------------------------
    def is_stalled(self, t: int, node: int) -> bool:
        end = self._window_end(t)
        if end is not None:
            self._log(
                FaultEvent(
                    _CHAOS_STALL_EVENT, t, node=node,
                    detail=(
                        f"shard {self.shard_id} stalled whole "
                        f"(window ends step {end})"
                    ),
                ),
                (_CHAOS_STALL_EVENT, self.shard_id, end),
            )
            return True
        return self.base.is_stalled(t, node) if self.base else False

    def stall_window_end(self, t: int, node: int) -> "int | None":
        end = self._window_end(t)
        base_end = (
            self.base.stall_window_end(t, node) if self.base else None
        )
        if end is None:
            return base_end
        return end if base_end is None else max(end, base_end)

    def effective_p(self, t: int, P: int) -> int:
        return self.base.effective_p(t, P) if self.base else P

    def flush_outcome(self, t, src, dest, messages):
        if self._window_end(t) is not None:
            # Belt and braces: the gate never attempts IOs on stalled
            # nodes, but a direct query during a window must still no-op.
            return OUTCOME_FAILED, ()
        if self.base is not None:
            return self.base.flush_outcome(t, src, dest, messages)
        return super().flush_outcome(t, src, dest, messages)

    def __repr__(self) -> str:
        return (
            f"ChaosInjector(shard={self.shard_id}, "
            f"windows={self.windows!r}, base={self.base!r})"
        )
