"""A write-optimized B^epsilon-tree dictionary.

This is the substrate the paper schedules on: a tree of nodes of capacity
``B`` where each node carries a message buffer, inserts/upserts are encoded
as messages placed in the root buffer, and full buffers are flushed to the
child receiving the most messages (Section 1, "B^epsilon-trees").

Besides the classic lazily-flushed operations (insert, query, tombstone
delete), the tree supports the paper's two *root-to-leaf* operations:

* **secure delete** — the tombstone must reach the target leaf and purge the
  physical record before the delete "takes effect";
* **deferred query** — the query message collects its answer as it flushes
  down and resolves at the target leaf.

Root-to-leaf operations are queued in the (unbounded) root backlog rather
than flushed lazily; :meth:`BeTree.backlog_instance` snapshots the current
static shape plus that backlog into a WORMS instance, which the schedulers
in :mod:`repro.core` and :mod:`repro.policies` can then flush optimally.
This mirrors the paper's motivating scenario of a nightly purge producing a
large batch of root-to-leaf operations over a momentarily-static tree.

IO accounting follows the DAM model: every node read or written during an
operation costs one IO (a node fits in one cache line of size ``B``).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.tree.messages import Message, MessageKind
from repro.tree.topology import TreeTopology
from repro.util.errors import InvalidInstanceError


@dataclass
class IOCounter:
    """Running DAM-model IO counts for dictionary operations."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        """Total IOs charged so far."""
        return self.reads + self.writes

    def reset(self) -> None:
        """Zero the counters (used between experiment phases)."""
        self.reads = 0
        self.writes = 0


@dataclass
class _BeNode:
    """Internal tree node: pivots + children, or a leaf record map.

    ``pivots[i]`` separates ``children[i]`` (keys < pivot) from
    ``children[i+1]`` (keys >= pivot).  ``buffer`` maps key -> message for
    lazily-flushed operations, coalesced per key (a newer message for the
    same key supersedes the older one, except that pending secure deletes
    are tracked in the root backlog instead and never coalesced away).
    """

    is_leaf: bool
    pivots: list[Any] = field(default_factory=list)
    children: list["_BeNode"] = field(default_factory=list)
    buffer: dict[Any, Message] = field(default_factory=dict)
    records: dict[Any, Any] = field(default_factory=dict)

    def child_index_for(self, key: Any) -> int:
        """Index of the child whose subtree owns ``key``."""
        return bisect_right(self.pivots, key)


class BeTree:
    """A B^epsilon-tree dictionary with message buffers.

    Parameters
    ----------
    B:
        Node capacity: max records per leaf, max buffered messages per
        internal node, and max messages moved per flush.
    eps:
        Fanout exponent; internal fanout is ``max(2, ceil(B**eps))``.
    """

    def __init__(self, B: int = 64, eps: float = 0.5) -> None:
        if B < 4:
            raise InvalidInstanceError(f"B must be >= 4, got {B}")
        if not (0.0 < eps <= 1.0):
            raise InvalidInstanceError(f"eps must be in (0, 1], got {eps}")
        self.B = B
        self.eps = eps
        self.fanout = max(2, math.ceil(B**eps))
        self.io = IOCounter()
        self._root = _BeNode(is_leaf=True)
        self._n_records = 0
        self._backlog: list[Message] = []  # pending root-to-leaf operations
        self._next_msg_id = 0
        self._purged_keys: list[Any] = []  # audit log of physical purges
        self._resolved_queries: dict[int, Any] = {}

    # ------------------------------------------------------------------
    # Lazily-flushed operations
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert ``key -> value`` (write-optimized: buffered at the root)."""
        self._upsert(Message(self._take_id(), -1, MessageKind.INSERT, key, value))

    def delete(self, key: Any) -> None:
        """Tombstone delete: logically removes ``key``, lazily applied."""
        self._upsert(Message(self._take_id(), -1, MessageKind.DELETE, key))

    def _take_id(self) -> int:
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        return msg_id

    def _upsert(self, msg: Message) -> None:
        """Place a message in the root buffer, flushing if over capacity."""
        self.io.writes += 1  # the root is re-written with the new message
        if self._root.is_leaf:
            self._apply_to_leaf(self._root, msg)
            self._maybe_split_root()
            return
        self._root.buffer[msg.key] = msg
        if len(self._root.buffer) > self.B:
            self._flush_fullest_child(self._root)
        self._maybe_split_root()

    def query(self, key: Any) -> Any:
        """Point query: returns the value for ``key`` or ``None``.

        Walks the root-to-leaf path; the first buffered message found (the
        newest, since newer messages sit higher) determines the answer.
        Costs one read IO per node on the path.
        """
        node = self._root
        while True:
            self.io.reads += 1
            if node.is_leaf:
                return node.records.get(key)
            msg = node.buffer.get(key)
            if msg is not None:
                if msg.kind is MessageKind.INSERT:
                    return msg.payload
                return None  # tombstone shadows anything deeper
            node = node.children[node.child_index_for(key)]

    def __contains__(self, key: Any) -> bool:
        return self.query(key) is not None

    def __len__(self) -> int:
        """Logical record count: applied records plus buffered inserts,
        with shadowing resolved (a buffered message hides anything deeper
        for the same key).  O(n); intended for tests and small trees."""
        count = 0
        # DFS with backtracking: `shadowed` holds keys already decided by
        # a message buffered higher on the current path.
        shadowed: set[Any] = set()
        stack: list[tuple[_BeNode, list[Any] | None]] = [(self._root, None)]
        while stack:
            node, to_unshadow = stack.pop()
            if to_unshadow is not None:  # post-visit marker
                shadowed.difference_update(to_unshadow)
                continue
            if node.is_leaf:
                count += sum(1 for k in node.records if k not in shadowed)
                continue
            newly = [k for k in node.buffer if k not in shadowed]
            count += sum(
                1
                for k in newly
                if node.buffer[k].kind is MessageKind.INSERT
            )
            shadowed.update(newly)
            stack.append((node, newly))  # unshadow after the subtree
            stack.extend((c, None) for c in node.children)
        return count

    # ------------------------------------------------------------------
    # Root-to-leaf operations (the paper's subject)
    # ------------------------------------------------------------------
    def secure_delete(self, key: Any) -> Message:
        """Queue a secure delete of ``key``.

        The returned message sits in the root backlog until a purge is
        scheduled; the key stays *logically* deleted immediately (a
        tombstone is also buffered) but is only *physically* purged when
        the message reaches its leaf.
        """
        self.delete(key)  # logical effect is immediate
        msg = Message(self._take_id(), -1, MessageKind.SECURE_DELETE, key)
        self._backlog.append(msg)
        return msg

    def secure_delete_range(self, lo: Any, hi: Any) -> list[Message]:
        """Queue secure deletes for every present key in ``[lo, hi)``.

        The nightly-purge idiom ("purge everything older than X"): expands
        to one secure delete per *logically present* key in the range, so
        the WORMS scheduler can batch them by subtree.  Returns the queued
        messages (empty when the range holds nothing).
        """
        keys = [k for k in self._keys_in_range(lo, hi)]
        return [self.secure_delete(k) for k in keys]

    def _keys_in_range(self, lo: Any, hi: Any) -> list[Any]:
        """Logically present keys in ``[lo, hi)`` (buffer-aware)."""
        present: set[Any] = set()
        shadowed: set[Any] = set()
        stack: list[tuple[_BeNode, list[Any] | None]] = [(self._root, None)]
        while stack:
            node, to_unshadow = stack.pop()
            if to_unshadow is not None:
                shadowed.difference_update(to_unshadow)
                continue
            if node.is_leaf:
                present.update(
                    k
                    for k in node.records
                    if lo <= k < hi and k not in shadowed
                )
                continue
            newly = [k for k in node.buffer if k not in shadowed]
            for k in newly:
                if lo <= k < hi and node.buffer[k].kind is MessageKind.INSERT:
                    present.add(k)
            shadowed.update(newly)
            stack.append((node, newly))
            stack.extend((c, None) for c in node.children)
        return sorted(present)

    def deferred_query(self, key: Any) -> Message:
        """Queue a deferred ("derange") query for ``key``.

        The answer becomes available via :meth:`query_result` once the
        message has flushed through its entire root-to-leaf path.
        """
        msg = Message(self._take_id(), -1, MessageKind.DEFERRED_QUERY, key)
        self._backlog.append(msg)
        return msg

    def query_result(self, msg: Message) -> Any:
        """Result of a resolved deferred query (raises if still pending)."""
        if msg.msg_id not in self._resolved_queries:
            raise KeyError(f"deferred query {msg.msg_id} has not resolved yet")
        return self._resolved_queries[msg.msg_id]

    @property
    def backlog_size(self) -> int:
        """Number of queued root-to-leaf operations."""
        return len(self._backlog)

    @property
    def purged_keys(self) -> list[Any]:
        """Keys physically purged so far, in purge order (audit log)."""
        return list(self._purged_keys)

    def backlog_instance(self, P: int = 1):
        """Snapshot the tree + backlog as a WORMS instance.

        Returns ``(instance, id_maps)`` where ``instance`` is a
        :class:`repro.core.worms.WORMSInstance` over the *current static
        shape* of the tree and ``id_maps`` is a :class:`SnapshotMaps`
        translating between topology node ids, tree nodes, and backlog
        messages.  The tree must not be mutated between snapshotting and
        :meth:`apply_flush_plan`.
        """
        from repro.core.worms import WORMSInstance  # local: avoid cycle

        maps = self._snapshot()
        messages = []
        for i, msg in enumerate(self._backlog):
            leaf_node = self._leaf_for(msg.key)
            target = maps.node_to_id[id(leaf_node)]
            messages.append(
                Message(i, target, msg.kind, msg.key, msg.payload)
            )
        instance = WORMSInstance(maps.topology, messages, P=P, B=self.B)
        return instance, maps

    def apply_flush_plan(self, schedule, maps: "SnapshotMaps") -> dict[int, int]:
        """Execute a WORMS flush schedule against the real tree.

        ``schedule`` is a :class:`repro.dam.schedule.FlushSchedule` over the
        snapshot from :meth:`backlog_instance`.  Applies each root-to-leaf
        operation's effect when its message reaches its leaf (physical purge
        for secure deletes, answer resolution for deferred queries) and
        charges one IO per flush.  Returns ``{msg_id: completion_step}``
        keyed by *backlog index* and clears the backlog.
        """
        completion: dict[int, int] = {}
        # Operations whose target is the root itself (the tree is a single
        # leaf) are already delivered: apply them at step 0.
        root_node = maps.id_to_node[0]
        if root_node.is_leaf:
            for mid, msg in enumerate(self._backlog):
                completion[mid] = 0
                self._apply_root_to_leaf(msg, root_node)
        for step_index, flushes in enumerate(schedule.steps, start=1):
            for flush in flushes:
                self.io.reads += 1
                self.io.writes += 1
                dest = maps.id_to_node[flush.dest]
                if not dest.is_leaf:
                    continue
                for mid in flush.messages:
                    completion[mid] = step_index
                    self._apply_root_to_leaf(self._backlog[mid], dest)
        if len(completion) != len(self._backlog):
            missing = len(self._backlog) - len(completion)
            raise InvalidInstanceError(
                f"flush plan left {missing} backlog operation(s) unfinished"
            )
        self._backlog.clear()
        return completion

    def _apply_root_to_leaf(self, msg: Message, leaf: _BeNode) -> None:
        if msg.kind is MessageKind.SECURE_DELETE:
            # The tombstone physically purges everything on its path: any
            # buffered message for the key (an in-flight insert would
            # otherwise resurrect the record later) and the leaf record.
            node = self._root
            while not node.is_leaf:
                node.buffer.pop(msg.key, None)
                node = node.children[node.child_index_for(msg.key)]
            if leaf.records.pop(msg.key, None) is not None:
                self._n_records -= 1
            self._purged_keys.append(msg.key)
        elif msg.kind is MessageKind.DEFERRED_QUERY:
            # The query message examined every buffer on its way down
            # (Section 1): the highest buffered message for the key is the
            # newest and decides the answer; otherwise the leaf record does.
            node = self._root
            answer = leaf.records.get(msg.key)
            while not node.is_leaf:
                buffered = node.buffer.get(msg.key)
                if buffered is not None:
                    answer = (
                        buffered.payload
                        if buffered.kind is MessageKind.INSERT
                        else None
                    )
                    break
                node = node.children[node.child_index_for(msg.key)]
            self._resolved_queries[msg.msg_id] = answer
        else:  # pragma: no cover - backlog only holds root-to-leaf kinds
            raise InvalidInstanceError(f"unexpected backlog kind {msg.kind}")

    # ------------------------------------------------------------------
    # Flushing & structural maintenance
    # ------------------------------------------------------------------
    def _flush_fullest_child(self, node: _BeNode) -> None:
        """Flush the buffered messages headed to the most popular child.

        This is the classic B^epsilon-tree policy: group the buffer by next
        child, move the largest group (up to ``B`` messages), recurse if the
        child overflows.
        """
        counts = [0] * len(node.children)
        for key in node.buffer:
            counts[node.child_index_for(key)] += 1
        target = max(range(len(counts)), key=counts.__getitem__)
        moving = [
            msg
            for key, msg in node.buffer.items()
            if node.child_index_for(key) == target
        ][: self.B]
        child = node.children[target]
        self.io.reads += 1
        self.io.writes += 1
        for msg in moving:
            del node.buffer[msg.key]
            if child.is_leaf:
                self._apply_to_leaf(child, msg)
            else:
                child.buffer[msg.key] = msg
        if child.is_leaf:
            if len(child.records) > self.B:
                self._split_child(node, target)
        else:
            if len(child.buffer) > self.B:
                self._flush_fullest_child(child)
            if len(child.children) > self.fanout:
                self._split_child(node, target)

    def _apply_to_leaf(self, leaf: _BeNode, msg: Message) -> None:
        if msg.kind is MessageKind.INSERT:
            if msg.key not in leaf.records:
                self._n_records += 1
            leaf.records[msg.key] = msg.payload
        elif msg.kind in (MessageKind.DELETE, MessageKind.SECURE_DELETE):
            if leaf.records.pop(msg.key, None) is not None:
                self._n_records -= 1

    def _maybe_split_root(self) -> None:
        root = self._root
        needs_split = (
            len(root.records) > self.B
            if root.is_leaf
            else len(root.children) > self.fanout
        )
        if not needs_split:
            return
        # Grow the tree: old root becomes the single child of a new root.
        new_root = _BeNode(is_leaf=False, children=[root])
        self._root = new_root
        self._split_child(new_root, 0)

    def _split_child(self, parent: _BeNode, index: int) -> None:
        """Split ``parent.children[index]`` into two siblings."""
        child = parent.children[index]
        self.io.writes += 2
        if child.is_leaf:
            keys = sorted(child.records)
            mid = len(keys) // 2
            pivot = keys[mid]
            right = _BeNode(is_leaf=True)
            for key in keys[mid:]:
                right.records[key] = child.records.pop(key)
        else:
            mid = len(child.children) // 2
            pivot = child.pivots[mid - 1]
            right = _BeNode(
                is_leaf=False,
                pivots=child.pivots[mid:],
                children=child.children[mid:],
            )
            child.pivots = child.pivots[: mid - 1]
            child.children = child.children[:mid]
            for key in list(child.buffer):
                if key >= pivot:
                    right.buffer[key] = child.buffer.pop(key)
        parent.pivots.insert(index, pivot)
        parent.children.insert(index + 1, right)

    # ------------------------------------------------------------------
    # Snapshotting
    # ------------------------------------------------------------------
    def _leaf_for(self, key: Any) -> _BeNode:
        node = self._root
        while not node.is_leaf:
            node = node.children[node.child_index_for(key)]
        return node

    def _iter_nodes_bfs(self) -> Iterator[_BeNode]:
        queue = [self._root]
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            yield node
            queue.extend(node.children)

    def _snapshot(self) -> "SnapshotMaps":
        node_to_id: dict[int, int] = {}
        id_to_node: list[_BeNode] = []
        for node in self._iter_nodes_bfs():
            node_to_id[id(node)] = len(id_to_node)
            id_to_node.append(node)
        parent = [-1] * len(id_to_node)
        for node in id_to_node:
            for child in node.children:
                parent[node_to_id[id(child)]] = node_to_id[id(node)]
        return SnapshotMaps(TreeTopology(parent), node_to_id, id_to_node)

    @property
    def height(self) -> int:
        """Current number of edges on any root-to-leaf path."""
        h = 0
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def check_invariants(self) -> None:
        """Verify structural invariants; raises on violation (test hook)."""
        expected = 0
        for node in self._iter_nodes_bfs():
            if node.is_leaf:
                expected += len(node.records)
                if node.buffer:
                    raise InvalidInstanceError("leaf has a message buffer")
            else:
                if len(node.pivots) != len(node.children) - 1:
                    raise InvalidInstanceError("pivot/children count mismatch")
                if len(node.children) > self.fanout + 1:
                    raise InvalidInstanceError("fanout exceeded")
        if expected != self._n_records:
            raise InvalidInstanceError(
                f"record count drifted: {expected} != {self._n_records}"
            )


@dataclass
class SnapshotMaps:
    """Bidirectional mapping between a BeTree and its topology snapshot."""

    topology: TreeTopology
    node_to_id: dict[int, int]
    id_to_node: list[_BeNode]
