"""Static rooted-tree topology used by the WORMS model.

The paper assumes the tree structure is fixed while the message backlog is
flushed (Section 2.1: "we assume the tree is static and that we always know
the leaf where any key should be stored").  ``TreeTopology`` captures
exactly that: node ids ``0..n-1`` with node 0 as the root, parent pointers,
children lists, and per-node heights, where — following the paper —
``height(v)`` is the number of edges on the root-to-``v`` path (so the root
has height 0 and ``height`` increases downward).

The class is immutable after construction; all derived data (heights,
leaves, subtree sizes) is precomputed once with iterative traversals so that
deep trees do not hit Python's recursion limit.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.util.errors import InvalidInstanceError

ROOT = 0


class TreeTopology:
    """An immutable rooted tree over node ids ``0..n-1`` with root 0.

    Parameters
    ----------
    parent:
        ``parent[v]`` is the parent id of node ``v``; ``parent[0]`` must be
        ``-1``.  The array fully determines the tree.

    Raises
    ------
    InvalidInstanceError
        if the parent array does not describe a tree rooted at 0 (cycle,
        out-of-range parent, multiple roots, ...).
    """

    __slots__ = (
        "_parent",
        "_children",
        "_height",
        "_order",
        "_leaves",
        "_subtree_size",
        "_tree_height",
    )

    def __init__(self, parent: Sequence[int]) -> None:
        parent_arr = np.asarray(parent, dtype=np.int64)
        n = parent_arr.shape[0]
        if n == 0:
            raise InvalidInstanceError("tree must have at least one node")
        if parent_arr[ROOT] != -1:
            raise InvalidInstanceError("node 0 must be the root (parent -1)")
        if n > 1:
            rest = parent_arr[1:]
            if (rest < 0).any() or (rest >= n).any():
                raise InvalidInstanceError("parent ids out of range")
        self._parent = parent_arr
        self._parent.setflags(write=False)

        children: list[list[int]] = [[] for _ in range(n)]
        for v in range(1, n):
            children[int(parent_arr[v])].append(v)
        self._children = tuple(tuple(c) for c in children)

        # BFS from the root: computes heights, a topological order, and
        # detects disconnected components / cycles (unreached nodes).
        height = np.full(n, -1, dtype=np.int64)
        order = np.empty(n, dtype=np.int64)
        height[ROOT] = 0
        order[0] = ROOT
        head, tail = 0, 1
        while head < tail:
            v = int(order[head])
            head += 1
            for c in self._children[v]:
                height[c] = height[v] + 1
                order[tail] = c
                tail += 1
        if tail != n:
            raise InvalidInstanceError(
                f"parent array does not describe a tree: {n - tail} node(s) "
                "unreachable from the root (cycle or disconnected)"
            )
        self._height = height
        self._height.setflags(write=False)
        self._order = order
        self._order.setflags(write=False)
        self._tree_height = int(height.max())

        self._leaves = tuple(v for v in range(n) if not self._children[v])

        # Subtree sizes via reverse BFS order (children appear after parents).
        size = np.ones(n, dtype=np.int64)
        for v in order[::-1]:
            p = int(parent_arr[v])
            if p >= 0:
                size[p] += size[v]
        self._subtree_size = size
        self._subtree_size.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes in the tree."""
        return int(self._parent.shape[0])

    def __len__(self) -> int:
        return self.n_nodes

    @property
    def root(self) -> int:
        """Root node id (always 0)."""
        return ROOT

    @property
    def height(self) -> int:
        """Height ``h`` of the tree: max number of edges root-to-leaf."""
        return self._tree_height

    @property
    def leaves(self) -> tuple[int, ...]:
        """All leaf node ids in increasing id order."""
        return self._leaves

    @property
    def parents(self) -> np.ndarray:
        """Read-only parent array (``parent[root] == -1``)."""
        return self._parent

    @property
    def heights(self) -> np.ndarray:
        """Read-only per-node height array (root has height 0)."""
        return self._height

    @property
    def bfs_order(self) -> np.ndarray:
        """Node ids in BFS (top-down) order; reverse it for bottom-up scans."""
        return self._order

    def parent_of(self, v: int) -> int:
        """Parent id of ``v`` (``-1`` for the root)."""
        return int(self._parent[v])

    def children_of(self, v: int) -> tuple[int, ...]:
        """Children ids of ``v`` in increasing id order."""
        return self._children[v]

    def height_of(self, v: int) -> int:
        """Number of edges between ``v`` and the root (paper's ``h(v)``)."""
        return int(self._height[v])

    def is_leaf(self, v: int) -> bool:
        """True iff ``v`` has no children."""
        return not self._children[v]

    def subtree_size(self, v: int) -> int:
        """Number of nodes in the subtree rooted at ``v`` (including ``v``)."""
        return int(self._subtree_size[v])

    # ------------------------------------------------------------------
    # Paths and ancestry
    # ------------------------------------------------------------------
    def path_from_root(self, v: int) -> list[int]:
        """Node ids on the root-to-``v`` path, root first, ``v`` last."""
        path = []
        node = v
        while node != -1:
            path.append(node)
            node = int(self._parent[node])
        path.reverse()
        return path

    def edges_from_root(self, v: int) -> list[tuple[int, int]]:
        """The ``height_of(v)`` edges of the root-to-``v`` path, top first."""
        path = self.path_from_root(v)
        return list(zip(path[:-1], path[1:]))

    def is_descendant(self, v: int, ancestor: int) -> bool:
        """True iff ``v`` is ``ancestor`` or lies in its subtree.

        The paper's convention: every node is a descendant of itself.
        Walks up from ``v``; O(height).
        """
        node = v
        target_height = int(self._height[ancestor])
        while node != -1 and int(self._height[node]) >= target_height:
            if node == ancestor:
                return True
            node = int(self._parent[node])
        return False

    def child_towards(self, v: int, descendant: int) -> int:
        """The child of ``v`` whose subtree contains ``descendant``.

        ``descendant`` must be a strict descendant of ``v``.
        """
        node = descendant
        parent = int(self._parent[node])
        while parent != v:
            if parent == -1:
                raise InvalidInstanceError(
                    f"node {descendant} is not a strict descendant of {v}"
                )
            node = parent
            parent = int(self._parent[node])
        return node

    def iter_subtree(self, v: int) -> Iterator[int]:
        """Yield all nodes of the subtree rooted at ``v`` in DFS preorder."""
        stack = [v]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self._children[node]))

    def leaves_under(self, v: int) -> list[int]:
        """All leaves in the subtree rooted at ``v``."""
        return [u for u in self.iter_subtree(v) if self.is_leaf(u)]

    def all_leaves_at_height(self, h: int | None = None) -> bool:
        """True iff every leaf sits at height ``h`` (default: tree height).

        The paper assumes uniform leaf depth; builders in
        :mod:`repro.tree.builder` produce such trees, and the WORMS model
        checks this property (it generalizes so long as the *average*
        target height is ``Omega(h)``, see footnote 4).
        """
        if h is None:
            h = self._tree_height
        return all(int(self._height[leaf]) == h for leaf in self._leaves)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TreeTopology(n_nodes={self.n_nodes}, height={self.height}, "
            f"n_leaves={len(self._leaves)})"
        )
