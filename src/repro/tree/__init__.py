"""B^epsilon-tree substrate: static topologies, messages, and the dictionary.

Two levels of abstraction live here:

* :class:`~repro.tree.topology.TreeTopology` — the *static* rooted tree the
  WORMS model schedules on (the paper assumes a static tree: no rebalances
  while the backlog is flushed).
* :class:`~repro.tree.betree.BeTree` — a full write-optimized dictionary
  (buffered B^epsilon-tree) with inserts, queries, tombstone deletes, secure
  deletes, and deferred queries.  It can snapshot itself into a
  ``TreeTopology`` plus a message backlog, which is exactly a WORMS instance.
"""

from repro.tree.betree import BeTree
from repro.tree.builder import (
    balanced_tree,
    beps_shape_tree,
    path_tree,
    random_tree,
    star_tree,
    tree_from_children,
)
from repro.tree.messages import Message, MessageKind
from repro.tree.topology import TreeTopology

__all__ = [
    "TreeTopology",
    "Message",
    "MessageKind",
    "BeTree",
    "balanced_tree",
    "beps_shape_tree",
    "path_tree",
    "star_tree",
    "random_tree",
    "tree_from_children",
]
