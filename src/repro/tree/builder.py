"""Constructors for the static tree topologies used in tests and benches.

All builders return :class:`~repro.tree.topology.TreeTopology` instances
with node 0 as the root.  Unless noted otherwise, every leaf sits at the
same height, matching the paper's assumption.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.tree.topology import TreeTopology
from repro.util.errors import InvalidInstanceError
from repro.util.rng import make_rng


def tree_from_children(children: Sequence[Sequence[int]]) -> TreeTopology:
    """Build a topology from explicit children lists.

    ``children[v]`` lists the child ids of node ``v``.  Convenient for
    writing down the paper's figure instances verbatim.
    """
    n = len(children)
    parent = [-1] * n
    for v, kids in enumerate(children):
        for c in kids:
            if not (0 <= c < n):
                raise InvalidInstanceError(f"child id {c} out of range")
            if c != 0 and parent[c] != -1:
                raise InvalidInstanceError(f"node {c} has two parents")
            parent[c] = v
    return TreeTopology(parent)


def balanced_tree(fanout: int, height: int) -> TreeTopology:
    """Complete ``fanout``-ary tree with the given height (root height 0).

    ``height == 0`` yields a single-node tree whose root is also its leaf.
    """
    if fanout < 1:
        raise InvalidInstanceError(f"fanout must be >= 1, got {fanout}")
    if height < 0:
        raise InvalidInstanceError(f"height must be >= 0, got {height}")
    parent = [-1]
    frontier = [0]
    next_id = 1
    for _ in range(height):
        new_frontier = []
        for v in frontier:
            for _ in range(fanout):
                parent.append(v)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return TreeTopology(parent)


def path_tree(height: int) -> TreeTopology:
    """A path of ``height + 1`` nodes: the degenerate single-leaf tree."""
    if height < 0:
        raise InvalidInstanceError(f"height must be >= 0, got {height}")
    return TreeTopology([-1] + list(range(height)))


def star_tree(n_leaves: int) -> TreeTopology:
    """A root with ``n_leaves`` children, all leaves (height 1)."""
    if n_leaves < 1:
        raise InvalidInstanceError(f"need at least one leaf, got {n_leaves}")
    return TreeTopology([-1] + [0] * n_leaves)


def beps_shape_tree(B: int, eps: float, n_leaves: int) -> TreeTopology:
    """A tree shaped like a B^epsilon-tree: fanout ``Theta(B^eps)``.

    Builds the shortest complete ``ceil(B**eps)``-ary tree with at least
    ``n_leaves`` leaves.  This mirrors how a B^epsilon-tree over
    ``n_leaves * B`` items would look (each leaf holds ~``B`` items).
    """
    if B < 2:
        raise InvalidInstanceError(f"B must be >= 2, got {B}")
    if not (0.0 < eps <= 1.0):
        raise InvalidInstanceError(f"eps must be in (0, 1], got {eps}")
    fanout = max(2, math.ceil(B**eps))
    height = 0
    while fanout**height < n_leaves:
        height += 1
    return balanced_tree(fanout, height)


def random_tree(
    height: int,
    min_fanout: int = 2,
    max_fanout: int = 4,
    seed: "int | None" = None,
) -> TreeTopology:
    """Random tree with uniform leaf depth and per-node random fanout.

    Every internal node independently draws a fanout in
    ``[min_fanout, max_fanout]``; all leaves sit at ``height``.
    """
    if height < 0:
        raise InvalidInstanceError(f"height must be >= 0, got {height}")
    if not (1 <= min_fanout <= max_fanout):
        raise InvalidInstanceError(
            f"need 1 <= min_fanout <= max_fanout, got [{min_fanout}, {max_fanout}]"
        )
    rng = make_rng(seed)
    parent = [-1]
    frontier = [0]
    next_id = 1
    for _ in range(height):
        new_frontier = []
        for v in frontier:
            fanout = int(rng.integers(min_fanout, max_fanout + 1))
            for _ in range(fanout):
                parent.append(v)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return TreeTopology(parent)


def ragged_random_tree(
    n_nodes: int,
    max_children: int = 4,
    seed: "int | None" = None,
) -> TreeTopology:
    """Random tree with *non-uniform* leaf depths (attachment model).

    Node ``v`` attaches to a uniformly random earlier node that still has
    capacity.  Used by robustness tests for code paths that must not assume
    uniform leaf depth.
    """
    if n_nodes < 1:
        raise InvalidInstanceError(f"need at least one node, got {n_nodes}")
    rng = make_rng(seed)
    parent = [-1]
    child_count = [0]
    for v in range(1, n_nodes):
        while True:
            p = int(rng.integers(0, v))
            if child_count[p] < max_children:
                break
        parent.append(p)
        child_count[p] += 1
        child_count.append(0)
    return TreeTopology(parent)
