"""Message types that flow through a write-optimized tree.

The WORMS model treats a message abstractly: an id plus a target leaf.
The B^epsilon-tree substrate additionally distinguishes message *kinds*
(insert, tombstone delete, secure delete, deferred query) because only the
root-to-leaf kinds (secure delete, deferred query) generate WORMS backlogs,
while inserts and plain tombstones may be flushed lazily forever.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class MessageKind(enum.Enum):
    """Operation encoded by a message.

    ``SECURE_DELETE`` and ``DEFERRED_QUERY`` are *root-to-leaf* operations
    (Section 1, "Flushing a Root-to-Leaf Path"): they only take effect once
    the message reaches its target leaf.  ``INSERT`` and ``DELETE``
    (tombstone) complete logically as soon as they are buffered.
    """

    INSERT = "insert"
    DELETE = "delete"  # tombstone: logical delete, lazily applied
    SECURE_DELETE = "secure_delete"  # must purge the physical record at the leaf
    DEFERRED_QUERY = "deferred_query"  # answered when it meets the record

    @property
    def is_root_to_leaf(self) -> bool:
        """True iff the operation completes only at its target leaf."""
        return self in (MessageKind.SECURE_DELETE, MessageKind.DEFERRED_QUERY)


@dataclass(frozen=True, slots=True)
class Message:
    """A message with a target leaf in a static tree.

    Attributes
    ----------
    msg_id:
        Unique id in ``0..|M|-1``; WORMS instances index arrays by it.
    target_leaf:
        Node id of the leaf this message must reach.
    kind:
        The encoded operation (defaults to ``SECURE_DELETE``, the paper's
        motivating example).
    key:
        Dictionary key, when the message came from a :class:`BeTree`.
    payload:
        Optional value (insert payloads, query callbacks, ...).
    """

    msg_id: int
    target_leaf: int
    kind: MessageKind = MessageKind.SECURE_DELETE
    key: Any = None
    payload: Any = field(default=None, compare=False)

    def __repr__(self) -> str:  # compact: messages appear in bulk in dumps
        return f"Message({self.msg_id}->{self.target_leaf}, {self.kind.value})"
