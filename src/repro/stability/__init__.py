"""Performance-stability subsystem: long-run stall analysis.

Fast average-case numbers can hide a service that periodically goes
dark: write-optimized trees amortize their maintenance, and the bill —
a burst of flush work that starves foreground progress — arrives as a
*stall window*.  This package measures that failure mode and closes the
loop with the de-amortization controller (``serve --pace``,
:class:`~repro.serve.planner.PacedPlanner`, the engine's per-step
budget) that is supposed to prevent it:

* :mod:`~repro.stability.windows` — pure stall-window detection over a
  per-window throughput series: trailing-mean comparison, contiguous
  stall intervals, length/gap distributions;
* :mod:`~repro.stability.harness` — the long-run bench harness: seeded
  MMPP scenarios (``diurnal`` / ``flash-crowd``) driven through an
  instrumented :class:`~repro.serve.loop.ServiceLoop`, per-window
  counter attribution (interference vs arrival lull vs backlog), and a
  schema-versioned, byte-deterministic result document
  (``BENCH_stability.json``).

Everything here is a pure function of the seed: running the same
config twice must produce byte-identical JSON (CI diffs it).
"""

from repro.stability.harness import (
    SCENARIOS,
    SCHEMA,
    StabilityConfig,
    format_stability_report,
    run_stability,
)
from repro.stability.windows import (
    StallInterval,
    detect_stalls,
    stall_gaps,
    stall_intervals,
    window_sums,
)

__all__ = [
    "SCENARIOS",
    "SCHEMA",
    "StabilityConfig",
    "StallInterval",
    "detect_stalls",
    "format_stability_report",
    "run_stability",
    "stall_gaps",
    "stall_intervals",
    "window_sums",
]
