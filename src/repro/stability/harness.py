"""Long-run stall bench harness over the serving loop.

The harness drives an instrumented :class:`~repro.serve.loop.ServiceLoop`
through a seeded MMPP scenario, samples cumulative counters every step,
folds them into per-window series, runs the stall detector, and emits a
schema-versioned result document.  Two scenario shapes cover the
regimes the stability literature cares about:

* ``diurnal`` — long calm/busy sojourns (day/night): both MMPP states
  last many windows, so the detector's trailing baseline must adapt
  without calling the nightly lull an outage;
* ``flash-crowd`` — rare, intense bursts: short burst sojourns at many
  times the calm rate, the classic trigger for backlog-driven stalls.

Compaction interference comes in two flavors.  Simulated: the serve
fault pipeline (``fault_rate``) stalls flushes through a faulted node
exactly the way a background compaction steals the IO budget.  Native:
under ``engine='lsm'`` the durable store's *real* leveled compactions
run inline with serving, and the harness samples the store's cumulative
compaction counter per step.  Attribution then reads these counters as
per-window deltas and classifies each stall interval:

* ``compaction`` — the disk engine ran compaction tasks during the
  interval: real background storage work stole the foreground budget
  (``engine='lsm'`` only; takes precedence over ``interference``);
* ``interference`` — fault/stall counters moved during the interval:
  background work blocked foreground flushes;
* ``arrival-lull`` — nothing arrived and nothing was admitted: the
  workload went quiet (expected under ``diurnal``);
* ``backlog`` — work was available but throughput collapsed anyway: an
  amortization spike, the case ``pace`` exists to flatten.

Determinism contract: the result document is a pure function of
:class:`StabilityConfig` — no wall-clock, no unseeded RNG — so CI runs
the same config twice and byte-diffs the JSON.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.obs.hooks import current_obs
from repro.serve.loop import ServeConfig, ServiceLoop
from repro.stability.windows import (
    detect_stalls,
    stall_gaps,
    stall_intervals,
    window_sums,
)
from repro.util.errors import InvalidInstanceError

#: Result-document schema tag; bump on any shape change.
SCHEMA = "stability/v1"

#: Scenario name -> MMPP arrival parameters (rates are per step).
SCENARIOS: "dict[str, dict[str, float]]" = {
    "diurnal": {
        "rate": 4.0, "burst_rate": 12.0, "p_burst": 0.02, "p_calm": 0.02,
    },
    "flash-crowd": {
        "rate": 6.0, "burst_rate": 96.0, "p_burst": 0.02, "p_calm": 0.08,
    },
}


@dataclass(frozen=True)
class StabilityConfig:
    """One stability run, fully determined by its fields."""

    scenario: str = "flash-crowd"
    messages: int = 20_000
    seed: int = 0
    shards: int = 4
    P: int = 4
    B: int = 16
    height: int = 3
    leaves: int = 64
    epoch: int = 8
    #: de-amortization budget (0 = controller off).
    pace: int = 0
    #: compaction-interference injection (serve fault pipeline).
    fault_rate: float = 0.0
    fault_seed: int = 0
    #: durable engine ("sim" = scheduling only; "lsm" = real disk store,
    #: whose compactions the attribution pass reads natively).
    engine: str = "sim"
    data_dir: str = ""
    #: DAM steps per detector window.
    window: int = 16
    #: stalled when throughput < stall_frac * trailing healthy mean.
    stall_frac: float = 0.5
    #: healthy windows in the trailing mean.
    trailing: int = 8

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise InvalidInstanceError(
                f"unknown scenario {self.scenario!r}; "
                f"pick one of {sorted(SCENARIOS)}"
            )
        if self.window < 1:
            raise InvalidInstanceError(
                f"window must be >= 1, got {self.window}"
            )

    def to_serve_config(self) -> ServeConfig:
        """The serving-loop config this scenario maps to."""
        mmpp = SCENARIOS[self.scenario]
        return ServeConfig(
            arrivals="mmpp",
            rate=mmpp["rate"],
            burst_rate=mmpp["burst_rate"],
            p_burst=mmpp["p_burst"],
            p_calm=mmpp["p_calm"],
            messages=self.messages,
            shards=self.shards,
            P=self.P,
            B=self.B,
            height=self.height,
            leaves=self.leaves,
            epoch=self.epoch,
            pace=self.pace,
            fault_rate=self.fault_rate,
            fault_seed=self.fault_seed,
            engine=self.engine,
            data_dir=self.data_dir,
            seed=self.seed,
        )


class _MeteredLoop(ServiceLoop):
    """A :class:`ServiceLoop` that samples cumulative counters per step.

    Sampling rides the existing per-step metering phase, reading only
    counters the loop already maintains — the run itself is untouched
    (same schedules, same journal bytes as an unmetered run).
    """

    def __init__(self, config: ServeConfig, **kwargs) -> None:
        super().__init__(config, **kwargs)
        #: one row per step: (completed, admitted, arrived, stall_skips,
        #: failed_attempts, planned_flushes, compactions) — cumulative.
        self.samples: "list[tuple[int, ...]]" = []

    def _meter(self, t: int) -> None:
        super()._meter(t)
        self.samples.append((
            len(self.metrics.completion_step),
            self.admission.stats.admitted,
            self._next_gid,
            sum(e.stats.stalled_skips for e in self.engines),
            sum(e.stats.failed_attempts for e in self.engines),
            self.planner.stats.planned_flushes,
            self.store.compactions if self.store is not None else 0,
        ))


def _attribute(
    interval, series: "dict[str, list[int]]",
) -> str:
    """Classify one stall interval (see module docstring)."""
    lo, hi = interval.start, interval.end
    if sum(series["compactions"][lo:hi]) > 0:
        return "compaction"
    interference = sum(series["stall_skips"][lo:hi]) \
        + sum(series["failed_attempts"][lo:hi])
    if interference > 0:
        return "interference"
    offered = sum(series["arrived"][lo:hi]) \
        + sum(series["admitted"][lo:hi])
    if offered == 0:
        return "arrival-lull"
    return "backlog"


def run_stability(config: StabilityConfig, *, journal=None) -> dict:
    """Execute one stability run; returns the ``stability/v1`` document.

    The document is byte-deterministic given ``config`` (dump it with
    ``json.dump(..., sort_keys=True)`` and diff).  When observability
    is enabled (:func:`repro.obs.hooks.enable_obs`), the run also
    publishes the ``stability_*`` metric family.
    """
    loop = _MeteredLoop(config.to_serve_config(), journal=journal)
    report = loop.run()

    cols = list(zip(*loop.samples)) if loop.samples else [[]] * 7
    names = ("completed", "admitted", "arrived", "stall_skips",
             "failed_attempts", "planned_flushes", "compactions")
    series = {
        name: window_sums(list(col), config.window)
        for name, col in zip(names, cols)
    }
    throughput = series["completed"]
    flags = detect_stalls(
        [float(x) for x in throughput],
        frac=config.stall_frac, trailing=config.trailing,
    )
    intervals = stall_intervals(flags)
    gaps = stall_gaps(intervals)
    causes = [_attribute(iv, series) for iv in intervals]
    attribution: "dict[str, int]" = {
        "compaction": 0, "interference": 0, "arrival-lull": 0,
        "backlog": 0,
    }
    for cause in causes:
        attribution[cause] += 1

    snapshot = report.snapshot
    doc = {
        "schema": SCHEMA,
        "config": asdict(config),
        "steps": report.n_steps,
        "totals": {
            "arrived": snapshot["arrived"],
            "admitted": snapshot["admitted"],
            "completed": snapshot["completed"],
            "shed": snapshot["shed"],
            "throughput": snapshot["throughput"],
        },
        "windows": {
            "window_steps": config.window,
            "n": len(throughput),
            **series,
        },
        "stalls": {
            "frac": config.stall_frac,
            "trailing": config.trailing,
            "count": len(intervals),
            "stalled_windows": sum(iv.length for iv in intervals),
            "max_len": max((iv.length for iv in intervals), default=0),
            "lengths": [iv.length for iv in intervals],
            "gaps": gaps,
            "intervals": [
                {"start": iv.start, "len": iv.length, "cause": cause}
                for iv, cause in zip(intervals, causes)
            ],
            "attribution": attribution,
        },
        "sojourn": dict(snapshot["sojourn"]),
    }
    if config.pace:
        doc["pace"] = snapshot["pace"]

    obs = current_obs()
    if obs.enabled:
        reg = obs.metrics
        reg.counter(
            "stability_runs_total", "stability harness runs completed"
        ).inc()
        reg.counter(
            "stability_windows_total", "detector windows examined"
        ).inc(len(throughput))
        reg.counter(
            "stability_stall_windows_total", "windows flagged stalled"
        ).inc(sum(iv.length for iv in intervals))
        events = reg.counter(
            "stability_stall_events_total",
            "contiguous stall intervals detected",
        )
        events.inc(len(intervals))
        for cause, n in sorted(attribution.items()):
            events.labels(cause=cause).inc(n)
        reg.gauge(
            "stability_stall_len_max",
            "longest contiguous stall interval (windows)",
        ).set(doc["stalls"]["max_len"])
    return doc


def format_stability_report(doc: dict) -> str:
    """The result document as a short fixed-width text block."""
    stalls = doc["stalls"]
    soj = doc["sojourn"]
    totals = doc["totals"]
    p999 = f"{soj['p999']:.0f}" if soj.get("p999") is not None else "n/a"
    lines = [
        f"== stability: {doc['config']['scenario']} "
        f"(seed {doc['config']['seed']}) ==",
        f"steps {doc['steps']}  windows {doc['windows']['n']} "
        f"x {doc['windows']['window_steps']}  "
        f"completed {totals['completed']}/{totals['arrived']}  "
        f"throughput {totals['throughput']:.2f}/step",
        f"stalls: {stalls['count']} interval(s), "
        f"{stalls['stalled_windows']} window(s), "
        f"max len {stalls['max_len']}  "
        f"[compaction {stalls['attribution'].get('compaction', 0)}, "
        f"interference {stalls['attribution']['interference']}, "
        f"lull {stalls['attribution']['arrival-lull']}, "
        f"backlog {stalls['attribution']['backlog']}]",
        f"sojourn: p50 {soj['p50']:.0f}  p99 {soj['p99']:.0f}  "
        f"p99.9 {p999}  max {soj['max']:.0f}  mean {soj['mean']:.2f}",
    ]
    if "pace" in doc:
        pace = doc["pace"]
        lines.append(
            f"pace: budget {pace['budget']}  "
            f"max step work {pace['max_step_work']}  "
            f"holds {sum(s['paced_holds'] for s in pace['shards'])}  "
            f"splits {sum(s['paced_splits'] for s in pace['shards'])}"
        )
    return "\n".join(lines)
