"""Stall-window detection over per-window throughput series.

A *window* is ``window_steps`` consecutive DAM steps; its throughput is
the number of completions that landed in it.  A window is *stalled*
when its throughput drops below ``frac`` times the trailing mean of the
last ``trailing`` *healthy* windows.  Two details matter:

* the trailing mean is taken over healthy (non-stalled) windows only —
  a long stall must not drag its own baseline down until the detector
  declares the outage "normal" and stops counting it;
* detection starts only once ``trailing`` healthy windows exist — the
  ramp-up at the head of a run (empty tree, no completions possible
  yet) is warm-up, not a stall.

Contiguous stalled windows merge into :class:`StallInterval`; the
length distribution answers "how long do we go dark", the gap
distribution answers "how often".  Everything here is pure integer /
float arithmetic on lists — no RNG, no clock — so the same series
always yields the same intervals (the byte-determinism CI leans on).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.util.errors import InvalidInstanceError


def window_sums(cumulative: "list[int]", window_steps: int) -> "list[int]":
    """Per-window deltas of a cumulative per-step counter series.

    ``cumulative[t-1]`` is the counter value after step ``t``; the
    result has one entry per complete-or-partial window (the final
    window may cover fewer than ``window_steps`` steps).
    """
    if window_steps < 1:
        raise InvalidInstanceError(
            f"window_steps must be >= 1, got {window_steps}"
        )
    out: "list[int]" = []
    prev = 0
    for i in range(window_steps - 1, len(cumulative), window_steps):
        out.append(int(cumulative[i]) - prev)
        prev = int(cumulative[i])
    if len(cumulative) % window_steps:
        out.append(int(cumulative[-1]) - prev)
    return out


def detect_stalls(
    throughput: "list[float]", *, frac: float = 0.5, trailing: int = 8,
) -> "list[bool]":
    """Flag each window as stalled per the module-docstring rule."""
    if not (0.0 < frac < 1.0):
        raise InvalidInstanceError(
            f"stall fraction must be in (0, 1), got {frac}"
        )
    if trailing < 1:
        raise InvalidInstanceError(
            f"trailing must be >= 1, got {trailing}"
        )
    healthy: "deque[float]" = deque(maxlen=trailing)
    flags: "list[bool]" = []
    for thr in throughput:
        if len(healthy) == trailing:
            mean = sum(healthy) / trailing
            stalled = mean > 0.0 and float(thr) < frac * mean
        else:
            stalled = False
        flags.append(stalled)
        if not stalled:
            healthy.append(float(thr))
    return flags


@dataclass(frozen=True)
class StallInterval:
    """A maximal run of consecutive stalled windows."""

    start: int   #: index of the first stalled window (0-based)
    length: int  #: number of consecutive stalled windows

    @property
    def end(self) -> int:
        """Index one past the last stalled window."""
        return self.start + self.length


def stall_intervals(flags: "list[bool]") -> "list[StallInterval]":
    """Merge a stall flag series into maximal contiguous intervals."""
    out: "list[StallInterval]" = []
    start = -1
    for i, stalled in enumerate(flags):
        if stalled and start < 0:
            start = i
        elif not stalled and start >= 0:
            out.append(StallInterval(start, i - start))
            start = -1
    if start >= 0:
        out.append(StallInterval(start, len(flags) - start))
    return out


def stall_gaps(intervals: "list[StallInterval]") -> "list[int]":
    """Healthy-window gaps between consecutive stall intervals."""
    return [
        nxt.start - cur.end
        for cur, nxt in zip(intervals, intervals[1:])
    ]
