"""Command-line interface: ``python -m repro <command>``.

Four subcommands cover the common workflows without writing code:

* ``compare`` — generate a workload and compare the flushing policies;
* ``solve``   — run the full paper pipeline on one instance and report
  every stage's cost plus the trace summary;
* ``gadget``  — build the Lemma 15 NP-hardness gadget for a 3-partition
  input and decide it;
* ``faults``  — execute every policy under seeded fault injection and
  report mean/p99 completion-time inflation per fault rate.

Examples::

    python -m repro compare --messages 2000 --P 4 --B 64 --skew 1.0
    python -m repro solve --messages 500 --height 3 --fanout 4
    python -m repro gadget 6 7 7 6 8 6
    python -m repro faults --seed 0 --rates 0.05,0.1,0.2
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.lower_bounds import worms_lower_bound
from repro.analysis.npc import (
    build_gadget,
    canonical_gadget_schedule,
    solve_three_partition,
)
from repro.analysis.report import completion_cdf_report, utilization_report
from repro.analysis.resilience import (
    format_resilience_report,
    resilience_sweep,
)
from repro.analysis.stats import compare_policies
from repro.core import solve_worms
from repro.dam import validate_valid
from repro.dam.trace import record_trace
from repro.policies import (
    EagerPolicy,
    GreedyBatchPolicy,
    LazyThresholdPolicy,
    WormsPolicy,
)
from repro.tree import balanced_tree, beps_shape_tree
from repro.util.errors import ExecutionStalledError
from repro.workloads import uniform_instance, zipf_instance


def _make_instance(args: argparse.Namespace):
    if args.fanout:
        topo = balanced_tree(args.fanout, args.height)
    else:
        topo = beps_shape_tree(args.B, 0.5, args.leaves)
    if args.skew > 0:
        return zipf_instance(
            topo, args.messages, P=args.P, B=args.B, theta=args.skew,
            seed=args.seed,
        )
    return uniform_instance(
        topo, args.messages, P=args.P, B=args.B, seed=args.seed
    )


def cmd_compare(args: argparse.Namespace) -> int:
    """Run the `compare` subcommand (policy comparison table)."""
    inst = _make_instance(args)
    print(f"instance: {inst!r}")
    stats = compare_policies(
        inst,
        [
            EagerPolicy(),
            LazyThresholdPolicy(),
            GreedyBatchPolicy(),
            WormsPolicy(),
        ],
    )
    lb = worms_lower_bound(inst)
    print(f"{'policy':>16} {'mean':>9} {'p95':>8} {'max':>7} {'IOs':>7} {'vs LB':>7}")
    for name, s in stats.items():
        print(
            f"{name:>16} {s.mean:>9.1f} {s.p95:>8.0f} {s.max:>7d} "
            f"{s.n_steps:>7d} {s.total / max(lb, 1):>6.2f}x"
        )
    print(f"certified lower bound: {lb:.0f}")
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    """Run the `solve` subcommand (full pipeline + trace report)."""
    inst = _make_instance(args)
    print(f"instance: {inst!r}")
    result = solve_worms(inst)
    print(f"packed sets: {len(result.packed.sets)}")
    print(f"reduced tasks: {result.reduced.n_tasks}")
    print(f"task-schedule cost (== overfilling cost): {result.task_cost:.0f}")
    print(
        "valid schedule cost: "
        f"{result.total_completion_time} "
        f"(mean {result.mean_completion_time:.1f}, "
        f"fallback={'yes' if result.conversion.used_fallback else 'no'})"
    )
    print(f"lower bound: {worms_lower_bound(inst):.0f}")
    trace = record_trace(inst, result.schedule)
    for line in trace.summary_lines():
        print(f"  {line}")
    print()
    print(utilization_report(trace))
    print()
    print(completion_cdf_report(result.result.completion_times))
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Run the `faults` subcommand (resilience-under-faults report)."""
    inst = _make_instance(args)
    print(f"instance: {inst!r}")
    try:
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
    except ValueError:
        print(f"invalid --rates {args.rates!r}: expected comma-separated "
              "floats", file=sys.stderr)
        return 2
    if not rates or any(not (0.0 <= r <= 1.0) for r in rates):
        print("--rates values must be in [0, 1]", file=sys.stderr)
        return 2
    try:
        cells = resilience_sweep(
            inst,
            fault_rates=rates,
            seed=args.seed,
            retry_budget=args.retry_budget,
        )
    except ExecutionStalledError as exc:
        print(
            "fault environment too hostile for recovery "
            f"(try lower --rates or a higher --retry-budget):\n{exc}",
            file=sys.stderr,
        )
        return 1
    print(format_resilience_report(cells))
    return 0


def cmd_gadget(args: argparse.Namespace) -> int:
    """Run the `gadget` subcommand (Lemma 15 decision + schedule)."""
    try:
        gadget = build_gadget(args.integers)
    except Exception as exc:  # surfaced as a clean CLI error
        print(f"invalid 3-partition input: {exc}", file=sys.stderr)
        return 2
    print(
        f"gadget: n'={gadget.n_groups}, K={gadget.K}, X={gadget.X}, "
        f"B={gadget.B}, |M|={gadget.instance.n_messages}, C1={gadget.C1}"
    )
    partition = solve_three_partition(args.integers)
    if partition is None:
        print("NO: no 3-partition exists; no 4n'-flush schedule meets C1")
        return 1
    print(f"YES: partition {partition}")
    sched = canonical_gadget_schedule(gadget, partition)
    res = validate_valid(gadget.instance, sched)
    print(
        f"canonical schedule: makespan {res.max_completion_time} "
        f"(= 4n' = {4 * gadget.n_groups}), "
        f"cost {res.total_completion_time} <= C1 = {gadget.C1}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse tree for `python -m repro`."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Root-to-leaf scheduling in write-optimized trees.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_instance_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--messages", type=int, default=1000)
        p.add_argument("--P", type=int, default=4)
        p.add_argument("--B", type=int, default=64)
        p.add_argument("--leaves", type=int, default=256,
                       help="B^eps-shaped tree with this many leaves")
        p.add_argument("--fanout", type=int, default=0,
                       help="use a balanced tree with this fanout instead")
        p.add_argument("--height", type=int, default=3)
        p.add_argument("--skew", type=float, default=0.0,
                       help="Zipf theta (0 = uniform)")
        p.add_argument("--seed", type=int, default=0)

    p_compare = sub.add_parser("compare", help="compare flushing policies")
    add_instance_args(p_compare)
    p_compare.set_defaults(func=cmd_compare)

    p_solve = sub.add_parser("solve", help="run the full paper pipeline")
    add_instance_args(p_solve)
    p_solve.set_defaults(func=cmd_solve)

    p_faults = sub.add_parser(
        "faults", help="fault-injection resilience report"
    )
    add_instance_args(p_faults)
    p_faults.add_argument(
        "--rates", type=str, default="0.05,0.1,0.2",
        help="comma-separated fault rates to sweep",
    )
    p_faults.add_argument(
        "--retry-budget", type=int, default=5,
        help="flush attempts before the executor re-plans",
    )
    p_faults.set_defaults(func=cmd_faults)

    p_gadget = sub.add_parser("gadget", help="Lemma 15 NP-hardness gadget")
    p_gadget.add_argument("integers", type=int, nargs="+")
    p_gadget.set_defaults(func=cmd_gadget)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
