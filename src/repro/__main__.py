"""Command-line interface: ``python -m repro <command>``.

Six subcommands cover the common workflows without writing code:

* ``compare`` — generate a workload and compare the flushing policies;
* ``solve``   — run the full paper pipeline on one instance and report
  every stage's cost plus the trace summary;
* ``gadget``  — build the Lemma 15 NP-hardness gadget for a 3-partition
  input and decide it;
* ``faults``  — execute every policy under seeded fault injection and
  report mean/p99 completion-time inflation per fault rate
  (``--burst`` switches to correlated Markov-modulated bursts);
* ``run``     — execute the WORMS policy once, streaming a
  crash-consistent journal to disk (kill it mid-run, then...);
* ``recover`` — ...scan that journal, repair its torn tail, and resume
  the interrupted run to byte-identical completion times.

Examples::

    python -m repro compare --messages 2000 --P 4 --B 64 --skew 1.0
    python -m repro solve --messages 500 --height 3 --fanout 4
    python -m repro gadget 6 7 7 6 8 6
    python -m repro faults --seed 0 --rates 0.05,0.1,0.2 --burst
    python -m repro run --messages 5000 --journal /tmp/worms.journal
    python -m repro recover /tmp/worms.journal
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.lower_bounds import worms_lower_bound
from repro.analysis.npc import (
    build_gadget,
    canonical_gadget_schedule,
    solve_three_partition,
)
from repro.analysis.report import completion_cdf_report, utilization_report
from repro.analysis.resilience import (
    format_resilience_report,
    resilience_sweep,
)
from repro.analysis.stats import compare_policies
from repro.core import solve_worms
from repro.dam import validate_valid
from repro.dam.journal import JournalWriter, RecoveryManager
from repro.dam.trace import record_trace
from repro.faults import BurstInjector, BurstPlan, FaultInjector, FaultPlan
from repro.policies import (
    EagerPolicy,
    GreedyBatchPolicy,
    LazyThresholdPolicy,
    ResilientExecutor,
    WormsPolicy,
)
from repro.policies.executor import DEFAULT_CHECKPOINT_EVERY
from repro.tree import balanced_tree, beps_shape_tree
from repro.util.errors import ExecutionStalledError, JournalCorruptionError
from repro.workloads import uniform_instance, zipf_instance


def _build_instance(
    *, messages: int, P: int, B: int, leaves: int, fanout: int,
    height: int, skew: float, seed: int,
):
    if fanout:
        topo = balanced_tree(fanout, height)
    else:
        topo = beps_shape_tree(B, 0.5, leaves)
    if skew > 0:
        return zipf_instance(
            topo, messages, P=P, B=B, theta=skew, seed=seed
        )
    return uniform_instance(topo, messages, P=P, B=B, seed=seed)


def _make_instance(args: argparse.Namespace):
    return _build_instance(
        messages=args.messages, P=args.P, B=args.B, leaves=args.leaves,
        fanout=args.fanout, height=args.height, skew=args.skew,
        seed=args.seed,
    )


def cmd_compare(args: argparse.Namespace) -> int:
    """Run the `compare` subcommand (policy comparison table)."""
    inst = _make_instance(args)
    print(f"instance: {inst!r}")
    stats = compare_policies(
        inst,
        [
            EagerPolicy(),
            LazyThresholdPolicy(),
            GreedyBatchPolicy(),
            WormsPolicy(),
        ],
    )
    lb = worms_lower_bound(inst)
    print(f"{'policy':>16} {'mean':>9} {'p95':>8} {'max':>7} {'IOs':>7} {'vs LB':>7}")
    for name, s in stats.items():
        print(
            f"{name:>16} {s.mean:>9.1f} {s.p95:>8.0f} {s.max:>7d} "
            f"{s.n_steps:>7d} {s.total / max(lb, 1):>6.2f}x"
        )
    print(f"certified lower bound: {lb:.0f}")
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    """Run the `solve` subcommand (full pipeline + trace report)."""
    inst = _make_instance(args)
    print(f"instance: {inst!r}")
    result = solve_worms(inst)
    print(f"packed sets: {len(result.packed.sets)}")
    print(f"reduced tasks: {result.reduced.n_tasks}")
    print(f"task-schedule cost (== overfilling cost): {result.task_cost:.0f}")
    print(
        "valid schedule cost: "
        f"{result.total_completion_time} "
        f"(mean {result.mean_completion_time:.1f}, "
        f"fallback={'yes' if result.conversion.used_fallback else 'no'})"
    )
    print(f"lower bound: {worms_lower_bound(inst):.0f}")
    trace = record_trace(inst, result.schedule)
    for line in trace.summary_lines():
        print(f"  {line}")
    print()
    print(utilization_report(trace))
    print()
    print(completion_cdf_report(result.result.completion_times))
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Run the `faults` subcommand (resilience-under-faults report)."""
    inst = _make_instance(args)
    print(f"instance: {inst!r}")
    try:
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
    except ValueError:
        print(f"invalid --rates {args.rates!r}: expected comma-separated "
              "floats", file=sys.stderr)
        return 2
    if not rates or any(not (0.0 <= r <= 1.0) for r in rates):
        print("--rates values must be in [0, 1]", file=sys.stderr)
        return 2
    title = "resilience under correlated bursts" if args.burst \
        else "resilience under faults"
    cells = resilience_sweep(
        inst,
        fault_rates=rates,
        seed=args.seed,
        retry_budget=args.retry_budget,
        burst=args.burst,
        fault_aware=args.fault_aware,
    )
    print(format_resilience_report(cells, title=title))
    return 0


def _make_injector(
    *, rate: float, burst: bool, fault_seed: int, topology
) -> "FaultInjector | None":
    """The deterministic fault source a (run, recover) pair shares."""
    if burst:
        return BurstInjector(
            FaultPlan.none(), BurstPlan.from_rate(rate), topology,
            seed=fault_seed,
        )
    if rate > 0:
        return FaultInjector(FaultPlan.uniform(rate), seed=fault_seed)
    return None


def _executor_for(inst, meta: dict, journal=None) -> ResilientExecutor:
    """Build the executor a journal's ``meta`` config describes.

    Execution is deterministic in this config, which is what lets
    ``recover`` re-derive the reference schedule of an interrupted run
    by simply re-running it (journal-free).
    """
    injector = _make_injector(
        rate=meta["rate"], burst=meta["burst"],
        fault_seed=meta["fault_seed"], topology=inst.topology,
    )
    return ResilientExecutor(
        inst,
        injector,
        retry_budget=meta["retry_budget"],
        fault_aware=meta["fault_aware"],
        journal=journal,
        checkpoint_every=meta["checkpoint_every"],
    )


def cmd_run(args: argparse.Namespace) -> int:
    """Run the `run` subcommand (journaled WORMS execution)."""
    if args.checkpoint_every < 1:
        print("--checkpoint-every must be >= 1", file=sys.stderr)
        return 2
    if not (0.0 <= args.rate <= 1.0):
        print("--rate must be in [0, 1]", file=sys.stderr)
        return 2
    inst = _make_instance(args)
    print(f"instance: {inst!r}")
    ordered = [f for _t, f in WormsPolicy().schedule(inst).iter_timed()]
    meta = {
        "policy": "worms",
        "messages": args.messages, "P": args.P, "B": args.B,
        "leaves": args.leaves, "fanout": args.fanout,
        "height": args.height, "skew": args.skew, "seed": args.seed,
        "rate": args.rate, "burst": args.burst,
        "fault_seed": args.fault_seed, "fault_aware": args.fault_aware,
        "retry_budget": args.retry_budget,
        "checkpoint_every": args.checkpoint_every,
    }
    writer = JournalWriter(args.journal, meta=meta, sync=args.sync)
    try:
        executor = _executor_for(inst, meta, journal=writer)
        try:
            sched = executor.run(list(ordered))
        except ExecutionStalledError as exc:
            print(f"execution stalled (journal kept):\n{exc}",
                  file=sys.stderr)
            return 1
    finally:
        writer.close()
    res = validate_valid(inst, sched)
    print(f"journal: {args.journal}")
    print(
        f"completed: {sched.n_steps} steps, {sched.n_flushes} flushes, "
        f"total completion time {res.total_completion_time}"
    )
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """Run the `recover` subcommand (scan, repair, resume a journal)."""
    manager = RecoveryManager(args.journal)
    try:
        meta = manager.meta
        if meta is None:
            print(
                f"{args.journal}: no meta record survived; the run "
                "configuration cannot be reconstructed",
                file=sys.stderr,
            )
            return 1
        if meta.get("policy") != "worms":
            print(
                f"journal meta has unsupported policy "
                f"{meta.get('policy')!r}; cannot re-derive the reference "
                "schedule",
                file=sys.stderr,
            )
            return 2
        inst = _build_instance(
            messages=meta["messages"], P=meta["P"], B=meta["B"],
            leaves=meta["leaves"], fanout=meta["fanout"],
            height=meta["height"], skew=meta["skew"], seed=meta["seed"],
        )
        print(f"instance (rebuilt from journal meta): {inst!r}")
        ordered = [
            f for _t, f in WormsPolicy().schedule(inst).iter_timed()
        ]
        # Deterministic replay of the interrupted run's config gives the
        # schedule the journal must be a prefix of.
        reference = _executor_for(inst, meta).run(list(ordered))
        report = manager.recover(inst, reference, repair=not args.no_repair)
    except JournalCorruptionError as exc:
        print(f"journal corrupt: {exc}", file=sys.stderr)
        return 1
    except (KeyError, TypeError) as exc:
        print(f"journal meta unusable: {exc!r}", file=sys.stderr)
        return 2
    if report.torn_bytes:
        print(
            f"torn tail: {report.torn_bytes} byte(s) dropped "
            f"({report.torn_reason})"
        )
    if report.run_completed:
        print("journal records a completed run; nothing to resume")
    print(
        f"recovered: checkpoint at step {report.checkpoint_step}, "
        f"{report.replayed_flushes} journaled flush(es) replayed, "
        f"resumed from step {report.resumed_from_step}"
    )
    print(
        f"resumed run: {report.result.max_completion_time} steps, total "
        f"completion time {report.result.total_completion_time} "
        "(validated identical to the uninterrupted run)"
    )
    return 0


def cmd_gadget(args: argparse.Namespace) -> int:
    """Run the `gadget` subcommand (Lemma 15 decision + schedule)."""
    try:
        gadget = build_gadget(args.integers)
    except Exception as exc:  # surfaced as a clean CLI error
        print(f"invalid 3-partition input: {exc}", file=sys.stderr)
        return 2
    print(
        f"gadget: n'={gadget.n_groups}, K={gadget.K}, X={gadget.X}, "
        f"B={gadget.B}, |M|={gadget.instance.n_messages}, C1={gadget.C1}"
    )
    partition = solve_three_partition(args.integers)
    if partition is None:
        print("NO: no 3-partition exists; no 4n'-flush schedule meets C1")
        return 1
    print(f"YES: partition {partition}")
    sched = canonical_gadget_schedule(gadget, partition)
    res = validate_valid(gadget.instance, sched)
    print(
        f"canonical schedule: makespan {res.max_completion_time} "
        f"(= 4n' = {4 * gadget.n_groups}), "
        f"cost {res.total_completion_time} <= C1 = {gadget.C1}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse tree for `python -m repro`."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Root-to-leaf scheduling in write-optimized trees.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_instance_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--messages", type=int, default=1000)
        p.add_argument("--P", type=int, default=4)
        p.add_argument("--B", type=int, default=64)
        p.add_argument("--leaves", type=int, default=256,
                       help="B^eps-shaped tree with this many leaves")
        p.add_argument("--fanout", type=int, default=0,
                       help="use a balanced tree with this fanout instead")
        p.add_argument("--height", type=int, default=3)
        p.add_argument("--skew", type=float, default=0.0,
                       help="Zipf theta (0 = uniform)")
        p.add_argument("--seed", type=int, default=0)

    p_compare = sub.add_parser("compare", help="compare flushing policies")
    add_instance_args(p_compare)
    p_compare.set_defaults(func=cmd_compare)

    p_solve = sub.add_parser("solve", help="run the full paper pipeline")
    add_instance_args(p_solve)
    p_solve.set_defaults(func=cmd_solve)

    p_faults = sub.add_parser(
        "faults", help="fault-injection resilience report"
    )
    add_instance_args(p_faults)
    p_faults.add_argument(
        "--rates", type=str, default="0.05,0.1,0.2",
        help="comma-separated fault rates to sweep",
    )
    p_faults.add_argument(
        "--retry-budget", type=int, default=5,
        help="flush attempts before the executor re-plans",
    )
    p_faults.add_argument(
        "--burst", action="store_true",
        help="correlated Markov-modulated bursts instead of iid faults",
    )
    p_faults.add_argument(
        "--fault-aware", action="store_true",
        help="enable fault-aware admission in the resilient executor",
    )
    p_faults.set_defaults(func=cmd_faults)

    p_run = sub.add_parser(
        "run", help="journaled WORMS execution (crash-recoverable)"
    )
    add_instance_args(p_run)
    p_run.add_argument(
        "--journal", type=str, required=True,
        help="path the execution journal is streamed to",
    )
    p_run.add_argument(
        "--checkpoint-every", type=int, default=DEFAULT_CHECKPOINT_EVERY,
        help="steps between journaled state checkpoints",
    )
    p_run.add_argument(
        "--sync", action="store_true",
        help="fsync the journal at every checkpoint (real durability)",
    )
    p_run.add_argument(
        "--rate", type=float, default=0.0,
        help="fault rate to execute under (0 = fault-free)",
    )
    p_run.add_argument(
        "--burst", action="store_true",
        help="correlated Markov-modulated bursts instead of iid faults",
    )
    p_run.add_argument("--fault-seed", type=int, default=0)
    p_run.add_argument("--fault-aware", action="store_true")
    p_run.add_argument("--retry-budget", type=int, default=5)
    p_run.set_defaults(func=cmd_run)

    p_recover = sub.add_parser(
        "recover", help="scan, repair, and resume an execution journal"
    )
    p_recover.add_argument("journal", type=str)
    p_recover.add_argument(
        "--no-repair", action="store_true",
        help="scan and resume without truncating the torn tail in place",
    )
    p_recover.set_defaults(func=cmd_recover)

    p_gadget = sub.add_parser("gadget", help="Lemma 15 NP-hardness gadget")
    p_gadget.add_argument("integers", type=int, nargs="+")
    p_gadget.set_defaults(func=cmd_gadget)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
