"""Command-line interface: ``python -m repro <command>``.

Eleven subcommands cover the common workflows without writing code:

* ``compare`` — generate a workload and compare the flushing policies;
* ``solve``   — run the full paper pipeline on one instance and report
  every stage's cost plus the trace summary;
* ``gadget``  — build the Lemma 15 NP-hardness gadget for a 3-partition
  input and decide it;
* ``faults``  — execute every policy under seeded fault injection and
  report mean/p99 completion-time inflation per fault rate
  (``--burst`` switches to correlated Markov-modulated bursts);
* ``run``     — execute the WORMS policy once, streaming a
  crash-consistent journal to disk (kill it mid-run, then...);
* ``recover`` — ...scan that journal, repair its torn tail, and resume
  the interrupted run to byte-identical completion times (works on
  both batch ``run`` journals and ``serve`` journals);
* ``serve``   — online serving: seeded arrival processes over sharded
  B^ε-trees with epoch re-planning, admission control, and per-message
  p50/p95/p99 sojourn-time reporting; ``--supervised`` adds per-shard
  health tracking, circuit breakers, and live restart-from-journal, and
  ``--chaos`` drills that machinery with a seeded whole-shard
  kill/stall/corrupt scenario;
* ``compact`` — drop sealed journal records a later checkpoint
  supersedes (recovery stays exact; see :mod:`repro.dam.compaction`);
* ``kv``      — operate the durable on-disk KV engine directly
  (:mod:`repro.lsm.disk`): seeded ingest with an optional mid-stream
  SIGKILL, exact read-back verification, checksum scrub-and-repair,
  compaction, stats (``serve --engine lsm`` runs the same engine under
  the serving loop);
* ``stability`` — long-run stall benchmarking (:mod:`repro.stability`):
  a seeded MMPP scenario through the serving loop, per-window stall
  detection with attribution, and a byte-deterministic ``stability/v1``
  JSON document; ``--pace`` engages the de-amortization controller;
* ``trace``   — run any other subcommand under :mod:`repro.obs`
  observability and write a Perfetto-loadable trace, a deterministic
  metrics snapshot, and a span tree (see ``docs/OBSERVABILITY.md``).

Every subcommand takes ``--seed``; with the same arguments and seed a
run is byte-reproducible.

Examples::

    python -m repro compare --messages 2000 --P 4 --B 64 --skew 1.0
    python -m repro solve --messages 500 --height 3 --fanout 4
    python -m repro gadget 6 7 7 6 8 6
    python -m repro faults --seed 0 --rates 0.05,0.1,0.2 --burst
    python -m repro run --messages 5000 --journal /tmp/worms.journal
    python -m repro recover /tmp/worms.journal
    python -m repro serve --arrivals poisson --rate 8 --shards 4 --seed 1
    python -m repro serve --supervised --chaos --seed 3 --messages 400
    python -m repro compact /tmp/serve.journal
    python -m repro serve --engine lsm --data-dir /tmp/kv --messages 500
    python -m repro kv ingest --dir /tmp/kv2 --n 2000 --crash-after 1200
    python -m repro kv check-ingest --dir /tmp/kv2 --n 2000
    python -m repro kv scrub --dir /tmp/kv2
    python -m repro stability --scenario flash-crowd --pace 32 \\
        --fault-rate 0.05 --json /tmp/stability.json
    python -m repro trace --out /tmp/t serve --messages 200 --seed 1
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.lower_bounds import worms_lower_bound
from repro.analysis.npc import (
    build_gadget,
    canonical_gadget_schedule,
    solve_three_partition,
)
from repro.analysis.report import completion_cdf_report, utilization_report
from repro.analysis.resilience import (
    format_resilience_report,
    resilience_sweep,
)
from repro.analysis.stats import compare_policies
from repro.core import solve_worms
from repro.dam import validate_valid
from repro.dam.compaction import compact_journal
from repro.dam.journal import JournalWriter, RecoveryManager
from repro.dam.trace import record_trace
from repro.obs import (
    current_obs,
    disable_obs,
    enable_obs,
    observed,
    span_tree,
    write_chrome_trace,
)
from repro.faults import (
    BurstInjector,
    BurstPlan,
    ChaosPlan,
    FaultInjector,
    FaultPlan,
)
from repro.policies import (
    EagerPolicy,
    GreedyBatchPolicy,
    LazyThresholdPolicy,
    ResilientExecutor,
    WormsPolicy,
)
from repro.policies.executor import DEFAULT_CHECKPOINT_EVERY
from repro.serve import (
    SERVE_POLICY,
    MetricsEndpoint,
    ProcPoolLoop,
    ServeConfig,
    ServiceLoop,
    SupervisedLoop,
    SupervisorConfig,
    format_serve_report,
    format_tenant_report,
    make_tenants,
    recover_serve,
)
from repro.tree import balanced_tree, beps_shape_tree
from repro.util.errors import ExecutionStalledError, JournalCorruptionError
from repro.workloads import uniform_instance, zipf_instance


def _build_instance(
    *, messages: int, P: int, B: int, leaves: int, fanout: int,
    height: int, skew: float, seed: int,
):
    if fanout:
        topo = balanced_tree(fanout, height)
    else:
        topo = beps_shape_tree(B, 0.5, leaves)
    if skew > 0:
        return zipf_instance(
            topo, messages, P=P, B=B, theta=skew, seed=seed
        )
    return uniform_instance(topo, messages, P=P, B=B, seed=seed)


def _make_instance(args: argparse.Namespace):
    return _build_instance(
        messages=args.messages, P=args.P, B=args.B, leaves=args.leaves,
        fanout=args.fanout, height=args.height, skew=args.skew,
        seed=args.seed,
    )


def cmd_compare(args: argparse.Namespace) -> int:
    """Run the `compare` subcommand (policy comparison table)."""
    inst = _make_instance(args)
    print(f"instance: {inst!r}")
    stats = compare_policies(
        inst,
        [
            EagerPolicy(),
            LazyThresholdPolicy(),
            GreedyBatchPolicy(),
            WormsPolicy(),
        ],
    )
    lb = worms_lower_bound(inst)
    print(f"{'policy':>16} {'mean':>9} {'p95':>8} {'max':>7} {'IOs':>7} {'vs LB':>7}")
    for name, s in stats.items():
        print(
            f"{name:>16} {s.mean:>9.1f} {s.p95:>8.0f} {s.max:>7d} "
            f"{s.n_steps:>7d} {s.total / max(lb, 1):>6.2f}x"
        )
    print(f"certified lower bound: {lb:.0f}")
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    """Run the `solve` subcommand (full pipeline + trace report)."""
    inst = _make_instance(args)
    print(f"instance: {inst!r}")
    result = solve_worms(inst)
    print(f"packed sets: {len(result.packed.sets)}")
    print(f"reduced tasks: {result.reduced.n_tasks}")
    print(f"task-schedule cost (== overfilling cost): {result.task_cost:.0f}")
    print(
        "valid schedule cost: "
        f"{result.total_completion_time} "
        f"(mean {result.mean_completion_time:.1f}, "
        f"fallback={'yes' if result.conversion.used_fallback else 'no'})"
    )
    print(f"lower bound: {worms_lower_bound(inst):.0f}")
    trace = record_trace(inst, result.schedule)
    for line in trace.summary_lines():
        print(f"  {line}")
    print()
    print(utilization_report(trace))
    print()
    print(completion_cdf_report(result.result.completion_times))
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Run the `faults` subcommand (resilience-under-faults report)."""
    inst = _make_instance(args)
    print(f"instance: {inst!r}")
    try:
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
    except ValueError:
        print(f"invalid --rates {args.rates!r}: expected comma-separated "
              "floats", file=sys.stderr)
        return 2
    if not rates or any(not (0.0 <= r <= 1.0) for r in rates):
        print("--rates values must be in [0, 1]", file=sys.stderr)
        return 2
    title = "resilience under correlated bursts" if args.burst \
        else "resilience under faults"
    cells = resilience_sweep(
        inst,
        fault_rates=rates,
        seed=args.seed,
        retry_budget=args.retry_budget,
        burst=args.burst,
        fault_aware=args.fault_aware,
    )
    print(format_resilience_report(cells, title=title))
    return 0


def _make_injector(
    *, rate: float, burst: bool, fault_seed: int, topology
) -> "FaultInjector | None":
    """The deterministic fault source a (run, recover) pair shares."""
    if burst:
        return BurstInjector(
            FaultPlan.none(), BurstPlan.from_rate(rate), topology,
            seed=fault_seed,
        )
    if rate > 0:
        return FaultInjector(FaultPlan.uniform(rate), seed=fault_seed)
    return None


def _executor_for(inst, meta: dict, journal=None) -> ResilientExecutor:
    """Build the executor a journal's ``meta`` config describes.

    Execution is deterministic in this config, which is what lets
    ``recover`` re-derive the reference schedule of an interrupted run
    by simply re-running it (journal-free).
    """
    injector = _make_injector(
        rate=meta["rate"], burst=meta["burst"],
        fault_seed=meta["fault_seed"], topology=inst.topology,
    )
    return ResilientExecutor(
        inst,
        injector,
        retry_budget=meta["retry_budget"],
        fault_aware=meta["fault_aware"],
        journal=journal,
        checkpoint_every=meta["checkpoint_every"],
    )


def cmd_run(args: argparse.Namespace) -> int:
    """Run the `run` subcommand (journaled WORMS execution)."""
    if args.checkpoint_every < 1:
        print("--checkpoint-every must be >= 1", file=sys.stderr)
        return 2
    if not (0.0 <= args.rate <= 1.0):
        print("--rate must be in [0, 1]", file=sys.stderr)
        return 2
    if args.compact_every < 0:
        print("--compact-every must be >= 0", file=sys.stderr)
        return 2
    inst = _make_instance(args)
    print(f"instance: {inst!r}")
    ordered = [f for _t, f in WormsPolicy().schedule(inst).iter_timed()]
    meta = {
        "policy": "worms",
        "messages": args.messages, "P": args.P, "B": args.B,
        "leaves": args.leaves, "fanout": args.fanout,
        "height": args.height, "skew": args.skew, "seed": args.seed,
        "rate": args.rate, "burst": args.burst,
        "fault_seed": args.fault_seed, "fault_aware": args.fault_aware,
        "retry_budget": args.retry_budget,
        "checkpoint_every": args.checkpoint_every,
    }
    writer = JournalWriter(
        args.journal, meta=meta, sync=args.sync,
        max_segment_bytes=args.max_segment_bytes,
        compact_every_rotations=args.compact_every,
    )
    try:
        executor = _executor_for(inst, meta, journal=writer)
        try:
            sched = executor.run(list(ordered))
        except ExecutionStalledError as exc:
            print(f"execution stalled (journal kept):\n{exc}",
                  file=sys.stderr)
            return 1
    finally:
        writer.close()
    res = validate_valid(inst, sched)
    print(f"journal: {args.journal}")
    print(
        f"completed: {sched.n_steps} steps, {sched.n_flushes} flushes, "
        f"total completion time {res.total_completion_time}"
    )
    return 0


def _csv(text: "str | None", cast):
    """Parse a ``--tenant-*`` comma-separated list (None/empty = unset)."""
    if not text:
        return None
    return [cast(v) for v in text.split(",")]


def _tenants_from_args(args: argparse.Namespace):
    """``ServeConfig.tenants`` from the ``--tenant*`` flags (None = off)."""
    if not args.tenants:
        return None
    return make_tenants(
        args.tenants,
        args.messages,
        rates=_csv(args.tenant_rates, float),
        weights=_csv(args.tenant_weights, float),
        thetas=_csv(args.tenant_thetas, float),
        slos=_csv(args.tenant_slo, int),
        slo_percentile=args.tenant_slo_percentile,
        quotas=_csv(args.tenant_quota, int),
        arrivals=args.arrivals,
    )


def _config_from_args(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        arrivals=args.arrivals,
        rate=args.rate,
        burst_rate=args.burst_rate,
        p_burst=args.p_burst,
        p_calm=args.p_calm,
        n_clients=args.clients,
        think_time=args.think_time,
        messages=args.messages,
        shards=args.shards,
        key_space=args.key_space,
        theta=args.skew,
        P=args.P,
        B=args.B,
        fanout=args.fanout,
        height=args.height,
        leaves=args.leaves,
        epoch=args.epoch,
        max_root_backlog=args.max_root_backlog,
        max_queue=args.max_queue,
        fault_rate=args.fault_rate,
        fault_seed=args.fault_seed,
        fault_aware=args.fault_aware,
        retry_budget=args.retry_budget,
        seed=args.seed,
        checkpoint_every=args.checkpoint_every,
        engine=args.engine,
        data_dir=args.data_dir or "",
        tenants=_tenants_from_args(args),
        pace=args.pace,
    )


def _chaos_from_args(
    args: argparse.Namespace, config: ServeConfig
) -> "ChaosPlan | None":
    """The seeded chaos drill ``--chaos`` asks for (None without it)."""
    if not args.chaos:
        return None
    horizon = args.chaos_horizon or max(
        4 * config.epoch, int(config.messages / max(config.rate, 1.0))
    )
    return ChaosPlan.draw(
        shards=config.shards,
        horizon=horizon,
        seed=config.seed,
        kills=args.chaos_kills,
        stalls=args.chaos_stalls,
        corrupts=args.chaos_corrupts,
        kill_workers=args.chaos_kill_workers,
        disk_faults=args.chaos_disk_faults,
        stall_duration=args.chaos_stall_duration,
        disk_fault_duration=args.chaos_disk_fault_duration,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the `serve` subcommand (online sharded serving loop)."""
    supervised = args.supervised or args.chaos or args.processes is not None
    try:
        config = _config_from_args(args)
        if supervised:
            sup_config = SupervisorConfig(
                trip_after=args.trip_after,
                probe_backoff=args.probe_backoff,
                max_backoff=args.max_backoff,
                spill_capacity=args.spill_capacity,
                restart_budget=args.restart_budget,
                watchdog_deadline=args.watchdog_deadline,
                watchdog_budget=args.watchdog_budget,
                divert=args.divert,
            )
            if args.processes is not None:
                loop = ProcPoolLoop(
                    config,
                    supervisor=sup_config,
                    chaos=_chaos_from_args(args, config),
                    processes=args.processes,
                    journal=args.journal, sync=args.sync,
                    max_segment_bytes=args.max_segment_bytes,
                    compact_every_rotations=args.compact_every,
                )
            else:
                loop = SupervisedLoop(
                    config,
                    supervisor=sup_config,
                    chaos=_chaos_from_args(args, config),
                    workers=args.workers,
                    journal=args.journal, sync=args.sync,
                    max_segment_bytes=args.max_segment_bytes,
                    compact_every_rotations=args.compact_every,
                )
        else:
            loop = ServiceLoop(
                config, journal=args.journal, sync=args.sync,
                max_segment_bytes=args.max_segment_bytes,
                compact_every_rotations=args.compact_every,
            )
    except Exception as exc:  # surfaced as a clean CLI error
        print(f"invalid serve configuration: {exc}", file=sys.stderr)
        return 2
    endpoint = None
    owns_obs = False
    if args.metrics_port is not None:
        # The endpoint reads the process-wide obs registry; enable one
        # for the run unless `trace` already installed its own.
        if not current_obs().enabled:
            enable_obs()
            owns_obs = True
        endpoint = MetricsEndpoint(
            _metrics_provider(loop), port=args.metrics_port
        )
        print(f"metrics endpoint: {endpoint.url}")
    try:
        return _run_serve(args, config, loop)
    finally:
        if endpoint is not None:
            if args.metrics_linger > 0:
                time.sleep(args.metrics_linger)
            endpoint.close()
        if owns_obs:
            disable_obs()


def _metrics_provider(loop):
    """The ``/metrics`` payload: obs registry + live per-tenant rows."""

    def provider() -> dict:
        payload = current_obs().metrics.snapshot()
        tenancy = loop._tenancy
        if tenancy is not None:
            timelines = loop.metrics.timelines
            n_steps = len(timelines[0].queue_depth) if timelines else 0
            payload["tenants"] = tenancy.tenant_rows(loop.metrics, n_steps)
        return payload

    return provider


def _run_serve(args: argparse.Namespace, config: ServeConfig, loop) -> int:
    """Drive a constructed serving loop and print its report."""
    try:
        report = loop.run()
    except ExecutionStalledError as exc:
        print(f"serving loop stalled:\n{exc}", file=sys.stderr)
        return 1
    title = (
        f"serve {config.arrivals} rate={config.rate} "
        f"shards={config.shards} seed={config.seed}"
    )
    print(format_serve_report(report.snapshot, title=title))
    ps, ad = report.planner_stats, report.admission_stats
    print(
        f"planner: {ps.noop_epochs} noop, {ps.incremental_plans} "
        f"incremental, {ps.full_replans} full, {ps.forced_replans} forced "
        f"({ps.planned_flushes} flushes planned)"
    )
    print(
        f"admission: {ad.admitted}/{ad.offered} admitted, {ad.shed} shed, "
        f"max queue depth {ad.max_queue_depth}, {ad.stall_holds} stall holds"
    )
    if "tenants" in report.snapshot:
        print("per-tenant:")
        print(format_tenant_report(report.snapshot))
    if config.engine == "lsm":
        if loop.store is not None:
            st = loop.store.stats()
            level_runs = \
                "/".join(str(lv["runs"]) for lv in st["levels"]) or "0"
            degraded = f", DEGRADED[{st['degraded']}]" if st["degraded"] \
                else ""
            print(
                f"store: {config.data_dir} — {st['seq']} op(s) "
                f"acknowledged, manifest v{st['manifest_version']}, "
                f"wal gen {st['wal_gen']}, runs per level {level_runs}"
                f"{degraded}"
            )
        else:
            # Procpool driver: the workers owned per-shard stores at
            # data_dir/shard-<k>; re-open read-only-ish for the summary.
            _print_sharded_store_summary(config)
    sup = getattr(report, "supervisor", None)
    if sup is not None:
        print(
            f"supervisor: {sup.trips} breaker trips, {sup.probes} probes, "
            f"{sup.restarts} restarts ({sup.replayed_flushes} flushes "
            f"replayed), {sup.quarantine_epochs} quarantine epochs, "
            f"{sup.spilled} spilled, {sup.spill_overflow_shed} overflow "
            f"shed, {sup.abandoned_shards} shards abandoned"
        )
        if sup.worker_deaths or sup.worker_respawns:
            # Deterministic counts only; real pids stay in worker_log.
            print(
                f"processes: {sup.worker_deaths} worker death(s), "
                f"{sup.worker_respawns} restarted on a fresh process, "
                f"watchdog {sup.watchdog_cancels} cancel / "
                f"{sup.watchdog_terminates} terminate / "
                f"{sup.watchdog_kills} kill"
            )
        if sup.diversions or sup.merge_backs:
            print(
                f"diversions: {sup.diversions} key-range diversion(s), "
                f"{sup.divert_handoff_msgs} message(s) handed off, "
                f"{sup.merge_backs} merged back"
            )
        if sup.disk_fault_windows:
            print(
                f"disk-faults: {sup.disk_fault_windows} window(s), "
                f"{sup.disk_faults_injected} fault(s) injected, "
                f"{sup.store_degraded_epochs} degraded epoch(s)"
            )
    chaos = getattr(report, "chaos", None)
    if chaos is not None and not chaos.is_zero:
        drawn = ", ".join(
            f"{e.kind}@{e.step}->shard{e.shard}"
            + (f" x{e.duration}" if e.duration else "")
            + (f" [{e.spec}]" if e.spec else "")
            for e in chaos.events
        )
        print(f"chaos plan ({len(chaos.events)} events): {drawn}")
    if args.journal:
        print(f"journal: {args.journal}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            f.write(report.metrics.to_json(
                report.n_steps, config=config.to_meta(),
            ))
        print(f"metrics JSON: {args.json}")
    return 0


def _print_sharded_store_summary(config: ServeConfig) -> None:
    """Summarize the procpool driver's per-shard stores.

    The worker processes are gone by report time, so the summary
    re-opens each ``data_dir/shard-<k>`` store (which is exactly the
    recovery path workers use) and prints one aggregate line.
    """
    from pathlib import Path

    from repro.lsm.disk import KVStore
    from repro.util.errors import StorageError

    shard_dirs = sorted(Path(config.data_dir).glob("shard-*"))
    if not shard_dirs:
        return
    ops = 0
    broken = []
    for shard_dir in shard_dirs:
        try:
            store = KVStore(shard_dir, sync=False)
        except (StorageError, OSError):
            broken.append(shard_dir.name)
            continue
        ops += store.stats()["seq"]
        store.close()
    line = (
        f"store: {config.data_dir} — {len(shard_dirs)} per-shard "
        f"store(s), {ops} op(s) acknowledged"
    )
    if broken:
        line += f", unreadable: {', '.join(broken)}"
    print(line)


def _recover_serve_journal(args: argparse.Namespace) -> int:
    """Serve-journal branch of ``recover``: re-derive, verify, report."""
    report = recover_serve(args.journal, repair=not args.no_repair)
    if report.torn_bytes:
        print(
            f"torn tail: {report.torn_bytes} byte(s) dropped "
            f"({report.torn_reason})"
        )
    if report.run_completed:
        print("journal records a completed run; nothing to resume")
    print(
        f"recovered serving run: {report.replayed_flushes} journaled "
        f"flush(es) verified against the re-derived run, last durable "
        f"step {report.resumed_from_step}"
    )
    snap = report.report.snapshot
    s = snap["sojourn"]
    print(
        f"re-derived run: {snap['n_steps']} steps, "
        f"{snap['completed']} completed, {snap['shed']} shed, sojourn "
        f"p50 {s['p50']:.0f} p99 {s['p99']:.0f} "
        "(identical to an uninterrupted run)"
    )
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """Run the `recover` subcommand (scan, repair, resume a journal)."""
    manager = RecoveryManager(args.journal)
    try:
        meta = manager.meta
        if meta is None:
            print(
                f"{args.journal}: no meta record survived; the run "
                "configuration cannot be reconstructed",
                file=sys.stderr,
            )
            return 1
        if args.seed is not None and meta.get("seed") not in (None, args.seed):
            print(
                f"--seed {args.seed} does not match the journal's own "
                f"seed {meta['seed']}; recovery always replays the "
                "journal's configuration",
                file=sys.stderr,
            )
            return 2
        if meta.get("policy") == SERVE_POLICY:
            return _recover_serve_journal(args)
        if meta.get("policy") != "worms":
            print(
                f"journal meta has unsupported policy "
                f"{meta.get('policy')!r}; cannot re-derive the reference "
                "schedule",
                file=sys.stderr,
            )
            return 2
        inst = _build_instance(
            messages=meta["messages"], P=meta["P"], B=meta["B"],
            leaves=meta["leaves"], fanout=meta["fanout"],
            height=meta["height"], skew=meta["skew"], seed=meta["seed"],
        )
        print(f"instance (rebuilt from journal meta): {inst!r}")
        ordered = [
            f for _t, f in WormsPolicy().schedule(inst).iter_timed()
        ]
        # Deterministic replay of the interrupted run's config gives the
        # schedule the journal must be a prefix of.
        reference = _executor_for(inst, meta).run(list(ordered))
        report = manager.recover(inst, reference, repair=not args.no_repair)
    except JournalCorruptionError as exc:
        print(f"journal corrupt: {exc}", file=sys.stderr)
        return 1
    except (KeyError, TypeError) as exc:
        print(f"journal meta unusable: {exc!r}", file=sys.stderr)
        return 2
    if report.torn_bytes:
        print(
            f"torn tail: {report.torn_bytes} byte(s) dropped "
            f"({report.torn_reason})"
        )
    if report.run_completed:
        print("journal records a completed run; nothing to resume")
    print(
        f"recovered: checkpoint at step {report.checkpoint_step}, "
        f"{report.replayed_flushes} journaled flush(es) replayed, "
        f"resumed from step {report.resumed_from_step}"
    )
    print(
        f"resumed run: {report.result.max_completion_time} steps, total "
        f"completion time {report.result.total_completion_time} "
        "(validated identical to the uninterrupted run)"
    )
    return 0


def cmd_compact(args: argparse.Namespace) -> int:
    """Run the `compact` subcommand (drop superseded sealed records)."""
    try:
        report = compact_journal(args.journal)
    except FileNotFoundError:
        print(f"{args.journal}: no such journal", file=sys.stderr)
        return 1
    except JournalCorruptionError as exc:
        print(f"journal corrupt: {exc}", file=sys.stderr)
        return 1
    if report.segments_total < 2:
        print(
            f"{args.journal}: single-segment journal; nothing sealed, "
            "nothing to compact"
        )
        return 0
    if report.checkpoint_step < 0:
        print(
            f"{args.journal}: no checkpoint in the "
            f"{report.segments_total - 1} sealed segment(s); nothing is "
            "superseded"
        )
        return 0
    by_type = ", ".join(
        f"{n} {kind}" for kind, n in sorted(report.dropped.items())
    ) or "none"
    print(
        f"compacted {report.segments_compacted} of "
        f"{report.segments_total - 1} sealed segment(s) "
        f"(supersession bar: checkpoint at step {report.checkpoint_step})"
    )
    print(f"dropped records: {by_type}")
    print(
        f"reclaimed {report.bytes_reclaimed} byte(s) "
        f"({report.bytes_before} -> {report.bytes_after})"
    )
    return 0


def _kv_op_stream(seed: int, n: int, key_space: int):
    """The deterministic op stream ``kv ingest`` writes and ``kv
    check-ingest`` re-derives: op ``i`` (1-based seq) is a put or a
    delete over a bounded key universe, all draws from ``seed``."""
    import numpy as np

    rng = np.random.default_rng(seed)
    for i in range(1, n + 1):
        key = f"k{int(rng.integers(0, key_space)):06d}"
        if rng.random() < 0.2:
            yield i, "del", key, None
        else:
            yield i, "put", key, {"seq": i, "payload": i * 7919 % 100003}


def cmd_kv(args: argparse.Namespace) -> int:
    """Run the `kv` subcommand (durable on-disk KV engine)."""
    import json as _json
    import os as _os
    import signal as _signal

    from repro.lsm.disk import KVStore, build_policy, run_scrub
    from repro.util.errors import StorageError

    def open_store():
        return KVStore(args.dir, sync=args.sync,
                       memtable_capacity=args.memtable_capacity,
                       size_ratio=args.size_ratio,
                       policy=build_policy(args.scheduler, pace=args.pace))

    try:
        if args.action == "ingest":
            store = open_store()
            for i, op, key, value in _kv_op_stream(
                args.seed, args.n, args.key_space
            ):
                if op == "put":
                    store.put(key, value)
                else:
                    store.delete(key)
                if args.crash_after and i >= args.crash_after:
                    # The acknowledged prefix is on disk; prove it by
                    # dying the hard way (no atexit, no flush).
                    _os.kill(_os.getpid(), _signal.SIGKILL)
            store.close()
            print(f"ingested {args.n} op(s) into {args.dir}")
            return 0
        if args.action == "check-ingest":
            store = open_store()
            frontier = store.stats()["seq"]
            expected: "dict[str, object]" = {}
            for i, op, key, value in _kv_op_stream(
                args.seed, args.n, args.key_space
            ):
                if i > frontier:
                    break
                if op == "put":
                    expected[key] = value
                else:
                    expected.pop(key, None)
            got = dict(store.items())
            store.close()
            if got != expected:
                missing = sorted(set(expected) - set(got))
                extra = sorted(set(got) - set(expected))
                wrong = sorted(
                    k for k in set(got) & set(expected)
                    if got[k] != expected[k]
                )
                print(
                    f"ACKNOWLEDGED STATE LOST: frontier seq {frontier}, "
                    f"{len(missing)} missing, {len(extra)} extra, "
                    f"{len(wrong)} wrong value(s)",
                    file=sys.stderr,
                )
                return 1
            print(
                f"exact: all {frontier} acknowledged op(s) recovered "
                f"({len(expected)} live key(s))"
            )
            return 0
        if args.action == "get":
            store = open_store()
            sentinel = object()
            value = store.get(args.key, sentinel)
            store.close()
            if value is sentinel:
                print(f"{args.key}: not found", file=sys.stderr)
                return 1
            print(_json.dumps(value, sort_keys=True))
            return 0
        if args.action == "put":
            store = open_store()
            seq = store.put(args.key, _json.loads(args.value))
            store.close()
            print(f"seq {seq}")
            return 0
        if args.action == "del":
            store = open_store()
            seq = store.delete(args.key)
            store.close()
            print(f"seq {seq}")
            return 0
        if args.action in ("verify", "scrub"):
            store = open_store()
            store.check_invariants()
            report = run_scrub(store, repair=args.action == "scrub")
            store.close()
            payload = report.to_payload()
            if args.json:
                with open(args.json, "w", encoding="utf-8") as f:
                    _json.dump(payload, f, indent=2, sort_keys=True)
            if report.clean:
                print(
                    f"clean: {report.files_checked} file(s), "
                    f"{report.blocks_checked} block(s), "
                    f"{report.wal_generations_checked} WAL generation(s) "
                    "verified"
                )
                return 0
            for f in report.findings:
                print(
                    f"finding: {f.path} block {f.block} offset "
                    f"{f.offset} ({f.reason})"
                )
            if args.action == "scrub":
                print(
                    f"repaired: {len(report.quarantined)} file(s) "
                    f"quarantined, {report.salvaged_entries} entry(ies) "
                    f"salvaged; lost ranges: "
                    + (", ".join(
                        f"[{r.first_key}..{r.last_key}] "
                        f"({r.classification}, {r.entries_lost} entries)"
                        for r in report.lost
                    ) or "none")
                )
            return 1
        if args.action == "compact":
            store = open_store()
            tasks = (
                store.drain_backlog()
                if args.drain else len(store.maintain(args.budget))
            )
            store.check_invariants()
            stats = store.stats()
            store.close()
            runs = "/".join(str(lv["runs"]) for lv in stats["levels"])
            print(f"{tasks} compaction task(s) run; runs per level {runs}")
            return 0
        if args.action == "stats":
            store = open_store()
            stats = store.stats()
            store.close()
            if args.json:
                with open(args.json, "w", encoding="utf-8") as f:
                    _json.dump(stats, f, indent=2, sort_keys=True)
            print(_json.dumps(stats, indent=2, sort_keys=True))
            return 0
        print(f"unknown kv action {args.action!r}", file=sys.stderr)
        return 2
    except StorageError as exc:
        reason = getattr(exc, "reason", "")
        tag = f" [{reason}]" if reason else ""
        print(f"storage error{tag}: {exc}", file=sys.stderr)
        return 1


def cmd_stability(args: argparse.Namespace) -> int:
    """Run the `stability` subcommand (long-run stall bench harness)."""
    import json as _json

    from repro.stability import (
        StabilityConfig,
        format_stability_report,
        run_stability,
    )

    try:
        config = StabilityConfig(
            scenario=args.scenario,
            messages=args.messages,
            seed=args.seed,
            shards=args.shards,
            P=args.P,
            B=args.B,
            height=args.height,
            leaves=args.leaves,
            epoch=args.epoch,
            pace=args.pace,
            fault_rate=args.fault_rate,
            fault_seed=args.fault_seed,
            engine=args.engine,
            data_dir=args.data_dir or "",
            window=args.window,
            stall_frac=args.stall_frac,
            trailing=args.trailing,
        )
    except Exception as exc:  # surfaced as a clean CLI error
        print(f"invalid stability configuration: {exc}", file=sys.stderr)
        return 2
    try:
        doc = run_stability(config)
    except ExecutionStalledError as exc:
        print(f"stability run stalled:\n{exc}", file=sys.stderr)
        return 1
    print(format_stability_report(doc))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"stability JSON: {args.json}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run the `trace` subcommand (any other subcommand, observed)."""
    if args.subcommand == "trace":
        print("trace cannot wrap itself", file=sys.stderr)
        return 2
    inner_argv = [args.subcommand] + list(args.rest)
    try:
        inner = build_parser().parse_args(inner_argv)
    except SystemExit:
        return 2
    out = args.out
    with observed() as ctx:
        code = inner.func(inner)
    trace_path = f"{out}.trace.json"
    metrics_path = f"{out}.metrics.json"
    spans_path = f"{out}.spans.txt"
    write_chrome_trace(trace_path, ctx.tracer, ctx.metrics)
    with open(metrics_path, "w", encoding="utf-8") as f:
        f.write(ctx.metrics.to_json(command=inner_argv))
        f.write("\n")
    with open(spans_path, "w", encoding="utf-8") as f:
        f.write(span_tree(ctx.tracer))
        f.write("\n")
    print()
    print(ctx.profiler.report(title=f"phase profile: {' '.join(inner_argv)}"))
    print(f"trace:   {trace_path} ({ctx.tracer.n_spans} spans; open in "
          "https://ui.perfetto.dev or chrome://tracing)")
    print(f"metrics: {metrics_path}")
    print(f"spans:   {spans_path}")
    return code


def cmd_gadget(args: argparse.Namespace) -> int:
    """Run the `gadget` subcommand (Lemma 15 decision + schedule)."""
    try:
        gadget = build_gadget(args.integers)
    except Exception as exc:  # surfaced as a clean CLI error
        print(f"invalid 3-partition input: {exc}", file=sys.stderr)
        return 2
    print(
        f"gadget: n'={gadget.n_groups}, K={gadget.K}, X={gadget.X}, "
        f"B={gadget.B}, |M|={gadget.instance.n_messages}, C1={gadget.C1}"
    )
    partition = solve_three_partition(args.integers)
    if partition is None:
        print("NO: no 3-partition exists; no 4n'-flush schedule meets C1")
        return 1
    print(f"YES: partition {partition}")
    sched = canonical_gadget_schedule(gadget, partition)
    res = validate_valid(gadget.instance, sched)
    print(
        f"canonical schedule: makespan {res.max_completion_time} "
        f"(= 4n' = {4 * gadget.n_groups}), "
        f"cost {res.total_completion_time} <= C1 = {gadget.C1}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse tree for `python -m repro`."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Root-to-leaf scheduling in write-optimized trees.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_instance_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--messages", type=int, default=1000)
        p.add_argument("--P", type=int, default=4)
        p.add_argument("--B", type=int, default=64)
        p.add_argument("--leaves", type=int, default=256,
                       help="B^eps-shaped tree with this many leaves")
        p.add_argument("--fanout", type=int, default=0,
                       help="use a balanced tree with this fanout instead")
        p.add_argument("--height", type=int, default=3)
        p.add_argument("--skew", type=float, default=0.0,
                       help="Zipf theta (0 = uniform)")
        p.add_argument("--seed", type=int, default=0)

    p_compare = sub.add_parser("compare", help="compare flushing policies")
    add_instance_args(p_compare)
    p_compare.set_defaults(func=cmd_compare)

    p_solve = sub.add_parser("solve", help="run the full paper pipeline")
    add_instance_args(p_solve)
    p_solve.set_defaults(func=cmd_solve)

    p_faults = sub.add_parser(
        "faults", help="fault-injection resilience report"
    )
    add_instance_args(p_faults)
    p_faults.add_argument(
        "--rates", type=str, default="0.05,0.1,0.2",
        help="comma-separated fault rates to sweep",
    )
    p_faults.add_argument(
        "--retry-budget", type=int, default=5,
        help="flush attempts before the executor re-plans",
    )
    p_faults.add_argument(
        "--burst", action="store_true",
        help="correlated Markov-modulated bursts instead of iid faults",
    )
    p_faults.add_argument(
        "--fault-aware", action="store_true",
        help="enable fault-aware admission in the resilient executor",
    )
    p_faults.set_defaults(func=cmd_faults)

    p_run = sub.add_parser(
        "run", help="journaled WORMS execution (crash-recoverable)"
    )
    add_instance_args(p_run)
    p_run.add_argument(
        "--journal", type=str, required=True,
        help="path the execution journal is streamed to",
    )
    p_run.add_argument(
        "--checkpoint-every", type=int, default=DEFAULT_CHECKPOINT_EVERY,
        help="steps between journaled state checkpoints",
    )
    p_run.add_argument(
        "--sync", action="store_true",
        help="fsync the journal at every checkpoint (real durability)",
    )
    p_run.add_argument(
        "--max-segment-bytes", type=int, default=None,
        help="rotate the journal into segments of at most this many bytes",
    )
    p_run.add_argument(
        "--compact-every", type=int, default=0,
        help="auto-compact sealed segments every N rotations (0 = never)",
    )
    p_run.add_argument(
        "--rate", type=float, default=0.0,
        help="fault rate to execute under (0 = fault-free)",
    )
    p_run.add_argument(
        "--burst", action="store_true",
        help="correlated Markov-modulated bursts instead of iid faults",
    )
    p_run.add_argument("--fault-seed", type=int, default=0)
    p_run.add_argument("--fault-aware", action="store_true")
    p_run.add_argument("--retry-budget", type=int, default=5)
    p_run.set_defaults(func=cmd_run)

    p_recover = sub.add_parser(
        "recover", help="scan, repair, and resume an execution journal"
    )
    p_recover.add_argument("journal", type=str)
    p_recover.add_argument(
        "--no-repair", action="store_true",
        help="scan and resume without truncating the torn tail in place",
    )
    p_recover.add_argument(
        "--seed", type=int, default=None,
        help="sanity check: error out if the journal was written with a "
        "different seed (recovery itself always uses the journal's meta)",
    )
    p_recover.set_defaults(func=cmd_recover)

    p_gadget = sub.add_parser("gadget", help="Lemma 15 NP-hardness gadget")
    p_gadget.add_argument("integers", type=int, nargs="+")
    p_gadget.add_argument(
        "--seed", type=int, default=0,
        help="accepted for interface uniformity (the gadget construction "
        "is fully deterministic)",
    )
    p_gadget.set_defaults(func=cmd_gadget)

    p_serve = sub.add_parser(
        "serve", help="online serving loop over sharded B^eps-trees"
    )
    p_serve.add_argument(
        "--arrivals", choices=("poisson", "mmpp", "closed"),
        default="poisson",
    )
    p_serve.add_argument(
        "--rate", type=float, default=8.0,
        help="mean arrivals per step (poisson; calm rate for mmpp)",
    )
    p_serve.add_argument(
        "--burst-rate", type=float, default=32.0,
        help="mmpp burst-state arrival rate",
    )
    p_serve.add_argument("--p-burst", type=float, default=0.05,
                         help="mmpp calm->burst transition probability")
    p_serve.add_argument("--p-calm", type=float, default=0.25,
                         help="mmpp burst->calm transition probability")
    p_serve.add_argument("--clients", type=int, default=16,
                         help="closed-loop client count")
    p_serve.add_argument("--think-time", type=int, default=0,
                         help="closed-loop think time between requests")
    p_serve.add_argument("--messages", type=int, default=1000,
                         help="total messages to serve before shutdown")
    p_serve.add_argument("--shards", type=int, default=4)
    p_serve.add_argument("--key-space", type=int, default=0,
                         help="key universe size (0 = one key per leaf)")
    p_serve.add_argument("--skew", type=float, default=0.0,
                         help="Zipf theta of key popularity (0 = uniform)")
    p_serve.add_argument("--P", type=int, default=4)
    p_serve.add_argument("--B", type=int, default=16)
    p_serve.add_argument("--fanout", type=int, default=0,
                         help="balanced shard trees with this fanout")
    p_serve.add_argument("--height", type=int, default=3)
    p_serve.add_argument("--leaves", type=int, default=64,
                         help="B^eps-shaped shard trees with this many leaves")
    p_serve.add_argument("--epoch", type=int, default=8,
                         help="steps between re-planning epochs")
    p_serve.add_argument("--pace", type=int, default=0,
                         help="de-amortization budget: per-step flushed "
                         "messages allowed per shard (0 = off; off is "
                         "byte-identical to omitting the flag)")
    p_serve.add_argument("--max-root-backlog", type=int, default=0,
                         help="admitted messages allowed at a shard root "
                         "(0 = 4*B)")
    p_serve.add_argument("--max-queue", type=int, default=0,
                         help="arrivals allowed to queue per shard before "
                         "shedding (0 = 16*B)")
    p_serve.add_argument("--fault-rate", type=float, default=0.0)
    p_serve.add_argument("--fault-seed", type=int, default=0)
    p_serve.add_argument("--fault-aware", action="store_true")
    p_serve.add_argument("--retry-budget", type=int, default=5)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--engine", choices=("sim", "lsm"), default="sim",
                         help="storage engine behind completions: 'sim' "
                         "(in-memory) or 'lsm' (durable on-disk KV store; "
                         "needs --data-dir).  The engine is a passive "
                         "sink, so schedules are identical either way")
    p_serve.add_argument("--data-dir", type=str, default=None,
                         help="directory for the 'lsm' engine's store")
    p_serve.add_argument("--journal", type=str, default=None,
                         help="stream a crash-recoverable journal here")
    p_serve.add_argument("--checkpoint-every", type=int, default=32,
                         help="steps between journal checkpoints")
    p_serve.add_argument("--sync", action="store_true",
                         help="fsync the journal at every checkpoint")
    p_serve.add_argument("--max-segment-bytes", type=int, default=None,
                         help="rotate the journal into segments of at most "
                         "this many bytes")
    p_serve.add_argument("--compact-every", type=int, default=0,
                         help="auto-compact sealed segments every N journal "
                         "rotations (0 = never)")
    p_serve.add_argument("--supervised", action="store_true",
                         help="run under shard supervision: per-epoch health "
                         "tracking, circuit breakers, live restart-from-"
                         "journal (single-shard fault-free runs stay "
                         "byte-identical to the plain loop)")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="supervised worker threads (0 = one per shard, "
                         "1 = sequential)")
    p_serve.add_argument("--processes", type=int, default=None,
                         help="shard-per-process driver: run shards in this "
                         "many shared-nothing worker processes (0 = one per "
                         "shard; implies --supervised; fault-free journals "
                         "stay byte-identical to the plain loop)")
    p_serve.add_argument("--divert", action="store_true",
                         help="while a shard's breaker is open, divert its "
                         "key range to a healthy neighbor via a journal-"
                         "checkpointed spill handoff, merging back on probe "
                         "success")
    p_serve.add_argument("--chaos", action="store_true",
                         help="draw a seeded whole-shard chaos drill "
                         "(implies --supervised; composition is a pure "
                         "function of --seed)")
    p_serve.add_argument("--chaos-kills", type=int, default=1,
                         help="shard-kill events in the drill")
    p_serve.add_argument("--chaos-stalls", type=int, default=1,
                         help="whole-shard stall windows in the drill")
    p_serve.add_argument("--chaos-corrupts", type=int, default=0,
                         help="restart-source corruptions in the drill")
    p_serve.add_argument("--chaos-kill-workers", type=int, default=0,
                         help="worker-process SIGKILL events in the drill "
                         "(a state-loss kill under the thread driver)")
    p_serve.add_argument("--chaos-disk-faults", type=int, default=0,
                         help="syscall-level I/O fault windows in the "
                         "drill (EIO/ENOSPC/short-write/fsync-fail "
                         "against the durable store; needs --engine lsm "
                         "to have anything to hit)")
    p_serve.add_argument("--chaos-stall-duration", type=int, default=8,
                         help="steps each stall window lasts")
    p_serve.add_argument("--chaos-disk-fault-duration", type=int, default=4,
                         help="steps each disk-fault window stays armed")
    p_serve.add_argument("--chaos-horizon", type=int, default=0,
                         help="latest step a chaos event may fire "
                         "(0 = derived from the workload)")
    p_serve.add_argument("--trip-after", type=int, default=2,
                         help="consecutive stalled epochs that trip a "
                         "shard's circuit breaker")
    p_serve.add_argument("--probe-backoff", type=int, default=1,
                         help="epochs an open breaker waits before its "
                         "first half-open probe (doubles per trip)")
    p_serve.add_argument("--max-backoff", type=int, default=8,
                         help="cap on the probe backoff in epochs")
    p_serve.add_argument("--spill-capacity", type=int, default=0,
                         help="arrivals held per quarantined shard before "
                         "counted shedding (0 = 16*B)")
    p_serve.add_argument("--restart-budget", type=int, default=3,
                         help="live restarts per shard before abandonment")
    p_serve.add_argument("--watchdog-deadline", type=float, default=30.0,
                         help="seconds per shard-step before the "
                         "multi-worker watchdog counts a miss")
    p_serve.add_argument("--watchdog-budget", type=int, default=3,
                         help="consecutive watchdog misses before the run "
                         "fails with a stall diagnosis")
    p_serve.add_argument("--tenants", type=int, default=0,
                         help="run N tenants (t0..tN-1) through weighted-"
                         "fair admission; each gets its own seeded arrival "
                         "process and key sampler (0 = tenancy off, "
                         "byte-identical to a pre-tenancy run)")
    p_serve.add_argument("--tenant-rates", type=str, default=None,
                         help="comma-separated per-tenant arrival rates "
                         "(default: 4.0 each); message budgets split "
                         "proportionally to the rates")
    p_serve.add_argument("--tenant-weights", type=str, default=None,
                         help="comma-separated deficit-round-robin "
                         "admission weights (default: 1.0 each)")
    p_serve.add_argument("--tenant-thetas", type=str, default=None,
                         help="comma-separated Zipf skews of each tenant's "
                         "key sampler (default: 0.0 each)")
    p_serve.add_argument("--tenant-slo", type=str, default=None,
                         help="comma-separated sojourn SLO targets in steps "
                         "(0 = untracked); two violating epochs in a row "
                         "shed the violating tenant's queue first")
    p_serve.add_argument("--tenant-slo-percentile", type=float, default=99.0,
                         help="percentile the sojourn SLO targets apply to")
    p_serve.add_argument("--tenant-quota", type=str, default=None,
                         help="comma-separated per-shard buffer quotas: max "
                         "messages a tenant may have resident in one "
                         "shard's internal-node buffers (0 = unlimited)")
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         help="serve the obs registry + per-tenant SLO "
                         "state as JSON on http://127.0.0.1:PORT/metrics "
                         "for the duration of the run (0 = ephemeral "
                         "port; default: off)")
    p_serve.add_argument("--metrics-linger", type=float, default=0.0,
                         help="keep the /metrics endpoint up this many "
                         "seconds after the run finishes (CI scraping)")
    p_serve.add_argument("--json", type=str, default=None,
                         help="also write the metrics snapshot to this file")
    p_serve.set_defaults(func=cmd_serve)

    p_compact = sub.add_parser(
        "compact", help="drop sealed journal records a checkpoint supersedes"
    )
    p_compact.add_argument("journal", type=str)
    p_compact.set_defaults(func=cmd_compact)

    p_stab = sub.add_parser(
        "stability",
        help="long-run stall bench: seeded MMPP scenario -> stall-window "
             "detector -> schema-versioned JSON",
    )
    p_stab.add_argument("--scenario", choices=("diurnal", "flash-crowd"),
                        default="flash-crowd")
    p_stab.add_argument("--messages", type=int, default=20000)
    p_stab.add_argument("--seed", type=int, default=0)
    p_stab.add_argument("--shards", type=int, default=4)
    p_stab.add_argument("--P", type=int, default=4)
    p_stab.add_argument("--B", type=int, default=16)
    p_stab.add_argument("--height", type=int, default=3)
    p_stab.add_argument("--leaves", type=int, default=64)
    p_stab.add_argument("--epoch", type=int, default=8)
    p_stab.add_argument("--pace", type=int, default=0,
                        help="de-amortization budget (0 = controller off)")
    p_stab.add_argument("--fault-rate", type=float, default=0.0,
                        help="compaction-interference injection rate")
    p_stab.add_argument("--fault-seed", type=int, default=0)
    p_stab.add_argument("--engine", choices=("sim", "lsm"), default="sim",
                        help="'lsm' runs the real disk store inline and "
                        "attributes stalls overlapping its compactions "
                        "natively (needs --data-dir)")
    p_stab.add_argument("--data-dir", type=str, default=None,
                        help="directory for the 'lsm' engine's store")
    p_stab.add_argument("--window", type=int, default=16,
                        help="DAM steps per detector window")
    p_stab.add_argument("--stall-frac", type=float, default=0.5,
                        help="stalled when throughput < frac * trailing "
                             "healthy mean")
    p_stab.add_argument("--trailing", type=int, default=8,
                        help="healthy windows in the trailing mean")
    p_stab.add_argument("--json", type=str, default=None,
                        help="write the stability/v1 document here")
    p_stab.set_defaults(func=cmd_stability)

    p_kv = sub.add_parser(
        "kv", help="durable on-disk KV engine (WAL + SSTables + manifest)",
        description="Operate one repro.lsm.disk store directly: seeded "
        "ingest (optionally SIGKILLing itself mid-stream), exact "
        "read-back verification of the acknowledged prefix, point "
        "get/put/del, checksum verify/scrub, compaction, and stats.",
    )
    p_kv.add_argument(
        "action",
        choices=("ingest", "check-ingest", "get", "put", "del",
                 "verify", "scrub", "compact", "stats"),
    )
    p_kv.add_argument("key", nargs="?", default=None,
                      help="key for get/put/del")
    p_kv.add_argument("value", nargs="?", default=None,
                      help="JSON value for put")
    p_kv.add_argument("--dir", type=str, required=True,
                      help="the store's directory")
    p_kv.add_argument("--n", type=int, default=1000,
                      help="ops in the seeded ingest stream")
    p_kv.add_argument("--seed", type=int, default=0)
    p_kv.add_argument("--key-space", type=int, default=256,
                      help="key universe of the ingest stream")
    p_kv.add_argument("--crash-after", type=int, default=0,
                      help="SIGKILL the ingest after this many "
                      "acknowledged ops (0 = run to completion)")
    p_kv.add_argument("--sync", action="store_true",
                      help="fsync the WAL at every acknowledged op")
    p_kv.add_argument("--memtable-capacity", type=int, default=256)
    p_kv.add_argument("--size-ratio", type=int, default=4)
    p_kv.add_argument("--budget", type=int, default=1,
                      help="compaction tasks per `kv compact`")
    p_kv.add_argument("--scheduler", choices=("horn", "leveling"),
                      default="horn",
                      help="compaction scheduling policy")
    p_kv.add_argument("--pace", type=int, default=0,
                      help="entry budget per density compaction task "
                           "(0 = unpaced; capacity repair is exempt)")
    p_kv.add_argument("--drain", action="store_true",
                      help="compact until the scheduler is satisfied")
    p_kv.add_argument("--json", type=str, default=None,
                      help="also write the report/stats JSON here")
    p_kv.set_defaults(func=cmd_kv)

    p_trace = sub.add_parser(
        "trace", help="run any subcommand under observability",
        description="Run another subcommand with tracing/metrics/profiling "
        "enabled and write <out>.trace.json (Perfetto), <out>.metrics.json "
        "(deterministic snapshot), and <out>.spans.txt.  Options for trace "
        "itself (--out) go before the wrapped subcommand; everything after "
        "it is passed through.",
    )
    p_trace.add_argument(
        "--out", type=str, default="repro-trace",
        help="artifact path prefix (default: repro-trace)",
    )
    p_trace.add_argument("subcommand", type=str,
                         help="the subcommand to run under observability")
    p_trace.add_argument("rest", nargs=argparse.REMAINDER,
                         help="arguments for the wrapped subcommand")
    p_trace.set_defaults(func=cmd_trace)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
