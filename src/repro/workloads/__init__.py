"""Workload generators producing WORMS instances for tests and benches."""

from repro.workloads.generators import (
    adversarial_instance,
    clustered_purge_instance,
    single_leaf_burst_instance,
    uniform_instance,
    zipf_instance,
)

__all__ = [
    "uniform_instance",
    "zipf_instance",
    "clustered_purge_instance",
    "single_leaf_burst_instance",
    "adversarial_instance",
]
