"""WORMS workload generators.

Every generator returns a ready-to-schedule :class:`WORMSInstance` over a
caller-supplied topology.  The distributions mirror the scenarios the
paper's introduction motivates:

* ``uniform_instance`` — a generic backlog, targets uniform over leaves;
* ``zipf_instance`` — skewed key popularity (real key-value workloads);
* ``clustered_purge_instance`` — the nightly secure-delete purge: most
  deletes hit a few subtrees (yesterday's data), a trickle is scattered;
* ``single_leaf_burst_instance`` — the best case for batching;
* ``adversarial_instance`` — 3-partition-style leaf loads (``X + i``
  messages per leaf) that stress packing decisions, after the
  NP-hardness gadget of Lemma 15.
"""

from __future__ import annotations

import numpy as np

from repro.core.worms import WORMSInstance
from repro.tree.messages import Message, MessageKind
from repro.tree.topology import TreeTopology
from repro.util.errors import InvalidInstanceError
from repro.util.rng import make_rng


def _build(
    topology: TreeTopology,
    targets: np.ndarray,
    P: int,
    B: int,
    kind: MessageKind,
) -> WORMSInstance:
    messages = [
        Message(i, int(t), kind) for i, t in enumerate(targets)
    ]
    return WORMSInstance(topology, messages, P=P, B=B)


def uniform_instance(
    topology: TreeTopology,
    n_messages: int,
    P: int,
    B: int,
    *,
    kind: MessageKind = MessageKind.SECURE_DELETE,
    seed: "int | None" = None,
) -> WORMSInstance:
    """Targets drawn uniformly at random over all leaves."""
    rng = make_rng(seed)
    leaves = np.asarray(topology.leaves, dtype=np.int64)
    targets = rng.choice(leaves, size=n_messages)
    return _build(topology, targets, P, B, kind)


def zipf_instance(
    topology: TreeTopology,
    n_messages: int,
    P: int,
    B: int,
    *,
    theta: float = 1.0,
    kind: MessageKind = MessageKind.SECURE_DELETE,
    seed: "int | None" = None,
) -> WORMSInstance:
    """Targets drawn from a Zipf(theta) distribution over leaves.

    ``theta = 0`` degenerates to uniform; larger values concentrate the
    backlog on a few hot leaves.  Leaf ranks are shuffled so hotness does
    not correlate with leaf id.
    """
    if theta < 0:
        raise InvalidInstanceError(f"theta must be >= 0, got {theta}")
    rng = make_rng(seed)
    leaves = np.asarray(topology.leaves, dtype=np.int64)
    ranks = np.arange(1, len(leaves) + 1, dtype=np.float64)
    probs = ranks**-theta
    probs /= probs.sum()
    shuffled = rng.permutation(leaves)
    targets = rng.choice(shuffled, size=n_messages, p=probs)
    return _build(topology, targets, P, B, kind)


def clustered_purge_instance(
    topology: TreeTopology,
    n_messages: int,
    P: int,
    B: int,
    *,
    n_clusters: int = 2,
    cluster_fraction: float = 0.9,
    kind: MessageKind = MessageKind.SECURE_DELETE,
    seed: "int | None" = None,
) -> WORMSInstance:
    """The nightly purge: ``cluster_fraction`` of deletes hit the leaves
    under ``n_clusters`` random height-1 subtrees, the rest is scattered
    uniformly."""
    if not (0.0 <= cluster_fraction <= 1.0):
        raise InvalidInstanceError("cluster_fraction must be in [0, 1]")
    rng = make_rng(seed)
    leaves = np.asarray(topology.leaves, dtype=np.int64)
    top = list(topology.children_of(topology.root)) or [topology.root]
    chosen = rng.choice(
        np.asarray(top, dtype=np.int64),
        size=min(n_clusters, len(top)),
        replace=False,
    )
    cluster_leaves: list[int] = []
    for v in chosen:
        cluster_leaves.extend(topology.leaves_under(int(v)))
    cluster_leaves_arr = np.asarray(sorted(set(cluster_leaves)), dtype=np.int64)
    in_cluster = rng.random(n_messages) < cluster_fraction
    targets = np.where(
        in_cluster,
        rng.choice(cluster_leaves_arr, size=n_messages),
        rng.choice(leaves, size=n_messages),
    )
    return _build(topology, targets, P, B, kind)


def single_leaf_burst_instance(
    topology: TreeTopology,
    n_messages: int,
    P: int,
    B: int,
    *,
    leaf: "int | None" = None,
    kind: MessageKind = MessageKind.SECURE_DELETE,
    seed: "int | None" = None,
) -> WORMSInstance:
    """Every message targets one leaf (maximal batching opportunity)."""
    if leaf is None:
        rng = make_rng(seed)
        leaf = int(rng.choice(np.asarray(topology.leaves, dtype=np.int64)))
    targets = np.full(n_messages, leaf, dtype=np.int64)
    return _build(topology, targets, P, B, kind)


def adversarial_instance(
    topology: TreeTopology,
    P: int,
    B: int,
    *,
    base_load: "int | None" = None,
    jitter: int = 3,
    kind: MessageKind = MessageKind.SECURE_DELETE,
    seed: "int | None" = None,
) -> WORMSInstance:
    """Near-equal per-leaf loads ``X + i`` in the style of the Lemma 15
    gadget: every leaf gets ``base_load`` messages plus a small jitter, so
    which leaves share a packed set materially changes the cost."""
    rng = make_rng(seed)
    leaves = list(topology.leaves)
    if base_load is None:
        base_load = max(1, B // (3 * max(1, len(leaves))) * len(leaves) or B // 4)
        base_load = max(1, B // 4)
    loads = [
        base_load + int(rng.integers(0, jitter + 1)) for _ in leaves
    ]
    targets: list[int] = []
    for leaf, load in zip(leaves, loads):
        targets.extend([leaf] * load)
    return _build(topology, np.asarray(targets, dtype=np.int64), P, B, kind)
