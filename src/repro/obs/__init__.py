"""repro.obs — end-to-end observability for the flush pipeline.

Four cooperating pieces, all zero-dependency and all free when off:

* :mod:`~repro.obs.tracer` — structured spans (name, DAM-step range,
  attributes, parent) with an allocation-free no-op fast path;
* :mod:`~repro.obs.metrics` — a registry of counters / gauges /
  histograms with labeled children and deterministic JSON snapshots;
* :mod:`~repro.obs.export` — Chrome ``chrome://tracing`` / Perfetto
  JSON trace writer plus a plain-text span tree;
* :mod:`~repro.obs.profile` — opt-in wall-clock phase profiler
  (plan / execute / journal / recover) with nearest-rank percentiles.

:mod:`~repro.obs.hooks` binds them into one :class:`ObsContext` that the
execution layers (executors, simulator, journal, serving loop, MPHTF
pipeline) consult; ``python -m repro trace <subcommand> ...`` runs any
CLI workflow under an enabled context and writes the artifacts.  See
``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    span_tree,
    write_chrome_trace,
)
from repro.obs.hooks import (
    DISABLED,
    ObsContext,
    current_obs,
    disable_obs,
    enable_obs,
    observed,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import (
    PHASE_EXECUTE,
    PHASE_JOURNAL,
    PHASE_PLAN,
    PHASE_RECOVER,
    PhaseProfiler,
)
from repro.obs.tracer import NOOP_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "DISABLED",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "ObsContext",
    "PHASE_EXECUTE",
    "PHASE_JOURNAL",
    "PHASE_PLAN",
    "PHASE_RECOVER",
    "PhaseProfiler",
    "Span",
    "Tracer",
    "chrome_trace",
    "chrome_trace_events",
    "current_obs",
    "disable_obs",
    "enable_obs",
    "observed",
    "span_tree",
    "write_chrome_trace",
]
