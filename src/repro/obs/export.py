"""Trace exporters: Chrome/Perfetto JSON and a plain-text span tree.

``chrome://tracing`` and https://ui.perfetto.dev both read the Chrome
Trace Event JSON format — a list of *complete* events (``"ph": "X"``)
with microsecond timestamps.  :func:`write_chrome_trace` renders a
:class:`~repro.obs.tracer.Tracer`'s spans into that format, one named
track per span category (executor, serve, pipeline, journal, ...), so a
run opens in Perfetto as a flame chart with the DAM-step ranges and
attributes attached to every slice's ``args``.

:func:`span_tree` is the terminal-friendly counterpart: the same span
forest as an indented text tree with durations and attributes, for quick
looks without leaving the shell.
"""

from __future__ import annotations

import json
import os

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer


def _span_args(span: Span) -> dict:
    args = dict(span.attrs)
    if span.step_lo is not None:
        args["step_lo"] = span.step_lo
        args["step_hi"] = span.step_hi
    return args


def chrome_trace_events(tracer: Tracer, *, pid: int = 1) -> "list[dict]":
    """The tracer's spans as Chrome Trace Event dicts.

    Timestamps are microseconds relative to the earliest span start (so
    the trace opens at t=0).  Each distinct span category becomes its own
    thread/track, named via ``thread_name`` metadata events; spans with
    no category share track 0.
    """
    spans = tracer.spans
    events: "list[dict]" = []
    if not spans:
        return events
    base_ns = min(s.start_ns for s in spans)
    categories: "dict[str, int]" = {}
    for span in spans:
        cat = span.category
        if cat not in categories:
            categories[cat] = len(categories)
    for cat, tid in sorted(categories.items(), key=lambda kv: kv[1]):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": cat or "main"},
        })
    # Sort by start time so slices nest correctly in the viewer.
    for span in sorted(spans, key=lambda s: (s.start_ns, s.span_id)):
        end_ns = span.end_ns if span.end_ns is not None else span.start_ns
        events.append({
            "name": span.name,
            "cat": span.category or "main",
            "ph": "X",
            "ts": (span.start_ns - base_ns) / 1000.0,
            "dur": (end_ns - span.start_ns) / 1000.0,
            "pid": pid,
            "tid": categories[span.category],
            "args": _span_args(span),
        })
    return events


def chrome_trace(tracer: Tracer,
                 metrics: "MetricsRegistry | None" = None) -> dict:
    """The full Chrome-trace JSON document (a dict, ready to serialize)."""
    doc = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        doc["otherData"] = {"metrics": metrics.snapshot()}
    return doc


def write_chrome_trace(path: "str | os.PathLike", tracer: Tracer,
                       metrics: "MetricsRegistry | None" = None) -> str:
    """Write the Perfetto-loadable trace JSON to ``path``; returns it."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(chrome_trace(tracer, metrics), f, indent=1)
    return os.fspath(path)


# ----------------------------------------------------------------------
def _render(span: Span, children: "dict[int | None, list[Span]]",
            depth: int, lines: "list[str]") -> None:
    ms = span.duration_ns / 1e6
    steps = (
        f" [steps {span.step_lo}..{span.step_hi}]"
        if span.step_lo is not None else ""
    )
    attrs = ""
    if span.attrs:
        attrs = " " + " ".join(
            f"{k}={span.attrs[k]}" for k in sorted(span.attrs)
        )
    lines.append(f"{'  ' * depth}{span.name} {ms:.3f}ms{steps}{attrs}")
    for child in children.get(span.span_id, ()):
        _render(child, children, depth + 1, lines)


def span_tree(tracer: Tracer) -> str:
    """The span forest as an indented text tree (creation order)."""
    children: "dict[int | None, list[Span]]" = {}
    span_ids = {s.span_id for s in tracer.spans}
    for span in sorted(tracer.spans, key=lambda s: s.span_id):
        # A parent that never finished (still open at export) is absent
        # from the record; promote its children to roots.
        parent = span.parent_id if span.parent_id in span_ids else None
        children.setdefault(parent, []).append(span)
    lines: "list[str]" = []
    for root in children.get(None, ()):
        _render(root, children, 0, lines)
    return "\n".join(lines)
