"""Zero-dependency structured tracing spans.

A *span* is a named interval of work with wall-clock bounds, an optional
DAM-step range (the virtual time the simulators and executors advance),
free-form attributes, and a parent — enough structure to reconstruct the
run as a tree ("the serve loop spent this epoch re-planning shard 2")
and to export it as a Chrome/Perfetto trace (:mod:`repro.obs.export`).

Two properties make the tracer safe to leave compiled into every
execution layer:

* **No-op fast path.**  A disabled tracer's :meth:`Tracer.span` returns
  the process-wide :data:`NOOP_SPAN` singleton — no ``Span`` object, no
  clock read, no list append.  Hot loops additionally guard their
  instrumentation behind a single pre-bound ``enabled`` check so the
  disabled path performs *zero* per-step work (pinned by
  ``tests/obs/test_disabled_determinism.py``).
* **Deterministic identity.**  Span ids are a plain counter in creation
  order, so two runs of the same workload produce the same span
  *structure* (names, parents, attributes, step ranges); only the wall
  timestamps differ.

Spans are context managers::

    with tracer.span("serve.plan", category="serve", shard=2) as sp:
        sp.set("mode", "full")
        sp.set_steps(epoch_start, t)
        ...

Nesting is tracked per-tracer with an explicit stack (the executors are
single-threaded; a tracer must not be shared across threads).
"""

from __future__ import annotations

import time


class Span:
    """One named interval of traced work.  Created via :meth:`Tracer.span`."""

    __slots__ = (
        "name", "category", "span_id", "parent_id", "start_ns", "end_ns",
        "step_lo", "step_hi", "attrs", "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 span_id: int, parent_id: "int | None",
                 attrs: "dict | None") -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = tracer._clock()
        self.end_ns: "int | None" = None
        #: inclusive DAM-step range this span covers (None = wall-only).
        self.step_lo: "int | None" = None
        self.step_hi: "int | None" = None
        self.attrs: dict = attrs if attrs is not None else {}

    # ------------------------------------------------------------------
    def set(self, key: str, value) -> "Span":
        """Attach one attribute; returns self for chaining."""
        self.attrs[key] = value
        return self

    def set_steps(self, lo: int, hi: int) -> "Span":
        """Record the inclusive DAM-step range this span covers."""
        self.step_lo = int(lo)
        self.step_hi = int(hi)
        return self

    @property
    def duration_ns(self) -> int:
        """Wall-clock nanoseconds (0 while the span is still open)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.finish()

    def finish(self) -> None:
        """Close the span (idempotent); records it with its tracer."""
        if self.end_ns is not None:
            return
        self.end_ns = self._tracer._clock()
        self._tracer._finish(self)

    def __repr__(self) -> str:
        ms = self.duration_ns / 1e6
        steps = (
            f" steps {self.step_lo}..{self.step_hi}"
            if self.step_lo is not None else ""
        )
        return f"Span({self.name}, {ms:.3f}ms{steps}, {self.attrs})"


class _NoopSpan:
    """The allocation-free span a disabled tracer hands out.

    Every method is a no-op returning self, and :data:`NOOP_SPAN` is the
    only instance ever created, so instrumented code can call the full
    span API unconditionally without allocating on the disabled path.
    """

    __slots__ = ()

    def set(self, key, value) -> "_NoopSpan":
        return self

    def set_steps(self, lo, hi) -> "_NoopSpan":
        return self

    def finish(self) -> None:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NOOP_SPAN"


#: The singleton no-op span (identity-pinned by the obs test suite).
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects spans for one observed run (see module docstring)."""

    def __init__(self, *, enabled: bool = True,
                 clock=time.perf_counter_ns) -> None:
        self.enabled = bool(enabled)
        self._clock = clock
        #: finished spans, in finish order (children before parents).
        self.spans: "list[Span]" = []
        self._stack: "list[int]" = []
        self._next_id = 1

    def span(self, name: str, *, category: str = "", **attrs):
        """Open a child span of whatever span is currently active.

        Disabled tracers return :data:`NOOP_SPAN` without touching the
        clock or allocating a ``Span``.
        """
        if not self.enabled:
            return NOOP_SPAN
        parent = self._stack[-1] if self._stack else None
        span = Span(self, name, category, self._next_id, parent,
                    attrs or None)
        self._next_id += 1
        self._stack.append(span.span_id)
        return span

    def _finish(self, span: Span) -> None:
        # Close any abandoned children left on the stack (defensive: a
        # span finished out of order should not corrupt the tree).
        while self._stack and self._stack[-1] != span.span_id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self.spans.append(span)

    @property
    def n_spans(self) -> int:
        """Finished spans recorded so far."""
        return len(self.spans)

    def clear(self) -> None:
        """Drop all recorded spans (the id counter keeps advancing)."""
        self.spans.clear()
        self._stack.clear()
