"""The instrumentation context the execution layers consult.

Every instrumented layer (executors, simulator, journal, serving loop,
planner, admission, the MPHTF pipeline) reads one process-wide
:class:`ObsContext` — a tracer + metrics registry + phase profiler
bundle — through :func:`current_obs`.  The default context is the
immutable :data:`DISABLED` singleton: ``enabled`` is False, its tracer
hands out the no-op span, and instrumented hot loops bind that single
flag once per run, so with observability off (the default) the
instrumented code makes exactly the decisions — and exactly the
allocations — it made before the hooks existed.  The determinism tests
in ``tests/obs`` pin this: schedules are byte-identical with the context
enabled, disabled, or enabled halfway through a process's life.

Enable for a scope::

    with observed() as ctx:
        ServiceLoop(config).run()
    write_chrome_trace("run.trace.json", ctx.tracer)

or imperatively (what ``python -m repro trace`` does)::

    ctx = enable_obs()
    try:
        ...
    finally:
        disable_obs()

**Capture discipline.**  Hot loops capture ``current_obs()`` once at run
start; rare events (a shed, a replan, an epoch plan) look the context up
at the event site.  Enabling observability therefore takes effect for
runs *started* after ``enable_obs()`` — it never mutates a run already
in flight.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfiler
from repro.obs.tracer import Tracer


@dataclass
class ObsContext:
    """One observed scope: tracer + metrics + profiler + master switch."""

    tracer: Tracer
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    profiler: PhaseProfiler = field(default_factory=PhaseProfiler)
    enabled: bool = True


#: The default, process-wide disabled context (never mutated).
DISABLED = ObsContext(Tracer(enabled=False), enabled=False)

_current: ObsContext = DISABLED


def current_obs() -> ObsContext:
    """The active observation context (:data:`DISABLED` by default)."""
    return _current


def enable_obs(*, tracer: "Tracer | None" = None,
               metrics: "MetricsRegistry | None" = None,
               profiler: "PhaseProfiler | None" = None) -> ObsContext:
    """Install (and return) an enabled context as the process-wide one."""
    global _current
    _current = ObsContext(
        tracer=tracer if tracer is not None else Tracer(),
        metrics=metrics if metrics is not None else MetricsRegistry(),
        profiler=profiler if profiler is not None else PhaseProfiler(),
        enabled=True,
    )
    return _current


def disable_obs() -> None:
    """Restore the disabled default context."""
    global _current
    _current = DISABLED


@contextmanager
def observed(**kwargs):
    """``with observed() as ctx:`` — enable within a block, then restore."""
    global _current
    previous = _current
    ctx = enable_obs(**kwargs)
    try:
        yield ctx
    finally:
        _current = previous
