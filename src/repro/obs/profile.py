"""Opt-in wall-clock phase profiler with nearest-rank percentiles.

Where the tracer answers "what happened, in what order, under what
parent", the profiler answers "where did the wall-clock go": it buckets
elapsed time into named *phases* (``plan`` / ``execute`` / ``journal`` /
``recover`` are the conventional ones the hooks use) and summarizes each
phase's samples with the same nearest-rank percentiles as
:func:`repro.analysis.stats.nearest_rank`, so a reported p99 phase cost
is a cost some step actually paid.

Phases are independent stopwatches, not a partition: the ``journal``
phase runs inside the ``execute`` phase, so totals may overlap.  Hot
loops use the allocation-light :meth:`PhaseProfiler.add` with an
explicit clock read; coarse call sites use the :meth:`PhaseProfiler.phase`
context manager.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

#: The conventional phase names the built-in hooks record.
PHASE_PLAN = "plan"
PHASE_EXECUTE = "execute"
PHASE_JOURNAL = "journal"
PHASE_RECOVER = "recover"


class PhaseProfiler:
    """Accumulates per-phase wall-clock samples (seconds)."""

    def __init__(self, clock=time.perf_counter) -> None:
        self.clock = clock
        #: phase name -> list of elapsed-seconds samples.
        self.samples: "dict[str, list[float]]" = {}

    def add(self, phase: str, seconds: float) -> None:
        """Record one sample (hot-loop API: caller reads the clock)."""
        bucket = self.samples.get(phase)
        if bucket is None:
            bucket = self.samples[phase] = []
        bucket.append(seconds)

    @contextmanager
    def phase(self, name: str):
        """Time a block: ``with profiler.phase("plan"): ...``."""
        t0 = self.clock()
        try:
            yield self
        finally:
            self.add(name, self.clock() - t0)

    # ------------------------------------------------------------------
    def summary(self) -> "dict[str, dict]":
        """Per-phase stats: n, total/mean/p50/p95/p99/max milliseconds."""
        # Imported here: analysis.stats reaches the DAM layer, which the
        # obs hooks instrument — a module-level import would be circular.
        from repro.analysis.stats import nearest_rank

        out: "dict[str, dict]" = {}
        for name in sorted(self.samples):
            vals = self.samples[name]
            ms = [v * 1e3 for v in vals]
            out[name] = {
                "n": len(ms),
                "total_ms": sum(ms),
                "mean_ms": sum(ms) / len(ms),
                "p50_ms": nearest_rank(ms, 50),
                "p95_ms": nearest_rank(ms, 95),
                "p99_ms": nearest_rank(ms, 99),
                "max_ms": max(ms),
            }
        return out

    def report(self, *, title: str = "phase profile") -> str:
        """The summary as a fixed-width text table."""
        rows = self.summary()
        lines = [f"== {title} =="]
        if not rows:
            lines.append("(no samples)")
            return "\n".join(lines)
        lines.append(
            f"{'phase':>12} {'n':>8} {'total ms':>10} {'mean ms':>9} "
            f"{'p50':>8} {'p95':>8} {'p99':>8} {'max':>8}"
        )
        for name, s in rows.items():
            lines.append(
                f"{name:>12} {s['n']:>8} {s['total_ms']:>10.2f} "
                f"{s['mean_ms']:>9.4f} {s['p50_ms']:>8.4f} "
                f"{s['p95_ms']:>8.4f} {s['p99_ms']:>8.4f} "
                f"{s['max_ms']:>8.4f}"
            )
        return "\n".join(lines)
