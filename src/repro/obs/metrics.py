"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the quantitative half of :mod:`repro.obs` (spans are the
qualitative half): named monotone counters (flushes issued, retries,
sheds, stall-holds, journal bytes), point-in-time gauges, and histograms
summarized with the same nearest-rank percentiles the analysis layer
uses everywhere else.

Two conventions keep snapshots diffable across runs:

* **Determinism.**  Instrumented code only records *deterministic*
  quantities in the registry (counts, sizes, steps) — wall-clock timing
  lives in the tracer and the phase profiler, never here.  Two runs of
  the same seeded workload therefore produce byte-identical snapshots,
  which is exactly what the CI ``trace-smoke`` job diffs.
* **Stable naming.**  Metrics follow ``<layer>_<what>_total`` for
  counters; labeled children render as ``name{k=v,k2=v2}`` with keys
  sorted, so the JSON snapshot is one flat, ordered map per section.

Labeled children::

    shed = registry.counter("serve_shed_total")
    shed.labels(shard=3).inc()        # child serve_shed_total{shard=3}
    shed.inc()                        # the unlabeled parent still works

The registry is plain Python with no locks: the execution layers are
single-threaded, and the obs context owns exactly one registry per run.
The shard-per-process driver keeps that true across processes by
construction: workers never touch the parent's registry — they report
counter deltas over the result pipe and the parent folds them in — so
the **process-supervisor family** below is recorded parent-side only
and stays deterministic for seeded drills (real pids never enter the
registry; they live in the report's ``worker_log``):

* ``serve_worker_deaths_total{shard}`` — worker processes lost
  (SIGKILL chaos, crashes, watchdog escalation), per hosted shard;
* ``serve_worker_respawns_total{shard}`` — fresh processes spawned to
  restart a quarantined shard from its journal;
* ``serve_watchdog_escalations_total{stage}`` — escalation-ladder
  outcomes (``cancel`` -> ``terminate`` -> ``kill``);
* ``serve_diversions_total{shard}`` / ``serve_merge_backs_total{shard}``
  / ``serve_divert_handoff_msgs_total`` — breaker-open key-range
  diversions, their merge-backs, and the spill messages handed off.
"""

from __future__ import annotations

import json

from repro.util.errors import InvalidInstanceError


def _label_key(labels: dict) -> str:
    """Canonical ``k=v,k2=v2`` rendering (keys sorted)."""
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


class _Metric:
    """Shared naming/labeling machinery for all metric kinds."""

    __slots__ = ("name", "help", "_children")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        #: label-key -> child metric (same kind, created on demand).
        self._children: "dict[str, _Metric] | None" = None

    def labels(self, **labels):
        """The child metric for this label set (created on first use)."""
        if not labels:
            return self
        key = _label_key(labels)
        if self._children is None:
            self._children = {}
        child = self._children.get(key)
        if child is None:
            child = type(self)(f"{self.name}{{{key}}}", self.help)
            self._children[key] = child
        return child

    def _iter_children(self):
        # Snapshot the child map first: the /metrics endpoint thread may
        # iterate while the serving loop creates a new labeled child.
        children = self._children
        if children:
            children = dict(children)
            for key in sorted(children):
                yield key, children[key]


class Counter(_Metric):
    """Monotone event count.  ``inc`` only; negative increments raise."""

    __slots__ = ("value",)

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise InvalidInstanceError(
                f"counter {self.name} cannot decrease (inc({n}))"
            )
        self.value += n

    def snapshot_value(self):
        return self.value


class Gauge(_Metric):
    """Point-in-time value; also tracks the maximum it ever held."""

    __slots__ = ("value", "max_value")

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.value = 0
        self.max_value = 0

    def set(self, v) -> None:
        self.value = v
        if v > self.max_value:
            self.max_value = v

    def snapshot_value(self):
        return {"value": self.value, "max": self.max_value}


class Histogram(_Metric):
    """Sample accumulator summarized with nearest-rank percentiles.

    Observed values are kept (these are opt-in diagnostics, not a
    resident production sink), so the summary reports exact observed
    p50/p95/p99 — the same convention as
    :func:`repro.analysis.stats.nearest_rank`.
    """

    __slots__ = ("values",)

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.values: list = []

    def observe(self, v) -> None:
        self.values.append(v)

    def snapshot_value(self):
        # Imported here: analysis.stats reaches the DAM layer, which the
        # obs hooks instrument — a module-level import would be circular.
        from repro.analysis.stats import nearest_rank

        # Copy: the /metrics endpoint thread may summarize mid-observe.
        vals = list(self.values)
        if not vals:
            return {"count": 0, "sum": 0, "p50": 0, "p95": 0, "p99": 0,
                    "max": 0}
        return {
            "count": len(vals),
            "sum": sum(vals),
            "p50": nearest_rank(vals, 50),
            "p95": nearest_rank(vals, 95),
            "p99": nearest_rank(vals, 99),
            "max": max(vals),
        }


class MetricsRegistry:
    """Name -> metric map with typed get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: "dict[str, _Metric]" = {}

    def _get_or_create(self, kind, name: str, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, help)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise InvalidInstanceError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"requested as {kind.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(Histogram, name, help)

    def get(self, name: str) -> "_Metric | None":
        """The registered metric, or None (never creates)."""
        return self._metrics.get(name)

    def reset(self) -> None:
        """Drop every registered metric."""
        self._metrics.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """All metrics as one JSON-ready dict, keys sorted, labels flat."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        sections = {Counter: "counters", Gauge: "gauges",
                    Histogram: "histograms"}
        # Copy the name map first: the /metrics endpoint thread snapshots
        # while the serving loop may register new metrics.
        metrics = dict(self._metrics)
        for name in sorted(metrics):
            metric = metrics[name]
            section = out[sections[type(metric)]]
            section[metric.name] = metric.snapshot_value()
            for _key, child in metric._iter_children():
                section[child.name] = child.snapshot_value()
        return out

    def to_json(self, **extra) -> str:
        """Snapshot (plus ``extra`` top-level keys) as a JSON string."""
        snap = self.snapshot()
        snap.update(extra)
        return json.dumps(snap, indent=2, sort_keys=True)
