"""The paper's scheduler, packaged as policies.

Two variants:

* :class:`PaperPipelinePolicy` — the literal Section 4.3 pipeline
  (reduction -> MPHTF -> Lemma 8 -> Lemma 1).  Carries the theoretical
  O(1) guarantee machinery, including Lemma 1's large constants.
* :class:`WormsPolicy` — the practical variant: the *same* reduction and
  MPHTF priority order, but executed by the admission-gated executor
  instead of the Lemma 1 epoch construction.  Valid by construction,
  no constant-factor dilation, and what a production system would run.
"""

from __future__ import annotations

from typing import Callable

from repro.core.pipeline import solve_worms
from repro.core.reduction import reduce_to_scheduling
from repro.core.task_to_flush import task_schedule_to_flush_schedule
from repro.core.worms import WORMSInstance
from repro.dam.schedule import FlushSchedule
from repro.policies.base import Policy
from repro.policies.executor import execute_flush_list
from repro.scheduling.cost import TaskSchedule
from repro.scheduling.horn import compute_horn
from repro.scheduling.instance import SchedulingInstance
from repro.scheduling.mphtf import mphtf_schedule
from repro.scheduling.phtf import phtf_schedule


class WormsPolicy(Policy):
    """MPHTF flush order under the gated executor (practical variant).

    ``task_scheduler`` swaps the priority source (default MPHTF; PHTF or a
    baseline can be passed for ablations).
    """

    name = "worms"

    def __init__(
        self,
        task_scheduler: Callable[[SchedulingInstance], TaskSchedule] | None = None,
    ) -> None:
        self._task_scheduler = task_scheduler

    def schedule(self, instance: WORMSInstance) -> FlushSchedule:
        """Reduce, schedule tasks, and execute under the admission gate."""
        reduced = reduce_to_scheduling(instance)
        if self._task_scheduler is None:
            horn = compute_horn(reduced.scheduling)
            sigma = mphtf_schedule(reduced.scheduling, horn)
        else:
            sigma = self._task_scheduler(reduced.scheduling)
        overfilling = task_schedule_to_flush_schedule(reduced, sigma)
        ordered = [flush for _t, flush in overfilling.iter_timed()]
        return execute_flush_list(instance, ordered)


class PhtfWormsPolicy(WormsPolicy):
    """Ablation: PHTF priorities instead of MPHTF under the executor."""

    name = "worms-phtf"

    def __init__(self) -> None:
        super().__init__(task_scheduler=phtf_schedule)


class PaperPipelinePolicy(Policy):
    """The literal end-to-end pipeline of Section 4.3 (with Lemma 1)."""

    name = "paper-pipeline"

    def schedule(self, instance: WORMSInstance) -> FlushSchedule:
        """Run the full Section 4.3 pipeline and return its schedule."""
        return solve_worms(instance).schedule
