"""Admission-gated executor for ordered flush lists.

Given a list of flushes in a *desired priority order* (e.g. the Lemma 8
order induced by an MPHTF task schedule), the executor replays them under
the DAM constraints, producing a schedule that is **valid by
construction**:

* a flush is *ready* when all of its messages currently sit at its source;
* a flush is *admissible* when its destination is a leaf or currently
  parks at most ``B - size`` messages (so no internal node ever retains
  more than ``B`` messages across steps);
* each time step greedily runs up to ``P`` ready-and-admissible flushes in
  priority order.

For laminar flush lists (every flush's messages arrived at its source in
a single earlier flush — which is exactly what the packed-set reduction
produces) this never deadlocks: the deepest parked group always has an
admissible next flush, because nothing is parked below it.
"""

from __future__ import annotations

from repro.core.worms import WORMSInstance
from repro.dam.schedule import Flush, FlushSchedule
from repro.util.errors import ExecutionStalledError

#: Safety valve: abort rather than loop forever on a malformed flush list.
MAX_IDLE_STEPS = 4

#: How many parked messages / pending flushes to list in an error message.
_DIAG_LIMIT = 5


def stalled_error(
    header: str,
    *,
    step: int,
    instance: WORMSInstance,
    location: "list[int]",
    pending_flushes: "list[Flush]",
) -> ExecutionStalledError:
    """Build a diagnosable :class:`ExecutionStalledError`.

    Lists the first few parked (undelivered) messages with their current
    nodes and the highest-priority flush that could not run, so a
    malformed flush list can be debugged from the message alone.
    """
    targets = instance.targets
    parked = tuple(
        (m, location[m])
        for m in range(instance.n_messages)
        if location[m] != int(targets[m])
    )
    blocking = pending_flushes[0] if pending_flushes else None
    lines = [f"{header} at step {step}: {len(pending_flushes)} flush(es) "
             f"pending, {len(parked)} message(s) parked"]
    for m, v in parked[:_DIAG_LIMIT]:
        lines.append(f"  message {m} parked at node {v} "
                     f"(target {int(targets[m])})")
    if len(parked) > _DIAG_LIMIT:
        lines.append(f"  ... and {len(parked) - _DIAG_LIMIT} more")
    if blocking is not None:
        lines.append(f"  blocked on inadmissible/unready flush {blocking!r}")
    return ExecutionStalledError(
        "\n".join(lines),
        step=step,
        parked_messages=parked,
        blocking_flush=blocking,
        pending_flushes=tuple(pending_flushes),
    )


def execute_flush_list(
    instance: WORMSInstance, flushes: list[Flush]
) -> FlushSchedule:
    """Run ``flushes`` (in priority order) through the gated executor."""
    return GatedExecutor(instance).run(flushes)


class GatedExecutor:
    """See module docstring.  One instance per execution."""

    def __init__(self, instance: WORMSInstance) -> None:
        self.instance = instance
        topo = instance.topology
        self._is_leaf = [topo.is_leaf(v) for v in range(topo.n_nodes)]
        self._root = topo.root

    def run(self, flushes: list[Flush]) -> FlushSchedule:
        """Replay ``flushes`` in priority order; returns a valid schedule."""
        inst = self.instance
        targets = inst.targets
        location = [inst.start_of(m) for m in range(inst.n_messages)]
        occupancy = [0] * inst.topology.n_nodes  # parked msgs per internal node
        for m in range(inst.n_messages):
            v = location[m]
            if v != self._root and not self._is_leaf[v] and v != int(targets[m]):
                occupancy[v] += 1

        pending = list(range(len(flushes)))
        schedule = FlushSchedule()
        t = 0
        idle = 0
        while pending:
            t += 1
            ran: list[int] = []
            moved: set[int] = set()
            # One pass over pending flushes in priority order; stop once P
            # flushes are placed.  Arrivals take effect *after* the step, so
            # readiness/admission use start-of-step state plus this step's
            # own departures/arrivals bookkeeping.
            departed: dict[int, int] = {}
            arrived: dict[int, int] = {}
            for idx in pending:
                if len(ran) >= inst.P:
                    break
                flush = flushes[idx]
                if any(location[m] != flush.src or m in moved for m in flush.messages):
                    continue
                dest = flush.dest
                # Messages completing at dest (a leaf, or their internal
                # target under the footnote-3 extension) never park there.
                parking = sum(1 for m in flush.messages if int(targets[m]) != dest)
                if not self._is_leaf[dest]:
                    projected = (
                        occupancy[dest]
                        - departed.get(dest, 0)
                        + arrived.get(dest, 0)
                        + parking
                    )
                    if projected > inst.B:
                        continue
                ran.append(idx)
                moved.update(flush.messages)
                schedule.add(t, flush)
                src = flush.src
                if src != self._root and not self._is_leaf[src]:
                    departed[src] = departed.get(src, 0) + flush.size
                if not self._is_leaf[dest]:
                    arrived[dest] = arrived.get(dest, 0) + parking
                for m in flush.messages:
                    location[m] = dest
            if not ran:
                idle += 1
                if idle > MAX_IDLE_STEPS:
                    raise stalled_error(
                        "gated executor deadlocked (flush list is not "
                        "laminar?)",
                        step=t,
                        instance=inst,
                        location=location,
                        pending_flushes=[flushes[i] for i in pending],
                    )
                # Nothing ran: roll the step counter back (an idle step
                # would inflate costs) and retry; the idle counter above
                # turns a genuine no-progress state into an error.
                t -= 1
                continue
            idle = 0
            for v, d in departed.items():
                occupancy[v] -= d
            for v, a in arrived.items():
                occupancy[v] += a
            ran_set = set(ran)
            pending = [idx for idx in pending if idx not in ran_set]
        return schedule.trim()
