"""Admission-gated executor for ordered flush lists.

Given a list of flushes in a *desired priority order* (e.g. the Lemma 8
order induced by an MPHTF task schedule), the executor replays them under
the DAM constraints, producing a schedule that is **valid by
construction**:

* a flush is *ready* when all of its messages currently sit at its source;
* a flush is *admissible* when its destination is a leaf or currently
  parks at most ``B - size`` messages (so no internal node ever retains
  more than ``B`` messages across steps);
* each time step greedily runs up to ``P`` ready-and-admissible flushes in
  priority order.

For laminar flush lists (every flush's messages arrived at its source in
a single earlier flush — which is exactly what the packed-set reduction
produces) this never deadlocks: the deepest parked group always has an
admissible next flush, because nothing is parked below it.

**Durability** (``journal=``): pass a path or an open
:class:`~repro.dam.journal.JournalWriter` and the executor streams every
realized flush plus a :class:`~repro.dam.trace.CheckpointRecord` every
``checkpoint_every`` steps into a crash-consistent journal, so a killed
process can be resumed exactly (see :mod:`repro.dam.journal`).  With
``journal=None`` (the default) no journal state is even allocated and
the realized schedule is byte-for-byte what it always was.

**Scan cost.**  The priority scan re-checks the readiness of every
pending flush each step.  Three observations keep that tractable at
millions of messages without changing a single decision: a flush whose
*first* message is elsewhere cannot be ready (O(1) reject covers the
common front-blocked case); how many of a flush's messages will *park*
at its destination is a static property, precomputed once; and consumed
flushes are flagged and compacted away lazily instead of rebuilding the
pending list every step.
"""

from __future__ import annotations

from repro.core.worms import WORMSInstance
from repro.dam.schedule import Flush, FlushSchedule
from repro.dam.trace import CheckpointRecord
from repro.obs.hooks import current_obs
from repro.obs.profile import PHASE_EXECUTE
from repro.util.errors import ExecutionStalledError, InvalidInstanceError

#: Safety valve: abort rather than loop forever on a malformed flush list.
MAX_IDLE_STEPS = 4

#: How many parked messages / pending flushes to list in an error message.
_DIAG_LIMIT = 5

#: Default checkpoint cadence (steps) when journaling is enabled.
DEFAULT_CHECKPOINT_EVERY = 32


def stalled_error(
    header: str,
    *,
    step: int,
    instance: WORMSInstance,
    location: "list[int]",
    pending_flushes: "list[Flush]",
) -> ExecutionStalledError:
    """Build a diagnosable :class:`ExecutionStalledError`.

    Lists the first few parked (undelivered) messages with their current
    nodes and the highest-priority flush that could not run, so a
    malformed flush list can be debugged from the message alone.
    """
    targets = instance.targets
    parked = tuple(
        (m, int(location[m]))
        for m in range(instance.n_messages)
        if location[m] != int(targets[m])
    )
    blocking = pending_flushes[0] if pending_flushes else None
    lines = [f"{header} at step {step}: {len(pending_flushes)} flush(es) "
             f"pending, {len(parked)} message(s) parked"]
    for m, v in parked[:_DIAG_LIMIT]:
        lines.append(f"  message {m} parked at node {v} "
                     f"(target {int(targets[m])})")
    if len(parked) > _DIAG_LIMIT:
        lines.append(f"  ... and {len(parked) - _DIAG_LIMIT} more")
    if blocking is not None:
        lines.append(f"  blocked on inadmissible/unready flush {blocking!r}")
    return ExecutionStalledError(
        "\n".join(lines),
        step=step,
        parked_messages=parked,
        blocking_flush=blocking,
        pending_flushes=tuple(pending_flushes),
    )


def execute_flush_list(
    instance: WORMSInstance, flushes: list[Flush]
) -> FlushSchedule:
    """Run ``flushes`` (in priority order) through the gated executor."""
    return GatedExecutor(instance).run(flushes)


def record_run_metrics(metrics, schedule: FlushSchedule) -> None:
    """End-of-run executor counters, shared by both executors.

    Called only from enabled obs contexts, after the run finished — the
    disabled path never reaches this and never pays for it.
    """
    n_flushes = 0
    moved = 0
    size_hist = metrics.histogram(
        "executor_flush_size", "messages per realized flush"
    )
    for step in schedule.steps:
        for flush in step:
            n_flushes += 1
            moved += flush.size
            size_hist.observe(flush.size)
    metrics.counter(
        "executor_runs_total", "executor runs completed"
    ).inc()
    metrics.counter(
        "executor_steps_total", "DAM steps executed"
    ).inc(schedule.n_steps)
    metrics.counter(
        "executor_flushes_total", "flushes issued by executors"
    ).inc(n_flushes)
    metrics.counter(
        "executor_messages_moved_total", "message moves across all flushes"
    ).inc(moved)


class _RunJournal:
    """Per-run journaling state: completion tracking + record emission.

    Instantiated only when journaling is on, so the fault-free,
    journal-free path allocates nothing.  Flushes the writer at every
    checkpoint — the durability points recovery resumes from.
    """

    def __init__(self, writer, owned: bool, targets: "list[int]",
                 checkpoint_every: int, location: "list[int]") -> None:
        self.writer = writer
        self.owned = owned
        self.targets = targets
        self.every = checkpoint_every
        self.completion = [0] * len(targets)
        self._checkpoint(0, location)

    def _checkpoint(self, step: int, location: "list[int]") -> None:
        from repro.dam.journal import checkpoint_record

        self.writer.append(checkpoint_record(CheckpointRecord(
            step, tuple(int(v) for v in location), tuple(self.completion)
        )))
        self.writer.flush()

    def record_flush(self, t: int, flush: Flush) -> None:
        from repro.dam.journal import flush_record

        self.writer.append(flush_record(t, flush))
        dest = flush.dest
        completion = self.completion
        for m in flush.messages:
            if self.targets[m] == dest and completion[m] == 0:
                completion[m] = t

    def record_fault(self, t: int, kind: str, src: int, dest: int,
                     detail: str) -> None:
        from repro.dam.journal import fault_record

        self.writer.append(fault_record(t, kind, src, dest, detail))

    def end_step(self, t: int, location: "list[int]") -> None:
        if t % self.every == 0:
            self._checkpoint(t, location)

    def finish(self, n_steps: int, location: "list[int]") -> None:
        """The run completed: final checkpoint + ``end`` record."""
        self._checkpoint(n_steps, location)
        self.writer.append({"type": "end", "t": int(n_steps)})
        self.writer.flush()
        if self.owned:
            self.writer.close()

    def abort(self) -> None:
        """The run died (stall error): keep what we have durable."""
        self.writer.flush()
        if self.owned:
            self.writer.close()


class GatedExecutor:
    """See module docstring.  One instance per execution.

    Parameters
    ----------
    instance:
        The WORMS instance being executed.
    journal:
        ``None`` (no journaling), a filesystem path (the executor opens
        and owns a :class:`~repro.dam.journal.JournalWriter` with an
        auto-generated ``meta`` record), or an open writer (the caller
        owns lifecycle and ``meta``).
    checkpoint_every:
        Steps between journaled state snapshots (ignored without a
        journal).  Smaller = less replay on recovery, more bytes.
    """

    def __init__(
        self,
        instance: WORMSInstance,
        *,
        journal=None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    ) -> None:
        self.instance = instance
        topo = instance.topology
        self._is_leaf = [topo.is_leaf(v) for v in range(topo.n_nodes)]
        self._root = topo.root
        if checkpoint_every < 1:
            raise InvalidInstanceError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.checkpoint_every = int(checkpoint_every)
        self.journal = journal

    # ------------------------------------------------------------------
    def _start_journal(self, location: "list[int]",
                       targets: "list[int]") -> "_RunJournal | None":
        """Open per-run journal state (None when journaling is off)."""
        if self.journal is None:
            return None
        from repro.dam.journal import JournalWriter

        inst = self.instance
        if isinstance(self.journal, JournalWriter):
            writer, owned = self.journal, False
        else:
            writer, owned = JournalWriter(
                self.journal,
                meta={
                    "n_messages": inst.n_messages,
                    "P": inst.P,
                    "B": inst.B,
                    "n_nodes": inst.topology.n_nodes,
                    "checkpoint_every": self.checkpoint_every,
                },
            ), True
        return _RunJournal(writer, owned, targets, self.checkpoint_every,
                           location)

    def run(self, flushes: list[Flush]) -> FlushSchedule:
        """Replay ``flushes`` in priority order; returns a valid schedule."""
        # Observability is bound once per run: the disabled default makes
        # every per-step decision and allocation below identical to the
        # pre-instrumentation executor (pinned by tests/obs).
        obs = current_obs()
        span = obs.tracer.span(
            "executor.run", category="executor", flushes=len(flushes)
        )
        t_wall = obs.profiler.clock() if obs.enabled else 0.0
        inst = self.instance
        is_leaf = self._is_leaf
        root = self._root
        P, B = inst.P, inst.B
        targets = inst.targets.tolist()
        location = [inst.start_of(m) for m in range(inst.n_messages)]
        occupancy = [0] * inst.topology.n_nodes  # parked msgs per internal node
        for m in range(inst.n_messages):
            v = location[m]
            if v != root and not is_leaf[v] and v != targets[m]:
                occupancy[v] += 1

        # Static per-flush data: messages that do not complete at dest.
        parking = [
            sum(1 for m in f.messages if targets[m] != f.dest)
            for f in flushes
        ]
        journal = self._start_journal(location, targets)
        pending = list(range(len(flushes)))
        done = bytearray(len(flushes))
        n_pending = len(flushes)
        schedule = FlushSchedule()
        t = 0
        idle = 0
        try:
            while n_pending:
                t += 1
                ran: list[int] = []
                moved: set[int] = set()
                # One pass over pending flushes in priority order; stop
                # once P flushes are placed.  Arrivals take effect *after*
                # the step, so readiness/admission use start-of-step state
                # plus this step's own departures/arrivals bookkeeping.
                departed: dict[int, int] = {}
                arrived: dict[int, int] = {}
                for idx in pending:
                    if done[idx]:
                        continue
                    if len(ran) >= P:
                        break
                    flush = flushes[idx]
                    src = flush.src
                    msgs = flush.messages
                    if location[msgs[0]] != src:
                        continue  # O(1) reject: first message not here yet
                    if any(
                        location[m] != src or m in moved for m in msgs
                    ):
                        continue
                    dest = flush.dest
                    # Messages completing at dest (a leaf, or their
                    # internal target under the footnote-3 extension)
                    # never park there.
                    park = parking[idx]
                    if not is_leaf[dest]:
                        projected = (
                            occupancy[dest]
                            - departed.get(dest, 0)
                            + arrived.get(dest, 0)
                            + park
                        )
                        if projected > B:
                            continue
                    ran.append(idx)
                    done[idx] = 1
                    moved.update(msgs)
                    schedule.add(t, flush)
                    if src != root and not is_leaf[src]:
                        departed[src] = departed.get(src, 0) + flush.size
                    if not is_leaf[dest]:
                        arrived[dest] = arrived.get(dest, 0) + park
                    for m in msgs:
                        location[m] = dest
                if not ran:
                    idle += 1
                    if idle > MAX_IDLE_STEPS:
                        raise stalled_error(
                            "gated executor deadlocked (flush list is not "
                            "laminar?)",
                            step=t,
                            instance=inst,
                            location=location,
                            pending_flushes=[
                                flushes[i] for i in pending if not done[i]
                            ],
                        )
                    # Nothing ran: roll the step counter back (an idle step
                    # would inflate costs) and retry; the idle counter above
                    # turns a genuine no-progress state into an error.
                    t -= 1
                    continue
                idle = 0
                for v, d in departed.items():
                    occupancy[v] -= d
                for v, a in arrived.items():
                    occupancy[v] += a
                n_pending -= len(ran)
                if journal is not None:
                    for idx in ran:
                        journal.record_flush(t, flushes[idx])
                    journal.end_step(t, location)
                if n_pending and len(pending) > 2 * n_pending:
                    pending = [i for i in pending if not done[i]]
        except ExecutionStalledError:
            if journal is not None:
                journal.abort()
            span.set("stalled", True)
            span.finish()
            raise
        schedule = schedule.trim()
        if journal is not None:
            journal.finish(schedule.n_steps, location)
        if obs.enabled:
            obs.profiler.add(PHASE_EXECUTE, obs.profiler.clock() - t_wall)
            span.set_steps(1, schedule.n_steps)
            record_run_metrics(obs.metrics, schedule)
        span.finish()
        return schedule
