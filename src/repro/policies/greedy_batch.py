"""Greedy write-optimized batching (the throughput-first classic).

This is the textbook B^epsilon-tree discipline applied to the backlog: at
every time step, flush from the nodes holding the most messages toward
their most popular child, moving up to ``B`` messages per flush.  Work per
IO is maximized, but a message whose siblings are unpopular can sit high
in the tree for a very long time — the "terrible latency" end of the
paper's tradeoff.

Validity is enforced with admission gating (a flush into an internal node
must leave it parking at most ``B`` messages), matching how real
implementations bound buffer occupancy.
"""

from __future__ import annotations

from repro.core.worms import WORMSInstance
from repro.dam.schedule import Flush, FlushSchedule
from repro.policies.base import Policy


class GreedyBatchPolicy(Policy):
    """Flush-fullest-node-to-most-popular-child, ``P`` flushes per step."""

    name = "greedy-batch"

    def schedule(self, instance: WORMSInstance) -> FlushSchedule:
        """Build a valid schedule by greedy fullest-node batching."""
        topo = instance.topology
        root = topo.root
        # buffers[v][c] = list of message ids at v whose path continues to c;
        # buffers for leaves are completion sinks and not tracked.
        buffers: dict[int, dict[int, list[int]]] = {}
        node_load: dict[int, int] = {}

        def park(m: int, v: int) -> None:
            target = instance.messages[m].target_leaf
            child = topo.child_towards(v, target)
            buffers.setdefault(v, {}).setdefault(child, []).append(m)
            node_load[v] = node_load.get(v, 0) + 1

        remaining = 0
        for m in range(instance.n_messages):
            v = instance.start_of(m)
            if v != instance.messages[m].target_leaf:
                park(m, v)
                remaining += 1

        schedule = FlushSchedule()
        t = 0
        while remaining:
            t += 1
            # Candidate flushes: per node, its most popular child group.
            # Sort nodes by total load (classic: flush the fullest).
            candidates = sorted(
                node_load, key=lambda v: (-node_load[v], v)
            )
            flushed_any = False
            used_slots = 0
            arrivals: list[tuple[int, int]] = []  # (message, node)
            touched: set[int] = set()
            for v in candidates:
                if used_slots >= instance.P:
                    break
                if v in touched or node_load.get(v, 0) == 0:
                    continue
                groups = buffers[v]
                child = max(groups, key=lambda c: (len(groups[c]), -c))
                moving = groups[child][: instance.B]
                # Admission gate: an internal destination must not end the
                # step parking more than B messages.
                parking = [
                    m
                    for m in moving
                    if instance.messages[m].target_leaf != child
                ]
                if not topo.is_leaf(child):
                    load_after = node_load.get(child, 0) + len(parking)
                    if load_after > instance.B:
                        continue
                used_slots += 1
                flushed_any = True
                touched.add(v)
                touched.add(child)
                schedule.add(
                    t, Flush(src=v, dest=child, messages=tuple(moving))
                )
                del groups[child][: len(moving)]
                if not groups[child]:
                    del groups[child]
                node_load[v] -= len(moving)
                if node_load[v] == 0:
                    del node_load[v]
                    buffers.pop(v, None)
                parking_set = set(parking)
                for m in moving:
                    if m in parking_set:
                        arrivals.append((m, child))
                    else:
                        remaining -= 1
            for m, v in arrivals:
                park(m, v)
            if not flushed_any:  # pragma: no cover - gate always admits leaves
                raise RuntimeError("greedy batch policy stalled")
        return schedule.trim()
