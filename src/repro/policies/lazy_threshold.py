"""Threshold-lazy flushing: the true write-optimized classic.

A real B^epsilon-tree only flushes a buffer once it is *full* — that is
what makes inserts cheap.  Applied to a root-to-leaf backlog this is the
paper's "group the delete messages using a write-optimized approach"
strategy: excellent work per IO, but a message whose buffer never fills
sits high in the tree indefinitely.  Because a backlog is finite, the
policy ends with a forced drain pass that flushes everything left (else
stragglers would never complete); their completion times make the mean
blow up, which is exactly the pathology the paper motivates WORMS with.
"""

from __future__ import annotations

from repro.core.worms import WORMSInstance
from repro.dam.schedule import Flush, FlushSchedule
from repro.policies.base import Policy


class LazyThresholdPolicy(Policy):
    """Flush a node only when it holds >= ``threshold_fraction * B``
    messages (default: a full buffer), then drain the leftovers."""

    name = "lazy-threshold"

    def __init__(self, threshold_fraction: float = 1.0) -> None:
        if not (0.0 < threshold_fraction <= 1.0):
            raise ValueError("threshold_fraction must be in (0, 1]")
        self._fraction = threshold_fraction

    def schedule(self, instance: WORMSInstance) -> FlushSchedule:
        """Build a valid schedule: flush full buffers, then force-drain."""
        topo = instance.topology
        threshold = max(1, int(self._fraction * instance.B))
        buffers: dict[int, dict[int, list[int]]] = {}
        node_load: dict[int, int] = {}
        remaining = 0

        def park(m: int, v: int) -> None:
            child = topo.child_towards(v, instance.messages[m].target_leaf)
            buffers.setdefault(v, {}).setdefault(child, []).append(m)
            node_load[v] = node_load.get(v, 0) + 1

        for m in range(instance.n_messages):
            v = instance.start_of(m)
            if v != instance.messages[m].target_leaf:
                park(m, v)
                remaining += 1

        schedule = FlushSchedule()
        t = 0
        draining = False
        while remaining:
            t += 1
            eligible = [
                v
                for v, load in node_load.items()
                if draining or load >= threshold
            ]
            if not eligible:
                draining = True  # backlog exhausted the full buffers: drain
                t -= 1
                continue
            eligible.sort(key=lambda v: (-node_load[v], v))
            used = 0
            touched: set[int] = set()
            arrivals: list[tuple[int, int]] = []
            for v in eligible:
                if used >= instance.P:
                    break
                if v in touched or node_load.get(v, 0) == 0:
                    continue
                groups = buffers[v]
                child = max(groups, key=lambda c: (len(groups[c]), -c))
                moving = groups[child][: instance.B]
                parking = [
                    m
                    for m in moving
                    if instance.messages[m].target_leaf != child
                ]
                if not topo.is_leaf(child):
                    if node_load.get(child, 0) + len(parking) > instance.B:
                        continue
                used += 1
                touched.add(v)
                touched.add(child)
                schedule.add(t, Flush(src=v, dest=child, messages=tuple(moving)))
                del groups[child][: len(moving)]
                if not groups[child]:
                    del groups[child]
                node_load[v] -= len(moving)
                if node_load[v] == 0:
                    del node_load[v]
                    buffers.pop(v, None)
                parking_set = set(parking)
                for m in moving:
                    if m in parking_set:
                        arrivals.append((m, child))
                    else:
                        remaining -= 1
            if used == 0:
                # All eligible nodes were gated; flip to drain mode so the
                # bottom of the tree clears (prevents threshold deadlock).
                draining = True
                t -= 1
                continue
            for m, v in arrivals:
                park(m, v)
        return schedule.trim()
