"""Eager per-operation flushing (the latency-first classic).

Each message is flushed down its entire root-to-leaf path on its own:
``h`` flushes of a single message.  With ``P`` parallel slots, ``P``
messages are in flight at once (one per machine track).  Work begins on
each operation immediately, but only one message moves per IO slot — the
"pessimal throughput" end of the paper's tradeoff.

Valid by construction: a message moves every step while in flight, so no
internal node ever retains anything.
"""

from __future__ import annotations

from repro.core.worms import WORMSInstance
from repro.dam.schedule import Flush, FlushSchedule
from repro.policies.base import Policy


class EagerPolicy(Policy):
    """One message per flush, pipelined over the ``P`` machine tracks.

    ``order`` optionally permutes message processing order (default:
    message-id order, i.e. arrival order).
    """

    name = "eager"

    def __init__(self, order: "list[int] | None" = None) -> None:
        self._order = order

    def schedule(self, instance: WORMSInstance) -> FlushSchedule:
        """Build the per-message pipelined schedule."""
        topo = instance.topology
        order = self._order
        if order is None:
            order = list(range(instance.n_messages))
        schedule = FlushSchedule()
        track_free = [1] * instance.P  # next free step per track
        for pos, m in enumerate(order):
            track = pos % instance.P
            start = track_free[track]
            edges = topo.edges_from_root(instance.messages[m].target_leaf)
            # Skip edges above the message's start node (custom starts).
            start_node = instance.start_of(m)
            edges = [e for e in edges if topo.height_of(e[0]) >= topo.height_of(start_node)]
            for k, (src, dest) in enumerate(edges):
                schedule.add(start + k, Flush(src=src, dest=dest, messages=(m,)))
            track_free[track] = start + len(edges)
        return schedule.trim()
