"""Fault-tolerant execution of priority-ordered flush lists.

:class:`ResilientExecutor` extends the admission-gated executor with the
recovery semantics a production flusher needs when IOs can fail
(see :mod:`repro.faults`):

* **bounded retry with exponential backoff** — a flush that fails (or
  partially applies) stays in the priority order but becomes eligible
  again only after ``2^(attempts-1)`` steps, so a flaky edge does not
  monopolize IO slots;
* **re-admission** — the undelivered remainder of a partial flush
  replaces the original flush at the *same* priority position, so
  redelivery keeps the intended order;
* **re-planning** — when some flush exhausts its retry budget, or the
  executor deadlocks outright (non-laminar input), the surviving
  in-flight messages are re-planned from their current locations: the
  WORMS pipeline (reduction -> MPHTF -> Lemma 8 order) when everything
  still sits at the root, the density-guided online scheduler (which
  natively handles mid-tree starts) otherwise.  The new flush list
  replaces the pending tail and execution continues;
* **graceful failure** — if re-planning is also exhausted the executor
  raises :class:`~repro.util.errors.ExecutionStalledError` carrying the
  parked-message state instead of looping forever.

**Fault-aware admission** (``fault_aware=True``, off by default) closes
the ROADMAP's "fault-blind planning" gap: instead of recovering purely
reactively, the selection loop consults the injector's *current* fault
windows —

* a node observed stalled is remembered until its window closes
  (:meth:`~repro.faults.injector.FaultInjector.stall_window_end`), and
  flushes touching it are parked without re-probing every step;
* while capacity is degraded (``effective_p < P``), the scarce slots are
  offered to *completion* flushes (flushes that park nothing) first, so
  tail latency degrades before throughput does.

Both behaviors only engage when a fault window is actually active, so
the fault-free path is untouched with the flag on or off.

**Durability** (``journal=``): like :class:`GatedExecutor`, the realized
flushes, observed fault outcomes, and periodic checkpoints stream into a
crash-consistent journal (:mod:`repro.dam.journal`).

Zero-overhead fault path: with ``injector=None`` (or an all-zero
:class:`~repro.faults.FaultPlan`) the selection logic below makes
exactly the same decisions as :class:`GatedExecutor.run`, so the
realized schedule is byte-identical — resilience costs nothing until a
fault actually fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.worms import WORMSInstance
from repro.dam.schedule import Flush, FlushSchedule
from repro.faults.injector import (
    FaultInjector,
    OUTCOME_FAILED,
    OUTCOME_PARTIAL,
)
from repro.obs.hooks import current_obs
from repro.obs.profile import PHASE_EXECUTE
from repro.policies.executor import (
    DEFAULT_CHECKPOINT_EVERY,
    GatedExecutor,
    MAX_IDLE_STEPS,
    record_run_metrics,
    stalled_error,
)
from repro.tree.messages import Message
from repro.util.errors import (
    ExecutionStalledError,
    InvalidInstanceError,
    ReproError,
)

#: ``scan="auto"`` switches to the vectorized readiness scan at this many
#: pending flushes (fault-free runs only; see :class:`_VectorScan`).
VECTOR_SCAN_AUTO_THRESHOLD = 100_000


@dataclass
class _PendingFlush:
    """A flush awaiting execution, with its retry bookkeeping."""

    flush: Flush
    #: messages that do not complete at dest (static admission cost).
    parking: int = 0
    attempts: int = 0
    eligible_at: int = 0  # earliest step this flush may be attempted again
    done: bool = False


class _VectorScan:
    """Numpy-accelerated candidate prefilter for the priority scan.

    The per-step scan cost of the scalar path is one readiness probe per
    pending flush; at the ROADMAP's 10^6-message scale that probe — not
    the flushes themselves — dominates.  This helper keeps three parallel
    arrays over the pending list (first message id, source node, done
    flag) and answers "which pending flushes *could* run this step" with
    one vectorized compare::

        candidates = nonzero(location[first] == src & ~done)

    in priority (ascending-index) order.

    **Why the decisions stay byte-identical** (pinned by
    ``tests/policies/test_vector_scan.py``): the filter uses
    start-of-step state, and the two ways mid-step mutation could make it
    diverge from the scalar scan both cancel out —

    * a flush whose first message *arrives* at its source mid-step is not
      a candidate, but the scalar scan rejects it too (the message is in
      ``moved``, and moved messages never flush again in the same step);
    * a flush whose messages *leave* mid-step is a candidate, but the
      full scalar readiness/admission checks re-run inside the candidate
      loop and reject it exactly as the scalar scan would.

    Only fault-free runs (``injector is None``) use the fast path: under
    faults the scalar scan also visits non-ready flushes to update
    backoff/stall bookkeeping, which a readiness prefilter would skip.
    """

    __slots__ = ("first", "src", "done")

    def __init__(self, pending: "list[_PendingFlush]") -> None:
        self.rebuild(pending)

    def rebuild(self, pending: "list[_PendingFlush]") -> None:
        """Recompute the arrays (after compaction or a re-plan)."""
        n = len(pending)
        self.first = np.fromiter(
            (pf.flush.messages[0] for pf in pending), dtype=np.int64,
            count=n,
        )
        self.src = np.fromiter(
            (pf.flush.src for pf in pending), dtype=np.int64, count=n
        )
        self.done = np.zeros(n, dtype=bool)

    def candidates(self, location: np.ndarray) -> np.ndarray:
        """Indices of maybe-ready pending flushes, in priority order."""
        return np.nonzero(
            (location[self.first] == self.src) & ~self.done
        )[0]


@dataclass
class ResilienceStats:
    """Counters describing what recovery machinery actually did."""

    failed_attempts: int = 0
    partial_deliveries: int = 0
    stalled_skips: int = 0
    replans: int = 0
    wait_steps: int = 0
    #: flushes parked by fault-aware admission without probing the node.
    fault_aware_skips: int = 0
    #: steps where degraded capacity made admission prefer completions.
    degraded_triage_steps: int = 0
    fault_events: list = field(default_factory=list)


def worms_replan(
    instance: WORMSInstance, remaining: "list[int]", location: "list[int]"
) -> "list[Flush]":
    """Default re-planning hook: a fresh priority order for ``remaining``.

    Builds a sub-instance whose messages start at their *current*
    locations.  If everything is still at the root the paper's pipeline
    applies verbatim (reduction -> MPHTF -> the Lemma 8 flush order);
    with mid-tree survivors the reduction does not apply (it requires
    root starts), so the density-guided online scheduler — which is
    valid by construction from arbitrary start nodes — provides the
    order instead.  Returned flushes use original message ids.
    """
    # Imported here: policies.worms_policy imports the executor module,
    # so a module-level import would be circular.
    from repro.core.reduction import reduce_to_scheduling
    from repro.core.task_to_flush import task_schedule_to_flush_schedule
    from repro.policies.online import online_density_schedule
    from repro.scheduling.mphtf import mphtf_schedule

    if not remaining:
        return []
    topo = instance.topology
    targets = instance.targets
    sub_messages = [
        Message(i, int(targets[m])) for i, m in enumerate(remaining)
    ]
    root = topo.root
    all_at_root = all(location[m] == root for m in remaining)
    sub = WORMSInstance(
        topo,
        sub_messages,
        P=instance.P,
        B=instance.B,
        start_nodes=None if all_at_root
        else [int(location[m]) for m in remaining],
        allow_internal_targets=instance.allow_internal_targets,
    )
    if all_at_root:
        reduced = reduce_to_scheduling(sub)
        sigma = mphtf_schedule(reduced.scheduling)
        planned = task_schedule_to_flush_schedule(reduced, sigma)
    else:
        planned = online_density_schedule(sub)
    return [
        Flush(f.src, f.dest, tuple(remaining[i] for i in f.messages))
        for _t, f in planned.iter_timed()
    ]


class ResilientExecutor(GatedExecutor):
    """Gated executor + retry/backoff/re-planning under fault injection.

    Parameters
    ----------
    instance:
        The WORMS instance being executed.
    injector:
        Fault source consulted every step; ``None`` (or a zero plan)
        means fault-free execution identical to :class:`GatedExecutor`.
    retry_budget:
        Attempts allowed per flush before re-planning kicks in.
    max_replans:
        Re-planning rounds allowed before giving up with
        :class:`ExecutionStalledError`.
    replanner:
        Hook ``(instance, remaining_msg_ids, location) -> list[Flush]``;
        defaults to :func:`worms_replan`.
    max_steps:
        Hard ceiling on simulated steps (a diagnosable backstop against
        pathological fault plans); defaults to a generous multiple of
        the instance's total work.
    fault_aware:
        Enable fault-aware admission (see module docstring).  Off by
        default; has zero effect while no fault window is active.
    scan:
        Readiness-scan strategy: ``"scalar"`` (the classic per-flush
        probe), ``"vector"`` (numpy candidate prefilter, fault-free runs
        only — silently falls back to scalar under an injector), or
        ``"auto"`` (default: vector iff fault-free and the flush list has
        at least :data:`VECTOR_SCAN_AUTO_THRESHOLD` entries).  The two
        paths make byte-identical decisions; see :class:`_VectorScan`.
    journal / checkpoint_every:
        Crash-consistent journaling, as in :class:`GatedExecutor`.
    """

    def __init__(
        self,
        instance: WORMSInstance,
        injector: "FaultInjector | None" = None,
        *,
        retry_budget: int = 5,
        max_replans: int = 2,
        replanner=None,
        max_steps: "int | None" = None,
        fault_aware: bool = False,
        scan: str = "auto",
        journal=None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    ) -> None:
        super().__init__(instance, journal=journal,
                         checkpoint_every=checkpoint_every)
        if scan not in ("auto", "scalar", "vector"):
            raise InvalidInstanceError(
                f"scan must be 'auto', 'scalar' or 'vector', got {scan!r}"
            )
        self.scan = scan
        if injector is not None and injector.is_zero_plan:
            injector = None  # zero plan == no injector: skip all fault queries
        self.injector = injector
        self.retry_budget = max(1, int(retry_budget))
        self.max_replans = max(0, int(max_replans))
        self.replanner = replanner if replanner is not None else worms_replan
        if max_steps is None:
            work = max(1, instance.total_work())
            max_steps = 1000 + 50 * work
        self.max_steps = max_steps
        self.fault_aware = bool(fault_aware)
        self.stats = ResilienceStats()

    # ------------------------------------------------------------------
    def run(self, flushes: "list[Flush]") -> FlushSchedule:
        """Execute ``flushes`` under faults; returns the realized schedule.

        The realized schedule records only the flushes that *succeeded*
        (a partial delivery appears as the delivered subset), so it is
        always a valid schedule of the fault-free model and can be
        checked with :func:`repro.dam.validator.validate_valid`.
        """
        obs = current_obs()
        span = obs.tracer.span(
            "executor.resilient_run", category="executor",
            flushes=len(flushes),
        )
        t_wall = obs.profiler.clock() if obs.enabled else 0.0
        inst = self.instance
        injector = self.injector
        is_leaf = self._is_leaf
        root = self._root
        P, B = inst.P, inst.B
        targets = inst.targets.tolist()
        location = [inst.start_of(m) for m in range(inst.n_messages)]
        occupancy = [0] * inst.topology.n_nodes
        for m in range(inst.n_messages):
            v = location[m]
            if v != root and not is_leaf[v] and v != targets[m]:
                occupancy[v] += 1

        def make_pending(fs: "list[Flush]") -> "list[_PendingFlush]":
            return [
                _PendingFlush(
                    f,
                    parking=sum(
                        1 for m in f.messages if targets[m] != f.dest
                    ),
                )
                for f in fs
            ]

        journal = self._start_journal(location, targets)
        fault_aware = self.fault_aware and injector is not None
        #: node -> last step of its observed stall window (fault-aware).
        stall_until: dict[int, int] = {}
        pending = make_pending(flushes)
        n_pending = len(pending)
        # Vectorized readiness scan: decided once per run (see the class
        # docstring of _VectorScan for why only fault-free runs qualify).
        use_vector = injector is None and (
            self.scan == "vector"
            or (self.scan == "auto"
                and len(pending) >= VECTOR_SCAN_AUTO_THRESHOLD)
        )
        vscan: "_VectorScan | None" = None
        if use_vector:
            location = np.asarray(location, dtype=np.int64)
            vscan = _VectorScan(pending)
        span.set("scan", "vector" if use_vector else "scalar")
        schedule = FlushSchedule()
        t = 0
        idle = 0
        replans = 0
        try:
            while n_pending:
                t += 1
                if t > self.max_steps:
                    raise self._stalled(
                        f"resilient executor exceeded max_steps="
                        f"{self.max_steps}",
                        t, location, pending,
                    )
                capacity = P if injector is None else injector.effective_p(
                    t, P
                )
                # Fault-aware triage: while capacity is degraded, offer
                # the scarce slots to completion flushes (parking == 0)
                # first, then everyone else.  Never active fault-free.
                if fault_aware and capacity < P:
                    self.stats.degraded_triage_steps += 1
                    passes: "tuple[bool | None, ...]" = (True, False)
                else:
                    passes = (None,)
                ran: list[_PendingFlush] = []
                attempted = 0
                waiting = False
                budget_exhausted = False
                moved: set[int] = set()
                departed: dict[int, int] = {}
                arrived: dict[int, int] = {}
                if vscan is not None:
                    # Fault-free fast path: vectorized candidate prefilter
                    # + the full scalar checks on every candidate, so the
                    # selected flushes are exactly the scalar scan's (see
                    # _VectorScan).  Faults never reach here, so none of
                    # the eligibility/stall/outcome guards are needed.
                    for i in vscan.candidates(location):
                        if attempted >= capacity:
                            break
                        pf = pending[i]
                        flush = pf.flush
                        src = flush.src
                        msgs = flush.messages
                        if location[msgs[0]] != src:
                            continue
                        if any(
                            location[m] != src or m in moved for m in msgs
                        ):
                            continue
                        dest = flush.dest
                        park = pf.parking
                        if not is_leaf[dest]:
                            projected = (
                                occupancy[dest]
                                - departed.get(dest, 0)
                                + arrived.get(dest, 0)
                                + park
                            )
                            if projected > B:
                                continue
                        attempted += 1
                        ran.append(pf)
                        pf.done = True
                        vscan.done[i] = True
                        schedule.add(t, flush)
                        moved.update(msgs)
                        if journal is not None:
                            journal.record_flush(t, flush)
                        if src != root and not is_leaf[src]:
                            departed[src] = departed.get(src, 0) + flush.size
                        if not is_leaf[dest]:
                            arrived[dest] = arrived.get(dest, 0) + park
                        for m in msgs:
                            location[m] = dest
                    passes = ()  # the scalar scan below is skipped
                # Same one-pass priority scan as GatedExecutor.run; the
                # extra guards (eligibility, stalls, outcomes) all no-op
                # when injector is None, keeping the fault-free path
                # identical.
                for completions_only in passes:
                    if attempted >= capacity:
                        break
                    for pf in pending:
                        if pf.done:
                            continue
                        if attempted >= capacity:
                            break
                        if completions_only is True and pf.parking > 0:
                            continue
                        if completions_only is False and pf.parking == 0:
                            continue  # already offered in the first pass
                        if pf.eligible_at > t:
                            waiting = True
                            continue
                        flush = pf.flush
                        src = flush.src
                        dest = flush.dest
                        if fault_aware and (
                            stall_until.get(src, 0) >= t
                            or stall_until.get(dest, 0) >= t
                        ):
                            # Known-stalled window: park without probing.
                            self.stats.fault_aware_skips += 1
                            waiting = True
                            continue
                        if injector is not None and (
                            injector.is_stalled(t, src)
                            or injector.is_stalled(t, dest)
                        ):
                            self.stats.stalled_skips += 1
                            if fault_aware:
                                for node in (src, dest):
                                    end = injector.stall_window_end(t, node)
                                    if end is not None and end > stall_until.get(
                                        node, 0
                                    ):
                                        stall_until[node] = end
                            waiting = True
                            continue
                        msgs = flush.messages
                        if location[msgs[0]] != src:
                            continue
                        if any(
                            location[m] != src or m in moved for m in msgs
                        ):
                            continue
                        park = pf.parking
                        if not is_leaf[dest]:
                            projected = (
                                occupancy[dest]
                                - departed.get(dest, 0)
                                + arrived.get(dest, 0)
                                + park
                            )
                            if projected > B:
                                continue
                        # Selected: the IO is attempted and the slot is
                        # consumed whatever the outcome.
                        attempted += 1
                        if injector is None:
                            delivered: tuple[int, ...] = msgs
                            status = None
                        else:
                            status, delivered = injector.flush_outcome(
                                t, src, dest, msgs
                            )
                            if status == OUTCOME_FAILED:
                                self.stats.failed_attempts += 1
                                pf.attempts += 1
                                pf.eligible_at = t + 1 + (1 << (pf.attempts - 1))
                                if journal is not None:
                                    journal.record_fault(
                                        t, "failed_flush", src, dest,
                                        f"{len(msgs)} msgs no-oped "
                                        f"(attempt {pf.attempts})",
                                    )
                                if pf.attempts >= self.retry_budget:
                                    budget_exhausted = True
                                continue
                            if status == OUTCOME_PARTIAL:
                                self.stats.partial_deliveries += 1
                                remainder = tuple(
                                    m for m in msgs
                                    if m not in set(delivered)
                                )
                                # Redeliver the remainder at the same
                                # priority slot.
                                pf.flush = Flush(src, dest, remainder)
                                pf.parking = sum(
                                    1 for m in remainder
                                    if targets[m] != dest
                                )
                                pf.attempts += 1
                                pf.eligible_at = t + 1 + (1 << (pf.attempts - 1))
                                if journal is not None:
                                    journal.record_fault(
                                        t, "partial_flush", src, dest,
                                        f"delivered {len(delivered)}/"
                                        f"{len(msgs)} msgs "
                                        f"(attempt {pf.attempts})",
                                    )
                                if pf.attempts >= self.retry_budget:
                                    budget_exhausted = True
                        actual = (
                            flush
                            if len(delivered) == len(msgs)
                            else Flush(src, dest, delivered)
                        )
                        if len(delivered) == len(msgs):
                            ran.append(pf)
                            pf.done = True
                        schedule.add(t, actual)
                        moved.update(delivered)
                        delivered_parking = (
                            park
                            if len(delivered) == len(msgs)
                            else sum(
                                1 for m in delivered if targets[m] != dest
                            )
                        )
                        if journal is not None:
                            journal.record_flush(t, actual)
                        if src != root and not is_leaf[src]:
                            departed[src] = departed.get(src, 0) + len(delivered)
                        if not is_leaf[dest]:
                            arrived[dest] = arrived.get(dest, 0) + delivered_parking
                        for m in delivered:
                            location[m] = dest

                if attempted == 0:
                    if waiting:
                        # Blocked on faults (stall window / backoff): time
                        # genuinely passes; the realized schedule gets an
                        # idle step.  Bounded because windows and backoffs
                        # are finite (max_steps backstops pathologies).
                        self.stats.wait_steps += 1
                        idle = 0
                        continue
                    idle += 1
                    if idle > MAX_IDLE_STEPS:
                        t -= 1
                        pending = self._replan_or_raise(
                            t, location, pending, replans,
                            reason="deadlocked (flush list is not laminar?)",
                            make_pending=make_pending,
                        )
                        n_pending = len(pending)
                        replans += 1
                        idle = 0
                        if vscan is not None:
                            vscan.rebuild(pending)
                        continue
                    t -= 1
                    continue
                idle = 0
                for v, d in departed.items():
                    occupancy[v] -= d
                for v, a in arrived.items():
                    occupancy[v] += a
                n_pending -= len(ran)
                if journal is not None and moved:
                    journal.end_step(t, location)
                if n_pending and len(pending) > 2 * n_pending:
                    pending = [pf for pf in pending if not pf.done]
                    if vscan is not None:
                        vscan.rebuild(pending)
                if budget_exhausted and n_pending:
                    pending = self._replan_or_raise(
                        t, location, pending, replans,
                        reason="retry budget exhausted",
                        make_pending=make_pending,
                    )
                    n_pending = len(pending)
                    replans += 1
                    if vscan is not None:
                        vscan.rebuild(pending)
        except ExecutionStalledError:
            if journal is not None:
                journal.abort()
            span.set("stalled", True)
            span.finish()
            raise
        if injector is not None:
            self.stats.fault_events = list(injector.events)
        schedule = schedule.trim()
        if journal is not None:
            journal.finish(schedule.n_steps, location)
        if obs.enabled:
            obs.profiler.add(PHASE_EXECUTE, obs.profiler.clock() - t_wall)
            span.set_steps(1, schedule.n_steps)
            record_run_metrics(obs.metrics, schedule)
            stats = self.stats
            metrics = obs.metrics
            metrics.counter(
                "executor_retries_total", "failed flush attempts retried"
            ).inc(stats.failed_attempts)
            metrics.counter(
                "executor_partial_deliveries_total",
                "flushes that delivered a strict subset",
            ).inc(stats.partial_deliveries)
            metrics.counter(
                "executor_replans_total", "mid-run re-planning rounds"
            ).inc(stats.replans)
            metrics.counter(
                "executor_wait_steps_total",
                "steps idled waiting out fault windows/backoff",
            ).inc(stats.wait_steps)
            metrics.counter(
                "executor_stalled_skips_total",
                "flushes skipped because a node was observed stalled",
            ).inc(stats.stalled_skips)
        span.finish()
        return schedule

    # ------------------------------------------------------------------
    def _replan_or_raise(
        self,
        t: int,
        location: "list[int]",
        pending: "list[_PendingFlush]",
        replans: int,
        *,
        reason: str,
        make_pending,
    ) -> "list[_PendingFlush]":
        """Re-plan the surviving messages, or raise if out of options."""
        pending = [pf for pf in pending if not pf.done]
        if replans >= self.max_replans:
            raise self._stalled(
                f"resilient executor stalled ({reason}; "
                f"{replans} replan(s) already used)",
                t, location, pending,
            )
        targets = self.instance.targets
        remaining = [
            m
            for m in range(self.instance.n_messages)
            if location[m] != int(targets[m])
        ]
        obs = current_obs()
        with obs.tracer.span(
            "executor.replan", category="executor",
            reason=reason, remaining=len(remaining), step=t,
        ):
            try:
                new_flushes = self.replanner(
                    self.instance, remaining, location
                )
            except ReproError as exc:
                raise self._stalled(
                    f"resilient executor stalled ({reason}; "
                    f"replan failed: {exc})",
                    t, location, pending,
                ) from exc
        if not new_flushes and remaining:
            raise self._stalled(
                f"resilient executor stalled ({reason}; replanner returned "
                "no flushes for surviving messages)",
                t, location, pending,
            )
        self.stats.replans += 1
        return make_pending(new_flushes)

    def _stalled(
        self,
        header: str,
        t: int,
        location: "list[int]",
        pending: "list[_PendingFlush]",
    ) -> ExecutionStalledError:
        return stalled_error(
            header,
            step=t,
            instance=self.instance,
            location=location,
            pending_flushes=[pf.flush for pf in pending if not pf.done],
        )
