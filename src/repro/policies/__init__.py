"""Flushing policies: the paper's baselines and practical schedulers.

The introduction frames the problem as an "unsavory choice" between two
classic techniques; both are implemented here on the same substrate,
together with the paper's scheduler and an online heuristic:

* :class:`EagerPolicy` — flush each operation root-to-leaf individually
  (starts work immediately, little work per IO);
* :class:`GreedyBatchPolicy` — classic write-optimized batching (flush the
  fullest node toward its most popular child; great work per IO, terrible
  per-operation latency);
* :class:`WormsPolicy` — the practical middle ground: executes the
  pipeline's MPHTF flush order directly under an admission-gated executor
  that is valid by construction (no Lemma-1 constant blowup);
* :class:`PaperPipelinePolicy` — the literal Section 4.3 pipeline
  including the Lemma 1 conversion;
* :func:`online_density_schedule` — a probe at the paper's future-work
  question (Section 5): messages arrive over time, scheduler is greedy by
  completion density.
"""

from repro.policies.base import Policy
from repro.policies.eager import EagerPolicy
from repro.policies.executor import GatedExecutor, execute_flush_list
from repro.policies.greedy_batch import GreedyBatchPolicy
from repro.policies.lazy_threshold import LazyThresholdPolicy
from repro.policies.online import (
    OnlineArrival,
    OnlineDensityPolicy,
    online_density_schedule,
)
from repro.policies.resilient import (
    ResilienceStats,
    ResilientExecutor,
    worms_replan,
)
from repro.policies.worms_policy import PaperPipelinePolicy, PhtfWormsPolicy, WormsPolicy

__all__ = [
    "Policy",
    "EagerPolicy",
    "GreedyBatchPolicy",
    "LazyThresholdPolicy",
    "WormsPolicy",
    "PhtfWormsPolicy",
    "PaperPipelinePolicy",
    "GatedExecutor",
    "execute_flush_list",
    "ResilientExecutor",
    "ResilienceStats",
    "worms_replan",
    "OnlineArrival",
    "OnlineDensityPolicy",
    "online_density_schedule",
]
