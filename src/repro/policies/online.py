"""Online root-to-leaf scheduling: a probe at the paper's future work.

Section 5 leaves open the online setting where messages arrive over time.
This module implements a simple *density-guided* online heuristic so the
E9 bench can measure how much clairvoyance buys:

* messages carry release steps; a message participates once released;
* at every step the scheduler scores each (node, child) buffer group by a
  completion-aware density, ``count / remaining_height`` — the analogue of
  Horn densities without lookahead (a group that can complete soon and
  moves many messages at once scores high);
* the ``P`` best admissible groups flush (same gate as the other
  policies, so the result is valid by construction).

The offline policies can be run on the same arrival traces by releasing
everything at step 1, which is what the bench compares against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.worms import WORMSInstance
from repro.dam.schedule import Flush, FlushSchedule
from repro.policies.base import Policy


@dataclass(frozen=True, slots=True)
class OnlineArrival:
    """Message ``msg_id`` becomes available at 1-based ``release_step``."""

    msg_id: int
    release_step: int


def online_density_schedule(
    instance: WORMSInstance,
    arrivals: "list[OnlineArrival] | None" = None,
) -> FlushSchedule:
    """Run the online density heuristic; returns a valid schedule.

    ``arrivals`` defaults to all messages released at step 1 (the offline
    special case).  Completion times in the returned schedule are absolute
    steps; subtract release steps for flow time.
    """
    topo = instance.topology
    root = topo.root
    heights = topo.heights
    tree_h = topo.height
    if arrivals is None:
        arrivals = [OnlineArrival(m, 1) for m in range(instance.n_messages)]
    by_release: dict[int, list[int]] = {}
    for a in arrivals:
        by_release.setdefault(max(1, a.release_step), []).append(a.msg_id)

    buffers: dict[int, dict[int, list[int]]] = {}
    node_load: dict[int, int] = {}
    remaining = 0

    def park(m: int, v: int) -> None:
        child = topo.child_towards(v, instance.messages[m].target_leaf)
        buffers.setdefault(v, {}).setdefault(child, []).append(m)
        node_load[v] = node_load.get(v, 0) + 1

    schedule = FlushSchedule()
    t = 0
    last_release = max(by_release) if by_release else 0
    while remaining or t < last_release:
        t += 1
        for m in by_release.get(t, ()):
            v = instance.start_of(m)
            if v != instance.messages[m].target_leaf:
                park(m, v)
                remaining += 1
        if not remaining:
            continue
        # Score every (node, child) group: prefer groups that move many
        # messages and are close to completing.
        scored: list[tuple[float, int, int]] = []
        for v, groups in buffers.items():
            for c, msgs in groups.items():
                if not msgs:
                    continue
                remaining_height = tree_h - int(heights[v])
                score = len(msgs) / max(1, remaining_height)
                scored.append((-score, v, c))
        scored.sort()
        used = 0
        touched: set[int] = set()
        arrivals_now: list[tuple[int, int]] = []
        for _neg, v, c in scored:
            if used >= instance.P:
                break
            if v in touched or c in touched:
                continue
            moving = buffers[v][c][: instance.B]
            parking = [
                m for m in moving if instance.messages[m].target_leaf != c
            ]
            if not topo.is_leaf(c):
                if node_load.get(c, 0) + len(parking) > instance.B:
                    continue
            used += 1
            touched.add(v)
            touched.add(c)
            schedule.add(t, Flush(src=v, dest=c, messages=tuple(moving)))
            del buffers[v][c][: len(moving)]
            if not buffers[v][c]:
                del buffers[v][c]
            node_load[v] -= len(moving)
            if node_load[v] == 0:
                del node_load[v]
                buffers.pop(v, None)
            parking_set = set(parking)
            for m in moving:
                if m in parking_set:
                    arrivals_now.append((m, c))
                else:
                    remaining -= 1
        for m, v in arrivals_now:
            park(m, v)
    return schedule.trim()


class OnlineDensityPolicy(Policy):
    """The density heuristic as a :class:`Policy` (everything at step 1).

    Lets comparison harnesses (``compare_policies``, the resilience
    sweep) include the online scheduler alongside the offline policies.
    """

    name = "online"

    def schedule(self, instance: WORMSInstance) -> FlushSchedule:
        """All messages released at step 1 (the offline special case)."""
        return online_density_schedule(instance)
