"""The policy interface: a named strategy mapping instances to schedules."""

from __future__ import annotations

import abc

from repro.core.worms import WORMSInstance
from repro.dam.schedule import FlushSchedule


class Policy(abc.ABC):
    """A flushing policy produces a *valid* schedule for a WORMS instance.

    Policies are stateless between calls; configuration goes through the
    constructor so a configured policy can be reused across a sweep.
    """

    #: short identifier used in bench tables.
    name: str = "policy"

    @abc.abstractmethod
    def schedule(self, instance: WORMSInstance) -> FlushSchedule:
        """Return a valid flush schedule completing every message."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
