"""Replay a flush schedule on a WORMS instance under the DAM model.

The simulator is the single source of truth for schedule semantics:

* message locations over time (state ``S_t`` = locations at the *start* of
  1-based time step ``t``; a flush at step ``t`` moves its messages so they
  are at the destination from step ``t + 1`` on);
* completion times (``c(S, m)`` = the step whose flush delivers ``m`` into
  its target leaf — matching the paper's accounting, e.g. the two-flush
  paths in the NP-hardness gadget complete at step 2);
* per-step violation collection for both schedule classes the paper
  defines: **overfilling** (flushes valid and everything completes) and
  **valid** (additionally, every internal non-root node retains at most
  ``B`` messages across consecutive steps — the space requirement).

The main loop is plain Python over list/dict/set state: schedules touch
each message O(h) times total, so the work is proportional to schedule
size and profiling shows no numpy-friendly hot spot (guides: make it work
simply and legibly first, optimize bottlenecks only when measured).
numpy appears only at the result boundary (``completion_times`` is an
array because the analysis layer consumes it that way).

Passing a :class:`~repro.faults.FaultInjector` replays the schedule
*open-loop* under faults: a failed or stalled flush silently no-ops for
its step, a partial flush delivers a subset, and flushes beyond the
degraded capacity are dropped.  Injected faults are recorded as
``fault_events`` (they are not violations — the schedule did nothing
wrong), but their downstream consequences surface naturally as
``message_not_at_source`` / ``messages_unfinished`` violations: exactly
the cascade a fixed schedule suffers on a faulty machine.  Closed-loop
recovery lives in :class:`repro.policies.resilient.ResilientExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.worms import WORMSInstance
from repro.dam.schedule import FlushSchedule
from repro.obs.hooks import current_obs
from repro.faults.injector import (
    FaultEvent,
    OUTCOME_FAILED,
    OUTCOME_PARTIAL,
)
from repro.faults.plan import DROPPED_FLUSH

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faults.injector import FaultInjector

#: Violation kinds reported by :func:`simulate`.
KIND_TOO_MANY_FLUSHES = "too_many_flushes_in_step"
KIND_FLUSH_TOO_BIG = "flush_exceeds_B"
KIND_BAD_EDGE = "not_a_tree_edge"
KIND_MESSAGE_NOT_AT_SRC = "message_not_at_source"
KIND_MESSAGE_IN_TWO_FLUSHES = "message_in_two_flushes_same_step"
KIND_SPACE = "space_requirement_violated"
KIND_INCOMPLETE = "messages_unfinished"
KIND_EMPTY_FLUSH = "empty_flush"


@dataclass(frozen=True, slots=True)
class Violation:
    """One rule violation observed while replaying a schedule."""

    kind: str
    time_step: int
    node: int = -1
    detail: str = ""

    def __repr__(self) -> str:
        where = f" node={self.node}" if self.node >= 0 else ""
        return f"Violation({self.kind}, t={self.time_step}{where}: {self.detail})"


@dataclass
class SimulationResult:
    """Outcome of replaying a schedule.

    ``completion_times[i]`` is the 1-based step at which message ``i``
    reached its target leaf, or 0 if it never did.
    """

    completion_times: np.ndarray
    n_steps: int
    violations: list[Violation] = field(default_factory=list)
    space_violations: list[Violation] = field(default_factory=list)
    max_occupancy: dict[int, int] = field(default_factory=dict)
    #: faults injected during the replay (empty without an injector).
    fault_events: list = field(default_factory=list)

    @property
    def total_completion_time(self) -> int:
        """The paper's objective ``c(S) = sum_m c(S, m)``."""
        return int(self.completion_times.sum())

    @property
    def mean_completion_time(self) -> float:
        """Average completion time over all messages."""
        if self.completion_times.size == 0:
            return 0.0
        return float(self.completion_times.mean())

    @property
    def max_completion_time(self) -> int:
        """Makespan: the last completion step."""
        if self.completion_times.size == 0:
            return 0
        return int(self.completion_times.max())

    @property
    def is_overfilling(self) -> bool:
        """True iff the schedule is at least overfilling (paper §2.1)."""
        return not self.violations

    @property
    def is_valid(self) -> bool:
        """True iff the schedule is fully valid (space requirement too)."""
        return not self.violations and not self.space_violations


def simulate(
    instance: WORMSInstance,
    schedule: FlushSchedule,
    *,
    track_occupancy: bool = False,
    faults: "FaultInjector | None" = None,
) -> SimulationResult:
    """Replay ``schedule`` on ``instance`` and collect all violations.

    Never raises on bad schedules — violations are recorded and the replay
    continues on a best-effort basis (flushes moving absent messages move
    only the present ones), so callers get a complete diagnosis in one
    pass.  Use :func:`repro.dam.validator.validate_valid` to raise instead.

    With ``faults``, the replay is open-loop fault injection: see the
    module docstring for the exact semantics of each fault kind.
    """
    obs = current_obs()
    span = obs.tracer.span(
        "dam.simulate", category="dam",
        n_steps=schedule.n_steps, n_messages=instance.n_messages,
    )
    topo = instance.topology
    n_msgs = instance.n_messages
    parents = topo.parents
    targets = instance.targets
    if faults is not None:
        faults.reset_events()  # log exactly this replay's faults

    location = [instance.start_of(i) for i in range(n_msgs)]
    completion = [0] * n_msgs
    # Messages already at their target (possible with custom start nodes)
    # complete at time 0 by convention.
    at_target = [location[i] == int(targets[i]) for i in range(n_msgs)]
    occupants: dict[int, set[int]] = {}
    for i in range(n_msgs):
        if not at_target[i]:
            occupants.setdefault(location[i], set()).add(i)

    violations: list[Violation] = []
    space_violations: list[Violation] = []
    max_occupancy: dict[int, int] = {}
    root = topo.root
    is_leaf = [topo.is_leaf(v) for v in range(topo.n_nodes)]
    # Space-requirement bookkeeping: occupancy can only grow via arrivals,
    # so it suffices to *watch* internal non-root nodes that ended some
    # step above B and re-check them (plus nothing else) each step.  This
    # keeps the per-step cost proportional to the step's own flushes on
    # valid schedules instead of scanning every occupied node.
    watch: set[int] = {
        v
        for v, occ in occupants.items()
        if v != root and not is_leaf[v] and len(occ) > instance.B
    }
    if track_occupancy:
        for v, occ in occupants.items():
            max_occupancy[v] = len(occ)

    fault_events: list = []
    for t, flushes in enumerate(schedule.steps, start=1):
        if len(flushes) > instance.P:
            violations.append(
                Violation(
                    KIND_TOO_MANY_FLUSHES,
                    t,
                    detail=f"{len(flushes)} flushes > P={instance.P}",
                )
            )
        capacity = (
            faults.effective_p(t, instance.P) if faults is not None
            else instance.P
        )
        executed = 0
        moved_this_step: set[int] = set()
        arrivals: dict[int, set[int]] = {}
        for flush in flushes:
            if flush.size == 0:
                violations.append(Violation(KIND_EMPTY_FLUSH, t, node=flush.src))
                continue
            delivered_filter: "set[int] | None" = None
            if faults is not None:
                # Fault checks come first: a faulted flush no-ops without
                # any violation (the schedule did nothing wrong), and its
                # consequences surface downstream instead.
                if executed >= capacity:
                    fault_events.append(
                        FaultEvent(
                            DROPPED_FLUSH,
                            t,
                            node=flush.src,
                            detail=(
                                f"flush {flush.src}->{flush.dest} dropped: "
                                f"degraded capacity {capacity} < P"
                            ),
                        )
                    )
                    continue
                if faults.is_stalled(t, flush.src) or faults.is_stalled(
                    t, flush.dest
                ):
                    continue
                status, delivered = faults.flush_outcome(
                    t, flush.src, flush.dest, flush.messages
                )
                executed += 1
                if status == OUTCOME_FAILED:
                    continue
                if status == OUTCOME_PARTIAL:
                    delivered_filter = set(delivered)
            if flush.size > instance.B:
                violations.append(
                    Violation(
                        KIND_FLUSH_TOO_BIG,
                        t,
                        node=flush.src,
                        detail=f"{flush.size} msgs > B={instance.B}",
                    )
                )
            if (
                not (0 <= flush.dest < topo.n_nodes)
                or int(parents[flush.dest]) != flush.src
            ):
                violations.append(
                    Violation(
                        KIND_BAD_EDGE,
                        t,
                        node=flush.src,
                        detail=f"({flush.src}->{flush.dest}) is not an edge",
                    )
                )
                continue
            movable = []
            for m in flush.messages:
                if m in moved_this_step:
                    violations.append(
                        Violation(
                            KIND_MESSAGE_IN_TWO_FLUSHES,
                            t,
                            node=flush.src,
                            detail=f"message {m}",
                        )
                    )
                    continue
                if location[m] != flush.src or completion[m] > 0:
                    violations.append(
                        Violation(
                            KIND_MESSAGE_NOT_AT_SRC,
                            t,
                            node=flush.src,
                            detail=(
                                f"message {m} is at {location[m]}, "
                                f"not {flush.src}"
                            ),
                        )
                    )
                    continue
                if delivered_filter is not None and m not in delivered_filter:
                    continue  # redelivery needed: the partial flush lost m
                movable.append(m)
                moved_this_step.add(m)
            if not movable:
                continue
            src_set = occupants.get(flush.src, set())
            for m in movable:
                location[m] = flush.dest
                src_set.discard(m)
            arriving = arrivals.setdefault(flush.dest, set())
            for m in movable:
                if flush.dest == int(targets[m]):
                    completion[m] = t
                else:
                    arriving.add(m)

        # Space requirement: messages in v at both step t and t+1.  Each
        # occupancy set now holds start-of-step occupants minus this
        # step's outflows (arrivals are staged separately), which is
        # exactly the retained count the requirement bounds.  A node can
        # only be over B here if it already ended an earlier step over B
        # (occupancy grows via arrivals alone), so checking the watch set
        # is complete.
        for v in list(watch):
            retained = len(occupants.get(v, ()))
            if retained > instance.B:
                space_violations.append(
                    Violation(
                        KIND_SPACE,
                        t,
                        node=v,
                        detail=f"{retained} msgs retained > B={instance.B}",
                    )
                )
            else:
                watch.discard(v)
        for v, arr in arrivals.items():
            if not arr:
                continue
            occ = occupants.setdefault(v, set())
            occ.update(arr)
            if v != root and not is_leaf[v] and len(occ) > instance.B:
                watch.add(v)
            if track_occupancy and len(occ) > max_occupancy.get(v, 0):
                max_occupancy[v] = len(occ)

    unfinished = sum(
        1 for i in range(n_msgs) if completion[i] == 0 and not at_target[i]
    )
    if unfinished > 0:
        violations.append(
            Violation(
                KIND_INCOMPLETE,
                schedule.n_steps,
                detail=f"{unfinished} message(s) never reached their leaf",
            )
        )
    if faults is not None:
        fault_events.extend(faults.events)
        fault_events.sort(key=lambda e: e.step)

    if obs.enabled:
        span.set("violations", len(violations) + len(space_violations))
        span.set_steps(1, schedule.n_steps)
        span.finish()
        metrics = obs.metrics
        metrics.counter(
            "simulator_replays_total", "simulate() replays"
        ).inc()
        metrics.counter(
            "simulator_steps_total", "DAM steps replayed"
        ).inc(schedule.n_steps)
        metrics.counter(
            "simulator_violations_total", "violations found by replays"
        ).inc(len(violations) + len(space_violations))
    return SimulationResult(
        completion_times=np.asarray(completion, dtype=np.int64),
        n_steps=schedule.n_steps,
        violations=violations,
        space_violations=space_violations,
        max_occupancy=max_occupancy,
        fault_events=fault_events,
    )
