"""Disk Access Machine (DAM) model: schedules, simulation, validation.

The DAM model (Aggarwal & Vitter) charges one IO per time step; in one IO
up to ``P`` disjoint sets of ``B`` contiguous elements move.  For WORMS,
one time step therefore performs up to ``P`` flushes of up to ``B``
messages each (Section 2.1 of the paper).

* :mod:`repro.dam.schedule` — the :class:`Flush`/:class:`FlushSchedule`
  data types every scheduler produces.
* :mod:`repro.dam.simulator` — replays a schedule against a WORMS instance,
  tracking message locations, completion times, and node occupancy.
* :mod:`repro.dam.validator` — checks the paper's validity conditions
  (valid / overfilling) and raises precise errors.
"""

from repro.dam.compaction import CompactionReport, compact_journal
from repro.dam.journal import (
    JournalScan,
    JournalWriter,
    RecoveryManager,
    RecoveryReport,
    scan_journal,
)
from repro.dam.machine import DAMSpec
from repro.dam.schedule import Flush, FlushSchedule
from repro.dam.simulator import SimulationResult, simulate
from repro.dam.trace import (
    CheckpointRecord,
    ScheduleTrace,
    checkpoint_at,
    record_trace,
    resume_simulation,
)
from repro.dam.validator import (
    ScheduleViolation,
    check_schedule,
    validate_overfilling,
    validate_recovery,
    validate_valid,
)

__all__ = [
    "DAMSpec",
    "Flush",
    "FlushSchedule",
    "simulate",
    "SimulationResult",
    "check_schedule",
    "validate_valid",
    "validate_overfilling",
    "validate_recovery",
    "ScheduleViolation",
    "ScheduleTrace",
    "CheckpointRecord",
    "record_trace",
    "checkpoint_at",
    "resume_simulation",
    "CompactionReport",
    "compact_journal",
    "JournalWriter",
    "JournalScan",
    "RecoveryManager",
    "RecoveryReport",
    "scan_journal",
]
