"""Journal compaction: drop sealed records a later checkpoint supersedes.

A long-lived rotating journal (:class:`~repro.dam.journal.JournalWriter`
with ``max_segment_bytes``) accumulates flush and fault records that
recovery will never read again: :meth:`RecoveryManager._recover_state`
rebuilds state from the *newest* checkpoint and replays only flushes
strictly after it.  Once a checkpoint at step ``C`` exists, every flush
or fault record with ``t <= C`` is dead weight — kept bytes that cost
scan time and disk but can never influence recovery.

:func:`compact_journal` reclaims them, under three safety rules that
keep recovery **exactly** what it was (pinned by the kill-fuzz
regression in ``tests/dam/test_compaction.py``):

* **Only sealed segments are touched.**  A segment is *sealed* when a
  later segment exists: rotation flushes and closes a segment before
  opening its successor, so sealed segments can never end torn and are
  never appended to again.  The active tail segment — the only place a
  crash can tear — is left byte-for-byte alone, so compaction commutes
  with :meth:`RecoveryManager.repair`.
* **The supersession bar comes from sealed evidence only.**  The cutoff
  ``C`` is the newest checkpoint step *within the sealed segments*.
  Recovery's base checkpoint is the newest in the whole chain, hence
  ``>= C`` whatever the (possibly torn) tail holds, so a dropped flush
  (``t <= C``) could never have been replayed and a dropped checkpoint
  (``t < C``) could never have been the base.  The ``meta`` record and
  the bar checkpoint itself always survive.
* **Rewrites are atomic.**  Each compacted segment is rewritten through
  :func:`repro.util.atomic.atomic_write_bytes` (tmp + fsync + rename),
  so a crash mid-compaction leaves either the old or the new bytes —
  both valid journals.  Segments left empty keep their header so
  :func:`~repro.dam.journal.journal_segments` chain enumeration (which
  stops at the first gap) still sees an unbroken chain.

``python -m repro compact <journal>`` exposes this on the CLI.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.dam.journal import (
    REC_CHECKPOINT,
    REC_FAULT,
    REC_FLUSH,
    _HEADER,
    _scan_segment,
    encode_record,
    journal_segments,
)
from repro.obs.hooks import current_obs
from repro.util.atomic import atomic_write_bytes
from repro.util.errors import JournalCorruptionError


@dataclass(frozen=True)
class CompactionReport:
    """What :func:`compact_journal` did."""

    #: segment files whose bytes were rewritten.
    segments_compacted: int
    #: segments in the chain (sealed + active tail).
    segments_total: int
    #: the supersession bar: newest checkpoint step in sealed segments
    #: (-1 when no sealed checkpoint existed and nothing could be dropped).
    checkpoint_step: int
    #: dropped record counts by type (flush / fault / checkpoint).
    dropped: "dict[str, int]" = field(default_factory=dict)
    bytes_before: int = 0
    bytes_after: int = 0

    @property
    def records_dropped(self) -> int:
        """Total records removed."""
        return sum(self.dropped.values())

    @property
    def bytes_reclaimed(self) -> int:
        """Disk bytes returned by this compaction."""
        return self.bytes_before - self.bytes_after


def compact_journal(path: "str | os.PathLike") -> CompactionReport:
    """Compact the sealed segments of the journal chain at ``path``.

    Returns a :class:`CompactionReport` (a no-op report when the journal
    has fewer than two segments or no sealed checkpoint).  Raises
    :class:`~repro.util.errors.JournalCorruptionError` if a sealed
    segment is damaged — rotation seals segments, so mid-chain damage is
    corruption, exactly as in :func:`~repro.dam.journal.scan_journal`.
    """
    segments = journal_segments(path)
    if not segments:
        # Preserve the single-file error shape (FileNotFoundError).
        Path(path).read_bytes()
    obs = current_obs()
    with obs.tracer.span(
        "journal.compact", category="journal", path=str(path)
    ) as span:
        report = _compact(path, segments)
        if obs.enabled:
            span.set("segments_compacted", report.segments_compacted)
            span.set("records_dropped", report.records_dropped)
            span.set("bytes_reclaimed", report.bytes_reclaimed)
            metrics = obs.metrics
            metrics.counter(
                "journal_compactions_total", "compact_journal() invocations"
            ).inc()
            dropped = metrics.counter(
                "journal_compaction_dropped_total",
                "records removed by compaction",
            )
            for kind, n in sorted(report.dropped.items()):
                dropped.inc(n)
                dropped.labels(type=kind).inc(n)
            metrics.counter(
                "journal_compaction_bytes_reclaimed_total",
                "journal bytes reclaimed by compaction",
            ).inc(report.bytes_reclaimed)
    return report


def _compact(path, segments: "list[Path]") -> CompactionReport:
    sealed = segments[:-1]
    if not sealed:
        return CompactionReport(0, len(segments), -1)
    per_segment: "list[tuple[Path, bytes, list[dict]]]" = []
    for i, seg in enumerate(sealed):
        data = seg.read_bytes()
        records, valid, reason = _scan_segment(seg, data)
        if reason:
            raise JournalCorruptionError(
                f"{seg}: sealed segment {i} of {len(segments)} is damaged "
                f"({reason}) — rotation seals segments, so this is "
                "corruption, not a torn tail",
                offset=valid, reason="mid-chain-tear",
            )
        per_segment.append((seg, data, records))
    bar = max(
        (
            int(rec["t"])
            for _seg, _data, records in per_segment
            for rec in records
            if rec["type"] == REC_CHECKPOINT
        ),
        default=-1,
    )
    if bar < 0:
        return CompactionReport(0, len(segments), -1)
    dropped: "dict[str, int]" = {}
    compacted = 0
    bytes_before = 0
    bytes_after = 0
    for seg, data, records in per_segment:
        bytes_before += len(data)
        kept: "list[dict]" = []
        changed = False
        for rec in records:
            kind = rec["type"]
            if (
                (kind in (REC_FLUSH, REC_FAULT) and int(rec["t"]) <= bar)
                or (kind == REC_CHECKPOINT and int(rec["t"]) < bar)
            ):
                dropped[kind] = dropped.get(kind, 0) + 1
                changed = True
                continue
            kept.append(rec)
        if not changed:
            bytes_after += len(data)
            continue
        atomic_write_bytes(
            seg, _HEADER + b"".join(encode_record(rec) for rec in kept)
        )
        bytes_after += seg.stat().st_size
        compacted += 1
    return CompactionReport(
        compacted, len(segments), bar,
        dropped=dropped,
        bytes_before=bytes_before,
        bytes_after=bytes_after,
    )
