"""Crash-consistent execution journal for schedule execution.

A journal is a segmented, append-only file that makes an executor run
durable: if the process is killed mid-run — a real ``kill -9``, not a
simulated one — the journal holds everything needed to reconstruct the
machine state at the last durable step and resume, with completion times
byte-identical to an uninterrupted run.

**File layout.**  An 8-byte header (``b"WOJ1"`` magic + little-endian
``u32`` version) followed by records.  Each record is::

    u32 payload length | u32 CRC-32 of payload | payload (UTF-8 JSON)

**Segments.**  Long-running (serving) journals rotate: with
``max_segment_bytes`` set, :class:`JournalWriter` closes the current
segment when the next record would overflow it and continues in a new
file.  Segment 0 is the base path; segment ``i`` is ``<path>.<i>``.
Every segment carries its own header; records are split only at record
boundaries, never mid-record.  :func:`scan_journal` reads the whole
chain and :meth:`RecoveryManager.repair` repairs it, so rotation is
invisible to recovery.  The torn-tail rule extends naturally: only the
*last* segment of the chain may end torn (including a half-written
header from a crash during rotation); damage in any earlier segment is
corruption, because rotation flushes and closes a segment before
opening its successor.

Five record types flow through a journal, all JSON objects with a
``"type"`` key:

* ``meta`` — run configuration written once at open (instance shape,
  executor options, anything the writer wants to persist);
* ``flush`` — one realized flush: ``{"t", "src", "dest", "msgs"}``;
* ``fault`` — a fault decision the executor observed (failed/partial
  outcome, stall skip) — audit trail, not needed for state recovery;
* ``checkpoint`` — a full :class:`~repro.dam.trace.CheckpointRecord`
  snapshot (message locations + completion steps at the end of a step);
* ``end`` — the run completed; nothing to recover.

**Torn-tail rule.**  A crash can leave a partially written final record.
On scan, a record that *extends past the end of the file*, or whose
checksum/JSON fails *at the physical tail*, is a torn tail: it is
discarded (and :meth:`RecoveryManager.repair` truncates it away) and the
valid prefix is used.  A record that fails its checksum with more data
*after* it cannot be a tear — appends never leave holes — so that is
:class:`~repro.util.errors.JournalCorruptionError`.  The net guarantee:
recovery either reproduces the uninterrupted run exactly or raises a
typed error; it never returns a wrong answer.

**Durable-step rule.**  A step's flush records may be half-written when
the process dies, so a step ``t`` counts as durable only with evidence it
finished: a later record (any record with step > ``t``), a checkpoint at
step >= ``t``, or an ``end`` record.  Flushes of a non-durable trailing
step are dropped; resuming re-executes that step, which is safe because
the reconstructed state never saw it.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.core.worms import WORMSInstance
from repro.dam.schedule import Flush, FlushSchedule
from repro.dam.simulator import SimulationResult
from repro.dam.trace import CheckpointRecord, _apply_step, _initial_state
from repro.obs.hooks import current_obs
from repro.obs.profile import PHASE_JOURNAL, PHASE_RECOVER
from repro.util.errors import InvalidInstanceError, JournalCorruptionError
from repro.util.fsio import resolve

MAGIC = b"WOJ1"
VERSION = 1
_HEADER = MAGIC + struct.pack("<I", VERSION)
_PREFIX = struct.Struct("<II")  # payload length, CRC-32

#: Record types.
REC_META = "meta"
REC_FLUSH = "flush"
REC_FAULT = "fault"
REC_CHECKPOINT = "checkpoint"
REC_END = "end"
#: A supervised key-range diversion (breaker-open handoff to a neighbor
#: shard) or its merge-back.  Informational for recovery — replaying the
#: run re-derives the same diversions — but the record makes the handoff
#: durable *at the moment it happened*, which is what lets an operator
#: audit where a message's ownership moved.  Scanning, compaction, and
#: ``last_durable_step`` all pass unknown-to-them types through, so old
#: readers tolerate these records.
REC_DIVERT = "divert"
#: A multi-tenant SLO enforcement decision (door closures + tenant queue
#: purges) journaled at the epoch boundary it was taken, sealed behind a
#: checkpoint like ``divert`` records.  Replaying the run re-derives the
#: same decision (it is a pure function of the config), but the durable
#: record is what lets a restarted shard-per-process worker learn about
#: a purge whose chunk dispatch died with its process.  Unknown to old
#: readers — which pass unrecognized types through, like ``divert``.
REC_SLO = "slo"


#: Smallest permitted rotation threshold: a header plus a tiny record.
MIN_SEGMENT_BYTES = 64


def encode_record(record: dict) -> bytes:
    """Serialize one record to its on-disk bytes (length | crc | payload)."""
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return _PREFIX.pack(len(payload), zlib.crc32(payload)) + payload


def segment_path(path: "str | os.PathLike", index: int) -> Path:
    """Path of segment ``index`` of the journal at ``path`` (0 = base)."""
    base = Path(path)
    return base if index == 0 else Path(f"{base}.{index}")


def journal_segments(path: "str | os.PathLike") -> "list[Path]":
    """The existing segment chain of the journal at ``path``, in order.

    Enumeration stops at the first gap, so an orphan ``<path>.7`` with no
    ``<path>.6`` is never silently folded into the chain.
    """
    segments: "list[Path]" = []
    i = 0
    while True:
        p = segment_path(path, i)
        if not p.exists():
            break
        segments.append(p)
        i += 1
    return segments


def flush_record(t: int, flush: Flush) -> dict:
    """The journal record for one realized flush at step ``t``."""
    return {"type": REC_FLUSH, "t": int(t), "src": int(flush.src),
            "dest": int(flush.dest), "msgs": [int(m) for m in flush.messages]}


def checkpoint_record(cp: CheckpointRecord) -> dict:
    """The journal record for a state snapshot."""
    return {"type": REC_CHECKPOINT, "t": int(cp.step),
            "locations": list(cp.locations),
            "completions": list(cp.completions)}


def fault_record(t: int, kind: str, src: int, dest: int, detail: str) -> dict:
    """The journal record for one fault decision the executor observed."""
    return {"type": REC_FAULT, "t": int(t), "kind": kind, "src": int(src),
            "dest": int(dest), "detail": detail}


def divert_record(t: int, src_shard: int, dst_shard: int,
                  msgs: "list[int] | tuple[int, ...]" = ()) -> dict:
    """The journal record for a key-range diversion (or its merge-back).

    ``src_shard == dst_shard`` records a merge-back (the overlay was
    removed); otherwise arrivals for ``src_shard``'s range now land on
    ``dst_shard`` and ``msgs`` lists the spill-queue messages handed
    over with the switch.
    """
    return {"type": REC_DIVERT, "t": int(t), "from": int(src_shard),
            "to": int(dst_shard), "msgs": [int(m) for m in msgs]}


def slo_record(t: int, door, purge) -> dict:
    """The journal record for one epoch's SLO enforcement decision.

    ``door`` is the set of tenants whose admission door is closed after
    this boundary; ``purge`` the tenants whose queued messages are
    purged at step ``t``.  Sorted lists, so the record's bytes are a
    pure function of the decision.
    """
    return {"type": REC_SLO, "t": int(t),
            "door": sorted(int(x) for x in door),
            "purge": sorted(int(x) for x in purge)}


class JournalWriter:
    """Append-only journal file handle.

    The header (and ``meta`` record, if given) are written and synced at
    open, so even an immediately-killed run leaves an identifiable
    journal.  ``append`` buffers; call :meth:`flush` at durability points
    (the executors flush at every checkpoint).  With ``sync=True`` every
    flush also ``fsync``\\ s — slower, but survives OS-level crashes, not
    just process kills.

    With ``max_segment_bytes`` set the journal rotates: when the next
    record would push the current segment past the limit, the segment is
    flushed and closed and writing continues in ``<path>.<n>``.  Records
    never span segments.  (A single record larger than the limit still
    gets written — into a fresh segment of its own — so rotation can
    delay but never lose a record.)

    With ``compact_every_rotations=N`` (N >= 1) the writer additionally
    runs :func:`repro.dam.compaction.compact_journal` over its own chain
    every ``N`` rotations, right after sealing a segment.  Compaction
    only ever rewrites *sealed* segments — the freshly opened tail this
    writer keeps appending to is untouched — and recovery is provably
    unchanged (the compaction module's safety rules), so the background
    trigger is invisible to everything but disk usage.
    """

    def __init__(self, path: "str | os.PathLike", *,
                 meta: "dict | None" = None, sync: bool = False,
                 max_segment_bytes: "int | None" = None,
                 compact_every_rotations: int = 0,
                 fs=None) -> None:
        if max_segment_bytes is not None and (
            max_segment_bytes < MIN_SEGMENT_BYTES
        ):
            raise InvalidInstanceError(
                f"max_segment_bytes must be >= {MIN_SEGMENT_BYTES}, "
                f"got {max_segment_bytes}"
            )
        if compact_every_rotations < 0:
            raise InvalidInstanceError(
                "compact_every_rotations must be >= 0, "
                f"got {compact_every_rotations}"
            )
        self.path = Path(path)
        self.sync = bool(sync)
        self.max_segment_bytes = max_segment_bytes
        self.compact_every_rotations = int(compact_every_rotations)
        self._rotations_since_compaction = 0
        self._segment_index = 0
        # Observability is bound at open: a writer created under the
        # disabled default does zero instrumentation work per record.
        obs = current_obs()
        self._metrics = obs.metrics if obs.enabled else None
        self._profiler = obs.profiler if obs.enabled else None
        # The fs handle is re-resolved per operation (None = ambient),
        # so a chaos window can install a FaultFS mid-run and the next
        # append sees it; fault-free runs pay one attribute read.
        self._fs = fs
        fsh = resolve(fs)
        self._f = fsh.open(self.path, "wb")
        fsh.write(self._f, _HEADER)
        self._segment_bytes = len(_HEADER)
        if meta is not None:
            self.append({"type": REC_META, **meta})
        self.flush()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._f.closed

    @property
    def n_segments(self) -> int:
        """Number of segments written so far (1 without rotation)."""
        return self._segment_index + 1

    def _rotate(self) -> None:
        """Seal the current segment and continue in the next one."""
        self.flush()
        self._f.close()
        self._segment_index += 1
        fsh = resolve(self._fs)
        self._f = fsh.open(segment_path(self.path, self._segment_index), "wb")
        fsh.write(self._f, _HEADER)
        self._segment_bytes = len(_HEADER)
        if self._metrics is not None:
            self._metrics.counter(
                "journal_rotations_total", "journal segments sealed"
            ).inc()
        if self.compact_every_rotations:
            self._rotations_since_compaction += 1
            if (
                self._rotations_since_compaction
                >= self.compact_every_rotations
            ):
                self._rotations_since_compaction = 0
                # Local import: repro.dam.compaction imports this module.
                from repro.dam.compaction import compact_journal

                compact_journal(self.path)

    def append(self, record: dict) -> None:
        """Buffer one record (see :meth:`flush` for durability)."""
        blob = encode_record(record)
        if (
            self.max_segment_bytes is not None
            and self._segment_bytes > len(_HEADER)
            and self._segment_bytes + len(blob) > self.max_segment_bytes
        ):
            self._rotate()
        resolve(self._fs).write(self._f, blob)
        self._segment_bytes += len(blob)
        if self._metrics is not None:
            records = self._metrics.counter(
                "journal_records_total", "journal records appended"
            )
            records.inc()
            records.labels(type=record.get("type", "?")).inc()
            self._metrics.counter(
                "journal_bytes_total", "journal bytes appended"
            ).inc(len(blob))

    def flush(self) -> None:
        """Push buffered records to the OS (and disk, with ``sync=True``)."""
        if self._profiler is not None:
            t0 = self._profiler.clock()
            self._f.flush()
            if self.sync:
                resolve(self._fs).fsync(self._f)
                self._metrics.counter(
                    "journal_fsyncs_total", "fsyncs issued by sync writers"
                ).inc()
            self._profiler.add(PHASE_JOURNAL, self._profiler.clock() - t0)
            return
        self._f.flush()
        if self.sync:
            resolve(self._fs).fsync(self._f)

    def close(self) -> None:
        """Flush and close; safe to call twice."""
        if not self._f.closed:
            self.flush()
            self._f.close()

    def abort(self) -> None:
        """Close *without* flushing; the tail may land torn.

        For fail-stop callers discarding a poisoned generation after an
        I/O fault: an fsync that failed must never be retried (the page
        cache may have silently dropped the dirty pages), so the only
        safe exit is to release the handle and let recovery replay the
        durable prefix.  Safe to call twice.
        """
        if not self._f.closed:
            self._f.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class JournalScan:
    """Result of reading a journal chain: valid record prefix + tail state."""

    records: tuple[dict, ...]
    #: bytes of header(s) + fully valid records across the whole chain.
    valid_bytes: int
    #: total bytes on disk across the whole chain.
    file_bytes: int
    #: why the tail was discarded ("" if the chain ended on a boundary).
    torn_reason: str
    #: the segment files scanned, in chain order (always >= 1 entry).
    segments: "tuple[str, ...]" = ()
    #: valid bytes *within the last segment* (its repair truncation point).
    tail_valid_bytes: int = 0

    @property
    def torn_bytes(self) -> int:
        """Bytes of torn tail a crash left behind (0 for a clean chain)."""
        return self.file_bytes - self.valid_bytes

    @property
    def n_segments(self) -> int:
        return max(1, len(self.segments))


def _scan_segment(path: Path, data: bytes) -> "tuple[list[dict], int, str]":
    """Scan one segment: ``(records, valid_bytes, torn_reason)``.

    Raises :class:`JournalCorruptionError` for a bad magic value or a
    damaged record that is provably not a tear (data follows it).
    """
    if len(data) >= len(_HEADER) and data[: len(_HEADER)] != _HEADER:
        raise JournalCorruptionError(
            f"{path}: bad journal header {data[:8]!r} "
            f"(expected {_HEADER!r})",
            offset=0, reason="bad-magic",
        )
    if len(data) < len(_HEADER):
        # Truncated inside the header: the whole file is a torn tail.
        return [], 0, "truncated header"
    offset = len(_HEADER)
    records: list[dict] = []
    while offset < len(data):
        if len(data) - offset < _PREFIX.size:
            return records, offset, "truncated record prefix"
        length, crc = _PREFIX.unpack_from(data, offset)
        end = offset + _PREFIX.size + length
        if end > len(data):
            return records, offset, "record extends past end of file"
        payload = data[offset + _PREFIX.size:end]
        bad = ""
        if zlib.crc32(payload) != crc:
            bad = "bad-crc"
        else:
            try:
                record = json.loads(payload)
                if not isinstance(record, dict) or "type" not in record:
                    bad = "bad-payload"
            except (ValueError, UnicodeDecodeError):
                bad = "bad-payload"
        if bad:
            if end == len(data):
                # Damaged final record: a torn write, not corruption.
                return records, offset, f"torn final record ({bad})"
            raise JournalCorruptionError(
                f"{path}: record at byte {offset} fails its "
                f"{'checksum' if bad == 'bad-crc' else 'decode'} with "
                f"{len(data) - end} byte(s) of journal after it — "
                "this is corruption, not a torn tail",
                offset=offset, reason=bad,
            )
        records.append(record)
        offset = end
    return records, offset, ""


def scan_journal(path: "str | os.PathLike", *, fs=None) -> JournalScan:
    """Read the journal chain at ``path``, tolerating a torn tail.

    Implements the torn-tail rule from the module docstring, extended to
    segment chains: only the last segment may end torn.  Raises
    :class:`JournalCorruptionError` for a bad header, a damaged record
    that is provably not a tear (data follows it), or a damaged non-final
    segment (rotation seals segments, so mid-chain damage cannot be a
    crash artifact).
    """
    fsh = resolve(fs)
    segments = journal_segments(path)
    if not segments:
        # Preserve the single-file error shape (FileNotFoundError).
        fsh.read_bytes(Path(path))
    records: list[dict] = []
    total_valid = 0
    total_bytes = 0
    tail_reason = ""
    tail_valid = 0
    for i, seg in enumerate(segments):
        data = fsh.read_bytes(seg)
        total_bytes += len(data)
        seg_records, valid, reason = _scan_segment(seg, data)
        if reason and i != len(segments) - 1:
            raise JournalCorruptionError(
                f"{seg}: segment {i} of {len(segments)} is damaged "
                f"({reason}) but a later segment exists — rotation seals "
                "segments, so this is corruption, not a torn tail",
                offset=valid, reason="mid-chain-tear",
            )
        records.extend(seg_records)
        total_valid += valid
        if i == len(segments) - 1:
            tail_reason = reason
            tail_valid = valid
    return JournalScan(
        tuple(records), total_valid, total_bytes, tail_reason,
        segments=tuple(str(s) for s in segments),
        tail_valid_bytes=tail_valid,
    )


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`RecoveryManager.recover` did, for reports and the CLI."""

    result: SimulationResult
    #: the step recovery resumed from (the last durable step).
    resumed_from_step: int
    #: step of the checkpoint snapshot the state was rebuilt on.
    checkpoint_step: int
    #: journaled flushes replayed on top of the checkpoint.
    replayed_flushes: int
    #: torn bytes the crash left (0 if the journal ended cleanly).
    torn_bytes: int
    torn_reason: str
    #: True when the journal holds an ``end`` record (nothing was lost).
    run_completed: bool


class RecoveryManager:
    """Scan, repair, and resume from an execution journal after a kill.

    Typical use (also what ``python -m repro recover`` does)::

        rm = RecoveryManager("run.journal")
        rm.repair()                        # drop the torn tail in place
        report = rm.recover(instance, reference_schedule)

    ``reference_schedule`` is the realized schedule of the uninterrupted
    run; with a deterministic executor it is re-derived by re-running the
    planner/executor with the journal's own ``meta`` configuration.  The
    recovered completion times are checked against an uninterrupted
    replay (:func:`repro.dam.validator.validate_recovery`), so the result
    is byte-identical or a typed error — never silently wrong.
    """

    def __init__(self, path: "str | os.PathLike") -> None:
        self.path = Path(path)
        self._scan: "JournalScan | None" = None

    def scan(self, *, refresh: bool = False) -> JournalScan:
        """Read the journal (cached; ``refresh=True`` to re-read)."""
        if self._scan is None or refresh:
            self._scan = scan_journal(self.path)
        return self._scan

    @property
    def meta(self) -> "dict | None":
        """The journal's ``meta`` record payload (None if it didn't survive)."""
        for rec in self.scan().records:
            if rec["type"] == REC_META:
                return {k: v for k, v in rec.items() if k != "type"}
        return None

    @property
    def run_completed(self) -> bool:
        """True iff the journal carries an ``end`` record."""
        return any(r["type"] == REC_END for r in self.scan().records)

    def repair(self) -> int:
        """Truncate the torn tail off the chain in place; returns bytes cut.

        A torn tail always lives in the last segment.  If that segment is
        a rotation successor holding no valid records (a crash during or
        just after rotation), the file is deleted outright so the chain
        ends at its sealed predecessor; otherwise it is truncated to its
        valid prefix.
        """
        scan = self.scan()
        if scan.torn_bytes:
            tail = Path(scan.segments[-1]) if scan.segments else self.path
            fsh = resolve(None)
            if (
                len(scan.segments) > 1
                and scan.tail_valid_bytes <= len(_HEADER)
            ):
                fsh.unlink(tail)
            else:
                with fsh.open(tail, "r+b") as f:
                    fsh.truncate(f, scan.tail_valid_bytes)
            self.scan(refresh=True)
        return scan.torn_bytes

    # ------------------------------------------------------------------
    def last_durable_step(self) -> int:
        """The newest step with evidence it fully executed (see module doc)."""
        records = self.scan().records
        completed = any(r["type"] == REC_END for r in records)
        max_cp = max((r["t"] for r in records
                      if r["type"] == REC_CHECKPOINT), default=-1)
        steps = sorted({r["t"] for r in records if r["type"] == REC_FLUSH})
        if not steps:
            return max(max_cp, 0)
        last = steps[-1]
        if completed or max_cp >= last:
            return max(last, max_cp)
        # No evidence step `last` finished: it is not durable.
        durable = steps[-2] if len(steps) >= 2 else 0
        return max(durable, max_cp, 0)

    def recovered_checkpoint(self, instance: WORMSInstance) -> CheckpointRecord:
        """Rebuild the machine state at the last durable step.

        Starts from the newest journaled checkpoint (or the instance's
        initial state if none survived), then applies every durable
        journaled flush after it.  Raises
        :class:`JournalCorruptionError` if no records survived or the
        journal belongs to a different instance.
        """
        return self._recover_state(instance)[0]

    def _recover_state(
        self, instance: WORMSInstance
    ) -> "tuple[CheckpointRecord, int]":
        """(state at last durable step, step of the snapshot it grew from)."""
        records = self.scan().records
        if not records:
            raise JournalCorruptionError(
                f"{self.path}: no usable records survived (journal "
                f"truncated to {self.scan().file_bytes} byte(s))",
                reason="no-records",
            )
        n = instance.n_messages
        meta = self.meta
        if meta is not None and meta.get("n_messages", n) != n:
            raise JournalCorruptionError(
                f"{self.path}: journal is for "
                f"{meta['n_messages']} messages, instance has {n}",
                reason="instance-mismatch",
            )
        base: "CheckpointRecord | None" = None
        for rec in records:
            if rec["type"] == REC_CHECKPOINT and (
                base is None or rec["t"] > base.step
            ):
                if len(rec["locations"]) != n or len(rec["completions"]) != n:
                    raise JournalCorruptionError(
                        f"{self.path}: checkpoint at step {rec['t']} has "
                        f"{len(rec['locations'])} message slots, instance "
                        f"has {n}",
                        reason="instance-mismatch",
                    )
                base = CheckpointRecord(
                    int(rec["t"]),
                    tuple(int(v) for v in rec["locations"]),
                    tuple(int(v) for v in rec["completions"]),
                )
        if base is None:
            location, completion = _initial_state(instance)
            base = CheckpointRecord(0, tuple(location), tuple(completion))
        durable = self.last_durable_step()
        if durable <= base.step:
            return base, base.step
        location = list(base.locations)
        completion = list(base.completions)
        targets = instance.targets
        by_step: dict[int, list[Flush]] = {}
        for rec in records:
            if rec["type"] == REC_FLUSH and base.step < rec["t"] <= durable:
                by_step.setdefault(int(rec["t"]), []).append(
                    Flush(int(rec["src"]), int(rec["dest"]),
                          tuple(int(m) for m in rec["msgs"]))
                )
        for t in sorted(by_step):
            _apply_step(t, by_step[t], location, completion, targets)
        state = CheckpointRecord(durable, tuple(location), tuple(completion))
        return state, base.step

    def _check_prefix(self, schedule: FlushSchedule, durable: int) -> int:
        """Verify durable journaled flushes appear in ``schedule``'s prefix."""
        replayed = 0
        for rec in self.scan().records:
            if rec["type"] != REC_FLUSH or rec["t"] > durable:
                continue
            f = Flush(int(rec["src"]), int(rec["dest"]),
                      tuple(int(m) for m in rec["msgs"]))
            if f not in schedule.flushes_at(int(rec["t"])):
                raise JournalCorruptionError(
                    f"{self.path}: journaled flush {f!r} at step "
                    f"{rec['t']} is not in the reference schedule — the "
                    "journal belongs to a different run",
                    reason="schedule-mismatch",
                )
            replayed += 1
        return replayed

    def recover(
        self, instance: WORMSInstance, schedule: FlushSchedule, *,
        repair: bool = True,
    ) -> RecoveryReport:
        """Full recovery: repair the tail, restore state, resume, validate.

        Resumes ``schedule`` from the reconstructed state via
        :func:`repro.dam.trace.resume_simulation` and asserts the result
        matches an uninterrupted replay exactly
        (:func:`~repro.dam.validator.validate_recovery`).  Returns a
        :class:`RecoveryReport`; raises a typed error on any damage the
        torn-tail rule cannot absorb.
        """
        from repro.dam.validator import validate_recovery

        obs = current_obs()
        with obs.tracer.span(
            "journal.recover", category="journal", path=str(self.path)
        ) as span:
            t0 = obs.profiler.clock() if obs.enabled else 0.0
            scan = self.scan()
            torn_bytes, torn_reason = scan.torn_bytes, scan.torn_reason
            if repair:
                self.repair()
            cp, base_step = self._recover_state(instance)
            replayed = self._check_prefix(schedule, cp.step)
            result = validate_recovery(instance, schedule, cp)
            if obs.enabled:
                obs.profiler.add(
                    PHASE_RECOVER, obs.profiler.clock() - t0
                )
                span.set("resumed_from_step", cp.step)
                span.set("replayed_flushes", replayed)
                span.set("torn_bytes", torn_bytes)
                obs.metrics.counter(
                    "journal_recoveries_total", "successful recoveries"
                ).inc()
                obs.metrics.counter(
                    "journal_replayed_flushes_total",
                    "journaled flushes replayed during recovery",
                ).inc(replayed)
                obs.metrics.counter(
                    "journal_torn_bytes_total",
                    "torn tail bytes discarded by repair",
                ).inc(torn_bytes)
        return RecoveryReport(
            result=result,
            resumed_from_step=cp.step,
            checkpoint_step=base_step,
            replayed_flushes=replayed,
            torn_bytes=torn_bytes,
            torn_reason=torn_reason,
            run_completed=self.run_completed,
        )
