"""Flush-schedule data types.

A *flush* moves up to ``B`` messages across one tree edge; a *schedule* is
a sequence of time steps, each holding at most ``P`` flushes (Section 2.1).
These types are deliberately dumb containers — all semantics (message
locations, space requirements) live in the simulator/validator so that a
schedule can be inspected, sliced, and serialized freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Flush:
    """Move ``messages`` from node ``src`` to its child ``dest``."""

    src: int
    dest: int
    messages: tuple[int, ...]

    def __post_init__(self) -> None:
        # Normalize: deterministic ordering makes schedules comparable.
        object.__setattr__(self, "messages", tuple(sorted(self.messages)))

    @property
    def size(self) -> int:
        """Number of messages moved by this flush."""
        return len(self.messages)

    def __repr__(self) -> str:
        return f"Flush({self.src}->{self.dest}, {len(self.messages)} msgs)"


@dataclass
class FlushSchedule:
    """A sequence of time steps; ``steps[t]`` holds the flushes at step t+1.

    Time steps are 1-based in the paper; ``steps[0]`` is time step 1.
    """

    steps: list[list[Flush]] = field(default_factory=list)

    @property
    def n_steps(self) -> int:
        """Number of time steps (= total IO cost of running the schedule)."""
        return len(self.steps)

    @property
    def n_flushes(self) -> int:
        """Total number of flushes across all steps."""
        return sum(len(step) for step in self.steps)

    @property
    def n_message_moves(self) -> int:
        """Total message-hops performed (work measure)."""
        return sum(f.size for step in self.steps for f in step)

    def add(self, time_step: int, flush: Flush) -> None:
        """Place ``flush`` at 1-based ``time_step``, growing as needed."""
        if time_step < 1:
            raise ValueError(f"time steps are 1-based, got {time_step}")
        while len(self.steps) < time_step:
            self.steps.append([])
        self.steps[time_step - 1].append(flush)

    def flushes_at(self, time_step: int) -> list[Flush]:
        """Flushes scheduled at 1-based ``time_step`` (empty if beyond end)."""
        if 1 <= time_step <= len(self.steps):
            return self.steps[time_step - 1]
        return []

    def iter_timed(self) -> Iterator[tuple[int, Flush]]:
        """Yield ``(time_step, flush)`` pairs in time order (1-based)."""
        for i, step in enumerate(self.steps, start=1):
            for flush in step:
                yield i, flush

    def trim(self) -> "FlushSchedule":
        """Drop trailing empty steps in place; returns self for chaining."""
        while self.steps and not self.steps[-1]:
            self.steps.pop()
        return self

    def max_parallelism(self) -> int:
        """Largest number of flushes in any single step."""
        return max((len(step) for step in self.steps), default=0)

    def step_moves(self) -> "list[int]":
        """Message-hops performed at each step (the per-step work profile).

        The ground truth a de-amortization budget is judged against:
        ``max(step_moves())`` of a paced run must not exceed the pace.
        """
        return [sum(f.size for f in step) for step in self.steps]

    def max_step_moves(self) -> int:
        """Largest message-hop count of any single step."""
        return max(self.step_moves(), default=0)

    @classmethod
    def from_timed(cls, timed: Iterable[tuple[int, Flush]]) -> "FlushSchedule":
        """Build a schedule from ``(time_step, flush)`` pairs (1-based)."""
        sched = cls()
        for t, flush in timed:
            sched.add(t, flush)
        return sched

    def __repr__(self) -> str:
        return f"FlushSchedule({self.n_steps} steps, {self.n_flushes} flushes)"
