"""DAM machine parameters.

The classic DAM model has three machine parameters: the line size ``B``,
the parallelism ``P``, and the cache size ``M >> PB``.  Following the
paper (footnote 2) the cache size does not affect any result, so it is
optional metadata here; ``P`` and ``B`` drive all scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import InvalidInstanceError


@dataclass(frozen=True, slots=True)
class DAMSpec:
    """Machine-dependent DAM parameters.

    Attributes
    ----------
    P:
        Number of disjoint cache-line transfers per IO (parallel flushes
        per time step).  Small constant on real systems; the algorithms
        never assume it is.
    B:
        Cache-line size: messages per node and per flush.
    M:
        Optional cache size; must satisfy ``M >= P * B`` when given.
    """

    P: int
    B: int
    M: int | None = None

    def __post_init__(self) -> None:
        if self.P < 1:
            raise InvalidInstanceError(f"P must be >= 1, got {self.P}")
        if self.B < 1:
            raise InvalidInstanceError(f"B must be >= 1, got {self.B}")
        if self.M is not None and self.M < self.P * self.B:
            raise InvalidInstanceError(
                f"cache M={self.M} smaller than P*B={self.P * self.B}"
            )

    @property
    def messages_per_io(self) -> int:
        """Upper bound on messages moved in one IO (= one time step)."""
        return self.P * self.B
