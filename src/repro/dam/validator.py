"""Raise-style validation wrappers around the simulator.

:func:`check_schedule` returns the full diagnosis; the ``validate_*``
functions raise :class:`~repro.util.errors.InvalidScheduleError` with the
first few violations formatted, which is what tests and the pipeline's
internal assertions want.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.worms import WORMSInstance
from repro.dam.schedule import FlushSchedule
from repro.dam.simulator import SimulationResult, Violation, simulate
from repro.util.errors import InvalidScheduleError

#: How many violations to include in an exception message.
_REPORT_LIMIT = 5


@dataclass(frozen=True, slots=True)
class ScheduleViolation:
    """Re-export-friendly alias wrapper kept for API stability."""

    violation: Violation


def check_schedule(
    instance: WORMSInstance, schedule: FlushSchedule
) -> SimulationResult:
    """Replay and return the full :class:`SimulationResult` (never raises)."""
    return simulate(instance, schedule)


def _raise(header: str, violations: list[Violation]) -> None:
    shown = "\n  ".join(repr(v) for v in violations[:_REPORT_LIMIT])
    extra = len(violations) - _REPORT_LIMIT
    if extra > 0:
        shown += f"\n  ... and {extra} more"
    raise InvalidScheduleError(f"{header}:\n  {shown}")


def validate_overfilling(
    instance: WORMSInstance, schedule: FlushSchedule
) -> SimulationResult:
    """Check the *overfilling* conditions (flush validity + completion).

    Space-requirement violations are permitted.  Returns the simulation
    result on success; raises :class:`InvalidScheduleError` otherwise.
    """
    result = simulate(instance, schedule)
    if result.violations:
        _raise("schedule is not overfilling", result.violations)
    return result


def validate_valid(
    instance: WORMSInstance, schedule: FlushSchedule
) -> SimulationResult:
    """Check full validity (overfilling + space requirement).

    Returns the simulation result on success; raises
    :class:`InvalidScheduleError` otherwise.
    """
    result = simulate(instance, schedule)
    if result.violations:
        _raise("schedule is not overfilling", result.violations)
    if result.space_violations:
        _raise("schedule violates the space requirement", result.space_violations)
    return result
