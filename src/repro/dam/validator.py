"""Raise-style validation wrappers around the simulator.

:func:`check_schedule` returns the full diagnosis; the ``validate_*``
functions raise :class:`~repro.util.errors.InvalidScheduleError` with the
first few violations formatted, which is what tests and the pipeline's
internal assertions want.  :func:`validate_recovery` checks the
crash/recovery contract: resuming from a trace checkpoint must reproduce
the uninterrupted run's completion times exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.worms import WORMSInstance
from repro.dam.schedule import FlushSchedule
from repro.dam.simulator import SimulationResult, Violation, simulate
from repro.util.errors import InvalidScheduleError

#: How many violations to include in an exception message.
_REPORT_LIMIT = 5


@dataclass(frozen=True, slots=True)
class ScheduleViolation:
    """Re-export-friendly alias wrapper kept for API stability."""

    violation: Violation


def check_schedule(
    instance: WORMSInstance, schedule: FlushSchedule
) -> SimulationResult:
    """Replay and return the full :class:`SimulationResult` (never raises)."""
    return simulate(instance, schedule)


def _raise(header: str, violations: list[Violation]) -> None:
    shown = "\n  ".join(repr(v) for v in violations[:_REPORT_LIMIT])
    extra = len(violations) - _REPORT_LIMIT
    if extra > 0:
        shown += f"\n  ... and {extra} more"
    raise InvalidScheduleError(f"{header}:\n  {shown}")


def validate_overfilling(
    instance: WORMSInstance, schedule: FlushSchedule
) -> SimulationResult:
    """Check the *overfilling* conditions (flush validity + completion).

    Space-requirement violations are permitted.  Returns the simulation
    result on success; raises :class:`InvalidScheduleError` otherwise.
    """
    result = simulate(instance, schedule)
    if result.violations:
        _raise("schedule is not overfilling", result.violations)
    return result


def validate_valid(
    instance: WORMSInstance, schedule: FlushSchedule
) -> SimulationResult:
    """Check full validity (overfilling + space requirement).

    Returns the simulation result on success; raises
    :class:`InvalidScheduleError` otherwise.
    """
    result = simulate(instance, schedule)
    if result.violations:
        _raise("schedule is not overfilling", result.violations)
    if result.space_violations:
        _raise("schedule violates the space requirement", result.space_violations)
    return result


def validate_recovery(
    instance: WORMSInstance,
    schedule: FlushSchedule,
    checkpoint,
) -> SimulationResult:
    """Check that resuming from ``checkpoint`` matches the full replay.

    Runs the schedule uninterrupted, resumes it from ``checkpoint`` (a
    :class:`~repro.dam.trace.CheckpointRecord`), and raises
    :class:`InvalidScheduleError` on any completion-time divergence —
    that would mean the checkpoint state is stale or belongs to a
    different schedule.  Returns the recovered result on success.
    """
    from repro.dam.trace import resume_simulation  # avoid import cycle

    full = simulate(instance, schedule)
    recovered = resume_simulation(instance, schedule, checkpoint)
    mismatches = [
        (m, int(full.completion_times[m]), int(recovered.completion_times[m]))
        for m in range(instance.n_messages)
        if int(full.completion_times[m]) != int(recovered.completion_times[m])
    ]
    if mismatches:
        shown = ", ".join(
            f"msg {m}: full={a} recovered={b}" for m, a, b in mismatches[:_REPORT_LIMIT]
        )
        extra = len(mismatches) - _REPORT_LIMIT
        if extra > 0:
            shown += f", ... and {extra} more"
        raise InvalidScheduleError(
            f"recovery from checkpoint at step {checkpoint.step} diverges "
            f"from the uninterrupted run: {shown}"
        )
    return recovered
