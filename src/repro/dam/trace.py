"""IO-trace recording: what a schedule does, step by step.

Replaying a schedule with :func:`record_trace` produces a
:class:`ScheduleTrace` with per-step aggregates that the analysis layer
and operators care about:

* slot utilization (flushes used vs ``P``) and payload utilization
  (messages moved vs ``P * B``) per step;
* message moves per tree level per step (where in the tree the work
  happens over time — cascades and drain phases are visible here);
* cumulative completions over time (the purge-progress curve).

**Crash/recovery:** traces can carry :class:`CheckpointRecord` entries —
JSON-serializable snapshots of the machine state (message locations and
completion steps) at the *end* of a step.  A run killed at step ``t``
can be resumed from the latest checkpoint with
:func:`resume_simulation`, and the recovered completion times are
guaranteed to match an uninterrupted replay
(:func:`repro.dam.validator.validate_recovery` checks exactly that).

The trace assumes the schedule is already validated; it does not re-check
constraints (use :mod:`repro.dam.validator` for that).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.core.worms import WORMSInstance
from repro.dam.schedule import FlushSchedule
from repro.dam.simulator import SimulationResult
from repro.util.errors import InvalidScheduleError


@dataclass(frozen=True)
class CheckpointRecord:
    """Machine state at the *end* of 1-based step ``step``.

    ``locations[i]`` is message ``i``'s node at the start of step
    ``step + 1``; ``completions[i]`` is its completion step, or 0 if it
    is still in flight.  Records are plain data and JSON-round-trippable
    so they can be persisted alongside a trace and used to resume a
    killed run.
    """

    step: int
    locations: tuple[int, ...]
    completions: tuple[int, ...]

    def to_json(self) -> str:
        """Serialize to a single JSON line (trace-file friendly)."""
        return json.dumps(
            {
                "type": "checkpoint",
                "step": self.step,
                "locations": list(self.locations),
                "completions": list(self.completions),
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "CheckpointRecord":
        """Inverse of :meth:`to_json`."""
        data = json.loads(text)
        if data.get("type") != "checkpoint":
            raise InvalidScheduleError(
                f"not a checkpoint record: {text[:80]!r}"
            )
        return cls(
            step=int(data["step"]),
            locations=tuple(int(v) for v in data["locations"]),
            completions=tuple(int(v) for v in data["completions"]),
        )


@dataclass(frozen=True)
class ScheduleTrace:
    """Per-step aggregates of a flush schedule (all arrays step-indexed)."""

    n_steps: int
    #: flushes used per step (<= P).
    flushes_per_step: np.ndarray
    #: messages moved per step (<= P * B).
    moves_per_step: np.ndarray
    #: moves_by_level[t, d] = messages crossing edges into depth d+1 at step t.
    moves_by_level: np.ndarray
    #: completions[t] = messages completed at step t+1 (1-based steps).
    completions_per_step: np.ndarray
    P: int
    B: int
    #: periodic state snapshots (empty unless requested at record time).
    checkpoints: tuple[CheckpointRecord, ...] = ()

    def latest_checkpoint_before(self, step: int) -> "CheckpointRecord | None":
        """The newest checkpoint with ``checkpoint.step <= step``."""
        best = None
        for cp in self.checkpoints:
            if cp.step <= step and (best is None or cp.step > best.step):
                best = cp
        return best

    @property
    def slot_utilization(self) -> np.ndarray:
        """Fraction of the ``P`` flush slots used per step."""
        if self.P == 0:
            return np.zeros(self.n_steps)
        return self.flushes_per_step / self.P

    @property
    def payload_utilization(self) -> np.ndarray:
        """Fraction of the ``P * B`` message-move capacity used per step."""
        cap = self.P * self.B
        return self.moves_per_step / cap if cap else np.zeros(self.n_steps)

    def cumulative_completions(self) -> np.ndarray:
        """Running total of completed messages after each step."""
        return np.cumsum(self.completions_per_step)

    def summary_lines(self) -> list[str]:
        """Human-readable trace summary (used by examples and the CLI)."""
        lines = [
            f"steps: {self.n_steps}",
            f"mean slot utilization: {self.slot_utilization.mean():.2f}",
            f"mean payload utilization: {self.payload_utilization.mean():.2f}",
        ]
        levels = self.moves_by_level.sum(axis=0)
        for d, total in enumerate(levels):
            lines.append(f"moves into depth {d + 1}: {int(total)}")
        return lines


def record_trace(
    instance: WORMSInstance,
    schedule: FlushSchedule,
    *,
    checkpoint_every: "int | None" = None,
) -> ScheduleTrace:
    """Replay ``schedule`` and record the per-step aggregates.

    With ``checkpoint_every=k``, a :class:`CheckpointRecord` is captured
    for the initial state, after every ``k``-th step, and after the
    final step, enabling :func:`resume_simulation` from any of them.
    """
    topo = instance.topology
    heights = topo.heights
    n_steps = schedule.n_steps
    height = max(1, topo.height)
    flushes = np.zeros(n_steps, dtype=np.int64)
    moves = np.zeros(n_steps, dtype=np.int64)
    by_level = np.zeros((n_steps, height), dtype=np.int64)
    completions = np.zeros(n_steps, dtype=np.int64)
    targets = instance.targets

    checkpoints: list[CheckpointRecord] = []
    if checkpoint_every is not None:
        if checkpoint_every < 1:
            raise InvalidScheduleError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        location, completion = _initial_state(instance)
        # The initial state is checkpoint 0, so latest_checkpoint_before
        # always has an answer for any step >= 0.
        checkpoints.append(
            CheckpointRecord(0, tuple(location), tuple(completion))
        )
        for t, step_flushes in enumerate(schedule.steps, start=1):
            i = t - 1
            for flush in step_flushes:
                flushes[i] += 1
                moves[i] += flush.size
                depth = int(heights[flush.dest])
                by_level[i, depth - 1] += flush.size
            completions[i] += _apply_step(
                t, step_flushes, location, completion, targets
            )
            if t % checkpoint_every == 0 or t == n_steps:
                checkpoints.append(
                    CheckpointRecord(t, tuple(location), tuple(completion))
                )
    else:
        for t, flush in schedule.iter_timed():
            i = t - 1
            flushes[i] += 1
            moves[i] += flush.size
            depth = int(heights[flush.dest])  # edge enters this depth
            by_level[i, depth - 1] += flush.size
            completions[i] += sum(
                1 for m in flush.messages if int(targets[m]) == flush.dest
            )

    return ScheduleTrace(
        n_steps=n_steps,
        flushes_per_step=flushes,
        moves_per_step=moves,
        moves_by_level=by_level,
        completions_per_step=completions,
        P=instance.P,
        B=instance.B,
        checkpoints=tuple(checkpoints),
    )


# ----------------------------------------------------------------------
# Crash/recovery replay
# ----------------------------------------------------------------------
def _initial_state(instance: WORMSInstance) -> "tuple[list[int], list[int]]":
    """Start-of-run (locations, completions); same conventions as simulate."""
    location = [instance.start_of(m) for m in range(instance.n_messages)]
    completion = [0] * instance.n_messages
    return location, completion


def _apply_step(
    t: int,
    step_flushes,
    location: "list[int]",
    completion: "list[int]",
    targets,
) -> int:
    """Apply one step's flushes to the state; returns completions this step.

    Assumes a validated schedule — no violation checking (use the
    simulator for diagnosis).
    """
    done = 0
    for flush in step_flushes:
        for m in flush.messages:
            location[m] = flush.dest
            if flush.dest == int(targets[m]) and completion[m] == 0:
                completion[m] = t
                done += 1
    return done


def checkpoint_at(
    instance: WORMSInstance, schedule: FlushSchedule, step: int
) -> CheckpointRecord:
    """Replay steps ``1..step`` and snapshot the machine state.

    This is the state a run killed *after* step ``step`` would recover
    from; ``step`` may be 0 (the initial state) up to ``n_steps``.
    """
    if not (0 <= step <= schedule.n_steps):
        raise InvalidScheduleError(
            f"checkpoint step {step} outside schedule of {schedule.n_steps} "
            "steps"
        )
    targets = instance.targets
    location, completion = _initial_state(instance)
    for t in range(1, step + 1):
        _apply_step(t, schedule.steps[t - 1], location, completion, targets)
    return CheckpointRecord(step, tuple(location), tuple(completion))


def resume_simulation(
    instance: WORMSInstance,
    schedule: FlushSchedule,
    checkpoint: CheckpointRecord,
) -> SimulationResult:
    """Resume a killed run from ``checkpoint`` and finish the schedule.

    Replays only steps ``checkpoint.step + 1 .. n_steps`` on top of the
    recovered state; completions from before the kill come straight from
    the checkpoint.  For a checkpoint captured from the same schedule,
    the returned completion times are identical to an uninterrupted
    replay (``validate_recovery`` asserts this).
    """
    n = instance.n_messages
    if len(checkpoint.locations) != n or len(checkpoint.completions) != n:
        raise InvalidScheduleError(
            f"checkpoint is for {len(checkpoint.locations)} messages, "
            f"instance has {n}"
        )
    targets = instance.targets
    location = list(checkpoint.locations)
    completion = list(checkpoint.completions)
    for t in range(checkpoint.step + 1, schedule.n_steps + 1):
        _apply_step(t, schedule.steps[t - 1], location, completion, targets)
    return SimulationResult(
        completion_times=np.asarray(completion, dtype=np.int64),
        n_steps=schedule.n_steps,
    )
