"""IO-trace recording: what a schedule does, step by step.

Replaying a schedule with :func:`record_trace` produces a
:class:`ScheduleTrace` with per-step aggregates that the analysis layer
and operators care about:

* slot utilization (flushes used vs ``P``) and payload utilization
  (messages moved vs ``P * B``) per step;
* message moves per tree level per step (where in the tree the work
  happens over time — cascades and drain phases are visible here);
* cumulative completions over time (the purge-progress curve).

The trace assumes the schedule is already validated; it does not re-check
constraints (use :mod:`repro.dam.validator` for that).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.worms import WORMSInstance
from repro.dam.schedule import FlushSchedule


@dataclass(frozen=True)
class ScheduleTrace:
    """Per-step aggregates of a flush schedule (all arrays step-indexed)."""

    n_steps: int
    #: flushes used per step (<= P).
    flushes_per_step: np.ndarray
    #: messages moved per step (<= P * B).
    moves_per_step: np.ndarray
    #: moves_by_level[t, d] = messages crossing edges into depth d+1 at step t.
    moves_by_level: np.ndarray
    #: completions[t] = messages completed at step t+1 (1-based steps).
    completions_per_step: np.ndarray
    P: int
    B: int

    @property
    def slot_utilization(self) -> np.ndarray:
        """Fraction of the ``P`` flush slots used per step."""
        if self.P == 0:
            return np.zeros(self.n_steps)
        return self.flushes_per_step / self.P

    @property
    def payload_utilization(self) -> np.ndarray:
        """Fraction of the ``P * B`` message-move capacity used per step."""
        cap = self.P * self.B
        return self.moves_per_step / cap if cap else np.zeros(self.n_steps)

    def cumulative_completions(self) -> np.ndarray:
        """Running total of completed messages after each step."""
        return np.cumsum(self.completions_per_step)

    def summary_lines(self) -> list[str]:
        """Human-readable trace summary (used by examples and the CLI)."""
        lines = [
            f"steps: {self.n_steps}",
            f"mean slot utilization: {self.slot_utilization.mean():.2f}",
            f"mean payload utilization: {self.payload_utilization.mean():.2f}",
        ]
        levels = self.moves_by_level.sum(axis=0)
        for d, total in enumerate(levels):
            lines.append(f"moves into depth {d + 1}: {int(total)}")
        return lines


def record_trace(instance: WORMSInstance, schedule: FlushSchedule) -> ScheduleTrace:
    """Replay ``schedule`` and record the per-step aggregates."""
    topo = instance.topology
    heights = topo.heights
    n_steps = schedule.n_steps
    height = max(1, topo.height)
    flushes = np.zeros(n_steps, dtype=np.int64)
    moves = np.zeros(n_steps, dtype=np.int64)
    by_level = np.zeros((n_steps, height), dtype=np.int64)
    completions = np.zeros(n_steps, dtype=np.int64)
    targets = instance.targets

    for t, flush in schedule.iter_timed():
        i = t - 1
        flushes[i] += 1
        moves[i] += flush.size
        depth = int(heights[flush.dest])  # edge enters this depth
        by_level[i, depth - 1] += flush.size
        completions[i] += sum(
            1 for m in flush.messages if int(targets[m]) == flush.dest
        )

    return ScheduleTrace(
        n_steps=n_steps,
        flushes_per_step=flushes,
        moves_per_step=moves,
        moves_by_level=by_level,
        completions_per_step=completions,
        P=instance.P,
        B=instance.B,
    )
