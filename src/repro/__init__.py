"""repro — Root-to-Leaf Scheduling in Write-Optimized Trees (SPAA 2024).

A full reproduction of the WORMS model and algorithms: the B^epsilon-tree
substrate, the DAM-model flush simulator, the scheduling substrate
``P | outtree, p_j = 1 | Sum wC`` (Horn / PHTF / MPHTF), the reduction
pipeline, baselines, workloads, and analysis tooling.

Quickstart::

    from repro import (
        balanced_tree, uniform_instance, WormsPolicy, compare_policies,
    )

    topo = balanced_tree(fanout=4, height=3)
    instance = uniform_instance(topo, n_messages=500, P=4, B=64, seed=0)
    stats = compare_policies(instance, [WormsPolicy()])
    print(stats["worms"].mean)

See README.md for the architecture overview and DESIGN.md / EXPERIMENTS.md
for the experiment index.
"""

from repro.analysis import (
    CompletionStats,
    compare_policies,
    scheduling_lower_bound,
    summarize,
    worms_lower_bound,
)
from repro.core import (
    PipelineResult,
    WORMSInstance,
    build_packed_sets,
    reduce_to_scheduling,
    solve_worms,
)
from repro.dam import (
    Flush,
    FlushSchedule,
    JournalWriter,
    RecoveryManager,
    simulate,
    validate_valid,
)
from repro.faults import BurstInjector, BurstPlan, FaultInjector, FaultPlan
from repro.policies import (
    EagerPolicy,
    GreedyBatchPolicy,
    LazyThresholdPolicy,
    PaperPipelinePolicy,
    ResilientExecutor,
    WormsPolicy,
    online_density_schedule,
)
from repro.scheduling import (
    SchedulingInstance,
    compute_horn,
    horn_schedule,
    mphtf_schedule,
    phtf_schedule,
)
from repro.tree import (
    BeTree,
    Message,
    MessageKind,
    TreeTopology,
    balanced_tree,
    beps_shape_tree,
    random_tree,
)
from repro.workloads import (
    clustered_purge_instance,
    uniform_instance,
    zipf_instance,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "WORMSInstance",
    "solve_worms",
    "PipelineResult",
    "build_packed_sets",
    "reduce_to_scheduling",
    # dam
    "Flush",
    "FlushSchedule",
    "simulate",
    "validate_valid",
    "JournalWriter",
    "RecoveryManager",
    # faults
    "FaultPlan",
    "FaultInjector",
    "BurstPlan",
    "BurstInjector",
    "ResilientExecutor",
    # scheduling
    "SchedulingInstance",
    "compute_horn",
    "horn_schedule",
    "phtf_schedule",
    "mphtf_schedule",
    # tree
    "TreeTopology",
    "BeTree",
    "Message",
    "MessageKind",
    "balanced_tree",
    "beps_shape_tree",
    "random_tree",
    # policies
    "EagerPolicy",
    "GreedyBatchPolicy",
    "LazyThresholdPolicy",
    "WormsPolicy",
    "PaperPipelinePolicy",
    "online_density_schedule",
    # workloads
    "uniform_instance",
    "zipf_instance",
    "clustered_purge_instance",
    # analysis
    "CompletionStats",
    "summarize",
    "compare_policies",
    "worms_lower_bound",
    "scheduling_lower_bound",
]
