"""An indexed max-heap keyed by float priority with deterministic tie-breaks.

The scheduling algorithms (Horn, PHTF, MPHTF) repeatedly pop the
highest-density available task.  Python's :mod:`heapq` is a min-heap without
a decrease-key; this wrapper provides

* max-heap semantics (highest priority pops first),
* deterministic tie-breaking by insertion order (the paper breaks ties
  arbitrarily; determinism keeps tests and benches reproducible),
* lazy deletion / priority updates by entry invalidation.

Priorities are compared as ``(-priority, sequence)`` tuples so equal
priorities pop FIFO.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Generic, Hashable, TypeVar

T = TypeVar("T", bound=Hashable)

_REMOVED = object()


class IndexedMaxHeap(Generic[T]):
    """Max-priority queue over hashable items with update/remove support."""

    def __init__(self) -> None:
        self._heap: list[list] = []
        self._entries: dict[T, list] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, item: T) -> bool:
        return item in self._entries

    def push(self, item: T, priority: float) -> None:
        """Insert ``item`` or update its priority if already present."""
        if item in self._entries:
            self.remove(item)
        entry = [-priority, next(self._counter), item]
        self._entries[item] = entry
        heapq.heappush(self._heap, entry)

    def remove(self, item: T) -> None:
        """Mark ``item`` removed; it is skipped when reached by a pop."""
        entry = self._entries.pop(item)
        entry[2] = _REMOVED

    def pop(self) -> tuple[T, float]:
        """Remove and return ``(item, priority)`` with the max priority."""
        while self._heap:
            neg_priority, _seq, item = heapq.heappop(self._heap)
            if item is not _REMOVED:
                del self._entries[item]
                return item, -neg_priority
        raise IndexError("pop from empty IndexedMaxHeap")

    def peek(self) -> tuple[T, float]:
        """Return ``(item, priority)`` with the max priority, not removing it."""
        while self._heap:
            neg_priority, _seq, item = self._heap[0]
            if item is _REMOVED:
                heapq.heappop(self._heap)
                continue
            return item, -neg_priority
        raise IndexError("peek at empty IndexedMaxHeap")

    def priority(self, item: T) -> float:
        """Return the current priority of ``item``."""
        return -self._entries[item][0]
