"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch package errors without also
swallowing programming mistakes (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidInstanceError(ReproError):
    """A WORMS or scheduling instance violates a structural invariant.

    Examples: a message targets a non-leaf node, a tree edge points to an
    unknown node id, ``P`` or ``B`` is non-positive.
    """


class InvalidScheduleError(ReproError):
    """A flush or task schedule violates the model constraints.

    Raised by the validators in :mod:`repro.dam.validator` and
    :mod:`repro.scheduling.cost` when a schedule uses more than ``P``
    parallel slots, flushes a message that is not at the source node,
    violates the space requirement, or leaves messages/tasks unfinished.
    """


class InvalidFlushError(InvalidScheduleError):
    """A single flush is malformed (too many messages, bad edge, ...)."""
