"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch package errors without also
swallowing programming mistakes (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidInstanceError(ReproError):
    """A WORMS or scheduling instance violates a structural invariant.

    Examples: a message targets a non-leaf node, a tree edge points to an
    unknown node id, ``P`` or ``B`` is non-positive.
    """


class InvalidScheduleError(ReproError):
    """A flush or task schedule violates the model constraints.

    Raised by the validators in :mod:`repro.dam.validator` and
    :mod:`repro.scheduling.cost` when a schedule uses more than ``P``
    parallel slots, flushes a message that is not at the source node,
    violates the space requirement, or leaves messages/tasks unfinished.
    """


class InvalidFlushError(InvalidScheduleError):
    """A single flush is malformed (too many messages, bad edge, ...)."""


class JournalError(ReproError):
    """Base class for execution-journal failures (:mod:`repro.dam.journal`)."""


class JournalCorruptionError(JournalError):
    """A journal is damaged beyond the torn-tail rule.

    Raised when a record *before* the physical tail fails its checksum or
    cannot be decoded (bit rot, overwritten bytes), or when the journal
    header/required records are missing entirely.  A damaged *tail* is
    never an error — torn final records are the expected signature of a
    crash and are repaired by discarding them (see ``docs/MODEL.md``).

    Attributes
    ----------
    offset:
        Byte offset of the damaged region (-1 if not applicable).
    reason:
        Machine-friendly tag (``bad-magic``, ``bad-crc``, ``bad-payload``,
        ``no-records``, ``instance-mismatch``, ``schedule-mismatch``).
    """

    def __init__(self, message: str, *, offset: int = -1,
                 reason: str = "") -> None:
        super().__init__(message)
        self.offset = offset
        self.reason = reason

    def __reduce__(self):
        # Keyword-only attributes ride in the state dict: the 3-tuple
        # form reconstructs via ``cls(*args)`` (all kwargs default) and
        # then restores ``__dict__``, so diagnostics survive a process
        # boundary (multiprocessing pipes pickle raised errors).
        return (type(self), self.args, dict(self.__dict__))


class StorageError(ReproError):
    """Base class for on-disk KV engine failures (:mod:`repro.lsm.disk`)."""


class StorageCorruptionError(StorageError):
    """On-disk KV state is damaged beyond what recovery can absorb.

    The disk engine's sibling of :class:`JournalCorruptionError` (the
    WAL itself raises that class — it *is* a ``WOJ1`` journal).  Raised
    when an SSTable block, index, bloom filter, or footer fails its
    CRC-32; when the manifest is unreadable; or when recovery finds
    evidence of silently lost records (a sequence gap, a torn non-final
    WAL generation).  Never raised for a torn tail of the *newest* WAL
    generation — that is the expected signature of a crash and is
    repaired by truncation.

    Attributes
    ----------
    path:
        The damaged file ("" when the damage spans the store).
    offset:
        Byte offset of the damaged region (-1 if not applicable).
    reason:
        Machine-friendly tag (``bad-magic``, ``bad-crc``, ``bad-footer``,
        ``bad-block``, ``bad-index``, ``bad-bloom``, ``missing-file``,
        ``seq-gap``, ``wal-mid-chain-tear``, ``no-manifest``).
    """

    def __init__(self, message: str, *, path: str = "", offset: int = -1,
                 reason: str = "") -> None:
        super().__init__(message)
        self.path = path
        self.offset = offset
        self.reason = reason

    def __reduce__(self):
        # See JournalCorruptionError.__reduce__: keyword-only diagnostics
        # survive pickling across a worker-process boundary.
        return (type(self), self.args, dict(self.__dict__))


class StorageIOError(StorageError):
    """A disk operation failed at the syscall layer and stayed failed.

    The typed surface of a live I/O fault (``EIO`` and friends) — as
    opposed to :class:`StorageCorruptionError`, which is about *bytes
    that read back wrong*.  Raised when a read keeps failing after the
    bounded retry policy, or when a write-path syscall fails in a way
    that forces a fail-stop re-open (a failed ``fsync`` is never
    retried; see the fsyncgate discussion in ``docs/STORAGE.md``).

    Attributes
    ----------
    op:
        The operation that failed (``open``, ``read``, ``write``,
        ``fsync``, ``fsync-dir``, ``replace``, ``unlink``).
    path:
        The file the operation targeted ("" if not applicable).
    errno:
        The OS error number carried by the underlying ``OSError``
        (0 if unknown).
    attempts:
        How many times the operation was tried before giving up
        (1 for fail-stop operations that are never retried).
    """

    def __init__(self, message: str, *, op: str = "", path: str = "",
                 errno: int = 0, attempts: int = 1) -> None:
        super().__init__(message)
        self.op = op
        self.path = path
        self.errno = errno
        self.attempts = attempts

    def __reduce__(self):
        # See JournalCorruptionError.__reduce__: keyword-only diagnostics
        # survive pickling across a worker-process boundary.
        return (type(self), self.args, dict(self.__dict__))


class StoreDegradedError(StorageError):
    """The store is in read-only degraded mode and rejected a write.

    Entered when the disk says it cannot durably accept more bytes
    (``ENOSPC`` anywhere on the write path, or repeated write-path
    ``EIO``): reads keep working, writes raise this error and are
    counted, and the store periodically probes the disk so it can
    re-arm automatically once space returns.  Because the memtable and
    the poisoned WAL generation are discarded *before* entering
    degraded mode, nothing the store ever acknowledged is lost.

    Attributes
    ----------
    reason:
        Why the store degraded (``enospc``, ``fsync-fail``, ``io``).
    path:
        The file whose operation triggered degradation ("").
    rejections:
        Writes rejected since the store degraded (including this one).
    """

    def __init__(self, message: str, *, reason: str = "", path: str = "",
                 rejections: int = 0) -> None:
        super().__init__(message)
        self.reason = reason
        self.path = path
        self.rejections = rejections

    def __reduce__(self):
        # See JournalCorruptionError.__reduce__: keyword-only diagnostics
        # survive pickling across a worker-process boundary.
        return (type(self), self.args, dict(self.__dict__))


class ExecutionStalledError(InvalidScheduleError):
    """An executor made no progress and exhausted its recovery options.

    Raised by :class:`repro.policies.executor.GatedExecutor` when a
    flush list deadlocks (e.g. it is not laminar) and by
    :class:`repro.policies.resilient.ResilientExecutor` when retries and
    re-planning are exhausted.  Carries the stalled state so the failure
    is diagnosable:

    Attributes
    ----------
    step:
        1-based step at which progress stopped (-1 if unknown).
    parked_messages:
        ``(msg_id, node)`` pairs for every undelivered message and its
        current location.
    blocking_flush:
        The highest-priority pending flush that could not run (None if
        nothing was pending).
    pending_flushes:
        All flushes still pending when execution stalled, in priority
        order.
    shard_id:
        The serving shard that stalled (None outside the serve stack or
        when the stall is not attributable to one shard).
    epoch:
        0-based planning epoch in which the stall was detected (-1 when
        not raised from an epoch-driven loop).
    last_durable_step:
        The newest journal-durable step at the time of the stall (-1
        when no journal was attached), so supervision and the CLI can
        report how much of the run is recoverable without re-scanning.
    """

    def __init__(
        self,
        message: str,
        *,
        step: int = -1,
        parked_messages: "tuple[tuple[int, int], ...]" = (),
        blocking_flush: object = None,
        pending_flushes: tuple = (),
        shard_id: "int | None" = None,
        epoch: int = -1,
        last_durable_step: int = -1,
    ) -> None:
        super().__init__(message)
        self.step = step
        self.parked_messages = tuple(parked_messages)
        self.blocking_flush = blocking_flush
        self.pending_flushes = tuple(pending_flushes)
        self.shard_id = shard_id
        self.epoch = epoch
        self.last_durable_step = last_durable_step

    def __reduce__(self):
        # See JournalCorruptionError.__reduce__: keep the stall state
        # (step, shard, parked messages, ...) across pickling so a
        # worker process can report a diagnosable failure to its parent.
        return (type(self), self.args, dict(self.__dict__))
