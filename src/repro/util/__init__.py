"""Shared utilities: errors, RNG helpers, queues, atomic file writes."""

from repro.util.atomic import atomic_write_bytes, fsync_dir, remove_stale_tmp
from repro.util.errors import (
    InvalidFlushError,
    InvalidInstanceError,
    InvalidScheduleError,
    ReproError,
    StorageCorruptionError,
    StorageError,
)
from repro.util.pairing_heap import PairingHeap
from repro.util.pq import IndexedMaxHeap
from repro.util.rng import make_rng

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "InvalidFlushError",
    "StorageError",
    "StorageCorruptionError",
    "PairingHeap",
    "IndexedMaxHeap",
    "make_rng",
    "atomic_write_bytes",
    "fsync_dir",
    "remove_stale_tmp",
]
