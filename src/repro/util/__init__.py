"""Shared utilities: errors, RNG helpers, priority queues, pairing heaps."""

from repro.util.errors import (
    InvalidFlushError,
    InvalidInstanceError,
    InvalidScheduleError,
    ReproError,
)
from repro.util.pairing_heap import PairingHeap
from repro.util.pq import IndexedMaxHeap
from repro.util.rng import make_rng

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "InvalidFlushError",
    "PairingHeap",
    "IndexedMaxHeap",
    "make_rng",
]
