"""Atomic file replacement: the tmp + fsync + rename discipline.

Several subsystems must rewrite a file so that a crash at *any* byte
offset leaves either the complete old contents or the complete new
contents on disk — never a prefix, never a mix.  Journal compaction
(:mod:`repro.dam.compaction`), the KV manifest
(:mod:`repro.lsm.disk.manifest`), and SSTable creation
(:mod:`repro.lsm.disk.sstable`) all follow the same three-step protocol:

1. write the new bytes to a temporary file *in the same directory* (so
   the final rename cannot cross a filesystem boundary);
2. flush and ``fsync`` the temporary file, so its bytes are durable
   before they can become visible under the final name;
3. ``os.replace`` it over the destination — atomic on POSIX — and
   ``fsync`` the directory so the rename itself is durable.

A crash before step 3 leaves the destination untouched (plus a stray
``*.tmp-*`` file, which :func:`remove_stale_tmp` reclaims); a crash
after step 3 leaves the new contents.  There is no in-between, which is
what the kill-at-every-offset fuzz suites quantify over.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path

from repro.util.fsio import resolve

#: Infix every temporary file carries, so stale ones are recognizable.
TMP_INFIX = ".tmp-"


def fsync_dir(path: "str | os.PathLike", *, of=None, fs=None) -> None:
    """``fsync`` a directory so a rename inside it is durable.

    Silently skipped on platforms where directories cannot be opened
    for syncing (Windows); the rename is still atomic there.  If the
    directory *does* open but its ``fsync`` fails, the error is
    re-raised — that failure means the rename may not survive a power
    cut, and swallowing it would silently drop durability.

    ``of`` names the file whose rename this sync covers (fault-
    injection handles classify by it); ``fs`` overrides the ambient
    filesystem handle (see :mod:`repro.util.fsio`).
    """
    resolve(fs).fsync_dir(path, of=of)


def atomic_write_bytes(
    path: "str | os.PathLike", data: bytes, *, fsync: bool = True,
    fs=None,
) -> Path:
    """Replace ``path`` with ``data`` atomically; returns the path.

    With ``fsync=True`` (the default) the new bytes are durable before
    the rename and the rename is durable before return.  ``fsync=False``
    keeps the atomicity (a reader never sees a partial file) but trades
    power-cut durability for speed — appropriate only where the caller
    syncs at a coarser granularity.

    If the write or sync of the temporary file fails, the stray tmp is
    unlinked before the error propagates — under ``ENOSPC`` a stranded
    tmp would make the disk-full condition it reports *worse* until the
    next :func:`remove_stale_tmp` sweep.

    ``fs`` overrides the ambient filesystem handle (injection point
    for :class:`repro.faults.iofaults.FaultFS`).
    """
    fsh = resolve(fs)
    path = Path(path)
    tmp = path.with_name(f"{path.name}{TMP_INFIX}{os.getpid()}")
    try:
        with fsh.open(tmp, "wb") as f:
            fsh.write(f, data)
            f.flush()
            if fsync:
                fsh.fsync(f)
        fsh.replace(tmp, path)
    except OSError:
        # Best-effort reclaim via the real unlink: the injected fault
        # is the error being reported, not the cleanup's to repeat.
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    if fsync:
        fsync_dir(path.parent, of=path, fs=fsh)
    return path


def remove_stale_tmp(directory: "str | os.PathLike") -> int:
    """Delete leftover ``*.tmp-*`` files a crash stranded; returns count.

    Safe to run at any time: a temporary file is only ever observable
    between steps 1 and 3 of the protocol, and the writer that created
    it is gone by the time anyone calls this (recovery runs first).
    """
    removed = 0
    for entry in Path(directory).iterdir():
        if TMP_INFIX in entry.name and entry.is_file():
            entry.unlink()
            removed += 1
    return removed
