"""Atomic file replacement: the tmp + fsync + rename discipline.

Several subsystems must rewrite a file so that a crash at *any* byte
offset leaves either the complete old contents or the complete new
contents on disk — never a prefix, never a mix.  Journal compaction
(:mod:`repro.dam.compaction`), the KV manifest
(:mod:`repro.lsm.disk.manifest`), and SSTable creation
(:mod:`repro.lsm.disk.sstable`) all follow the same three-step protocol:

1. write the new bytes to a temporary file *in the same directory* (so
   the final rename cannot cross a filesystem boundary);
2. flush and ``fsync`` the temporary file, so its bytes are durable
   before they can become visible under the final name;
3. ``os.replace`` it over the destination — atomic on POSIX — and
   ``fsync`` the directory so the rename itself is durable.

A crash before step 3 leaves the destination untouched (plus a stray
``*.tmp-*`` file, which :func:`remove_stale_tmp` reclaims); a crash
after step 3 leaves the new contents.  There is no in-between, which is
what the kill-at-every-offset fuzz suites quantify over.
"""

from __future__ import annotations

import os
from pathlib import Path

#: Infix every temporary file carries, so stale ones are recognizable.
TMP_INFIX = ".tmp-"


def fsync_dir(path: "str | os.PathLike") -> None:
    """``fsync`` a directory so a rename inside it is durable.

    Silently skipped on platforms where directories cannot be opened
    for syncing (Windows); the rename is still atomic there.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: "str | os.PathLike", data: bytes, *, fsync: bool = True,
) -> Path:
    """Replace ``path`` with ``data`` atomically; returns the path.

    With ``fsync=True`` (the default) the new bytes are durable before
    the rename and the rename is durable before return.  ``fsync=False``
    keeps the atomicity (a reader never sees a partial file) but trades
    power-cut durability for speed — appropriate only where the caller
    syncs at a coarser granularity.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}{TMP_INFIX}{os.getpid()}")
    with open(tmp, "wb") as f:
        f.write(data)
        f.flush()
        if fsync:
            os.fsync(f.fileno())
    os.replace(tmp, path)
    if fsync:
        fsync_dir(path.parent)
    return path


def remove_stale_tmp(directory: "str | os.PathLike") -> int:
    """Delete leftover ``*.tmp-*`` files a crash stranded; returns count.

    Safe to run at any time: a temporary file is only ever observable
    between steps 1 and 3 of the protocol, and the writer that created
    it is gone by the time anyone calls this (recovery runs first).
    """
    removed = 0
    for entry in Path(directory).iterdir():
        if TMP_INFIX in entry.name and entry.is_file():
            entry.unlink()
            removed += 1
    return removed
