"""Seeded random-number-generator helpers.

Every stochastic component in the package accepts either an integer seed or
an already-constructed :class:`numpy.random.Generator`; :func:`make_rng`
normalizes both (plus ``None``) into a ``Generator``.  Centralizing this
keeps experiments reproducible: a bench passes one integer seed down and
every workload generator derives from it deterministically.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def make_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a numpy ``Generator`` for ``seed``.

    ``seed`` may be an int (deterministic), an existing ``Generator``
    (returned unchanged, so call sites can share a stream), or ``None``
    (OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used by parameter sweeps so each cell of the sweep gets its own stream
    and reordering cells does not change any cell's randomness.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
