"""The injectable filesystem handle behind every storage syscall.

Everything that touches disk in this package — the journal
(:mod:`repro.dam.journal`), the atomic-rename protocol
(:mod:`repro.util.atomic`), and the KV engine (:mod:`repro.lsm.disk`) —
routes its syscalls through one small object, the *fs handle*.  The
default handle, :data:`REAL_FS`, is a thin pass-through to the real OS
calls: no wrapping, no bookkeeping, no allocation, so fault-free runs
are byte-identical to code that called ``os`` directly.

The point of the seam is :class:`repro.faults.iofaults.FaultFS`, which
substitutes a handle that injects ``EIO``/``ENOSPC``/short-write/
fsync-fail/slow-io faults at chosen operation indices.  Handles are
resolved per call site via :func:`resolve`::

    fs = resolve(fs)          # explicit handle, else the ambient one

so a store can be opened with its own ``fs=`` for targeted tests, while
chaos drills :func:`install` a process-wide handle that every storage
layer in the worker picks up.

This module is dependency-free on purpose (the faults package imports
numpy and the tree machinery); keep it that way.
"""

from __future__ import annotations

import os
from pathlib import Path


class RealFS:
    """Pass-through fs handle: each method is one real OS call.

    File-object operations (``read``/``write``/``fsync``/``truncate``)
    take the open file rather than a path — the file's own ``.name``
    carries the path for handles that need it (fault classification).
    """

    __slots__ = ()

    def open(self, path, mode: str = "rb"):
        """Open ``path``; the returned object supports the io protocol."""
        return open(path, mode)

    def read(self, f, n: int = -1) -> bytes:
        """Read up to ``n`` bytes from an open file."""
        return f.read(n)

    def read_bytes(self, path) -> bytes:
        """The whole contents of ``path``."""
        with open(path, "rb") as f:
            return f.read()

    def write(self, f, data: bytes) -> int:
        """Write ``data`` to an open file; returns the byte count."""
        return f.write(data)

    def fsync(self, f) -> None:
        """``fsync`` an open file."""
        os.fsync(f.fileno())

    def truncate(self, f, length: int) -> None:
        """Truncate an open file to ``length`` bytes."""
        f.truncate(length)

    def replace(self, src, dst) -> None:
        """Atomically rename ``src`` over ``dst``."""
        os.replace(src, dst)

    def unlink(self, path) -> None:
        """Delete ``path``."""
        os.unlink(path)

    def fsync_dir(self, path, *, of=None) -> None:
        """``fsync`` a directory so a rename inside it is durable.

        Silently skipped on platforms where directories cannot be
        opened for syncing (Windows) — the rename is still atomic
        there.  A *successfully opened* directory fd whose ``fsync``
        fails re-raises: that failure means the rename may not survive
        a power cut, and swallowing it would silently drop durability.

        ``of`` names the file whose rename this sync makes durable;
        the real handle ignores it (fault handles classify by it).
        """
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


#: The process-default handle: real OS calls, shared and stateless.
REAL_FS = RealFS()

_current: RealFS = REAL_FS


def current_fs() -> RealFS:
    """The ambient fs handle new stores/journals pick up by default."""
    return _current


def install(fs: "RealFS | None") -> RealFS:
    """Set the ambient handle (``None`` restores :data:`REAL_FS`)."""
    global _current
    _current = REAL_FS if fs is None else fs
    return _current


class installed:
    """Context manager: ambient handle swapped in, restored on exit."""

    def __init__(self, fs: RealFS) -> None:
        self._fs = fs
        self._prior: "RealFS | None" = None

    def __enter__(self) -> RealFS:
        self._prior = current_fs()
        return install(self._fs)

    def __exit__(self, *exc) -> None:
        install(self._prior)


def resolve(fs: "RealFS | None") -> RealFS:
    """The handle a call site should use: explicit, else ambient."""
    return _current if fs is None else fs


__all__ = [
    "RealFS",
    "REAL_FS",
    "current_fs",
    "install",
    "installed",
    "resolve",
]
