"""A mergeable max pairing heap.

Computing Horn task densities bottom-up requires melding, for each tree
node, the heaps of *pending subtrees* of all its children, then repeatedly
popping the densest pending subtree (see :mod:`repro.scheduling.horn`).
Pairing heaps give amortized ``O(1)`` meld/push and ``O(log n)`` pop, which
keeps the whole density computation ``O(n log n)``.

Keys must be totally ordered (``>`` / ``>=``); callers use exact
``fractions.Fraction`` densities plus a tie-break so that comparisons are
never subject to float rounding.
"""

from __future__ import annotations

from typing import Any, Generic, Iterator, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class _Node(Generic[K, V]):
    __slots__ = ("key", "value", "child", "sibling")

    def __init__(self, key: K, value: V) -> None:
        self.key = key
        self.value = value
        self.child: _Node[K, V] | None = None
        self.sibling: _Node[K, V] | None = None


def _link(a: "_Node | None", b: "_Node | None") -> "_Node | None":
    """Make the smaller-rooted heap the first child of the larger-rooted one."""
    if a is None:
        return b
    if b is None:
        return a
    if b.key > a.key:
        a, b = b, a
    b.sibling = a.child
    a.child = b
    return a


class PairingHeap(Generic[K, V]):
    """Max pairing heap with ``push``, ``pop``, ``peek``, and ``meld``."""

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root: _Node[K, V] | None = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._root is not None

    def push(self, key: K, value: V) -> None:
        """Insert ``value`` with priority ``key``."""
        self._root = _link(self._root, _Node(key, value))
        self._size += 1

    def peek(self) -> tuple[K, V]:
        """Return the max ``(key, value)`` without removing it."""
        if self._root is None:
            raise IndexError("peek at empty PairingHeap")
        return self._root.key, self._root.value

    def pop(self) -> tuple[K, V]:
        """Remove and return the max ``(key, value)``.

        Children are recombined with the standard two-pass pairing, done
        iteratively so deep heaps cannot overflow the Python stack.
        """
        root = self._root
        if root is None:
            raise IndexError("pop from empty PairingHeap")
        # First pass: link children pairwise left to right.
        pairs: list[_Node[K, V]] = []
        node = root.child
        while node is not None:
            nxt = node.sibling
            node.sibling = None
            if nxt is not None:
                nxt2 = nxt.sibling
                nxt.sibling = None
                linked = _link(node, nxt)
                assert linked is not None
                pairs.append(linked)
                node = nxt2
            else:
                pairs.append(node)
                node = None
        # Second pass: fold right to left.
        new_root: _Node[K, V] | None = None
        for heap in reversed(pairs):
            new_root = _link(heap, new_root)
        self._root = new_root
        self._size -= 1
        return root.key, root.value

    def meld(self, other: "PairingHeap[K, V]") -> None:
        """Absorb ``other`` into this heap; ``other`` becomes empty."""
        if other is self:
            raise ValueError("cannot meld a heap with itself")
        self._root = _link(self._root, other._root)
        self._size += other._size
        other._root = None
        other._size = 0

    def items(self) -> Iterator[tuple[K, V]]:
        """Yield all (key, value) pairs in arbitrary order (for testing)."""
        stack: list[Any] = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            yield node.key, node.value
            if node.sibling is not None:
                stack.append(node.sibling)
            if node.child is not None:
                stack.append(node.child)
