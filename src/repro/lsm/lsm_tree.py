"""A leveled LSM-tree with block-granular IO accounting.

Structure: an in-memory memtable of capacity ``C`` plus disk levels
``0..L``; level ``i`` holds sorted runs with a total-entry capacity of
``C * T^(i+1)`` (size ratio ``T``).  A full memtable flushes to level 0;
over-capacity levels are merged downward by a compaction policy
(:mod:`repro.lsm.compaction`).

Root-to-leaf analogues (the paper's subject, transplanted):

* a **secure delete** inserts a *secure tombstone*: it shadows older
  versions like a normal tombstone but the operation only *completes*
  when the tombstone has been compacted into the bottom level (no older
  physical copy can remain below it).  If newer data arrives for the key,
  the tombstone demotes to a *rider* and keeps descending.
* a **deferred query** inserts a query marker that rides compactions and
  resolves when it first meets a data version older than itself (or the
  bottom level, answering "absent").

Completion times are recorded in *IO units* (blocks read + written so
far), the LSM analogue of the DAM time step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.lsm.sstable import Entry, EntryKind, SSTable
from repro.util.errors import InvalidInstanceError


@dataclass
class PendingOp:
    """A queued root-to-leaf operation and where its marker currently is."""

    op_id: int
    kind: EntryKind
    key: Any
    seq: int
    level: int = -1  # -1 = memtable


@dataclass
class CompletedOp:
    """Outcome of a finished root-to-leaf operation."""

    op_id: int
    io_time: int
    result: Any = None


class LSMTree:
    """See module docstring.

    Parameters
    ----------
    memtable_capacity:
        Entries buffered in memory before a flush (the ``B`` analogue).
    size_ratio:
        Growth factor ``T`` between level capacities.
    n_levels:
        Number of disk levels; the last is the *bottom* (unbounded).
    """

    def __init__(
        self,
        memtable_capacity: int = 64,
        size_ratio: int = 4,
        n_levels: int = 4,
    ) -> None:
        if memtable_capacity < 1 or size_ratio < 2 or n_levels < 1:
            raise InvalidInstanceError(
                "need memtable_capacity >= 1, size_ratio >= 2, n_levels >= 1"
            )
        self.memtable_capacity = memtable_capacity
        self.size_ratio = size_ratio
        self.n_levels = n_levels
        self.levels: list[list[SSTable]] = [[] for _ in range(n_levels)]
        self._memtable: dict[Any, Entry] = {}
        self._mem_riders: list[Entry] = []
        self._seq = 0
        self._next_op = 0
        self.io_blocks = 0
        self.pending: dict[int, PendingOp] = {}
        self.completed: dict[int, CompletedOp] = {}

    # ------------------------------------------------------------------
    # Capacities and accounting
    # ------------------------------------------------------------------
    def level_capacity(self, level: int) -> int:
        """Entry capacity of ``level`` (the bottom level is unbounded)."""
        if level == self.n_levels - 1:
            return 1 << 62
        return self.memtable_capacity * self.size_ratio ** (level + 1)

    def level_size(self, level: int) -> int:
        """Total entries (riders included) currently in ``level``."""
        return sum(run.size for run in self.levels[level])

    def _charge(self, entries: int) -> None:
        """Charge IO for moving ``entries`` through the memory hierarchy.

        One block holds ``memtable_capacity`` entries; a compaction reads
        and writes its data once each.
        """
        blocks = -(-entries // self.memtable_capacity)
        self.io_blocks += blocks

    def _take_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, key: Any, value: Any) -> None:
        """Insert or overwrite ``key``."""
        self._memtable[key] = Entry(key, self._take_seq(), EntryKind.PUT, value)
        self._maybe_flush()

    def delete(self, key: Any) -> None:
        """Tombstone delete (logical, lazily compacted)."""
        self._memtable[key] = Entry(key, self._take_seq(), EntryKind.TOMBSTONE)
        self._maybe_flush()

    def secure_delete(self, key: Any) -> int:
        """Queue a secure delete; returns its op id."""
        op_id = self._next_op
        self._next_op += 1
        entry = Entry(
            key, self._take_seq(), EntryKind.SECURE_TOMBSTONE, op_id=op_id
        )
        self._memtable[key] = entry
        self.pending[op_id] = PendingOp(op_id, entry.kind, key, entry.seq)
        self._maybe_flush()
        return op_id

    def deferred_query(self, key: Any) -> int:
        """Queue a deferred query; returns its op id."""
        op_id = self._next_op
        self._next_op += 1
        entry = Entry(
            key, self._take_seq(), EntryKind.DEFERRED_QUERY, op_id=op_id
        )
        self._mem_riders.append(entry)
        self.pending[op_id] = PendingOp(op_id, entry.kind, key, entry.seq)
        self._maybe_flush()
        return op_id

    def _maybe_flush(self) -> None:
        if len(self._memtable) + len(self._mem_riders) >= self.memtable_capacity:
            self.flush_memtable()

    def flush_memtable(self) -> None:
        """Write the memtable as a new level-0 run (no-op when empty)."""
        if not self._memtable and not self._mem_riders:
            return
        run = SSTable.from_unsorted(
            list(self._memtable.values()), self._mem_riders
        )
        self._charge(run.size)
        self.levels[0].insert(0, run)  # newest first
        for e in run.iter_all():
            if e.op_id >= 0 and e.op_id in self.pending:
                self.pending[e.op_id].level = 0
        self._memtable = {}
        self._mem_riders = []

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: Any) -> Any:
        """Point query: newest visible version of ``key`` (or None).

        Charges one block per run probed (no bloom filters — the paper's
        read/write asymmetry in its plainest form).
        """
        entry = self._memtable.get(key)
        if entry is not None:
            return entry.value if entry.kind is EntryKind.PUT else None
        for level in self.levels:
            for run in level:  # newest first within a level
                self.io_blocks += 1
                found = run.get(key)
                if found is not None:
                    return found.value if found.kind is EntryKind.PUT else None
        return None

    def __contains__(self, key: Any) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, level: int, run_indices: "list[int] | None" = None) -> None:
        """Merge runs of ``level`` (default: all) into ``level + 1``.

        Overlapping runs of the destination participate in the merge (the
        leveling discipline).  Newest version per key wins; tombstones
        drop at the bottom; root-to-leaf markers complete/resolve per the
        module docstring.
        """
        if not (0 <= level < self.n_levels - 1):
            raise InvalidInstanceError(f"cannot compact level {level}")
        src_runs = self.levels[level]
        if run_indices is None:
            run_indices = list(range(len(src_runs)))
        if not run_indices:
            return
        if level == 0:
            # Level-0 runs overlap each other; moving a newer run below an
            # older overlapping sibling would let stale versions resurface.
            # Take the transitive overlap closure (the RocksDB rule).
            chosen = set(run_indices)
            changed = True
            while changed:
                changed = False
                for i, run in enumerate(src_runs):
                    if i in chosen:
                        continue
                    if any(run.overlaps(src_runs[j]) for j in chosen):
                        chosen.add(i)
                        changed = True
            run_indices = sorted(chosen)
        moving = [src_runs[i] for i in run_indices]
        self.levels[level] = [
            r for i, r in enumerate(src_runs) if i not in set(run_indices)
        ]
        dest = level + 1
        overlapping = [
            r for r in self.levels[dest] if any(m.overlaps(r) for m in moving)
        ]
        self.levels[dest] = [r for r in self.levels[dest] if r not in overlapping]

        in_entries = sum(r.size for r in moving + overlapping)
        self._charge(in_entries)  # read cost

        at_bottom = dest == self.n_levels - 1
        merged, riders = self._merge(moving + overlapping, at_bottom, dest)
        out_size = len(merged) + len(riders)
        self._charge(out_size)  # write cost
        # Partition the output into bounded, non-overlapping files so a
        # level consists of many independently-compactable runs (this is
        # what makes compaction *scheduling* meaningful).
        for run in self._partition_output(merged, riders):
            self.levels[dest].insert(0, run)

    @property
    def target_run_entries(self) -> int:
        """Maximum entries per output run (the "file size")."""
        return self.memtable_capacity * self.size_ratio

    def _partition_output(
        self, merged: "list[Entry]", riders: "list[Entry]"
    ) -> "list[SSTable]":
        if not merged and not riders:
            return []
        if not merged:
            return [SSTable(entries=(), riders=tuple(riders))]
        chunk = self.target_run_entries
        runs: list[SSTable] = []
        bounds: list[tuple[Any, Any]] = []
        pieces = [
            merged[i : i + chunk] for i in range(0, len(merged), chunk)
        ]
        rider_bins: list[list[Entry]] = [[] for _ in pieces]
        for rider in riders:
            # Bin each rider with the piece covering its key (last piece
            # for keys beyond every boundary).
            placed = len(pieces) - 1
            for i, piece in enumerate(pieces):
                if rider.key <= piece[-1].key:
                    placed = i
                    break
            rider_bins[placed].append(rider)
        for piece, bin_riders in zip(pieces, rider_bins):
            runs.append(
                SSTable(entries=tuple(piece), riders=tuple(bin_riders))
            )
        return runs

    def _merge(
        self, runs: "list[SSTable]", at_bottom: bool, dest: int
    ) -> tuple[list[Entry], list[Entry]]:
        versions: dict[Any, list[Entry]] = {}
        riders: list[Entry] = []
        for run in runs:
            for e in run.entries:
                versions.setdefault(e.key, []).append(e)
            riders.extend(run.riders)
        newest: dict[Any, Entry] = {}
        for key, entries in versions.items():
            entries.sort(key=lambda e: e.seq, reverse=True)
            newest[key] = entries[0]
            # Shadowed secure tombstones keep descending as riders.
            riders.extend(
                e
                for e in entries[1:]
                if e.kind is EntryKind.SECURE_TOMBSTONE
            )

        # Resolve deferred-query riders against *every* version seen in
        # this merge: anything deeper in the tree is older than all of
        # them, so the newest in-merge version below the query's sequence
        # is the authoritative answer (and must be consumed now — the
        # merge is about to destroy shadowed versions).
        surviving_riders: list[Entry] = []
        for rider in riders:
            if rider.kind is EntryKind.DEFERRED_QUERY:
                older = [
                    e
                    for e in versions.get(rider.key, ())
                    if e.seq < rider.seq
                ]
                if older:
                    data = max(older, key=lambda e: e.seq)
                    self._finish(
                        rider.op_id,
                        result=data.value
                        if data.kind is EntryKind.PUT
                        else None,
                    )
                    continue
                if at_bottom:
                    self._finish(rider.op_id, result=None)
                    continue
            elif rider.kind is EntryKind.SECURE_TOMBSTONE and at_bottom:
                self._finish(rider.op_id, result=True)
                continue
            surviving_riders.append(rider)
            if rider.op_id >= 0 and rider.op_id in self.pending:
                self.pending[rider.op_id].level = dest

        out: list[Entry] = []
        for e in sorted(newest.values(), key=lambda e: e.key):
            if at_bottom and e.kind is EntryKind.TOMBSTONE:
                continue  # nothing below to shadow
            if e.kind is EntryKind.SECURE_TOMBSTONE:
                if at_bottom:
                    self._finish(e.op_id, result=True)
                    continue
                if e.op_id in self.pending:
                    self.pending[e.op_id].level = dest
            out.append(e)
        return out, surviving_riders

    def _finish(self, op_id: int, result: Any) -> None:
        if op_id in self.pending:
            del self.pending[op_id]
            self.completed[op_id] = CompletedOp(op_id, self.io_blocks, result)

    # ------------------------------------------------------------------
    # Maintenance / draining
    # ------------------------------------------------------------------
    def marker_runs(self, level: int) -> "list[tuple[int, int]]":
        """``(run_index, pending_marker_count)`` for runs carrying markers."""
        result = []
        for i, run in enumerate(self.levels[level]):
            count = sum(
                1
                for e in run.iter_all()
                if e.op_id >= 0 and e.op_id in self.pending
            )
            if count:
                result.append((i, count))
        return result

    def over_capacity_levels(self) -> list[int]:
        """Non-bottom levels currently above their entry capacity."""
        return [
            i
            for i in range(self.n_levels - 1)
            if self.level_size(i) > self.level_capacity(i)
        ]

    def maintain(self, policy) -> None:
        """Compact until no level is over capacity (policy picks what)."""
        guard = 0
        while self.over_capacity_levels():
            level, runs = policy.choose(self)
            self.compact(level, runs)
            guard += 1
            if guard > 10_000:  # pragma: no cover - policy bug backstop
                raise RuntimeError("compaction did not converge")

    def drain_backlog(self, policy) -> dict[int, CompletedOp]:
        """Compact until every pending root-to-leaf operation completes.

        Returns the completed-op records of the ops that were pending when
        the drain started.
        """
        self.flush_memtable()
        target_ops = set(self.pending)
        guard = 0
        while any(op in self.pending for op in target_ops):
            level, runs = policy.choose(self)
            self.compact(level, runs)
            guard += 1
            if guard > 100_000:  # pragma: no cover - policy bug backstop
                raise RuntimeError("backlog drain did not converge")
        return {op: self.completed[op] for op in target_ops}

    def check_invariants(self) -> None:
        """Structural checks used by tests."""
        for level, runs in enumerate(self.levels):
            for run in runs:
                keys = [e.key for e in run.entries]
                assert keys == sorted(keys)
        for op_id, op in self.pending.items():
            assert op_id not in self.completed
