"""Durable on-disk KV engine over the LSM substrate.

Where :mod:`repro.lsm` *simulates* a write-optimized dictionary (counted
block IOs, in-memory runs), this package stores real bytes with the
robustness discipline the journal subsystem established:

* :mod:`~repro.lsm.disk.wal` — write-ahead log; each generation is a
  ``WOJ1`` journal, so torn-tail tolerance and kill-at-every-offset
  exactness are inherited, not re-implemented;
* :mod:`~repro.lsm.disk.sstable` — immutable sorted runs with per-block
  CRC-32, a bloom filter, and a sparse index, written atomically;
* :mod:`~repro.lsm.disk.manifest` — the versioned level manifest; every
  edit is one atomic rename, the commit point of every multi-file
  transition;
* :mod:`~repro.lsm.disk.kvstore` — the :class:`KVStore` facade
  (open / get / put / delete / close) with WAL-replay recovery;
* :mod:`~repro.lsm.disk.scheduler` — compaction *scheduling*: the
  :class:`HornDensityPolicy` ranks merges by tombstone-obligations
  retired per entry moved — the paper's density ordering, on disk;
* :mod:`~repro.lsm.disk.scrub` — proactive checksum verification with
  salvage, quarantine, and shadowing-aware loss classification.
"""

from repro.lsm.disk.kvstore import (
    DEGRADED_ENOSPC,
    DEGRADED_FSYNC,
    DEGRADED_IO,
    KVStore,
)
from repro.lsm.disk.manifest import (
    Manifest,
    commit_manifest,
    load_or_init_manifest,
    manifest_path,
    read_manifest,
)
from repro.lsm.disk.scheduler import (
    CompactionTask,
    DiskCompactionPolicy,
    DiskLevelingPolicy,
    HornDensityPolicy,
    PacedHornPolicy,
    build_policy,
)
from repro.lsm.disk.scrub import LostRange, ScrubReport, run_scrub
from repro.lsm.disk.sstable import (
    KIND_PUT,
    KIND_TOMBSTONE,
    BlockFinding,
    BloomFilter,
    SSTableMeta,
    SSTableReader,
    sstable_name,
    write_sstable,
)
from repro.lsm.disk.wal import (
    open_wal,
    replay_wal,
    wal_generations,
    wal_path,
)

__all__ = [
    "DEGRADED_ENOSPC",
    "DEGRADED_FSYNC",
    "DEGRADED_IO",
    "KVStore",
    "Manifest",
    "commit_manifest",
    "load_or_init_manifest",
    "manifest_path",
    "read_manifest",
    "CompactionTask",
    "DiskCompactionPolicy",
    "DiskLevelingPolicy",
    "HornDensityPolicy",
    "PacedHornPolicy",
    "build_policy",
    "LostRange",
    "ScrubReport",
    "run_scrub",
    "KIND_PUT",
    "KIND_TOMBSTONE",
    "BlockFinding",
    "BloomFilter",
    "SSTableMeta",
    "SSTableReader",
    "sstable_name",
    "write_sstable",
    "open_wal",
    "replay_wal",
    "wal_generations",
    "wal_path",
]
