"""Disk compaction scheduling: which files merge next, and why.

The in-memory :mod:`repro.lsm.compaction` policies answer
``choose(tree)`` over simulated runs; these policies answer
``choose(manifest, config)`` over real files, using only manifest
metadata (entry counts, tombstone counts, key ranges) — no blocks are
read to make a decision, so scheduling stays O(files), not O(bytes).

Two regimes, mirroring the in-memory substrate:

* **capacity** — some level exceeds ``C * T^(i+1)`` entries (or L0
  exceeds its run budget): restoring the invariant is correctness work
  and always wins;
* **obligation drain** — tombstones are the disk engine's root-to-leaf
  obligations: a delete is only *finished* (space reclaimed, key
  unresurrectable by any future scrub-salvage) when its tombstone
  reaches the bottom level and is dropped.  The
  :class:`HornDensityPolicy` scores each candidate merge by
  *obligations retired per entry moved* — the same work-per-progress
  ratio as the paper's Horn densities, transplanted from simulated
  markers to physical tombstones.

Policies return a :class:`CompactionTask` (or None when nothing needs
doing); :meth:`repro.lsm.disk.kvstore.KVStore.maintain` executes at most
one task per call, which de-amortizes maintenance exactly like
``LSMTree.maintain(budget=1)`` — the serving loop never blocks on a
full cascade.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.lsm.disk.manifest import Manifest
    from repro.lsm.disk.sstable import SSTableMeta


@dataclass(frozen=True)
class CompactionTask:
    """One planned merge: ``level`` files + overlap below -> ``level+1``."""

    level: int
    file_ids: "tuple[int, ...]"
    #: why this task was chosen (``capacity`` or ``density``) and its
    #: score — surfaced through obs metrics and ``kv stats``.
    regime: str
    score: float


def level_capacity(level: int, *, memtable_capacity: int,
                   size_ratio: int) -> "int | None":
    """Entry budget for ``level`` (None: the bottom level is unbounded)."""
    return memtable_capacity * size_ratio ** (level + 1)


def _overlap_below(meta: "SSTableMeta",
                   below: "tuple[SSTableMeta, ...]") -> "list[SSTableMeta]":
    return [m for m in below if meta.overlaps(m)]


def _l0_closure(level0: "tuple[SSTableMeta, ...]",
                seed: "SSTableMeta") -> "list[SSTableMeta]":
    """Transitive overlap closure at L0 (runs there may overlap each
    other, so a merge must take every run whose range intersects the
    group — the same rule ``LSMTree.compact`` enforces)."""
    chosen = [seed]
    changed = True
    while changed:
        changed = False
        lo = min(m.min_key for m in chosen)
        hi = max(m.max_key for m in chosen)
        for m in level0:
            if m not in chosen and m.overlaps_range(lo, hi):
                chosen.append(m)
                changed = True
    return sorted(chosen, key=lambda m: m.file_id)


class DiskCompactionPolicy(abc.ABC):
    """Strategy interface; stateless so one instance serves many stores."""

    name: str = "disk-policy"

    @abc.abstractmethod
    def choose(self, manifest: "Manifest", *, memtable_capacity: int,
               size_ratio: int) -> "CompactionTask | None":
        """The next merge, or None when no level needs work."""

    @staticmethod
    def _over_capacity(manifest: "Manifest", *, memtable_capacity: int,
                       size_ratio: int) -> "list[int]":
        """Levels over budget, topmost first.  L0 is over budget when it
        holds ``size_ratio`` or more runs (run count is the
        read-amplification cost there, not entry count); deeper levels
        when their entry count exceeds ``C * T^(i+1)``.  The deepest
        level is bounded too — merging out of it opens a new level
        below, which is how the tree grows, and capacities grow
        geometrically so depth stays logarithmic in data size."""
        over = []
        for level, runs in enumerate(manifest.levels):
            if level == 0:
                if len(runs) >= size_ratio:
                    over.append(level)
                continue
            cap = level_capacity(
                level, memtable_capacity=memtable_capacity,
                size_ratio=size_ratio,
            )
            if sum(m.entries for m in runs) > cap:
                over.append(level)
        return over

    @staticmethod
    def _capacity_task(manifest: "Manifest", level: int) -> CompactionTask:
        runs = manifest.levels[level]
        if level == 0:
            chosen = _l0_closure(runs, runs[0])
        else:
            # Merge the run carrying the most entries — the cheapest way
            # to shed the most weight in one task.
            chosen = [max(runs, key=lambda m: (m.entries, m.file_id))]
        return CompactionTask(
            level=level,
            file_ids=tuple(m.file_id for m in chosen),
            regime="capacity",
            score=float(sum(m.entries for m in chosen)),
        )


class DiskLevelingPolicy(DiskCompactionPolicy):
    """Classic leveling: fix the topmost over-budget level, nothing else."""

    name = "leveling"

    def choose(self, manifest: "Manifest", *, memtable_capacity: int,
               size_ratio: int) -> "CompactionTask | None":
        over = self._over_capacity(
            manifest, memtable_capacity=memtable_capacity,
            size_ratio=size_ratio,
        )
        if not over:
            return None
        return self._capacity_task(manifest, over[0])


class HornDensityPolicy(DiskCompactionPolicy):
    """Obligation-density scheduling: the WORMS transplant, on disk.

    Capacity restoration first (correctness).  Otherwise every
    tombstone-bearing run above the bottom is a candidate; its density is

        ``tombstones_retired / entries_moved``

    where ``entries_moved`` counts the run plus everything it overlaps
    one level down, and a tombstone is *retired* (counted at full
    weight) only when the merge lands in the bottom level — a mid-tree
    hop advances the obligation without finishing it, and scores at
    ``advance_weight``.  Runs below ``min_density`` are left alone:
    merging them moves many entries to finish few obligations, the
    exact waste the paper's density ordering avoids.
    """

    name = "horn-density"

    def __init__(self, *, min_density: float = 0.0,
                 advance_weight: float = 0.5) -> None:
        self.min_density = float(min_density)
        self.advance_weight = float(advance_weight)

    def _admit(self, moved: int) -> bool:
        """Hook: may a density candidate moving ``moved`` entries run?

        The base policy admits everything; :class:`PacedHornPolicy`
        bounds it.  Capacity restoration never consults this hook —
        invariant repair is correctness work and always wins.
        """
        return True

    def choose(self, manifest: "Manifest", *, memtable_capacity: int,
               size_ratio: int) -> "CompactionTask | None":
        over = self._over_capacity(
            manifest, memtable_capacity=memtable_capacity,
            size_ratio=size_ratio,
        )
        if over:
            return self._capacity_task(manifest, over[0])
        n = len(manifest.levels)
        best: "CompactionTask | None" = None
        for level in range(n - 1):
            below = manifest.levels[level + 1] if level + 1 < n else ()
            lands_bottom = level + 1 == n - 1
            weight = 1.0 if lands_bottom else self.advance_weight
            for meta in manifest.levels[level]:
                if meta.tombstones == 0:
                    continue
                if level == 0:
                    group = _l0_closure(manifest.levels[0], meta)
                else:
                    group = [meta]
                moved = sum(m.entries for m in group) + sum(
                    m.entries
                    for m in below
                    if any(g.overlaps(m) for g in group)
                )
                retired = sum(m.tombstones for m in group)
                density = weight * retired / max(1, moved)
                if density <= self.min_density:
                    continue
                if not self._admit(moved):
                    continue
                if best is None or density > best.score:
                    best = CompactionTask(
                        level=level,
                        file_ids=tuple(m.file_id for m in group),
                        regime="density",
                        score=density,
                    )
        return best


class PacedHornPolicy(HornDensityPolicy):
    """:class:`HornDensityPolicy` with a per-task entry budget.

    The disk-engine half of the de-amortization controller
    (``serve --pace`` is the planner/engine half): density merges that
    would move more than ``pace`` entries in one task are deferred —
    they stay candidates and run later, once intervening capacity
    merges have shrunk their overlap or a smaller candidate drains the
    same obligations.  Capacity restoration is exempt: an over-budget
    level is an invariant violation and is repaired at whatever cost it
    takes, exactly like the serving engine finishing an in-flight
    flush.  The trade mirrors Das–Iacono–Nekrich: a bounded amount of
    maintenance per :meth:`~repro.lsm.disk.kvstore.KVStore.maintain`
    call, at the cost of obligations draining in more (smaller) tasks.
    """

    name = "paced-horn"

    def __init__(self, pace: int, *, min_density: float = 0.0,
                 advance_weight: float = 0.5) -> None:
        super().__init__(
            min_density=min_density, advance_weight=advance_weight
        )
        if pace < 1:
            raise ValueError(f"pace budget must be >= 1, got {pace}")
        self.pace = int(pace)

    def _admit(self, moved: int) -> bool:
        return moved <= self.pace


def build_policy(name: str, *, pace: int = 0) -> DiskCompactionPolicy:
    """Scheduler-knob factory (the ``kv --scheduler/--pace`` surface).

    ``leveling`` ignores ``pace`` (it only ever does capacity repair);
    ``horn`` returns the density policy, paced when ``pace > 0``.
    """
    if name == "leveling":
        return DiskLevelingPolicy()
    if name == "horn":
        return PacedHornPolicy(pace) if pace > 0 else HornDensityPolicy()
    raise ValueError(f"unknown compaction scheduler {name!r}")
