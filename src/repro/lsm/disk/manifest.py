"""Versioned level manifest: the single source of truth for the store.

The manifest is one small file (``MANIFEST``) naming every live SSTable
by level, the WAL generation recovery must replay from, and the newest
sequence number already durable in SSTables.  Every edit rewrites the
whole file through :func:`repro.util.atomic.atomic_write_bytes`, so a
manifest transition is a single atomic rename: a crash at any byte of
any commit leaves either the old manifest or the new one — never a
mixture, never a torn file.  This is what makes the multi-file flush
and compaction protocols crash-safe: SSTables are written first (atomic,
invisible until referenced), the manifest swap is the commit point, and
orphaned files on either side of the swap are garbage the next open
collects.

Layout::

    b"WMAN" + u32 version | u32 payload len | u32 CRC-32 | JSON payload

The CRC turns in-place damage into a typed
:class:`~repro.util.errors.StorageCorruptionError` (``reason="bad-crc"``)
instead of a half-parsed store.  A missing manifest in a directory that
contains SSTables is likewise corruption (``reason="no-manifest"``) —
silent emptiness is the one outcome this module must never produce.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.lsm.disk.sstable import SSTableMeta
from repro.util.atomic import atomic_write_bytes
from repro.util.errors import StorageCorruptionError
from repro.util.fsio import resolve

MANIFEST_NAME = "MANIFEST"
MAN_MAGIC = b"WMAN"
MAN_VERSION = 1
_MAN_HEADER = MAN_MAGIC + struct.pack("<I", MAN_VERSION)
_SECTION = struct.Struct("<II")


@dataclass(frozen=True)
class Manifest:
    """One immutable version of the store's file-level state.

    Attributes
    ----------
    version:
        Monotone edit counter (1 for a fresh store).
    next_file_id:
        The id the next SSTable write should use (never reused, so a
        stale file can never be confused with a live one).
    wal_gen:
        Recovery replays WAL generations ``>= wal_gen``.
    last_flushed_seq:
        Every operation with ``seq <= last_flushed_seq`` is durable in
        SSTables; replay applies only newer records.
    levels:
        ``levels[i]`` is the tuple of runs at level ``i``.  Level 0 runs
        may overlap (newest last); levels >= 1 are key-disjoint and
        sorted by ``min_key``.
    """

    version: int = 1
    next_file_id: int = 1
    wal_gen: int = 0
    last_flushed_seq: int = 0
    levels: "tuple[tuple[SSTableMeta, ...], ...]" = field(
        default_factory=tuple
    )

    def live_files(self) -> "list[SSTableMeta]":
        return [meta for level in self.levels for meta in level]

    def with_edit(self, **changes) -> "Manifest":
        """The successor version with ``changes`` applied."""
        changes.setdefault("version", self.version + 1)
        return replace(self, **changes)

    def to_payload(self) -> dict:
        return {
            "version": self.version,
            "next_file_id": self.next_file_id,
            "wal_gen": self.wal_gen,
            "last_flushed_seq": self.last_flushed_seq,
            "levels": [
                [meta.to_payload() for meta in level]
                for level in self.levels
            ],
        }

    @classmethod
    def from_payload(cls, p: dict) -> "Manifest":
        return cls(
            version=int(p["version"]),
            next_file_id=int(p["next_file_id"]),
            wal_gen=int(p["wal_gen"]),
            last_flushed_seq=int(p["last_flushed_seq"]),
            levels=tuple(
                tuple(SSTableMeta.from_payload(m) for m in level)
                for level in p["levels"]
            ),
        )


def manifest_path(directory: "str | os.PathLike") -> Path:
    return Path(directory) / MANIFEST_NAME


def commit_manifest(directory: "str | os.PathLike",
                    manifest: Manifest, *, fs=None) -> None:
    """Atomically install ``manifest`` as the store's current version."""
    payload = json.dumps(
        manifest.to_payload(), separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    blob = _MAN_HEADER + _SECTION.pack(len(payload), zlib.crc32(payload))
    atomic_write_bytes(manifest_path(directory), blob + payload, fs=fs)


def read_manifest(directory: "str | os.PathLike", *, fs=None) -> Manifest:
    """The current manifest, CRC-verified; raises typed errors on damage."""
    path = manifest_path(directory)
    try:
        data = resolve(fs).read_bytes(path)
    except FileNotFoundError:
        raise StorageCorruptionError(
            f"{path}: no manifest found",
            path=str(path), reason="no-manifest",
        ) from None
    if len(data) < len(_MAN_HEADER) + _SECTION.size:
        raise StorageCorruptionError(
            f"{path}: {len(data)} byte(s) is too short to be a manifest",
            path=str(path), offset=0, reason="bad-magic",
        )
    if data[: len(_MAN_HEADER)] != _MAN_HEADER:
        raise StorageCorruptionError(
            f"{path}: bad manifest magic/version {data[:8]!r}",
            path=str(path), offset=0, reason="bad-magic",
        )
    length, crc = _SECTION.unpack_from(data, len(_MAN_HEADER))
    payload = data[len(_MAN_HEADER) + _SECTION.size:]
    if length != len(payload) or zlib.crc32(payload) != crc:
        raise StorageCorruptionError(
            f"{path}: manifest payload fails its CRC-32 — the file was "
            "damaged in place (the atomic-swap protocol cannot produce "
            "a torn manifest)",
            path=str(path), offset=len(_MAN_HEADER), reason="bad-crc",
        )
    try:
        return Manifest.from_payload(json.loads(payload))
    except (ValueError, KeyError, TypeError):
        raise StorageCorruptionError(
            f"{path}: manifest payload does not decode",
            path=str(path), offset=len(_MAN_HEADER), reason="bad-payload",
        ) from None


def load_or_init_manifest(directory: "str | os.PathLike", *,
                          fs=None) -> Manifest:
    """Read the manifest, or create version 1 for a genuinely fresh store.

    "Fresh" means no manifest **and** no SSTables: a directory holding
    ``sst-*.sst`` files but no manifest lost its commit record, and
    pretending it is empty would silently drop data — that case raises
    ``reason="no-manifest"`` instead.
    """
    directory = Path(directory)
    try:
        return read_manifest(directory, fs=fs)
    except StorageCorruptionError as exc:
        if exc.reason != "no-manifest":
            raise
        strays = sorted(p.name for p in directory.glob("sst-*.sst"))
        if strays:
            raise StorageCorruptionError(
                f"{directory}: no manifest, but {len(strays)} SSTable "
                f"file(s) exist ({strays[0]}, ...) — refusing to treat "
                "a decapitated store as empty",
                path=str(directory / MANIFEST_NAME), reason="no-manifest",
            ) from None
        fresh = Manifest()
        commit_manifest(directory, fresh, fs=fs)
        return fresh
