"""Scrub-and-repair: find bit rot before a read does.

:func:`run_scrub` re-reads every live SSTable block and WAL generation
against their CRC-32 checksums, so in-place damage (bit flips, torn
sectors from misdirected writes) is found *proactively* instead of at
whatever future read happens to land on the bad block.

A block counts as damaged whether the disk returns wrong bytes (CRC
failure) or no bytes at all (persistent ``EIO`` — retried once, then
recorded with reason ``io-error``): both are unreadable regions, and
both get the same salvage treatment.

For a damaged SSTable the scrubber repairs what redundancy allows:

* intact blocks are **salvaged** into a replacement run (new file id,
  same level, written atomically);
* the damaged file is **quarantined** — moved into ``quarantine/``, out
  of the live tree but preserved for forensics, and the manifest is
  atomically re-pointed at the salvage;
* each unreadable block's key range is classified by shadowing:
  ``shadowed`` when some *shallower* run's range covers it (newer
  versions of those keys exist, so reads in the range still resolve —
  possibly to newer data, never to wrong data), ``degraded`` otherwise
  (keys in the range may now be missing; reads fall through to older
  levels or report absence).

The one thing the scrubber never does is guess: a block that fails its
CRC contributes zero entries, and the loss is reported — detection is
the guarantee, silent repair-by-invention is the anti-goal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.dam.journal import scan_journal
from repro.lsm.disk.sstable import BlockFinding, SSTableReader, write_sstable
from repro.lsm.disk.wal import wal_generations
from repro.obs.hooks import current_obs
from repro.util.errors import JournalCorruptionError, StorageCorruptionError

QUARANTINE_DIR = "quarantine"


@dataclass(frozen=True)
class LostRange:
    """One unreadable region and what its absence means for reads."""

    file: str
    level: int
    first_key: object
    last_key: object
    entries_lost: int
    #: ``shadowed`` | ``degraded`` (see module docstring).
    classification: str


@dataclass
class ScrubReport:
    """Everything one scrub pass found and did."""

    files_checked: int = 0
    blocks_checked: int = 0
    wal_generations_checked: int = 0
    findings: "list[BlockFinding]" = field(default_factory=list)
    quarantined: "list[str]" = field(default_factory=list)
    salvaged_entries: int = 0
    lost: "list[LostRange]" = field(default_factory=list)
    #: newest-generation torn tails are a crash signature, not damage —
    #: noted here, never counted as a finding.
    wal_torn_tail_bytes: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_payload(self) -> dict:
        return {
            "clean": self.clean,
            "files_checked": self.files_checked,
            "blocks_checked": self.blocks_checked,
            "wal_generations_checked": self.wal_generations_checked,
            "findings": [
                {
                    "path": f.path, "block": f.block, "offset": f.offset,
                    "reason": f.reason, "entries_lost": f.entries_lost,
                }
                for f in self.findings
            ],
            "quarantined": list(self.quarantined),
            "salvaged_entries": self.salvaged_entries,
            "lost": [
                {
                    "file": r.file, "level": r.level,
                    "first_key": r.first_key, "last_key": r.last_key,
                    "entries_lost": r.entries_lost,
                    "classification": r.classification,
                }
                for r in self.lost
            ],
            "wal_torn_tail_bytes": self.wal_torn_tail_bytes,
        }


def _classify(store, level: int, first_key, last_key) -> str:
    """Shadowing test for a lost range (see module docstring)."""
    if first_key is None:
        return "degraded"
    for depth in range(level):
        for meta in store.manifest.levels[depth]:
            if (meta.entries and not (first_key < meta.min_key)
                    and not (meta.max_key < last_key)):
                return "shadowed"
    if store.memtable:
        keys = sorted(store.memtable)
        if not (first_key < keys[0]) and not (keys[-1] < last_key):
            return "shadowed"
    return "degraded"


def run_scrub(store, *, repair: bool = True) -> ScrubReport:
    """Verify every live checksum in ``store``; repair if asked.

    ``store`` is an open :class:`~repro.lsm.disk.kvstore.KVStore`.  With
    ``repair=True`` damaged runs are salvaged + quarantined and the
    manifest updated; with ``repair=False`` the pass is read-only (the
    report still lists every finding).
    """
    from repro.lsm.disk.manifest import commit_manifest

    report = ScrubReport()
    obs = current_obs()
    metrics = obs.metrics if obs.enabled else None
    levels = [list(level) for level in store.manifest.levels]
    dirty = False
    for depth, level in enumerate(levels):
        for meta in list(level):
            path = store.directory / meta.name
            report.files_checked += 1
            try:
                reader = SSTableReader(path, fs=store._fs)
            except (StorageCorruptionError, OSError) as exc:
                # Structural damage (or a file the disk will not hand
                # back at all): nothing salvageable through the index —
                # the whole file's range is lost.
                report.findings.append(BlockFinding(
                    path=str(path), block=-1,
                    offset=max(0, getattr(exc, "offset", 0)),
                    reason=getattr(exc, "reason", "") or "io-error",
                    first_key=meta.min_key,
                    last_key=meta.max_key, entries_lost=meta.entries,
                ))
                report.lost.append(LostRange(
                    file=meta.name, level=depth,
                    first_key=meta.min_key, last_key=meta.max_key,
                    entries_lost=meta.entries,
                    classification=_classify(
                        store, depth, meta.min_key, meta.max_key
                    ),
                ))
                if repair:
                    _quarantine(store, path, report)
                    level.remove(meta)
                    store._readers.pop(meta.file_id, None)
                    dirty = True
                continue
            report.blocks_checked += meta.blocks
            good, findings = reader.salvage()
            if not findings:
                continue
            report.findings.extend(findings)
            for f in findings:
                report.lost.append(LostRange(
                    file=meta.name, level=depth,
                    first_key=f.first_key, last_key=f.last_key,
                    entries_lost=f.entries_lost,
                    classification=_classify(
                        store, depth, f.first_key, f.last_key
                    ),
                ))
            if not repair:
                continue
            store._readers.pop(meta.file_id, None)
            if good:
                salvage_meta = write_sstable(
                    store.directory, store.manifest.next_file_id, good,
                    block_entries=store.block_entries, fs=store._fs,
                )
                report.salvaged_entries += len(good)
                store.manifest = store.manifest.with_edit(
                    next_file_id=store.manifest.next_file_id + 1,
                    version=store.manifest.version,  # bumped at commit
                )
                level[level.index(meta)] = salvage_meta
            else:
                level.remove(meta)
            _quarantine(store, path, report)
            dirty = True
    if repair and dirty:
        while len(levels) > 1 and not levels[-1]:
            levels.pop()
        store.manifest = store.manifest.with_edit(
            levels=tuple(tuple(level) for level in levels),
        )
        commit_manifest(store.directory, store.manifest, fs=store._fs)
    # -- WAL generations ------------------------------------------------
    gens = wal_generations(store.directory)
    for i, (gen, path) in enumerate(gens):
        report.wal_generations_checked += 1
        try:
            scan = scan_journal(path, fs=store._fs)
        except (JournalCorruptionError, OSError) as exc:
            report.findings.append(BlockFinding(
                path=str(path), block=-1,
                offset=max(0, getattr(exc, "offset", 0)),
                reason=getattr(exc, "reason", "") or "io-error",
            ))
            continue
        if scan.torn_bytes:
            if i == len(gens) - 1:
                report.wal_torn_tail_bytes += scan.torn_bytes
            else:
                report.findings.append(BlockFinding(
                    path=str(path), block=-1, offset=scan.valid_bytes,
                    reason="wal-mid-chain-tear",
                ))
    if metrics is not None and report.findings:
        metrics.counter(
            "kv_scrub_findings_total", "corruptions found by scrub passes"
        ).inc(len(report.findings))
        io_findings = sum(
            1 for f in report.findings if f.reason == "io-error"
        )
        if io_findings:
            metrics.counter(
                "kv_scrub_io_findings_total",
                "unreadable (persistent-EIO) regions found by scrub",
            ).inc(io_findings)
    return report


def _quarantine(store, path: Path, report: ScrubReport) -> None:
    qdir = store.directory / QUARANTINE_DIR
    qdir.mkdir(exist_ok=True)
    target = qdir / path.name
    path.replace(target)
    report.quarantined.append(path.name)
