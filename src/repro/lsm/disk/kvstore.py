"""The durable KV facade: WAL + memtable + leveled SSTables + manifest.

:class:`KVStore` composes the pieces of :mod:`repro.lsm.disk` into the
engine the serving stack plugs in: ``put``/``delete`` append to the WAL
(generation files, WOJ1-framed) and land in an in-memory memtable; a
full memtable flushes to a level-0 SSTable; leveled compaction is
*scheduled* by a :class:`~repro.lsm.disk.scheduler.DiskCompactionPolicy`
and executed one task per :meth:`maintain` call, so maintenance is
de-amortized exactly like ``LSMTree.maintain(budget=1)`` — a serving
loop is never stalled behind a full compaction cascade.

**The durability protocol.**  Every multi-file transition follows
write-new / commit-manifest / delete-old:

1. new SSTables appear atomically (tmp + fsync + rename) but are
   invisible until referenced;
2. one atomic manifest swap is the commit point;
3. files the new manifest no longer references are deleted *after* the
   swap — a crash between 2 and 3 strands garbage, never state, and the
   next :meth:`open` collects it.

A memtable flush additionally rotates the WAL *between* steps 1 and 2
(new generation opened before the manifest that obsoletes the old one
commits), so there is no interval in which an operation is in neither a
live WAL generation nor a referenced SSTable.  Recovery is therefore a
pure function of the surviving files: manifest -> live SSTables ->
WAL replay (``seq > last_flushed_seq``, contiguity enforced) -> the
exact acknowledged state, or a typed
:class:`~repro.util.errors.StorageCorruptionError` — never silence.

**The degradation policy (live I/O faults).**  Crashes are not the only
fault model: disks return ``EIO``, fill up (``ENOSPC``), and — the
fsyncgate lesson — an ``fsync`` that fails once may have silently
dropped the dirty pages it covered, so retrying it can acknowledge data
that never reached the platter.  The store's responses, mildest first:

* **transient read EIO** — bounded retry with backoff
  (``read_retries`` × ``retry_backoff``), then a typed
  :class:`~repro.util.errors.StorageIOError`; the store stays healthy.
* **any write-path fault** — *fail-stop*: the poisoned memtable/WAL
  generation is discarded (never re-flushed, never re-fsynced) and the
  store re-opens from its last durable state via the normal recovery
  path.  A transient write fault surfaces as ``StorageIOError`` with
  the store healthy again on a fresh generation.
* **ENOSPC or an acknowledgment fsync failure** — additionally enter
  **read-only degraded mode**: every subsequent ``put``/``delete``
  raises a typed :class:`~repro.util.errors.StoreDegradedError`
  (counted in ``rejections``), reads keep working, and every
  ``probe_every``-th rejection triggers :meth:`try_rearm` — a full
  probing re-open that leaves degraded mode automatically once the
  fault has cleared (space returned, controller recovered).

An operation that raises *after* its WAL record was flushed is a ghost
(durable but unacknowledged) — recovery may resurrect it, which is the
safe side of the ledger: acknowledged operations are never lost.
"""

from __future__ import annotations

import errno as _errno
import os
import time
from pathlib import Path

from repro.lsm.disk.manifest import (
    Manifest,
    commit_manifest,
    load_or_init_manifest,
)
from repro.lsm.disk.scheduler import (
    CompactionTask,
    DiskCompactionPolicy,
    HornDensityPolicy,
)
from repro.lsm.disk.sstable import (
    KIND_PUT,
    KIND_TOMBSTONE,
    SSTableMeta,
    SSTableReader,
    sstable_name,
    write_sstable,
)
from repro.lsm.disk.wal import (
    REC_DEL,
    REC_PUT,
    delete_record,
    open_wal,
    put_record,
    replay_wal,
    wal_generations,
    wal_path,
)
from repro.obs.hooks import current_obs
from repro.util.atomic import remove_stale_tmp
from repro.util.errors import (
    InvalidInstanceError,
    StorageError,
    StorageIOError,
    StoreDegradedError,
)
from repro.util.fsio import resolve

#: Degraded-mode reason tags (``StoreDegradedError.reason``).
DEGRADED_ENOSPC = "enospc"
DEGRADED_FSYNC = "fsync-fail"
DEGRADED_IO = "io"


class KVStore:
    """A crash-safe ordered KV store over one directory.

    Parameters
    ----------
    directory:
        The store's home; created if missing.  One store per directory.
    memtable_capacity:
        Operations buffered before an automatic flush to level 0.
    size_ratio:
        Growth factor ``T`` between levels (and the L0 run budget).
    sync:
        ``True`` fsyncs the WAL at every acknowledged operation —
        survives OS crashes.  ``False`` leaves durability at the OS
        page cache (survives process kills, which is the chaos suite's
        fault model) and is ~an order of magnitude faster.
    policy:
        Compaction scheduler; default :class:`HornDensityPolicy`.
    auto_maintain:
        Run one scheduled compaction task after each automatic flush.
    fs:
        Filesystem handle override (``None`` = the ambient handle from
        :mod:`repro.util.fsio`, re-resolved per operation so a fault
        window installed mid-run is seen by live stores).
    read_retries:
        Transient read ``EIO`` retries before the typed error.
    retry_backoff:
        Seconds slept before retry ``n`` is ``retry_backoff * n``
        (``0`` disables sleeping — what the fault suites use).
    probe_every:
        While degraded, every ``probe_every``-th rejected write runs a
        :meth:`try_rearm` probe (``1`` probes on every rejection).
    """

    def __init__(
        self, directory: "str | os.PathLike", *,
        memtable_capacity: int = 256, size_ratio: int = 4,
        sync: bool = True, block_entries: int = 64,
        policy: "DiskCompactionPolicy | None" = None,
        auto_maintain: bool = True,
        fs=None, read_retries: int = 2, retry_backoff: float = 0.01,
        probe_every: int = 8,
    ) -> None:
        if memtable_capacity < 1 or size_ratio < 2:
            raise InvalidInstanceError(
                "need memtable_capacity >= 1 and size_ratio >= 2, got "
                f"{memtable_capacity}, {size_ratio}"
            )
        if read_retries < 0 or retry_backoff < 0 or probe_every < 1:
            raise InvalidInstanceError(
                "need read_retries >= 0, retry_backoff >= 0 and "
                f"probe_every >= 1, got {read_retries}, {retry_backoff}, "
                f"{probe_every}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.memtable_capacity = int(memtable_capacity)
        self.size_ratio = int(size_ratio)
        self.sync = bool(sync)
        self.block_entries = int(block_entries)
        self.policy = policy if policy is not None else HornDensityPolicy()
        self.auto_maintain = bool(auto_maintain)
        self._fs = fs
        self.read_retries = int(read_retries)
        self.retry_backoff = float(retry_backoff)
        self.probe_every = int(probe_every)
        obs = current_obs()
        self._metrics = obs.metrics if obs.enabled else None
        # -- degradation state ------------------------------------------
        self._degraded = ""  # "" = healthy, else a DEGRADED_* reason
        self.rejections = 0
        self.reopens = 0
        #: compaction tasks executed (cumulative; the stability harness
        #: samples this to attribute compaction-caused stall windows).
        self.compactions = 0
        self._wal = None
        self._closed = False
        # -- recovery ---------------------------------------------------
        try:
            self._recover()
        except OSError as exc:
            raise StorageIOError(
                f"{self.directory}: open failed ({exc})",
                op="open",
                path=str(getattr(exc, "filename", "") or self.directory),
                errno=exc.errno or 0,
            ) from exc

    # -- recovery helpers ----------------------------------------------
    def _recover(self) -> None:
        """(Re)build the in-memory state from the durable files.

        Runs at open and after every fail-stop: discard open handles,
        collect crash litter, replay the WAL past the manifest frontier
        and continue writing in a fresh generation.  Raises the
        underlying ``OSError`` if the disk is still faulting — callers
        decide whether that means degraded mode or a typed open error.
        """
        self._discard_wal()
        remove_stale_tmp(self.directory)
        self.manifest = load_or_init_manifest(self.directory, fs=self._fs)
        self._gc_orphans()
        self._readers: "dict[int, SSTableReader]" = {}
        #: key -> (seq, kind, value); replay rebuilds the pre-crash one.
        self.memtable: "dict" = {}
        records, torn = replay_wal(
            self.directory,
            from_gen=self.manifest.wal_gen,
            after_seq=self.manifest.last_flushed_seq,
            fs=self._fs,
        )
        self.recovered_records = len(records)
        self.recovered_torn_bytes = int(torn)
        self._seq = self.manifest.last_flushed_seq
        for rec in records:
            self._seq = int(rec["seq"])
            if rec["type"] == REC_PUT:
                self.memtable[rec["key"]] = (
                    self._seq, KIND_PUT, rec["value"]
                )
            else:
                self.memtable[rec["key"]] = (self._seq, KIND_TOMBSTONE, None)
        # Never append to a replayed generation (JournalWriter truncates
        # at open): writing continues in a fresh generation.  The
        # manifest still points at the old one, so a second crash
        # replays both, in order — contiguity carries across.
        gens = wal_generations(self.directory)
        self._wal_gen = (gens[-1][0] + 1) if gens else self.manifest.wal_gen
        self._wal = open_wal(
            self.directory, self._wal_gen, sync=self.sync, fs=self._fs
        )
        if self._metrics is not None and self.recovered_records:
            self._metrics.counter(
                "kv_recovered_records_total",
                "WAL records replayed into the memtable at open",
            ).inc(self.recovered_records)

    def _discard_wal(self) -> None:
        """Release the WAL handle without flushing (fail-stop rule)."""
        wal, self._wal = self._wal, None
        if wal is not None:
            wal.abort()

    def _gc_orphans(self) -> None:
        """Delete files the manifest does not reference (crash litter)."""
        fsh = resolve(self._fs)
        live = {meta.name for meta in self.manifest.live_files()}
        for path in self.directory.glob("sst-*.sst"):
            if path.name not in live:
                fsh.unlink(path)
        for gen, path in wal_generations(self.directory):
            if gen < self.manifest.wal_gen:
                fsh.unlink(path)

    # -- degradation machinery ------------------------------------------
    @property
    def degraded(self) -> str:
        """``""`` while healthy, else the read-only degraded reason."""
        return self._degraded

    def health(self) -> dict:
        """Degradation snapshot for serving-side breakers."""
        return {
            "degraded": self._degraded,
            "rejections": self.rejections,
            "reopens": self.reopens,
        }

    def _fail_write(self, exc: OSError, op: str) -> None:
        """Fail-stop after a write-path fault: discard and re-open.

        The poisoned memtable/WAL generation is discarded — a failed
        fsync is *never* retried (fsyncgate: the page cache may have
        silently dropped the dirty pages it covered) — and the store
        re-opens from its last durable state.  ``ENOSPC`` and
        acknowledgment fsync failures enter read-only degraded mode;
        other transient faults surface as :class:`StorageIOError` with
        the store healthy again on a fresh WAL generation.
        """
        self._count("kv_io_errors_total", "write-path I/O faults observed")
        path = str(getattr(exc, "filename", "") or self.directory)
        try:
            self._recover()
            recovered = True
        except OSError:
            self._discard_wal()
            recovered = False
        self.reopens += 1
        self._count("kv_io_reopens_total", "fail-stop re-opens after faults")
        if exc.errno == _errno.ENOSPC:
            reason = DEGRADED_ENOSPC
        elif op == "fsync":
            reason = DEGRADED_FSYNC
        elif not recovered:
            reason = DEGRADED_IO
        else:
            raise StorageIOError(
                f"{self.directory}: {op} failed ({exc}); the store "
                "re-opened from its last durable state",
                op=op, path=path, errno=exc.errno or 0,
            ) from exc
        if not self._degraded:
            self._degraded = reason
            self._count(
                "kv_degraded_entries_total",
                "transitions into read-only degraded mode",
            )
        raise StoreDegradedError(
            f"{self.directory}: store is read-only degraded ({reason})",
            reason=reason, path=path, rejections=self.rejections,
        ) from exc

    def try_rearm(self) -> bool:
        """Probe the fault; leave degraded mode if it has cleared.

        The probe is a full re-open: recovery replays the durable
        state, and opening a fresh WAL generation exercises the very
        write (and, with ``sync=True``, fsync) path that failed.
        Called automatically on every ``probe_every``-th rejected
        write; safe to call explicitly at any time.  Returns ``True``
        when the store is healthy afterwards.
        """
        self._require_open()
        if not self._degraded:
            return True
        try:
            self._recover()
        except OSError:
            self._discard_wal()
            return False
        self._degraded = ""
        self._count(
            "kv_rearms_total", "degraded stores re-armed after probes"
        )
        return True

    def _retry_read(self, fn, path):
        """Run ``fn``, retrying transient ``EIO`` ``read_retries`` times.

        Anything still failing raises a typed :class:`StorageIOError`
        carrying the attempt count; non-EIO errors are not retried.
        """
        attempts = 0
        while True:
            try:
                return fn()
            except StorageIOError:
                raise  # already typed by a nested read
            except OSError as exc:
                attempts += 1
                self._count(
                    "kv_io_read_errors_total",
                    "read-path I/O faults observed",
                )
                if exc.errno != _errno.EIO or attempts > self.read_retries:
                    raise StorageIOError(
                        f"{path}: read failed after {attempts} "
                        f"attempt(s) ({exc})",
                        op="read", path=str(path), errno=exc.errno or 0,
                        attempts=attempts,
                    ) from exc
                self._count(
                    "kv_io_read_retries_total",
                    "transient read faults retried",
                )
                if self.retry_backoff:
                    time.sleep(self.retry_backoff * attempts)

    # -- write path -----------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise StorageError(f"{self.directory}: store is closed")

    def _require_writable(self) -> None:
        self._require_open()
        if not self._degraded:
            return
        self.rejections += 1
        self._count(
            "kv_degraded_rejections_total",
            "writes rejected while read-only degraded",
        )
        if self.rejections % self.probe_every == 0 and self.try_rearm():
            return  # the fault cleared; proceed with this write
        raise StoreDegradedError(
            f"{self.directory}: store is read-only degraded "
            f"({self._degraded}); write rejected",
            reason=self._degraded, path=str(self.directory),
            rejections=self.rejections,
        )

    def put(self, key, value) -> int:
        """Write ``key -> value``; returns the operation's sequence number.

        The operation is durable (to the configured ``sync`` level) when
        this returns: WAL first, memtable second.
        """
        self._require_writable()
        self._seq += 1
        try:
            self._wal.append(put_record(self._seq, key, value))
        except OSError as exc:
            self._fail_write(exc, "write")
        try:
            self._wal.flush()
        except OSError as exc:
            self._fail_write(exc, "fsync")
        self._count("kv_wal_appends_total", "WAL records acknowledged")
        self.memtable[key] = (self._seq, KIND_PUT, value)
        self._maybe_flush()
        return self._seq

    def delete(self, key) -> int:
        """Write a tombstone for ``key``; returns its sequence number."""
        self._require_writable()
        self._seq += 1
        try:
            self._wal.append(delete_record(self._seq, key))
        except OSError as exc:
            self._fail_write(exc, "write")
        try:
            self._wal.flush()
        except OSError as exc:
            self._fail_write(exc, "fsync")
        self._count("kv_wal_appends_total", "WAL records acknowledged")
        self.memtable[key] = (self._seq, KIND_TOMBSTONE, None)
        self._maybe_flush()
        return self._seq

    def _maybe_flush(self) -> None:
        if len(self.memtable) < self.memtable_capacity:
            return
        self.flush_memtable()
        if self.auto_maintain:
            self.maintain()

    # -- read path ------------------------------------------------------
    def _reader(self, meta: SSTableMeta) -> SSTableReader:
        reader = self._readers.get(meta.file_id)
        if reader is None:
            path = self.directory / meta.name
            reader = self._retry_read(
                lambda: SSTableReader(path, fs=self._fs), path
            )
            self._readers[meta.file_id] = reader
        return reader

    def get(self, key, default=None):
        """The newest visible value for ``key`` (``default`` if absent
        or tombstoned).

        Reads keep working in degraded mode; transient ``EIO`` is
        retried ``read_retries`` times before the typed error.
        """
        self._require_open()
        hit = self.memtable.get(key)
        if hit is not None:
            _seq, kind, value = hit
            return value if kind == KIND_PUT else default
        for depth, level in enumerate(self.manifest.levels):
            best = None
            for meta in level:
                if meta.entries == 0 or not meta.overlaps_range(key, key):
                    continue
                found = self._retry_read(
                    lambda m=meta: self._reader(m).get(key),
                    self.directory / meta.name,
                )
                if found is not None and (best is None or found[0] > best[0]):
                    best = found
                if depth > 0:
                    # Levels >= 1 are key-disjoint: one run can hold key.
                    break
            if best is not None:
                _seq, kind, value = best
                return value if kind == KIND_PUT else default
        return default

    def items(self) -> "list[tuple]":
        """Every visible ``(key, value)`` pair, sorted by key.

        Full-scan semantics (newest sequence wins, tombstones hidden) —
        the differential oracle against the in-memory model.
        """
        self._require_open()
        newest: "dict" = {}
        for level in self.manifest.levels:
            for meta in level:
                rows = self._retry_read(
                    lambda m=meta: list(self._reader(m).iter_entries()),
                    self.directory / meta.name,
                )
                for k, seq, kind, value in rows:
                    cur = newest.get(k)
                    if cur is None or seq > cur[0]:
                        newest[k] = (seq, kind, value)
        for k, row in self.memtable.items():
            cur = newest.get(k)
            if cur is None or row[0] > cur[0]:
                newest[k] = row
        return sorted(
            (k, v) for k, (_s, kind, v) in newest.items()
            if kind == KIND_PUT
        )

    # -- flush and compaction -------------------------------------------
    def flush_memtable(self) -> "SSTableMeta | None":
        """Seal the memtable into a level-0 SSTable (None if empty).

        A fault anywhere in the protocol fail-stops: the store re-opens
        from the last committed manifest (acknowledged operations
        replay from their WAL generation) and a typed error surfaces.
        """
        self._require_writable()
        if not self.memtable:
            return None
        try:
            return self._flush_protocol()
        except OSError as exc:
            self._fail_write(exc, "flush")

    def _flush_protocol(self) -> SSTableMeta:
        entries = [
            (k, seq, kind, value)
            for k, (seq, kind, value) in sorted(self.memtable.items())
        ]
        meta = write_sstable(
            self.directory, self.manifest.next_file_id, entries,
            block_entries=self.block_entries, fs=self._fs,
        )
        # Rotate the WAL *before* the commit that obsoletes the old
        # generation: there is never an instant with no live home for
        # an acknowledged operation.
        self._wal.close()
        self._wal_gen += 1
        self._wal = open_wal(
            self.directory, self._wal_gen, sync=self.sync, fs=self._fs
        )
        levels = list(self.manifest.levels) or [()]
        levels[0] = levels[0] + (meta,)
        self.manifest = self.manifest.with_edit(
            next_file_id=self.manifest.next_file_id + 1,
            wal_gen=self._wal_gen,
            last_flushed_seq=self._seq,
            levels=tuple(levels),
        )
        commit_manifest(self.directory, self.manifest, fs=self._fs)
        fsh = resolve(self._fs)
        for gen, path in wal_generations(self.directory):
            if gen < self._wal_gen:
                fsh.unlink(path)
        self.memtable = {}
        self._count("kv_flushes_total", "memtable flushes to level 0")
        return meta

    def maintain(self, budget: int = 1) -> "list[CompactionTask]":
        """Run up to ``budget`` scheduled compaction tasks; returns them.

        A fault mid-compaction fail-stops exactly like a flush fault:
        outputs not yet committed by the manifest are garbage the
        re-open collects, never state.
        """
        self._require_open()
        done: "list[CompactionTask]" = []
        for _ in range(max(0, budget)):
            task = self.policy.choose(
                self.manifest,
                memtable_capacity=self.memtable_capacity,
                size_ratio=self.size_ratio,
            )
            if task is None:
                break
            try:
                self._execute(task)
            except OSError as exc:
                self._fail_write(exc, "compact")
            done.append(task)
            self.compactions += 1
            self._count(
                f"kv_compactions_{task.regime}_total",
                "compaction tasks by scheduling regime",
            )
        return done

    def drain_backlog(self, limit: int = 1000) -> int:
        """Compact until the scheduler is satisfied; returns task count."""
        total = 0
        while total < limit:
            if not self.maintain():
                break
            total += 1
        return total

    def _execute(self, task: CompactionTask) -> None:
        level = task.level
        levels = list(self.manifest.levels)
        chosen = {fid for fid in task.file_ids}
        srcs = [m for m in levels[level] if m.file_id in chosen]
        if len(srcs) != len(chosen):
            raise StorageError(
                f"compaction task names stale file ids {sorted(chosen)} "
                f"at level {level}"
            )
        below = levels[level + 1] if level + 1 < len(levels) else ()
        merged_below = [
            m for m in below if any(s.overlaps(m) for s in srcs)
        ]
        # Newest sequence wins per key across every input run.
        newest: "dict" = {}
        for meta in [*srcs, *merged_below]:
            rows = self._retry_read(
                lambda m=meta: list(self._reader(m).iter_entries()),
                self.directory / meta.name,
            )
            for k, seq, kind, value in rows:
                cur = newest.get(k)
                if cur is None or seq > cur[0]:
                    newest[k] = (seq, kind, value)
        target = level + 1
        # Tombstones retire only at the bottom: nothing deeper exists
        # for them to shadow, so dropping them cannot resurrect a key.
        lands_bottom = target >= len(levels) - 1
        rows = [
            (k, seq, kind, value)
            for k, (seq, kind, value) in sorted(newest.items())
            if not (lands_bottom and kind == KIND_TOMBSTONE)
        ]
        if self._metrics is not None and lands_bottom:
            retired = sum(
                1 for _k, (_s, kind, _v) in newest.items()
                if kind == KIND_TOMBSTONE
            )
            if retired:
                self._metrics.counter(
                    "kv_obligations_retired_total",
                    "tombstones finished at the bottom level",
                ).inc(retired)
        # Partitioned output keeps downstream merges incremental.
        run_entries = self.memtable_capacity * self.size_ratio
        out_metas: "list[SSTableMeta]" = []
        next_id = self.manifest.next_file_id
        for start in range(0, len(rows), run_entries):
            out_metas.append(write_sstable(
                self.directory, next_id, rows[start:start + run_entries],
                block_entries=self.block_entries, fs=self._fs,
            ))
            next_id += 1
        merged_ids = chosen | {m.file_id for m in merged_below}
        levels[level] = tuple(
            m for m in levels[level] if m.file_id not in chosen
        )
        while len(levels) <= target:
            levels.append(())
        survivors = [m for m in levels[target] if m.file_id not in merged_ids]
        levels[target] = tuple(sorted(
            [*survivors, *out_metas],
            key=lambda m: (m.min_key, m.file_id),
        ))
        while len(levels) > 1 and not levels[-1]:
            levels.pop()
        self.manifest = self.manifest.with_edit(
            next_file_id=next_id, levels=tuple(levels),
        )
        commit_manifest(self.directory, self.manifest, fs=self._fs)
        fsh = resolve(self._fs)
        for meta in [*srcs, *merged_below]:
            self._readers.pop(meta.file_id, None)
            fsh.unlink(self.directory / meta.name)

    # -- lifecycle ------------------------------------------------------
    def sync_wal(self) -> None:
        """Force the WAL to the configured durability level now."""
        self._require_open()
        if self._wal is None:
            return  # degraded with no live generation: nothing to sync
        try:
            self._wal.flush()
        except OSError as exc:
            self._fail_write(exc, "fsync")

    def close(self) -> None:
        """Flush the WAL and release file handles (state stays on disk)."""
        if self._closed:
            return
        wal, self._wal = self._wal, None
        if wal is not None:
            try:
                wal.close()
            except OSError:
                # Fail-stop even on the way out: the flush's records
                # were never acknowledged, so a torn tail is legal.
                wal.abort()
        self._readers.clear()
        self._closed = True

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection ---------------------------------------------------
    def _sstable_bytes(self, name: str) -> int:
        try:
            return (self.directory / name).stat().st_size
        except OSError:
            return 0

    def stats(self) -> dict:
        """A JSON-friendly snapshot for ``kv stats`` and benchmarks."""
        return {
            "directory": str(self.directory),
            "seq": self._seq,
            "memtable": len(self.memtable),
            "manifest_version": self.manifest.version,
            "wal_gen": self._wal_gen,
            "last_flushed_seq": self.manifest.last_flushed_seq,
            "levels": [
                {
                    "runs": len(level),
                    "entries": sum(m.entries for m in level),
                    "tombstones": sum(m.tombstones for m in level),
                    # On-disk footprint of the level's SSTables; a run
                    # whose file vanished underneath us (scrub moved it
                    # to quarantine) counts 0 rather than failing stats.
                    "bytes": sum(
                        self._sstable_bytes(m.name) for m in level
                    ),
                }
                for level in self.manifest.levels
            ],
            "recovered_records": self.recovered_records,
            "recovered_torn_bytes": self.recovered_torn_bytes,
            "compactions": self.compactions,
            "degraded": self._degraded,
            "rejections": self.rejections,
            "io_reopens": self.reopens,
        }

    def check_invariants(self) -> None:
        """Structural self-audit; raises :class:`StorageError` on drift.

        Mirrors ``LSMTree.check_invariants``: levels >= 1 key-disjoint
        and sorted, every referenced file present, no sequence above the
        WAL frontier recorded as flushed.
        """
        seen: "set[int]" = set()
        for depth, level in enumerate(self.manifest.levels):
            for meta in level:
                if meta.file_id in seen:
                    raise StorageError(
                        f"file id {meta.file_id} referenced twice"
                    )
                seen.add(meta.file_id)
                if not (self.directory / meta.name).exists():
                    raise StorageError(
                        f"manifest references missing file {meta.name}"
                    )
                if meta.file_id >= self.manifest.next_file_id:
                    raise StorageError(
                        f"file id {meta.file_id} >= next_file_id "
                        f"{self.manifest.next_file_id}"
                    )
            if depth >= 1:
                for a, b in zip(level, level[1:]):
                    if not a.max_key < b.min_key:
                        raise StorageError(
                            f"level {depth} runs {a.name} and {b.name} "
                            "overlap or are out of order"
                        )
        if self.manifest.last_flushed_seq > self._seq:
            raise StorageError(
                f"flushed seq {self.manifest.last_flushed_seq} is ahead "
                f"of the operation counter {self._seq}"
            )

    def _count(self, name: str, help: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name, help).inc()
