"""On-disk SSTable format: checksummed blocks, bloom filter, sparse index.

An SSTable file is an immutable sorted run, written once through
:func:`repro.util.atomic.atomic_write_bytes` (tmp + fsync + rename) so
it exists either completely or not at all — a half-written run is
impossible by construction, which is why SSTable creation needs no
torn-tail rule of its own.  The threats that remain are *in-place*
damage (bit rot, misdirected writes), and every region of the file is
independently CRC-32 checksummed so damage is detected at read time,
localized to a block, and surfaced as a typed
:class:`~repro.util.errors.StorageCorruptionError` — never a silently
wrong value.

File layout::

    header   b"WSST" + u32 version                          (8 bytes)
    blocks   repeat: u32 len | u32 CRC-32 | payload         (JSON entries)
    bloom    u32 len | u32 CRC-32 | payload                 (JSON filter)
    index    u32 len | u32 CRC-32 | payload                 (JSON block map)
    footer   u64 bloom_off | u64 index_off | u64 n_entries
             | u32 CRC-32 of the previous 24 bytes | b"TSSW" (32 bytes)

A block payload is a JSON list of ``[key, seq, kind, value]`` rows
(``kind``: 0 = put, 1 = tombstone), sorted by key, unique keys per file.
The index maps each block to ``[offset, length, n, first_key,
last_key]``; a point read touches the footer, index, bloom, and exactly
one data block.  The bloom filter (double hashing over two CRC-32
streams) makes a negative probe cost zero block reads — the read/write
asymmetry the paper's model charges for, now in real bytes.
"""

from __future__ import annotations

import errno as _errno
import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.util.atomic import atomic_write_bytes
from repro.util.errors import InvalidInstanceError, StorageCorruptionError
from repro.util.fsio import resolve

SST_MAGIC = b"WSST"
SST_VERSION = 1
_SST_HEADER = SST_MAGIC + struct.pack("<I", SST_VERSION)
_SECTION = struct.Struct("<II")  # payload length, CRC-32
_FOOTER = struct.Struct("<QQQI4s")  # bloom_off, index_off, n_entries, crc, magic
FOOTER_MAGIC = b"TSSW"

#: entry kinds on disk.
KIND_PUT = 0
KIND_TOMBSTONE = 1


def _key_bytes(key) -> bytes:
    return json.dumps(key, separators=(",", ":")).encode("utf-8")


class BloomFilter:
    """A classic m-bit, k-hash bloom filter over JSON-encoded keys.

    Double hashing from two seeded CRC-32 streams: cheap, stdlib-only,
    and deterministic across processes (no ``PYTHONHASHSEED`` exposure).
    """

    def __init__(self, m_bits: int, k_hashes: int,
                 bits: "bytearray | None" = None) -> None:
        if m_bits < 8 or k_hashes < 1:
            raise InvalidInstanceError(
                f"bloom needs m_bits >= 8, k_hashes >= 1, got "
                f"{m_bits}, {k_hashes}"
            )
        self.m = int(m_bits)
        self.k = int(k_hashes)
        self.bits = bits if bits is not None else bytearray(-(-self.m // 8))

    @classmethod
    def for_entries(cls, n: int, bits_per_key: int = 10) -> "BloomFilter":
        m = max(64, n * bits_per_key)
        k = max(1, min(16, round(0.6931 * m / max(1, n))))
        return cls(m, k)

    def _positions(self, key) -> "list[int]":
        kb = _key_bytes(key)
        h1 = zlib.crc32(kb)
        h2 = zlib.crc32(kb, 0x9747B28C) | 1
        return [(h1 + i * h2) % self.m for i in range(self.k)]

    def add(self, key) -> None:
        for pos in self._positions(key):
            self.bits[pos >> 3] |= 1 << (pos & 7)

    def __contains__(self, key) -> bool:
        return all(
            self.bits[pos >> 3] & (1 << (pos & 7))
            for pos in self._positions(key)
        )

    def to_payload(self) -> dict:
        return {"m": self.m, "k": self.k, "bits": bytes(self.bits).hex()}

    @classmethod
    def from_payload(cls, payload: dict) -> "BloomFilter":
        return cls(int(payload["m"]), int(payload["k"]),
                   bytearray.fromhex(payload["bits"]))


@dataclass(frozen=True)
class SSTableMeta:
    """What the manifest records about one SSTable file."""

    name: str
    file_id: int
    entries: int
    tombstones: int
    min_key: object
    max_key: object
    min_seq: int
    max_seq: int
    blocks: int

    def to_payload(self) -> dict:
        return {
            "name": self.name, "id": self.file_id,
            "entries": self.entries, "tombstones": self.tombstones,
            "min_key": self.min_key, "max_key": self.max_key,
            "min_seq": self.min_seq, "max_seq": self.max_seq,
            "blocks": self.blocks,
        }

    @classmethod
    def from_payload(cls, p: dict) -> "SSTableMeta":
        return cls(
            name=str(p["name"]), file_id=int(p["id"]),
            entries=int(p["entries"]), tombstones=int(p["tombstones"]),
            min_key=p["min_key"], max_key=p["max_key"],
            min_seq=int(p["min_seq"]), max_seq=int(p["max_seq"]),
            blocks=int(p["blocks"]),
        )

    def overlaps(self, other: "SSTableMeta") -> bool:
        """True iff the key ranges of the two files intersect."""
        if self.entries == 0 or other.entries == 0:
            return False
        return not (
            self.max_key < other.min_key or other.max_key < self.min_key
        )

    def overlaps_range(self, lo, hi) -> bool:
        if self.entries == 0:
            return False
        return not (self.max_key < lo or hi < self.min_key)


def _section(payload: bytes) -> bytes:
    return _SECTION.pack(len(payload), zlib.crc32(payload)) + payload


def sstable_name(file_id: int) -> str:
    """Canonical file name for SSTable ``file_id``."""
    return f"sst-{file_id:06d}.sst"


def write_sstable(
    directory: "str | os.PathLike", file_id: int,
    entries: "list[tuple]", *,
    block_entries: int = 64, bloom_bits_per_key: int = 10,
    fs=None,
) -> SSTableMeta:
    """Write ``entries`` as SSTable ``file_id``; returns its manifest meta.

    ``entries`` are ``(key, seq, kind, value)`` rows sorted strictly by
    key (unique keys — the caller merges versions before writing).  The
    file appears atomically; a kill at any byte of the write leaves no
    trace under the final name.
    """
    if block_entries < 1:
        raise InvalidInstanceError(
            f"block_entries must be >= 1, got {block_entries}"
        )
    keys = [e[0] for e in entries]
    if any(not keys[i] < keys[i + 1] for i in range(len(keys) - 1)):
        raise InvalidInstanceError(
            "SSTable entries must be strictly sorted by key"
        )
    bloom = BloomFilter.for_entries(len(entries), bloom_bits_per_key)
    blob = bytearray(_SST_HEADER)
    index: "list[list]" = []
    for start in range(0, len(entries), block_entries):
        piece = entries[start:start + block_entries]
        payload = json.dumps(
            [[k, int(s), int(kd), v] for k, s, kd, v in piece],
            separators=(",", ":"),
        ).encode("utf-8")
        offset = len(blob)
        blob += _section(payload)
        index.append(
            [offset, len(blob) - offset, len(piece),
             piece[0][0], piece[-1][0]]
        )
        for k, _s, _kd, _v in piece:
            bloom.add(k)
    bloom_off = len(blob)
    blob += _section(
        json.dumps(bloom.to_payload(), separators=(",", ":")).encode("utf-8")
    )
    index_off = len(blob)
    blob += _section(
        json.dumps({"blocks": index}, separators=(",", ":")).encode("utf-8")
    )
    packed = struct.pack("<QQQ", bloom_off, index_off, len(entries))
    blob += packed + struct.pack("<I", zlib.crc32(packed)) + FOOTER_MAGIC
    name = sstable_name(file_id)
    atomic_write_bytes(Path(directory) / name, bytes(blob), fs=fs)
    seqs = [int(e[1]) for e in entries]
    return SSTableMeta(
        name=name, file_id=int(file_id),
        entries=len(entries),
        tombstones=sum(1 for e in entries if e[2] == KIND_TOMBSTONE),
        min_key=entries[0][0] if entries else None,
        max_key=entries[-1][0] if entries else None,
        min_seq=min(seqs) if seqs else 0,
        max_seq=max(seqs) if seqs else 0,
        blocks=len(index),
    )


@dataclass(frozen=True)
class BlockFinding:
    """One damaged region a verify pass located."""

    path: str
    #: block index (-1: the failure is structural — footer/index/bloom).
    block: int
    offset: int
    reason: str
    #: key range the damage covers (from the index; None if unknown).
    first_key: object = None
    last_key: object = None
    #: entries the damaged region held (0 if unknown).
    entries_lost: int = 0


class SSTableReader:
    """Random access over one SSTable file, verifying CRCs as it reads.

    The footer, index, and bloom filter are read and verified once at
    open; data blocks are read from disk per probe and verified each
    time (bit rot between scrubs must never return a wrong value).
    Structural damage raises :class:`StorageCorruptionError` at open;
    block damage raises at the probe that touches the block.
    """

    def __init__(self, path: "str | os.PathLike", *, fs=None) -> None:
        self.path = Path(path)
        self._fs = fs
        data = resolve(fs).read_bytes(self.path)
        self._size = len(data)
        if len(data) < len(_SST_HEADER) + _FOOTER.size:
            raise StorageCorruptionError(
                f"{self.path}: {len(data)} byte(s) is too short to be an "
                "SSTable",
                path=str(self.path), offset=0, reason="bad-footer",
            )
        if data[: len(_SST_HEADER)] != _SST_HEADER:
            raise StorageCorruptionError(
                f"{self.path}: bad SSTable header {data[:8]!r}",
                path=str(self.path), offset=0, reason="bad-magic",
            )
        foot = data[-_FOOTER.size:]
        bloom_off, index_off, n_entries, crc, magic = _FOOTER.unpack(foot)
        if magic != FOOTER_MAGIC or zlib.crc32(foot[:24]) != crc:
            raise StorageCorruptionError(
                f"{self.path}: SSTable footer fails its checksum",
                path=str(self.path), offset=self._size - _FOOTER.size,
                reason="bad-footer",
            )
        self.n_entries = int(n_entries)
        index_payload = self._read_section(data, index_off, "bad-index")
        try:
            self._index = json.loads(index_payload)["blocks"]
        except (ValueError, KeyError, TypeError):
            raise StorageCorruptionError(
                f"{self.path}: SSTable index does not decode",
                path=str(self.path), offset=index_off, reason="bad-index",
            ) from None
        bloom_payload = self._read_section(data, bloom_off, "bad-bloom")
        try:
            self._bloom = BloomFilter.from_payload(json.loads(bloom_payload))
        except (ValueError, KeyError, TypeError):
            raise StorageCorruptionError(
                f"{self.path}: SSTable bloom filter does not decode",
                path=str(self.path), offset=bloom_off, reason="bad-bloom",
            ) from None
        #: data block reads this reader performed (bloom effectiveness).
        self.block_reads = 0

    def _read_section(self, data: bytes, offset: int, reason: str) -> bytes:
        if not (len(_SST_HEADER) <= offset <= len(data) - _SECTION.size):
            raise StorageCorruptionError(
                f"{self.path}: section offset {offset} outside file",
                path=str(self.path), offset=offset, reason=reason,
            )
        length, crc = _SECTION.unpack_from(data, offset)
        end = offset + _SECTION.size + length
        if end > len(data):
            raise StorageCorruptionError(
                f"{self.path}: section at {offset} extends past end of file",
                path=str(self.path), offset=offset, reason=reason,
            )
        payload = data[offset + _SECTION.size:end]
        if zlib.crc32(payload) != crc:
            raise StorageCorruptionError(
                f"{self.path}: section at byte {offset} fails its CRC-32",
                path=str(self.path), offset=offset, reason=reason,
            )
        return payload

    def may_contain(self, key) -> bool:
        """Bloom probe: False means definitely absent (no block read)."""
        return key in self._bloom

    def _read_block(self, i: int) -> "list[list]":
        offset, length, _n, _fk, _lk = self._index[i]
        fsh = resolve(self._fs)
        with fsh.open(self.path, "rb") as f:
            f.seek(offset)
            data = fsh.read(f, length)
        self.block_reads += 1
        if len(data) != length:
            raise StorageCorruptionError(
                f"{self.path}: block {i} at byte {offset} is truncated",
                path=str(self.path), offset=offset, reason="bad-block",
            )
        length_field, crc = _SECTION.unpack_from(data, 0)
        payload = data[_SECTION.size:]
        if length_field != len(payload) or zlib.crc32(payload) != crc:
            raise StorageCorruptionError(
                f"{self.path}: block {i} at byte {offset} fails its "
                "CRC-32 — quarantine and scrub this run",
                path=str(self.path), offset=offset, reason="bad-block",
            )
        try:
            rows = json.loads(payload)
        except ValueError:
            raise StorageCorruptionError(
                f"{self.path}: block {i} at byte {offset} does not decode",
                path=str(self.path), offset=offset, reason="bad-block",
            ) from None
        return rows

    def get(self, key) -> "tuple[int, int, object] | None":
        """Point probe: ``(seq, kind, value)`` or None if absent."""
        if not self._index or not self.may_contain(key):
            return None
        lo, hi = 0, len(self._index) - 1
        found = -1
        while lo <= hi:
            mid = (lo + hi) // 2
            _o, _l, _n, first, last = self._index[mid]
            if key < first:
                hi = mid - 1
            elif key > last:
                lo = mid + 1
            else:
                found = mid
                break
        if found < 0:
            return None
        for k, seq, kind, value in self._read_block(found):
            if k == key:
                return int(seq), int(kind), value
        return None

    def iter_entries(self):
        """All ``(key, seq, kind, value)`` rows in key order (verified)."""
        for i in range(len(self._index)):
            for k, seq, kind, value in self._read_block(i):
                yield k, int(seq), int(kind), value

    def _scrub_block(self, i: int, *, retries: int = 1) -> "list[list]":
        """Read block ``i`` for a scrub pass, retrying transient ``EIO``.

        A fault that persists past ``retries`` attempts propagates to
        the caller, which records the block as unreadable (reason
        ``io-error``) — scrub treats a block the disk will not return
        exactly like one that fails its CRC: salvage around it.
        """
        attempt = 0
        while True:
            try:
                return self._read_block(i)
            except OSError as exc:
                if exc.errno != _errno.EIO or attempt >= retries:
                    raise
                attempt += 1

    def verify(self) -> "list[BlockFinding]":
        """Scrub every data block; returns findings (empty = clean).

        A finding is a block that fails its CRC, does not decode, *or*
        cannot be read at all (persistent ``EIO`` -> ``io-error``).
        """
        findings: "list[BlockFinding]" = []
        for i, (offset, _length, n, first, last) in enumerate(self._index):
            try:
                self._scrub_block(i)
            except (StorageCorruptionError, OSError) as exc:
                findings.append(BlockFinding(
                    path=str(self.path), block=i, offset=offset,
                    reason=getattr(exc, "reason", "") or "io-error",
                    first_key=first, last_key=last,
                    entries_lost=int(n),
                ))
        return findings

    def salvage(self) -> "tuple[list[tuple], list[BlockFinding]]":
        """Entries from intact blocks plus findings for the damaged ones."""
        good: "list[tuple]" = []
        findings: "list[BlockFinding]" = []
        for i, (offset, _length, n, first, last) in enumerate(self._index):
            try:
                rows = self._scrub_block(i)
            except (StorageCorruptionError, OSError) as exc:
                findings.append(BlockFinding(
                    path=str(self.path), block=i, offset=offset,
                    reason=getattr(exc, "reason", "") or "io-error",
                    first_key=first, last_key=last,
                    entries_lost=int(n),
                ))
                continue
            good.extend(
                (k, int(s), int(kd), v) for k, s, kd, v in rows
            )
        return good, findings
