"""Write-ahead log for the on-disk KV engine.

A WAL generation *is* a ``WOJ1`` journal — same 8-byte header, same
``u32 length | u32 CRC-32 | JSON payload`` record framing, written
through the very :class:`~repro.dam.journal.JournalWriter` the execution
journals use — so every property PRs 2–6 established for journals
(torn-tail tolerance, kill-at-every-offset exactness, typed corruption
errors) is inherited rather than re-proven.

**Generations instead of segments.**  Where a serving journal rotates by
size, the WAL rotates at *memtable flushes*: generation ``g`` holds
exactly the operations that arrived while memtable ``g`` was filling.
Files are named ``wal-<g>.log``.  A flush seals the current generation,
opens ``g+1``, and then commits a manifest pointing at ``g+1`` — after
which every record in generations ``< g+1`` is redundant with SSTable
bytes and the files are garbage.  (:class:`~repro.lsm.disk.kvstore
.KVStore` deletes them on the next open; a crash between commit and
deletion is therefore invisible.)

**Recovery rules.**  Replay reads generations ``>= manifest.wal_gen`` in
order and applies records with ``seq > manifest.last_flushed_seq``:

* only the **newest** generation may end torn (the crash signature);
  a tear in any earlier generation is corruption, because a generation
  is flushed and closed before its successor opens — the same sealing
  argument as journal segment chains;
* applied sequence numbers must be **contiguous** from
  ``last_flushed_seq + 1``: operations are assigned consecutive
  sequence numbers at the door, so a gap is evidence of a silently
  lost record and raises a typed
  :class:`~repro.util.errors.StorageCorruptionError` — never a silently
  smaller store.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

from repro.dam.journal import (
    JournalWriter,
    REC_META,
    scan_journal,
)
from repro.util.errors import StorageCorruptionError
from repro.util.fsio import resolve

#: WAL record types (alongside the journal's own ``meta``).
REC_PUT = "put"
REC_DEL = "del"

#: meta "policy" tag distinguishing KV WALs from execution journals.
WAL_POLICY = "kv-wal"

_WAL_NAME = re.compile(r"^wal-(\d{6})\.log$")


def wal_path(directory: "str | os.PathLike", gen: int) -> Path:
    """The file holding WAL generation ``gen``."""
    return Path(directory) / f"wal-{gen:06d}.log"


def wal_generations(directory: "str | os.PathLike") -> "list[tuple[int, Path]]":
    """All WAL generation files in ``directory``, ``(gen, path)`` sorted."""
    found = []
    for entry in Path(directory).iterdir():
        m = _WAL_NAME.match(entry.name)
        if m:
            found.append((int(m.group(1)), entry))
    return sorted(found)


def put_record(seq: int, key, value) -> dict:
    """The WAL record for one put."""
    return {"type": REC_PUT, "seq": int(seq), "key": key, "value": value}


def delete_record(seq: int, key) -> dict:
    """The WAL record for one tombstone delete."""
    return {"type": REC_DEL, "seq": int(seq), "key": key}


def open_wal(
    directory: "str | os.PathLike", gen: int, *, sync: bool = True,
    fs=None,
) -> JournalWriter:
    """Open (create) WAL generation ``gen`` for appending.

    The returned writer is a plain :class:`JournalWriter`; callers
    append :func:`put_record` / :func:`delete_record` payloads and flush
    at their acknowledgment points.  ``fs`` overrides the filesystem
    handle (fault-injection seam; see :mod:`repro.util.fsio`).
    """
    return JournalWriter(
        wal_path(directory, gen),
        meta={"policy": WAL_POLICY, "gen": int(gen)},
        sync=sync,
        fs=fs,
    )


def replay_wal(
    directory: "str | os.PathLike", *,
    from_gen: int, after_seq: int, repair: bool = True, fs=None,
) -> "tuple[list[dict], int]":
    """Replay generations ``>= from_gen``; returns ``(records, torn_bytes)``.

    ``records`` are the put/del payloads with ``seq > after_seq``, in
    sequence order, already checked for the contiguity rule.  With
    ``repair=True`` a torn tail on the newest generation is truncated
    away in place (older stale generations are left for the store's GC).
    Raises :class:`StorageCorruptionError` on a torn non-final
    generation or a sequence gap; record-level corruption propagates as
    the scanner's own :class:`~repro.util.errors.JournalCorruptionError`
    (a WAL generation *is* a journal).
    """
    fsh = resolve(fs)
    gens = [(g, p) for g, p in wal_generations(directory) if g >= from_gen]
    torn_total = 0
    applied: "list[dict]" = []
    expected = int(after_seq) + 1
    for i, (gen, path) in enumerate(gens):
        scan = scan_journal(path, fs=fsh)
        last = i == len(gens) - 1
        if scan.torn_bytes and not last:
            raise StorageCorruptionError(
                f"{path}: WAL generation {gen} ends torn "
                f"({scan.torn_reason}) but generation "
                f"{gens[i + 1][0]} exists — generations are sealed "
                "before their successor opens, so this is corruption",
                path=str(path), offset=scan.valid_bytes,
                reason="wal-mid-chain-tear",
            )
        if scan.torn_bytes and last and repair:
            with fsh.open(path, "r+b") as f:
                fsh.truncate(f, scan.tail_valid_bytes)
        torn_total += scan.torn_bytes
        for rec in scan.records:
            if rec["type"] == REC_META:
                continue
            if rec["type"] not in (REC_PUT, REC_DEL):
                raise StorageCorruptionError(
                    f"{path}: unknown WAL record type {rec['type']!r}",
                    path=str(path), reason="bad-payload",
                )
            seq = int(rec["seq"])
            if seq <= after_seq:
                continue  # already durable in SSTables
            if seq != expected:
                raise StorageCorruptionError(
                    f"{path}: WAL sequence jumps to {seq}, expected "
                    f"{expected} — a record was lost without a trace",
                    path=str(path), reason="seq-gap",
                )
            expected += 1
            applied.append(rec)
    return applied, torn_total
