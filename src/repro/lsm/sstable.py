"""Immutable sorted runs (SSTables) and their entries.

An entry is the LSM analogue of a B^epsilon-tree message: a put, a
tombstone, a *secure* tombstone (must reach the bottom level before the
delete "takes effect" physically), or a deferred-query marker.  Entries
carry a global sequence number; higher sequence shadows lower for the
same key.
"""

from __future__ import annotations

import enum
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Iterator

from repro.util.errors import InvalidInstanceError


class EntryKind(enum.Enum):
    """What an SSTable entry encodes."""

    PUT = "put"
    TOMBSTONE = "tombstone"
    SECURE_TOMBSTONE = "secure_tombstone"
    DEFERRED_QUERY = "deferred_query"

    @property
    def is_root_to_leaf(self) -> bool:
        """True iff the entry only completes at the bottom level."""
        return self in (EntryKind.SECURE_TOMBSTONE, EntryKind.DEFERRED_QUERY)


@dataclass(frozen=True, slots=True)
class Entry:
    """One key's record inside a run.

    ``seq`` orders versions globally (assigned by the tree); ``op_id``
    identifies the originating root-to-leaf operation, if any.
    """

    key: Any
    seq: int
    kind: EntryKind
    value: Any = None
    op_id: int = -1

    def shadows(self, other: "Entry") -> bool:
        """True iff this entry supersedes ``other`` for the same key."""
        return self.key == other.key and self.seq > other.seq


@dataclass(frozen=True)
class SSTable:
    """An immutable run of entries sorted by key (unique keys per run)."""

    entries: tuple[Entry, ...]
    #: riders: root-to-leaf markers carried alongside the main entries
    #: (several markers can exist for one key; they never shadow data).
    riders: tuple[Entry, ...] = ()

    def __post_init__(self) -> None:
        keys = [e.key for e in self.entries]
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise InvalidInstanceError(
                "SSTable entries must be strictly sorted by key"
            )

    @property
    def size(self) -> int:
        """Number of entries (riders included) — the run's IO weight."""
        return len(self.entries) + len(self.riders)

    @property
    def min_key(self) -> Any:
        """Smallest key across entries and riders (None for empty runs)."""
        keys = [e.key for e in self.iter_all()]
        return min(keys) if keys else None

    @property
    def max_key(self) -> Any:
        """Largest key across entries and riders (None for empty runs)."""
        keys = [e.key for e in self.iter_all()]
        return max(keys) if keys else None

    def get(self, key: Any) -> "Entry | None":
        """Binary-search the run for ``key``."""
        keys = [e.key for e in self.entries]
        i = bisect_left(keys, key)
        if i < len(keys) and keys[i] == key:
            return self.entries[i]
        return None

    def overlaps(self, other: "SSTable") -> bool:
        """True iff the key ranges of the two runs intersect."""
        if self.size == 0 or other.size == 0:
            return False
        return not (
            self.max_key < other.min_key or other.max_key < self.min_key
        )

    def iter_all(self) -> Iterator[Entry]:
        """All entries and riders, main entries first."""
        yield from self.entries
        yield from self.riders

    @classmethod
    def from_unsorted(
        cls, entries: "list[Entry]", riders: "list[Entry] | None" = None
    ) -> "SSTable":
        """Build a run from unsorted entries, keeping the newest per key."""
        newest: dict[Any, Entry] = {}
        for e in entries:
            cur = newest.get(e.key)
            if cur is None or e.seq > cur.seq:
                newest[e.key] = e
        ordered = tuple(sorted(newest.values(), key=lambda e: e.key))
        return cls(entries=ordered, riders=tuple(riders or ()))
