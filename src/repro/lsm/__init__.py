"""LSM-tree substrate: the other write-optimized dictionary.

The paper (Section 1, "B^epsilon-trees") notes that "similar strategies to
those presented here would apply to other WODs, such as LSM-trees" and
points at the correspondence between LSM compaction strategies and
B^epsilon-tree flushing policies.  This package makes that concrete:

* :class:`~repro.lsm.lsm_tree.LSMTree` — memtable + leveled runs with
  block-granular IO accounting, point queries, tombstone deletes, and the
  two root-to-leaf analogues: **secure deletes** (complete when the secure
  tombstone compacts into the bottom level, physically shadowing nothing)
  and **deferred queries** (answered when their marker meets the newest
  version during compaction or reaches the bottom).
* :mod:`~repro.lsm.compaction` — compaction policies: classic *leveling*
  and *tiering* (throughput-oriented), plus a *backlog-driven* scheduler
  that prioritizes compactions by pending-root-to-leaf density — the
  direct analogue of the paper's WORMS scheduler.

Bench E12 compares the three on a secure-delete backlog, reproducing the
paper's eager/lazy/middle-ground story on the LSM side.
"""

from repro.lsm.compaction import (
    BacklogDrivenPolicy,
    CompactionPolicy,
    LevelingPolicy,
    TieringPolicy,
)
from repro.lsm.lsm_tree import LSMTree
from repro.lsm.sstable import Entry, EntryKind, SSTable

__all__ = [
    "LSMTree",
    "SSTable",
    "Entry",
    "EntryKind",
    "CompactionPolicy",
    "LevelingPolicy",
    "TieringPolicy",
    "BacklogDrivenPolicy",
]
