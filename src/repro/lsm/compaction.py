"""Compaction policies: which runs merge next.

A policy answers one question — ``choose(tree) -> (level, run_indices)``
— under two regimes:

* **maintenance** (some level over capacity): restore the size invariant;
* **drain** (a root-to-leaf backlog must finish): pick compactions that
  push pending markers toward the bottom level.

``LevelingPolicy`` and ``TieringPolicy`` are the textbook strategies; the
``BacklogDrivenPolicy`` is the WORMS analogue — it scores each candidate
compaction by *pending-marker density* (markers completed-or-advanced per
entry moved), the same work-per-progress idea as Horn densities.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.util.errors import InvalidInstanceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.lsm.lsm_tree import LSMTree


class CompactionPolicy(abc.ABC):
    """Strategy interface; stateless so one instance serves many trees."""

    name: str = "policy"

    @abc.abstractmethod
    def choose(self, tree: "LSMTree") -> tuple[int, "list[int] | None"]:
        """Return ``(level, run_indices)`` for the next compaction."""

    # Helpers shared by the concrete policies -------------------------
    @staticmethod
    def _overfull_or_marker_levels(tree: "LSMTree") -> list[int]:
        over = tree.over_capacity_levels()
        if over:
            return over
        marker_levels = sorted(
            {op.level for op in tree.pending.values() if op.level >= 0}
        )
        if not marker_levels:
            raise InvalidInstanceError(
                "no compaction needed: no overfull level and no pending ops"
            )
        return [lv for lv in marker_levels if lv < tree.n_levels - 1]


class LevelingPolicy(CompactionPolicy):
    """Classic leveling: merge the topmost relevant level wholesale."""

    name = "leveling"

    def choose(self, tree: "LSMTree") -> tuple[int, "list[int] | None"]:
        """Compact the topmost overfull (or marker-bearing) level."""
        candidates = self._overfull_or_marker_levels(tree)
        return candidates[0], None


class TieringPolicy(CompactionPolicy):
    """Tiering: merge a level only once it accumulates ``T`` runs (or when
    forced by capacity/drain), trading read cost for write cost."""

    name = "tiering"

    def choose(self, tree: "LSMTree") -> tuple[int, "list[int] | None"]:
        """Compact once a level accumulates ``T`` runs (or when forced)."""
        for level in range(tree.n_levels - 1):
            if len(tree.levels[level]) >= tree.size_ratio:
                return level, None
        candidates = self._overfull_or_marker_levels(tree)
        return candidates[0], None


class BacklogDrivenPolicy(CompactionPolicy):
    """The WORMS analogue: maximize pending-marker progress per entry.

    Every non-bottom level with at least one pending marker is a
    candidate; its score is ``markers_in_level / entries_to_merge`` where
    ``entries_to_merge`` counts the level's runs plus the overlapping runs
    below.  Capacity restoration takes priority (correctness), then the
    densest candidate wins.
    """

    name = "backlog-driven"

    def choose(self, tree: "LSMTree") -> tuple[int, "list[int] | None"]:
        """Pick the single file with the best pending-marker density."""
        over = tree.over_capacity_levels()
        if over:
            return over[0], None
        best: tuple[int, "list[int] | None"] | None = None
        best_score = -1.0
        for level in range(tree.n_levels - 1):
            for run_index, markers in tree.marker_runs(level):
                run = tree.levels[level][run_index]
                overlapping = sum(
                    r.size
                    for r in tree.levels[level + 1]
                    if run.overlaps(r)
                )
                cost = run.size + overlapping
                score = markers / max(1, cost)
                if score > best_score:
                    best_score = score
                    best = (level, [run_index])
        if best is None:
            raise InvalidInstanceError(
                "no compaction needed: no overfull level and no pending ops"
            )
        return best
