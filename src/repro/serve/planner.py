"""Epoch-based WORMS re-planning for the serving loop.

The batch pipeline plans once; a service re-plans as messages arrive.
:class:`EpochPlanner` folds newly admitted messages into a shard's
in-flight flush list every ``epoch_length`` steps, choosing the cheapest
sufficient planning mode per epoch:

* **noop** — no new admissions since the last plan: the in-flight
  priority list is already complete, keep it;
* **incremental** — new arrivals all target *clean* top-level subtrees
  (no in-flight message is parked mid-tree under them): the paper
  pipeline (reduction -> MPHTF -> Lemma 8 order) runs on just the new
  root-resident messages and the resulting flushes append after the
  in-flight list.  Validity is preserved by the admission gate whatever
  the order, so the fast path trades only priority freshness, not
  correctness — and it skips re-reducing the (large) residual backlog;
* **full** — some arrival lands in a dirty subtree, or the engine
  reported a deadlock between stitched plans: re-plan *everything* still
  in flight from its current location.  All-at-root residues go through
  the paper pipeline; mid-tree residues use the density-guided online
  scheduler (which is valid from arbitrary start nodes), exactly the
  split :func:`repro.policies.resilient.worms_replan` uses.

Planned flushes carry global message ids; the plan is a *priority
order*, the shard engine's gate decides actual step placement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.reduction import reduce_to_scheduling
from repro.core.task_to_flush import task_schedule_to_flush_schedule
from repro.core.worms import WORMSInstance
from repro.dam.schedule import Flush
from repro.obs.hooks import current_obs
from repro.obs.profile import PHASE_PLAN
from repro.policies.online import online_density_schedule
from repro.scheduling.deamortize import pace_flush_list
from repro.scheduling.mphtf import mphtf_schedule
from repro.serve.router import ShardEngine
from repro.tree.messages import Message
from repro.tree.topology import TreeTopology
from repro.util.errors import InvalidInstanceError


def plan_flushes(
    topology: TreeTopology,
    P: int,
    B: int,
    msg_ids: "list[int]",
    targets: "dict[int, int]",
    locations: "dict[int, int] | None" = None,
) -> "list[Flush]":
    """Priority-ordered flush list for ``msg_ids`` (global ids preserved).

    Builds a dense sub-instance, plans it, and maps the flushes back to
    the caller's ids.  With ``locations`` (mid-tree residue) the online
    density scheduler plans from the current nodes; all-at-root input
    goes through the paper pipeline.
    """
    if not msg_ids:
        return []
    root = topology.root
    all_at_root = locations is None or all(
        locations[m] == root for m in msg_ids
    )
    sub_messages = [
        Message(i, int(targets[m])) for i, m in enumerate(msg_ids)
    ]
    sub = WORMSInstance(
        topology,
        sub_messages,
        P=P,
        B=B,
        start_nodes=None if all_at_root
        else [int(locations[m]) for m in msg_ids],
    )
    if all_at_root:
        reduced = reduce_to_scheduling(sub)
        sigma = mphtf_schedule(reduced.scheduling)
        planned = task_schedule_to_flush_schedule(reduced, sigma)
    else:
        planned = online_density_schedule(sub)
    return [
        Flush(f.src, f.dest, tuple(msg_ids[i] for i in f.messages))
        for _t, f in planned.iter_timed()
    ]


@dataclass
class PlannerStats:
    """What planning actually did, per mode."""

    noop_epochs: int = 0
    incremental_plans: int = 0
    full_replans: int = 0
    forced_replans: int = 0
    planned_flushes: int = 0


class EpochPlanner:
    """Fold arrivals into shard plans every ``epoch_length`` steps."""

    def __init__(self, epoch_length: int = 8) -> None:
        if epoch_length < 1:
            raise InvalidInstanceError(
                f"epoch_length must be >= 1, got {epoch_length}"
            )
        self.epoch_length = int(epoch_length)
        self.stats = PlannerStats()

    def _shape(self, flushes: "list[Flush]") -> "list[Flush]":
        """Hook between planning and the engine's priority list.

        The base planner is the identity — the plan lands exactly as the
        pipeline emitted it.  :class:`PacedPlanner` overrides this to
        de-amortize the list.  (``planned_flushes`` counts the pipeline's
        output, before shaping, so planner stats compare across modes.)
        """
        return flushes

    def is_boundary(self, step: int) -> bool:
        """True iff planning runs at the start of 1-based ``step``."""
        return (step - 1) % self.epoch_length == 0

    def epoch_of(self, step: int) -> int:
        """0-based epoch index containing 1-based ``step``."""
        return (step - 1) // self.epoch_length

    @staticmethod
    def _top_ancestor(topo: TreeTopology, v: int) -> int:
        """The child-of-root ancestor of non-root node ``v`` (or v itself)."""
        node = v
        parent = topo.parent_of(node)
        while parent != topo.root and parent != -1:
            node = parent
            parent = topo.parent_of(node)
        return node if parent == topo.root else v

    def plan(
        self,
        engine: ShardEngine,
        new_msgs: "list[int]",
        *,
        force_full: bool = False,
    ) -> str:
        """Update ``engine.pending`` for this epoch (see module docstring).

        Returns the planning mode used: ``"noop"``, ``"incremental"``,
        ``"full"``, or ``"forced"`` (observability reads it; the stats
        counters are unchanged).
        """
        obs = current_obs()
        if not obs.enabled:
            return self._plan(engine, new_msgs, force_full=force_full)
        planned_before = self.stats.planned_flushes
        with obs.tracer.span(
            "serve.plan", category="serve",
            shard=engine.shard_id, arrivals=len(new_msgs),
        ) as span:
            with obs.profiler.phase(PHASE_PLAN):
                mode = self._plan(engine, new_msgs, force_full=force_full)
            span.set("mode", mode)
            span.set(
                "planned_flushes", self.stats.planned_flushes - planned_before
            )
        obs.metrics.counter(
            "serve_plans_total", "epoch planning decisions"
        ).labels(mode=mode).inc()
        return mode

    def _plan(
        self,
        engine: ShardEngine,
        new_msgs: "list[int]",
        *,
        force_full: bool = False,
    ) -> str:
        topo = engine.topology
        root = topo.root
        if force_full:
            self.stats.forced_replans += 1
        elif not new_msgs:
            self.stats.noop_epochs += 1
            return "noop"
        if not force_full:
            dirty = {
                self._top_ancestor(topo, v)
                for v in engine.location.values()
                if v != root
            }
            clean = True
            for m in new_msgs:
                top = topo.child_towards(root, engine.targets[m]) \
                    if engine.targets[m] != root else root
                if top in dirty:
                    clean = False
                    break
            if clean:
                flushes = plan_flushes(
                    topo, engine.P, engine.B, list(new_msgs), engine.targets
                )
                engine.append_plan(self._shape(flushes))
                self.stats.incremental_plans += 1
                self.stats.planned_flushes += len(flushes)
                return "incremental"
        # Full re-plan of everything still in flight from current state.
        residual = sorted(engine.location)
        flushes = plan_flushes(
            topo, engine.P, engine.B, residual, engine.targets,
            engine.location,
        )
        engine.set_plan(self._shape(flushes))
        engine.idle_streak = 0
        if not force_full:
            self.stats.full_replans += 1
        self.stats.planned_flushes += len(flushes)
        return "forced" if force_full else "full"


class PacedPlanner(EpochPlanner):
    """An :class:`EpochPlanner` that de-amortizes every plan it emits.

    Planned flush lists pass through
    :func:`repro.scheduling.deamortize.pace_flush_list`: obligations
    larger than ``pace`` messages split into budget-sized chunks, and
    chunks of distinct oversized obligations interleave round-robin, so
    the engine's per-step budget (:attr:`ShardEngine.pace`, the hard
    bound) is spent breadth-first instead of head-of-line.  This is the
    planner-level half of ``serve --pace``; with the engine's own budget
    it trades a bounded constant factor of mean completion time for flat
    tails (Das–Iacono–Nekrich, PAPERS.md).
    """

    def __init__(self, epoch_length: int = 8, *, pace: int = 1) -> None:
        super().__init__(epoch_length)
        if pace < 1:
            raise InvalidInstanceError(
                f"pace budget must be >= 1, got {pace}"
            )
        self.pace = int(pace)

    def _shape(self, flushes: "list[Flush]") -> "list[Flush]":
        return pace_flush_list(flushes, self.pace)
