"""The deterministic serving loop: arrivals -> shards -> epochs -> metrics.

:class:`ServiceLoop` closes the loop the batch pipeline leaves open: it
advances global DAM time one step at a time, pulling arrivals
(:mod:`repro.serve.arrivals`), routing them to shards
(:mod:`repro.serve.router`), holding them at the door under backpressure
(:mod:`repro.serve.admission`), folding them into per-shard flush plans
at epoch boundaries (:mod:`repro.serve.planner`), and accounting every
message's sojourn (:mod:`repro.serve.metrics`).

Everything is a pure function of :class:`ServeConfig` — arrival draws,
key sampling, per-shard fault streams, planning, and execution all derive
from ``config.seed`` — so a run is byte-reproducible.  That determinism
is also the recovery story: a serving run journals its realized flushes
(same crash-consistent format as batch runs, shard-tagged), and
:func:`recover_serve` re-derives the uninterrupted run from the journal's
own ``meta`` config, verifies the durable journal prefix against it, and
reports completion times that are exact or a typed
:class:`~repro.util.errors.JournalCorruptionError` — never silently
wrong.  A serving run can therefore be SIGKILLed at any byte and
recovered, exactly like a batch run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from dataclasses import fields as dataclass_fields
from dataclasses import replace as dataclass_replace

import numpy as np

from repro.dam.journal import (
    JournalWriter,
    RecoveryManager,
    REC_FLUSH,
    divert_record,
    flush_record,
    fault_record,
    slo_record,
)
from repro.dam.schedule import Flush, FlushSchedule
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs.hooks import current_obs
from repro.obs.profile import PHASE_EXECUTE, PHASE_RECOVER
from repro.policies.executor import MAX_IDLE_STEPS
from repro.serve.admission import AdmissionController, AdmissionStats
from repro.serve.arrivals import (
    ArrivalProcess,
    ClosedLoopArrivals,
    KeySampler,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.planner import EpochPlanner, PacedPlanner, PlannerStats
from repro.serve.tenancy.fair import TenantAdmissionController
from repro.serve.tenancy.mix import TenantMix
from repro.serve.tenancy.runtime import TenancyRuntime
from repro.serve.tenancy.spec import TenantSpec, validate_tenants
from repro.serve.router import ShardEngine, ShardRouter, ShardStats
from repro.util.errors import (
    ExecutionStalledError,
    InvalidInstanceError,
    JournalCorruptionError,
    StorageError,
)

#: meta "policy" tag distinguishing serve journals from batch ones.
SERVE_POLICY = "serve"

#: forced full re-plans allowed per shard before the loop gives up.
MAX_FORCED_REPLANS = 2


@dataclass(frozen=True)
class ServeConfig:
    """Everything that determines a serving run (JSON-round-trippable).

    ``arrivals`` is one of ``poisson``, ``mmpp``, ``closed``, ``trace``
    (the last driven by ``trace``, a list of ``[step, key]`` pairs).
    ``key_space`` defaults to shards * leaves-per-shard so every leaf owns
    at least one key.
    """

    arrivals: str = "poisson"
    rate: float = 8.0
    burst_rate: float = 32.0
    p_burst: float = 0.05
    p_calm: float = 0.25
    n_clients: int = 16
    think_time: int = 0
    trace: "tuple[tuple[int, int], ...] | None" = None
    messages: int = 1000
    shards: int = 4
    key_space: int = 0  # 0 = derived from the shard trees
    theta: float = 0.0  # key-popularity skew (0 = uniform)
    P: int = 4
    B: int = 16
    fanout: int = 0  # >0: balanced shard trees; 0: B^eps shape
    height: int = 3
    leaves: int = 64
    eps: float = 0.5
    epoch: int = 8
    max_root_backlog: int = 0  # 0 = default 4*B
    max_queue: int = 0  # 0 = default 16*B
    fault_rate: float = 0.0
    fault_seed: int = 0
    fault_aware: bool = False
    retry_budget: int = 5
    seed: int = 0
    checkpoint_every: int = 32
    max_steps: int = 0  # 0 = derived
    #: storage engine behind completions: ``sim`` (in-memory, the
    #: historical behavior) or ``lsm`` (the durable on-disk KV engine,
    #: :mod:`repro.lsm.disk`; requires ``data_dir``).  The engine is a
    #: *passive sink* — it observes routing and completions but never
    #: influences scheduling, so schedules are byte-identical across
    #: engines and recovery re-derivation stays exact.
    engine: str = "sim"
    data_dir: str = ""
    #: multi-tenant QoS (:mod:`repro.serve.tenancy`): a tuple of
    #: :class:`~repro.serve.tenancy.spec.TenantSpec` enables tenant-tagged
    #: arrivals, weighted-fair admission, SLO shedding, and buffer quotas.
    #: ``None`` (the default) keeps the run byte-identical to a
    #: pre-tenancy run — the key is omitted from journal meta entirely.
    tenants: "tuple[TenantSpec, ...] | None" = None
    #: de-amortized flush scheduling (``serve --pace``): a per-step,
    #: per-shard delivered-message budget.  The planner splits and
    #: round-robins oversized obligations
    #: (:class:`~repro.serve.planner.PacedPlanner`) and the engine
    #: enforces the budget as a hard bound, trading a bounded constant
    #: factor of mean completion time for flat tails.  ``0`` (default)
    #: keeps schedules and journal bytes identical to an unpaced run —
    #: the key is omitted from journal meta entirely.
    pace: int = 0

    def __post_init__(self) -> None:
        if self.tenants is not None:
            if not isinstance(self.tenants, tuple):
                object.__setattr__(self, "tenants", tuple(self.tenants))
            validate_tenants(self.tenants, self.messages)
        if self.arrivals not in ("poisson", "mmpp", "closed", "trace"):
            raise InvalidInstanceError(
                f"unknown arrival process {self.arrivals!r}"
            )
        if self.arrivals == "trace" and self.trace is None:
            raise InvalidInstanceError("trace arrivals need trace=[...]")
        # `not >` rather than `<=` so NaN is rejected too.
        if self.arrivals == "poisson" and not self.rate > 0:
            raise InvalidInstanceError(f"rate must be > 0, got {self.rate}")
        if self.arrivals == "mmpp" and (
            not self.rate >= 0 or not self.burst_rate > 0
        ):
            raise InvalidInstanceError(
                f"mmpp needs rate >= 0 and burst_rate > 0, got "
                f"{self.rate}, {self.burst_rate}"
            )
        if self.arrivals == "closed" and self.n_clients < 1:
            raise InvalidInstanceError("closed loop needs n_clients >= 1")
        if self.messages < 0:
            raise InvalidInstanceError("messages must be >= 0")
        if not (0.0 <= self.fault_rate <= 1.0):
            raise InvalidInstanceError("fault_rate must be in [0, 1]")
        if self.checkpoint_every < 1:
            raise InvalidInstanceError("checkpoint_every must be >= 1")
        if self.engine not in ("sim", "lsm"):
            raise InvalidInstanceError(
                f"unknown storage engine {self.engine!r} "
                "(expected 'sim' or 'lsm')"
            )
        if self.engine == "lsm" and not self.data_dir:
            raise InvalidInstanceError(
                "engine='lsm' needs data_dir=<store directory>"
            )
        if self.pace < 0:
            raise InvalidInstanceError(
                f"pace must be >= 0 (0 = unpaced), got {self.pace}"
            )

    def to_meta(self) -> dict:
        """The journal ``meta`` payload that reconstructs this config."""
        meta = asdict(self)
        meta["trace"] = (
            None if self.trace is None else [list(p) for p in self.trace]
        )
        if self.tenants is None:
            # Omitted, not null: a tenancy-free journal stays bytewise
            # what it was before tenancy existed.
            del meta["tenants"]
        else:
            meta["tenants"] = [t.to_meta() for t in self.tenants]
        if not self.pace:
            # Same omission contract: an unpaced journal stays bytewise
            # what it was before pacing existed.
            del meta["pace"]
        meta["policy"] = SERVE_POLICY
        return meta

    @classmethod
    def from_meta(cls, meta: dict) -> "ServeConfig":
        """Inverse of :meth:`to_meta`.

        Ignores the ``policy`` tag and any non-config keys a richer
        driver journaled alongside the config (e.g. the supervised
        loop's ``supervisor``/``chaos`` payloads) so old readers stay
        forward-compatible with new journals.
        """
        names = {f.name for f in dataclass_fields(cls)}
        fields = {k: v for k, v in meta.items() if k in names}
        if fields.get("trace") is not None:
            fields["trace"] = tuple(
                (int(s), int(k)) for s, k in fields["trace"]
            )
        if fields.get("tenants") is not None:
            fields["tenants"] = tuple(
                TenantSpec.from_meta(t) for t in fields["tenants"]
            )
        return cls(**fields)


@dataclass
class ServeReport:
    """Everything a serving run produced."""

    config: ServeConfig
    n_steps: int
    snapshot: dict
    #: global message id -> completion step (completed messages only).
    completions: "dict[int, int]"
    #: realized per-shard schedules (index = shard id).
    shard_schedules: "list[FlushSchedule]"
    planner_stats: PlannerStats
    admission_stats: AdmissionStats
    shard_stats: "list[ShardStats]"
    metrics: ServeMetrics = field(repr=False, default=None)


class _ServeJournal:
    """Shard-tagged journal emission for a serving run."""

    def __init__(self, writer: JournalWriter, owned: bool,
                 checkpoint_every: int) -> None:
        self.writer = writer
        self.owned = owned
        self.every = int(checkpoint_every)
        #: newest step sealed by a checkpoint+flush (the durable-step
        #: rule); 0 until the first checkpoint lands.
        self.last_durable_step = 0

    def record_flush(self, t: int, shard: int, flush: Flush) -> None:
        rec = flush_record(t, flush)
        rec["shard"] = int(shard)
        self.writer.append(rec)

    def record_fault(self, t: int, shard: int, kind: str, src: int,
                     dest: int, detail: str) -> None:
        rec = fault_record(t, kind, src, dest, detail)
        rec["shard"] = int(shard)
        self.writer.append(rec)

    def record_divert(self, t: int, src_shard: int, dst_shard: int,
                      msgs: "list[int] | tuple[int, ...]" = ()) -> None:
        self.writer.append(divert_record(t, src_shard, dst_shard, msgs))

    def record_slo(self, t: int, door, purge) -> None:
        self.writer.append(slo_record(t, door, purge))

    def end_step(self, t: int, arrived: int, completed: int) -> None:
        if t % self.every == 0:
            self.checkpoint(t, arrived, completed)

    def checkpoint(self, t: int, arrived: int, completed: int) -> None:
        self.writer.append({
            "type": "checkpoint", "t": int(t),
            "arrived": int(arrived), "completed": int(completed),
        })
        self.writer.flush()
        self.last_durable_step = int(t)

    def finish(self, t: int, arrived: int, completed: int) -> None:
        self.checkpoint(t, arrived, completed)
        self.writer.append({"type": "end", "t": int(t)})
        self.writer.flush()
        if self.owned:
            self.writer.close()

    def abort(self) -> None:
        self.writer.flush()
        if self.owned:
            self.writer.close()


def _spawn_seed(*coords: int) -> int:
    """A stable derived seed for a named sub-stream of the run."""
    return int(
        np.random.SeedSequence(entropy=tuple(int(c) for c in coords))
        .generate_state(1)[0]
    )


def build_shard_engine(config: "ServeConfig", spec) -> ShardEngine:
    """Construct the engine for one shard, exactly as the loop would.

    Factored out so a shared-nothing worker process can rebuild its
    shard's engine from ``(config, spec)`` alone and land on the same
    deterministic object the in-process drivers use: fault decisions are
    pure functions of the derived seed, so an engine rebuilt in another
    process answers every injector query identically.
    """
    injector = None
    if config.fault_rate > 0:
        injector = FaultInjector(
            FaultPlan.uniform(config.fault_rate),
            seed=_spawn_seed(config.fault_seed, spec.shard_id),
        )
    return ShardEngine(
        spec.shard_id, spec.topology, config.P, config.B,
        injector=injector, fault_aware=config.fault_aware,
        retry_budget=config.retry_budget, pace=config.pace,
    )


def build_planner(config: "ServeConfig") -> EpochPlanner:
    """The planner a run's config calls for (paced iff ``pace > 0``).

    Factored out for the same reason as :func:`build_shard_engine`: the
    procpool's shared-nothing workers rebuild their planner from the
    config alone and must land on the same choice the in-process
    drivers make.
    """
    if config.pace:
        return PacedPlanner(config.epoch, pace=config.pace)
    return EpochPlanner(config.epoch)


class ServiceLoop:
    """One serving run.  Construct, then :meth:`run` exactly once.

    ``journal`` is ``None``, a path (the loop opens and owns a
    :class:`~repro.dam.journal.JournalWriter` with the config as its
    ``meta``), or an open writer (caller owns lifecycle and meta).
    """

    def __init__(self, config: ServeConfig, *, journal=None,
                 sync: bool = False,
                 max_segment_bytes: "int | None" = None,
                 compact_every_rotations: int = 0) -> None:
        self.config = config
        self.router = ShardRouter(
            config.shards,
            config.key_space or self._derived_key_space(config),
            B=config.B,
            fanout=config.fanout,
            height=config.height,
            leaves=config.leaves,
            eps=config.eps,
        )
        self.engines: "list[ShardEngine]" = [
            build_shard_engine(config, spec) for spec in self.router.shards
        ]
        self.arrivals = self._build_arrivals(config)
        self.planner = build_planner(config)
        #: tenancy runtime, or None for the (byte-identical) single-tenant
        #: path; when set, admission is the weighted-fair controller and
        #: metrics carry the gid -> tenant map it keys on.
        self._tenancy = (
            TenancyRuntime(config.tenants) if config.tenants else None
        )
        self.metrics = ServeMetrics(
            config.shards,
            self._tenancy.names if self._tenancy else None,
        )
        if self._tenancy is not None:
            self.admission: AdmissionController = TenantAdmissionController(
                config.shards,
                max_root_backlog=config.max_root_backlog or 4 * config.B,
                max_queue=config.max_queue or 16 * config.B,
                specs=config.tenants,
                tenant_of=self.metrics.tenant_of,
            )
        else:
            self.admission = AdmissionController(
                config.shards,
                max_root_backlog=config.max_root_backlog or 4 * config.B,
                max_queue=config.max_queue or 16 * config.B,
            )
        self._journal_arg = journal
        self._sync = bool(sync)
        self._max_segment_bytes = max_segment_bytes
        self._compact_every = int(compact_every_rotations)
        if self._compact_every < 0:
            raise InvalidInstanceError(
                "compact_every_rotations must be >= 0, "
                f"got {compact_every_rotations}"
            )
        self._ran = False
        # Per-run state, (re)initialized by run(); declared here so the
        # overridable phase methods have stable attributes to reference.
        self._journal: "_ServeJournal | None" = None
        self._fresh: "list[list[int]]" = [[] for _ in self.engines]
        self._replans_left = [MAX_FORCED_REPLANS] * len(self.engines)
        self._next_gid = 0
        #: the durable sink (engine='lsm'); a passive observer of the
        #: loop, opened in the parent so SIGKILLed workers never hold it.
        self.store = None
        self._gid_key: "dict[int, int]" = {}
        #: durable-sink writes rejected by a degraded/faulted store;
        #: serving continues (the completion is journal-durable), the
        #: rejection is surfaced here and via serve_store_degraded_total.
        self.store_put_errors = 0
        if config.engine == "lsm":
            self.store = self._open_store(config)

    def _open_store(self, config: ServeConfig):
        """The parent-held durable sink (engine='lsm').

        The in-process and threaded drivers keep one store for the whole
        run; the procpool driver overrides this to ``None`` — its
        workers own per-shard stores under ``data_dir/shard-<k>``.
        """
        # Local import: repro.lsm.disk is pure storage, no serve
        # dependency, but keeping the sim path import-free means a
        # sim-only process never touches the disk engine.
        from repro.lsm.disk import KVStore
        return KVStore(config.data_dir, sync=False)

    @staticmethod
    def _derived_key_space(config: ServeConfig) -> int:
        if config.fanout:
            return config.shards * config.fanout**config.height
        return config.shards * config.leaves

    def _build_arrivals(self, config: ServeConfig) -> ArrivalProcess:
        if config.tenants:
            return TenantMix(
                config.tenants, self.router.key_space,
                seed=config.seed, spawn=_spawn_seed,
            )
        sampler = KeySampler(
            self.router.key_space, theta=config.theta,
            seed=_spawn_seed(config.seed, 1),
        )
        if config.arrivals == "poisson":
            return PoissonArrivals(
                config.rate, config.messages, sampler,
                seed=_spawn_seed(config.seed, 2),
            )
        if config.arrivals == "mmpp":
            return MMPPArrivals(
                config.rate, config.burst_rate, config.messages, sampler,
                p_burst=config.p_burst, p_calm=config.p_calm,
                seed=_spawn_seed(config.seed, 2),
            )
        if config.arrivals == "closed":
            return ClosedLoopArrivals(
                config.n_clients, config.messages, sampler,
                think_time=config.think_time,
            )
        return TraceArrivals(list(config.trace or ()))

    def _open_journal(self) -> "_ServeJournal | None":
        if self._journal_arg is None:
            return None
        if isinstance(self._journal_arg, JournalWriter):
            return _ServeJournal(self._journal_arg, False,
                                 self.config.checkpoint_every)
        writer = JournalWriter(
            self._journal_arg, meta=self.config.to_meta(), sync=self._sync,
            max_segment_bytes=self._max_segment_bytes,
            compact_every_rotations=self._compact_every,
        )
        return _ServeJournal(writer, True, self.config.checkpoint_every)

    # -- overridable step phases ---------------------------------------
    # run() drives these in order each step; SupervisedLoop overrides
    # individual phases (spill-instead-of-shed, quarantine skips,
    # threaded execution) without re-stating the loop.  With the base
    # implementations the step is behavior-identical to the historical
    # inline loop.

    def _durable_step(self) -> int:
        """Newest journal-durable step (-1 when no journal is attached)."""
        return -1 if self._journal is None else self._journal.last_durable_step

    def _finished(self) -> bool:
        """True when no work remains anywhere in the system."""
        return (
            self.arrivals.exhausted
            and self.admission.total_queued() == 0
            and all(e.in_flight == 0 for e in self.engines)
        )

    def _begin_step(self, t: int) -> None:
        """Hook before phase 1 (supervision: chaos events, probes)."""
        if self._tenancy is not None:
            self._tenancy_begin_step(t)

    def _tenancy_begin_step(self, t: int) -> None:
        """Close the finished epoch: ledger row + SLO breaker decisions."""
        if t > 1 and self.planner.is_boundary(t):
            epoch = self.planner.epoch_of(t - 1)
            self._tenancy.close_epoch(epoch, self.metrics)
            door, tripped = self._tenancy.tracker.evaluate(epoch)
            self._apply_slo(door, tripped, t)

    def _apply_slo(self, door: "set[int]", tripped: "list[int]",
                   t: int) -> None:
        """Enforce SLO decisions: close doors, purge tripped tenants.

        Non-trivial decisions are journaled like ``divert`` records —
        durability sealed with a checkpoint first, then the decision —
        so a restarted shard-per-process worker can be owed the purge
        its dispatch lost.  The procpool driver extends this to ship
        the directives to its workers (which own the queues) instead of
        purging locally.
        """
        if self._journal is not None and (
            tripped or set(door) != self.admission.door_closed
        ):
            if t > 1:
                self._journal.checkpoint(
                    t - 1, self._next_gid, len(self.metrics.completion_step)
                )
            self._journal.record_slo(t, door, tripped)
        self.admission.door_closed = set(door)
        for tid in tripped:
            for _sid, gid in self.admission.purge_tenant(tid):
                self.metrics.note_shed(gid, t)
                self.arrivals.notify_shed(gid, t)

    def _complete(self, gid: int, step: int) -> None:
        self.metrics.note_completion(gid, step)
        self.arrivals.notify_completion(gid, step)
        self.admission.note_departed(gid)
        if self._tenancy is not None:
            tid = self.metrics.tenant_of.get(gid)
            if tid is not None:
                self._tenancy.tracker.note_completion(
                    tid, step - self.metrics.arrival_step[gid] + 1
                )
        if self.store is not None:
            key = self._gid_key.pop(gid, None)
            if key is not None:
                # The durable acknowledgment: by the time the loop calls
                # _complete the message is delivered, so the completion
                # record must survive any crash after this line.  The
                # in-process and threaded drivers funnel completions
                # through here in the parent; the procpool driver's
                # workers own per-shard stores and write at their own
                # completion points instead (see repro.serve.procpool).
                self._store_put(
                    str(key), {"gid": int(gid), "step": int(step)}
                )

    def _store_put(self, key: str, value: dict) -> None:
        """One durable-sink write, degradation-tolerant.

        A degraded or faulted store must not take serving down with it:
        the completion being recorded is already journal-durable, so a
        typed storage error is counted (``serve_store_degraded_total``)
        and the loop keeps serving read-only until the store re-arms.
        """
        try:
            self.store.put(key, value)
        except StorageError:
            self.store_put_errors += 1
            obs = current_obs()
            if obs.enabled:
                obs.metrics.counter(
                    "serve_store_degraded_total",
                    "durable-sink writes rejected by a degraded store",
                ).inc()

    def _note_routed(self, gid: int, key, sid: int, t: int) -> None:
        """Phase-1 hook: one arrival was routed (parent-side, pre-offer).

        The durable sink needs the gid -> key association at completion
        time; recording it here — at the only two places arrivals are
        routed (the base loop and the procpool's staging) — keeps the
        engine entirely out of the scheduling path.
        """
        if self.store is not None:
            self._gid_key[gid] = key

    def _offer(self, sid: int, gid: int, leaf: int, t: int) -> None:
        """Phase-1 handoff of one routed arrival to admission."""
        if not self.admission.offer(sid, gid, leaf):
            self.metrics.note_shed(gid, t)
            self.arrivals.notify_shed(gid, t)

    def _route_arrivals(self, t: int) -> None:
        """Phase 1: pull arrivals, route, meter, offer to admission."""
        keys = self.arrivals.take(t)
        gids = list(range(self._next_gid, self._next_gid + len(keys)))
        self._next_gid += len(keys)
        # Tenant tags must land in metrics.tenant_of *before* the offer:
        # the fair controller keys its lanes (and shed accounting) on it.
        tenants = (
            self.arrivals.pending_tenants if self._tenancy is not None
            else None
        )
        for i, (gid, key) in enumerate(zip(gids, keys)):
            sid, leaf = self.router.route(key)
            self.metrics.note_arrival(
                gid, sid, t,
                tenants[i] if tenants is not None else None,
            )
            self._note_routed(gid, key, sid, t)
            self._offer(sid, gid, leaf, t)
        self.arrivals.on_emitted(gids)

    def _drain_shard(self, sid: int, engine: ShardEngine, t: int) -> None:
        """Phase 2 for one shard: admission queue -> shard root."""
        for gid, _leaf, done in self.admission.drain(sid, engine, t):
            self.metrics.note_admit(gid, t)
            if done is not None:
                self._complete(gid, done)
            else:
                self._fresh[sid].append(gid)

    def _drain_shards(self, t: int) -> None:
        for sid, engine in enumerate(self.engines):
            self._drain_shard(sid, engine, t)

    def _on_replans_exhausted(
        self, sid: int, engine: ShardEngine, t: int
    ) -> None:
        """A shard deadlocked with no forced re-plans left.

        The base loop fails the run; the supervised loop trips the
        shard's breaker instead and keeps the other shards serving.
        """
        raise ExecutionStalledError(
            f"shard {sid} deadlocked at step {t} with no "
            f"re-plans left ({engine.pending_flushes} "
            "flush(es) pending)",
            step=t,
            shard_id=sid,
            epoch=self.planner.epoch_of(t),
            last_durable_step=self._durable_step(),
        )

    def _plan_shard(
        self, sid: int, engine: ShardEngine, t: int, boundary: bool
    ) -> None:
        """Phase 3 for one shard: epoch / forced planning."""
        force = engine.idle_streak > MAX_IDLE_STEPS
        if force and self._replans_left[sid] <= 0:
            self._on_replans_exhausted(sid, engine, t)
            return
        if force or (boundary and self._fresh[sid]):
            self.planner.plan(engine, self._fresh[sid], force_full=force)
            self._fresh[sid] = []
            if force:
                self._replans_left[sid] -= 1

    def _plan_shards(self, t: int) -> None:
        boundary = self.planner.is_boundary(t)
        for sid, engine in enumerate(self.engines):
            self._plan_shard(sid, engine, t, boundary)

    def _execute_shards(self, t: int) -> None:
        """Phase 4: one DAM step per shard, in shard order."""
        for engine in self.engines:
            for gid, step in engine.step(t, self._journal):
                self._complete(gid, step)

    def _queue_depth(self, sid: int) -> int:
        """Arrivals waiting in front of ``sid`` (admission + overlays)."""
        return self.admission.queue_depth(sid)

    def _meter(self, t: int) -> None:
        """Phase 5: per-step depth metering."""
        n = len(self.engines)
        self.metrics.note_step(
            [self._queue_depth(s) for s in range(n)],
            [e.root_backlog for e in self.engines],
            [e.in_flight for e in self.engines],
        )

    def _close_store(self) -> None:
        """Flush and close the durable sink (idempotent; sim: no-op)."""
        if self.store is not None:
            self.store.close()

    def _emit_pace_obs(self, reg) -> None:
        """Publish the ``stability_pace_*`` family (paced runs only).

        Every driver calls this from its run-end obs block after the
        realized schedules are final, so the gauge reads ground truth.
        """
        if not self.config.pace:
            return
        hold_c = reg.counter(
            "stability_pace_holds_total",
            "steps where the pacer held back ready work",
        )
        split_c = reg.counter(
            "stability_pace_splits_total",
            "flush obligations split to fit the pace budget",
        )
        work_g = reg.gauge(
            "stability_step_work_max",
            "largest realized per-step message-move count of any "
            "shard (paced runs: must be <= the budget)",
        )
        for engine in self.engines:
            hold_c.inc(engine.stats.paced_holds)
            hold_c.labels(shard=engine.shard_id).inc(
                engine.stats.paced_holds
            )
            split_c.inc(engine.stats.paced_splits)
            split_c.labels(shard=engine.shard_id).inc(
                engine.stats.paced_splits
            )
        work_g.set(max(
            (e.schedule.max_step_moves() for e in self.engines), default=0,
        ))

    def _build_report(self, t: int) -> ServeReport:
        snapshot = self.metrics.snapshot(t)
        if self._tenancy is not None:
            self._tenancy.annotate(snapshot, self.metrics)
        if self.config.pace:
            # Opt-in section only (unpaced snapshots are unchanged):
            # max_step_work is read from the *realized* schedules, not
            # the pacer's own bookkeeping, so the per-step bound is
            # asserted against ground truth.
            snapshot["pace"] = {
                "budget": self.config.pace,
                "max_step_work": max(
                    (e.schedule.max_step_moves() for e in self.engines),
                    default=0,
                ),
                "shards": [
                    {
                        "shard": e.shard_id,
                        "max_step_work": e.schedule.max_step_moves(),
                        "paced_holds": e.stats.paced_holds,
                        "paced_splits": e.stats.paced_splits,
                    }
                    for e in self.engines
                ],
            }
        return ServeReport(
            config=self.config,
            n_steps=t,
            snapshot=snapshot,
            completions=dict(self.metrics.completion_step),
            shard_schedules=[e.schedule for e in self.engines],
            planner_stats=self.planner.stats,
            admission_stats=self.admission.stats,
            shard_stats=[e.stats for e in self.engines],
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------
    def run(self) -> ServeReport:
        """Drive the loop to completion; returns the full report."""
        if self._ran:
            raise InvalidInstanceError("a ServiceLoop runs exactly once")
        self._ran = True
        config = self.config
        metrics = self.metrics
        engines = self.engines
        # Observability is bound once per run (see repro.obs.hooks); with
        # the disabled default every step below is allocation-identical
        # to the uninstrumented loop.
        obs = current_obs()
        enabled = obs.enabled
        run_span = obs.tracer.span(
            "serve.run", category="serve",
            shards=len(engines), messages=config.messages,
        )
        clock = obs.profiler.clock
        self._journal = journal = self._open_journal()
        max_steps = config.max_steps or max(
            1000, 50 * config.messages * (config.height + 2)
        )
        #: per-shard admissions since that shard's last plan.
        self._fresh = [[] for _ in engines]
        self._replans_left = [MAX_FORCED_REPLANS] * len(engines)
        self._next_gid = 0
        t = 0
        try:
            while True:
                if self._finished():
                    break
                t += 1
                if t > max_steps:
                    raise ExecutionStalledError(
                        f"serving loop exceeded max_steps={max_steps} "
                        f"(in flight: "
                        f"{sum(e.in_flight for e in engines)})",
                        step=t,
                        epoch=self.planner.epoch_of(t),
                        last_durable_step=self._durable_step(),
                    )
                self._begin_step(t)
                self._route_arrivals(t)
                self._drain_shards(t)
                self._plan_shards(t)
                t_exec = clock() if enabled else 0.0
                self._execute_shards(t)
                if enabled:
                    obs.profiler.add(PHASE_EXECUTE, clock() - t_exec)
                self._meter(t)
                if journal is not None:
                    journal.end_step(
                        t, self._next_gid, len(metrics.completion_step)
                    )
        except ExecutionStalledError:
            if journal is not None:
                journal.abort()
            self._close_store()
            run_span.set("stalled", True)
            run_span.finish()
            raise
        for engine in engines:
            engine.schedule.trim()
        if journal is not None:
            journal.finish(t, self._next_gid, len(metrics.completion_step))
        self._close_store()
        if enabled:
            run_span.set_steps(1, t)
            reg = obs.metrics
            reg.counter("serve_runs_total", "serving runs completed").inc()
            reg.counter("serve_steps_total", "serving DAM steps").inc(t)
            reg.counter(
                "serve_arrivals_total", "messages that arrived"
            ).inc(self._next_gid)
            reg.counter(
                "serve_admitted_total", "messages admitted past the queues"
            ).inc(self.admission.stats.admitted)
            reg.counter(
                "serve_completions_total", "messages delivered to leaves"
            ).inc(len(metrics.completion_step))
            reg.counter(
                "serve_planned_flushes_total", "flushes emitted by planning"
            ).inc(self.planner.stats.planned_flushes)
            flush_counter = reg.counter(
                "serve_flushes_total", "flushes realized by shard engines"
            )
            retry_counter = reg.counter(
                "serve_retries_total", "failed flush attempts across shards"
            )
            for engine in engines:
                flush_counter.inc(engine.stats.flushes)
                flush_counter.labels(shard=engine.shard_id).inc(
                    engine.stats.flushes
                )
                retry_counter.inc(engine.stats.failed_attempts)
            self._emit_pace_obs(reg)
        run_span.finish()
        return self._build_report(t)


@dataclass(frozen=True)
class ServeRecoveryReport:
    """What :func:`recover_serve` did."""

    report: ServeReport
    resumed_from_step: int
    replayed_flushes: int
    torn_bytes: int
    torn_reason: str
    run_completed: bool


def recover_serve(path, *, repair: bool = True) -> ServeRecoveryReport:
    """Recover an interrupted serving run from its journal.

    The loop is deterministic in its config, so recovery re-derives the
    uninterrupted run from the journal's ``meta``, then verifies every
    durable journaled flush appears in the re-derived shard schedules at
    the same step — the same exact-or-typed-error contract as batch
    recovery.  Returns the re-derived report (completion times identical
    to an uninterrupted run) plus what the journal contributed.
    """
    obs = current_obs()
    span = obs.tracer.span(
        "serve.recover", category="serve", path=str(path)
    )
    t_wall = obs.profiler.clock() if obs.enabled else 0.0
    manager = RecoveryManager(path)
    scan = manager.scan()
    meta = manager.meta
    if meta is None:
        raise JournalCorruptionError(
            f"{path}: no meta record survived; the serving run cannot be "
            "reconstructed",
            reason="no-records",
        )
    if meta.get("policy") != SERVE_POLICY:
        raise JournalCorruptionError(
            f"{path}: journal meta has policy {meta.get('policy')!r}, "
            f"not {SERVE_POLICY!r}",
            reason="instance-mismatch",
        )
    torn_bytes, torn_reason = scan.torn_bytes, scan.torn_reason
    if repair:
        manager.repair()
    config = ServeConfig.from_meta(meta)
    if config.engine != "sim":
        # Re-derivation is a *verification* replay: the durable store
        # already holds the original run's acknowledged state, and the
        # engine is a passive sink (schedules are byte-identical across
        # engines), so recovery re-derives under the sim engine rather
        # than double-writing completions into the live store.
        config = dataclass_replace(config, engine="sim", data_dir="")
    if "chaos" in meta or "supervisor" in meta:
        # A supervised run journaled its scenario and driver topology:
        # re-derive through the same driver so breaker trips,
        # quarantines, restarts, and worker respawns replay identically
        # (they are seeded from the same config).
        # Local import: repro.serve.supervisor imports this module.
        from repro.faults.chaos import ChaosPlan
        from repro.serve.supervisor import SupervisedLoop, SupervisorConfig
        supervisor = (
            SupervisorConfig.from_meta(meta["supervisor"])
            if "supervisor" in meta else None
        )
        chaos = (
            ChaosPlan.from_meta(meta["chaos"])
            if "chaos" in meta else None
        )
        driver = meta.get("driver") or {}
        if driver.get("kind") == "procpool":
            from repro.serve.procpool import ProcPoolLoop
            report = ProcPoolLoop(
                config, supervisor=supervisor, chaos=chaos,
                processes=int(driver.get("processes", 1)),
            ).run()
        else:
            report = SupervisedLoop(
                config, supervisor=supervisor, chaos=chaos,
                workers=int(driver.get("workers", 1) or 1),
            ).run()
    else:
        report = ServiceLoop(config).run()
    durable = manager.last_durable_step()
    replayed = 0
    for rec in manager.scan().records:
        if rec["type"] != REC_FLUSH or rec["t"] > durable:
            continue
        f = Flush(int(rec["src"]), int(rec["dest"]),
                  tuple(int(m) for m in rec["msgs"]))
        sid = int(rec.get("shard", 0))
        if (
            sid >= len(report.shard_schedules)
            or f not in report.shard_schedules[sid].flushes_at(int(rec["t"]))
        ):
            raise JournalCorruptionError(
                f"{path}: journaled flush {f!r} (shard {sid}, step "
                f"{rec['t']}) is not in the re-derived serving run — the "
                "journal belongs to a different run",
                reason="schedule-mismatch",
            )
        replayed += 1
    if obs.enabled:
        obs.profiler.add(PHASE_RECOVER, obs.profiler.clock() - t_wall)
        span.set("resumed_from_step", durable)
        span.set("replayed_flushes", replayed)
        span.set("torn_bytes", torn_bytes)
        obs.metrics.counter(
            "serve_recoveries_total", "serving runs recovered from journals"
        ).inc()
    span.finish()
    return ServeRecoveryReport(
        report=report,
        resumed_from_step=durable,
        replayed_flushes=replayed,
        torn_bytes=torn_bytes,
        torn_reason=torn_reason,
        run_completed=manager.run_completed,
    )
