"""Key-range shard routing and per-shard DAM execution engines.

A serving deployment splits the key space ``[0, key_space)`` into
contiguous ranges, one per shard.  Each shard is an independent
B^ε-shaped tree with its own DAM machine (``P`` parallel flushes, ``B``
messages per node/flush): the model of one storage device per shard.
:class:`ShardRouter` owns the ranges and the key -> (shard, leaf)
mapping; :class:`ShardEngine` owns one shard's live machine state and
executes its pending flush list one time step at a time.

:meth:`ShardEngine.step` is the *stepwise* form of the admission gate in
:class:`repro.policies.executor.GatedExecutor` (same readiness /
admissibility rules, same priority scan, so a single-shard run with one
up-front plan realizes the identical schedule — the equivalence property
``tests/serve/test_equivalence.py`` pins).  On top of that it carries the
fault semantics of :class:`~repro.policies.resilient.ResilientExecutor`:
failed/partial flushes retry with exponential backoff, stalled nodes are
skipped, and with ``fault_aware=True`` degraded capacity is triaged
toward completion flushes first.  Unlike the batch executors, a serving
engine never rolls time back: an idle step is a real step of wall-clock
in a service (arrivals may land during it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dam.schedule import Flush, FlushSchedule
from repro.faults.injector import (
    FaultInjector,
    OUTCOME_FAILED,
    OUTCOME_PARTIAL,
)
from repro.tree.builder import balanced_tree, beps_shape_tree
from repro.tree.topology import TreeTopology
from repro.util.errors import InvalidInstanceError


@dataclass
class _Pending:
    """A planned flush awaiting execution, with retry bookkeeping."""

    flush: Flush
    #: messages that do not complete at dest (static admission cost).
    parking: int = 0
    attempts: int = 0
    eligible_at: int = 0
    done: bool = False


@dataclass
class ShardStats:
    """Per-shard counters the serving report surfaces."""

    admitted: int = 0
    completed: int = 0
    flushes: int = 0
    failed_attempts: int = 0
    partial_deliveries: int = 0
    stalled_skips: int = 0
    fault_aware_skips: int = 0
    degraded_triage_steps: int = 0
    idle_steps: int = 0
    busy_steps: int = 0
    #: steps where the de-amortization pacer held back ready work.
    paced_holds: int = 0
    #: oversized flush obligations split to fit the per-step budget.
    paced_splits: int = 0


class ShardEngine:
    """One shard's live machine state + stepwise gated execution.

    State is sparse (dicts keyed by *global* message id) because a shard
    only ever holds the in-flight slice of the message stream, not a
    frozen instance.
    """

    def __init__(
        self,
        shard_id: int,
        topology: TreeTopology,
        P: int,
        B: int,
        *,
        injector: "FaultInjector | None" = None,
        fault_aware: bool = False,
        retry_budget: int = 5,
        pace: int = 0,
    ) -> None:
        if P < 1 or B < 1:
            raise InvalidInstanceError(f"need P >= 1 and B >= 1, got {P}, {B}")
        if pace < 0:
            raise InvalidInstanceError(f"pace must be >= 0, got {pace}")
        self.shard_id = int(shard_id)
        self.topology = topology
        self.P = int(P)
        self.B = int(B)
        if injector is not None and injector.is_zero_plan:
            injector = None
        self.injector = injector
        self.fault_aware = bool(fault_aware) and injector is not None
        self.retry_budget = max(1, int(retry_budget))
        #: de-amortization budget: max messages delivered per step (0 =
        #: unpaced).  Oversized obligations are split, the rest held —
        #: the engine-level half of :class:`repro.serve.planner.PacedPlanner`.
        self.pace = int(pace)
        self._is_leaf = [topology.is_leaf(v) for v in range(topology.n_nodes)]
        self._root = topology.root
        #: global message id -> current node (in-flight messages only).
        self.location: dict[int, int] = {}
        #: global message id -> target leaf (in-flight messages only).
        self.targets: dict[int, int] = {}
        #: parked (non-completed) messages per internal non-root node.
        self.occupancy = [0] * topology.n_nodes
        self.pending: "list[_Pending]" = []
        self.schedule = FlushSchedule()
        self.stats = ShardStats()
        #: messages currently at the root (admitted, not yet flushed down).
        self.root_backlog = 0
        #: node -> last step of its observed stall window (fault-aware).
        self._stall_until: dict[int, int] = {}
        #: consecutive steps with ready work but no progress (deadlock probe).
        self.idle_streak = 0

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Messages admitted to this shard and not yet completed."""
        return len(self.location)

    @property
    def pending_flushes(self) -> int:
        """Planned flushes not yet fully executed."""
        return sum(1 for pf in self.pending if not pf.done)

    def unplanned(self, planned: "set[int]") -> "list[int]":
        """In-flight ids not covered by ``planned`` (helper for planners)."""
        return [m for m in self.location if m not in planned]

    def buffer_occupancy(self) -> "dict[int, int]":
        """Buffered message count per occupied node (root included).

        The live internal-node memory picture — what per-tenant buffer
        quotas (:mod:`repro.serve.tenancy`) bound; total equals
        :attr:`in_flight`."""
        occ: "dict[int, int]" = {}
        for node in self.location.values():
            occ[node] = occ.get(node, 0) + 1
        return occ

    def admit(self, msg_id: int, target_leaf: int, step: int) -> "int | None":
        """Place ``msg_id`` at the root; returns the completion step if the
        root *is* its target (single-node shard), else None."""
        root = self._root
        if target_leaf == root:
            # Degenerate shard (root == leaf): completes on admission.
            return step
        self.location[msg_id] = root
        self.targets[msg_id] = target_leaf
        self.root_backlog += 1
        self.stats.admitted += 1
        return None

    def root_stalled(self, step: int) -> bool:
        """True iff the root is inside a known/observed stall window.

        Admission control consults this so backpressure composes with
        fault-aware triage: while the shard's ingest point is stalled the
        queue holds instead of piling messages into a frozen root.
        """
        if self.injector is None:
            return False
        if self.fault_aware and self._stall_until.get(self._root, 0) >= step:
            return True
        return self.injector.is_stalled(step, self._root)

    def wipe(self) -> None:
        """Lose all in-flight machine state (a simulated shard crash).

        The chaos harness calls this to model a whole-shard kill: every
        location, target, buffer occupancy, and pending plan is gone, as
        if the shard process died.  The realized :attr:`schedule` and
        :attr:`stats` survive — they belong to the run's accounting, not
        to the shard's memory — and the supervisor is expected to
        :meth:`restore_state` from the journal before stepping again.
        """
        self.location = {}
        self.targets = {}
        self.occupancy = [0] * self.topology.n_nodes
        self.pending = []
        self.root_backlog = 0
        self._stall_until = {}
        self.idle_streak = 0

    def restore_state(
        self,
        locations: "dict[int, int]",
        targets: "dict[int, int]",
        *,
        schedule: "FlushSchedule | None" = None,
    ) -> None:
        """Rebuild in-flight state from a recovered snapshot.

        ``locations`` maps every in-flight global message id to its
        current node; ``targets`` must cover at least those ids.  Buffer
        occupancy and the root backlog are re-derived from the locations
        (the journal replay in :mod:`repro.serve.supervisor` produces
        them), the pending plan is cleared — the caller re-plans from
        the restored locations — and, when given, ``schedule`` replaces
        the realized schedule (restarts rebuild it from the journal so
        the report stays complete across a kill).
        """
        root = self._root
        is_leaf = self._is_leaf
        self.location = {int(m): int(v) for m, v in locations.items()}
        self.targets = {int(m): int(targets[m]) for m in locations}
        occupancy = [0] * self.topology.n_nodes
        backlog = 0
        for v in self.location.values():
            if v == root:
                backlog += 1
            elif not is_leaf[v]:
                occupancy[v] += 1
        self.occupancy = occupancy
        self.root_backlog = backlog
        self.pending = []
        self._stall_until = {}
        self.idle_streak = 0
        if schedule is not None:
            self.schedule = schedule

    def set_plan(self, flushes: "list[Flush]") -> None:
        """Replace the pending priority list (epoch full re-plan)."""
        self.pending = self._make_pending(flushes)

    def append_plan(self, flushes: "list[Flush]") -> None:
        """Append flushes at the tail of the priority list (incremental)."""
        self.pending.extend(self._make_pending(flushes))

    def _make_pending(self, flushes: "list[Flush]") -> "list[_Pending]":
        targets = self.targets
        return [
            _Pending(
                f,
                parking=sum(1 for m in f.messages if targets.get(m) != f.dest),
            )
            for f in flushes
        ]

    # ------------------------------------------------------------------
    def step(self, t: int, journal=None) -> "list[tuple[int, int]]":
        """Run one DAM time step; returns ``(msg_id, step)`` completions.

        Executes up to ``P`` ready-and-admissible pending flushes in
        priority order under the same gate as the batch executors; with an
        injector, failed/partial outcomes retry with backoff.  ``journal``
        (if given) receives shard-tagged flush/fault records.
        """
        is_leaf = self._is_leaf
        root = self._root
        location = self.location
        targets = self.targets
        occupancy = self.occupancy
        injector = self.injector
        B = self.B
        capacity = (
            self.P if injector is None else injector.effective_p(t, self.P)
        )
        if self.fault_aware and capacity < self.P:
            self.stats.degraded_triage_steps += 1
            passes: "tuple[bool | None, ...]" = (True, False)
        else:
            passes = (None,)
        pace = self.pace
        completions: "list[tuple[int, int]]" = []
        ran = 0
        attempted = 0
        work_done = 0
        waiting = False
        paced_out = False
        moved: set[int] = set()
        departed: dict[int, int] = {}
        arrived: dict[int, int] = {}
        for completions_only in passes:
            if attempted >= capacity or paced_out:
                break
            for pf in self.pending:
                if pf.done:
                    continue
                if attempted >= capacity:
                    break
                if pace and work_done >= pace:
                    # Per-step work budget spent: hold the rest of the
                    # plan for the next step (de-amortization), without
                    # tripping the deadlock probe.
                    self.stats.paced_holds += 1
                    waiting = True
                    paced_out = True
                    break
                if completions_only is True and pf.parking > 0:
                    continue
                if completions_only is False and pf.parking == 0:
                    continue
                if pf.eligible_at > t:
                    waiting = True
                    continue
                flush = pf.flush
                src = flush.src
                dest = flush.dest
                if self.fault_aware and (
                    self._stall_until.get(src, 0) >= t
                    or self._stall_until.get(dest, 0) >= t
                ):
                    self.stats.fault_aware_skips += 1
                    waiting = True
                    continue
                if injector is not None and (
                    injector.is_stalled(t, src) or injector.is_stalled(t, dest)
                ):
                    self.stats.stalled_skips += 1
                    if self.fault_aware:
                        for node in (src, dest):
                            end = injector.stall_window_end(t, node)
                            if end is not None and end > self._stall_until.get(
                                node, 0
                            ):
                                self._stall_until[node] = end
                    waiting = True
                    continue
                full = flush.messages
                if location.get(full[0]) != src:
                    continue  # O(1) reject: first message not here yet
                if any(location.get(m) != src or m in moved for m in full):
                    continue
                msgs = full
                park = pf.parking
                if pace and len(full) > pace - work_done:
                    # Oversized obligation: attempt only the prefix that
                    # fits the remaining step budget; the suffix stays
                    # pending at the same priority (a paced split).
                    msgs = full[: pace - work_done]
                    park = sum(1 for m in msgs if targets.get(m) != dest)
                if not is_leaf[dest]:
                    projected = (
                        occupancy[dest]
                        - departed.get(dest, 0)
                        + arrived.get(dest, 0)
                        + park
                    )
                    if projected > B:
                        continue
                attempted += 1
                if injector is None:
                    delivered: "tuple[int, ...]" = msgs
                else:
                    status, delivered = injector.flush_outcome(
                        t, src, dest, msgs
                    )
                    if status == OUTCOME_FAILED:
                        self.stats.failed_attempts += 1
                        pf.attempts += 1
                        pf.eligible_at = t + 1 + (1 << (pf.attempts - 1))
                        if journal is not None:
                            journal.record_fault(
                                t, self.shard_id, "failed_flush", src, dest,
                                f"{len(msgs)} msgs no-oped "
                                f"(attempt {pf.attempts})",
                            )
                        continue
                    if status == OUTCOME_PARTIAL:
                        self.stats.partial_deliveries += 1
                        remainder = tuple(
                            m for m in full if m not in set(delivered)
                        )
                        pf.flush = Flush(src, dest, remainder)
                        pf.parking = sum(
                            1 for m in remainder if targets[m] != dest
                        )
                        pf.attempts += 1
                        pf.eligible_at = t + 1 + (1 << (pf.attempts - 1))
                        if journal is not None:
                            journal.record_fault(
                                t, self.shard_id, "partial_flush", src, dest,
                                f"delivered {len(delivered)}/{len(msgs)} msgs "
                                f"(attempt {pf.attempts})",
                            )
                actual = (
                    flush
                    if len(delivered) == len(full)
                    else Flush(src, dest, delivered)
                )
                if len(delivered) == len(full):
                    pf.done = True
                elif msgs is not full and len(delivered) == len(msgs):
                    # Clean paced split: the untouched suffix becomes the
                    # pending obligation, immediately eligible, retry
                    # history preserved.
                    suffix = full[len(msgs):]
                    pf.flush = Flush(src, dest, suffix)
                    pf.parking = sum(
                        1 for m in suffix if targets[m] != dest
                    )
                    self.stats.paced_splits += 1
                ran += 1
                work_done += len(delivered)
                self.schedule.add(t, actual)
                self.stats.flushes += 1
                moved.update(delivered)
                if journal is not None:
                    journal.record_flush(t, self.shard_id, actual)
                delivered_parking = sum(
                    1 for m in delivered if targets[m] != dest
                )
                if src != root and not is_leaf[src]:
                    departed[src] = departed.get(src, 0) + len(delivered)
                elif src == root:
                    self.root_backlog -= len(delivered)
                if not is_leaf[dest]:
                    arrived[dest] = arrived.get(dest, 0) + delivered_parking
                for m in delivered:
                    if targets[m] == dest:
                        completions.append((m, t))
                        del location[m]
                        del targets[m]
                        self.stats.completed += 1
                    else:
                        location[m] = dest
        for v, d in departed.items():
            occupancy[v] -= d
        for v, a in arrived.items():
            occupancy[v] += a
        n_pending = self.pending_flushes
        if n_pending and len(self.pending) > 2 * n_pending:
            self.pending = [pf for pf in self.pending if not pf.done]
        if ran:
            self.stats.busy_steps += 1
            self.idle_streak = 0
        else:
            self.stats.idle_steps += 1
            if n_pending and not waiting:
                # Ready work exists but nothing could run: a candidate
                # deadlock (e.g. two appended plans blocking each other's
                # buffers).  The loop watches this streak and forces a
                # full re-plan.
                self.idle_streak += 1
            else:
                self.idle_streak = 0
        return completions


@dataclass(frozen=True)
class ShardSpec:
    """A shard's identity: its key range and its tree."""

    shard_id: int
    key_lo: int
    key_hi: int  # exclusive
    topology: TreeTopology
    #: leaves in increasing id order (the key range maps onto these).
    leaves: "tuple[int, ...]" = field(default=())

    def leaf_for_key(self, key: int) -> int:
        """The leaf of this shard's tree that owns ``key``."""
        span = self.key_hi - self.key_lo
        idx = (key - self.key_lo) * len(self.leaves) // span
        return self.leaves[min(idx, len(self.leaves) - 1)]


class ShardRouter:
    """Contiguous key-range routing over ``n_shards`` B^ε-tree shards.

    The key space splits into near-equal contiguous ranges; each range
    maps onto one shard's leaves in key order (so range queries stay
    local, the reason production systems shard by range rather than
    hash).  ``fanout > 0`` builds balanced ``fanout``-ary shard trees of
    the given height; otherwise B^ε-shaped trees with ``leaves`` leaves.
    """

    def __init__(
        self,
        n_shards: int,
        key_space: int,
        *,
        B: int,
        fanout: int = 0,
        height: int = 3,
        leaves: int = 64,
        eps: float = 0.5,
    ) -> None:
        if n_shards < 1:
            raise InvalidInstanceError(
                f"n_shards must be >= 1, got {n_shards}"
            )
        if key_space < n_shards:
            raise InvalidInstanceError(
                f"key_space ({key_space}) must be >= n_shards ({n_shards})"
            )
        self.n_shards = int(n_shards)
        self.key_space = int(key_space)
        #: Breaker-open diversion overlay: ``{src_shard: dst_shard}``.
        #: While present, arrivals keyed into ``src``'s range are routed
        #: to ``dst`` (resolved transitively, so a diverted-to shard
        #: that itself trips forwards the chain).  The base ranges are
        #: untouched — removing the entry restores normal routing.
        self.diverted: "dict[int, int]" = {}
        self.shards: "list[ShardSpec]" = []
        for s in range(self.n_shards):
            lo = s * self.key_space // self.n_shards
            hi = (s + 1) * self.key_space // self.n_shards
            topo = (
                balanced_tree(fanout, height)
                if fanout
                else beps_shape_tree(B, eps, leaves)
            )
            self.shards.append(
                ShardSpec(s, lo, hi, topo, tuple(topo.leaves))
            )

    def route(self, key: int) -> "tuple[int, int]":
        """Map a key to ``(shard_id, target_leaf)``."""
        if not (0 <= key < self.key_space):
            raise InvalidInstanceError(
                f"key {key} outside key space [0, {self.key_space})"
            )
        sid = min(
            key * self.n_shards // self.key_space, self.n_shards - 1
        )
        # Integer division can land one shard off at range boundaries
        # (ranges are floor-divided); fix up locally.
        while key < self.shards[sid].key_lo:
            sid -= 1
        while key >= self.shards[sid].key_hi:
            sid += 1
        home = self.shards[sid]
        final = self.resolve(sid)
        if final == sid:
            return sid, home.leaf_for_key(key)
        # Diverted: preserve key order on the host by mapping the key's
        # position within its *home* range proportionally onto the
        # host's leaves (the key itself is outside the host's range, so
        # the host's own leaf_for_key cannot place it).
        return final, self.divert_leaf(home, self.shards[final], key)

    @staticmethod
    def divert_leaf(home: ShardSpec, host: ShardSpec, key: int) -> int:
        """Host-shard leaf for a key diverted away from its home range."""
        span = home.key_hi - home.key_lo
        idx = (key - home.key_lo) * len(host.leaves) // span
        return host.leaves[min(idx, len(host.leaves) - 1)]

    # -- breaker-open diversion overlay --------------------------------
    def resolve(self, sid: int) -> int:
        """Follow the diversion overlay from ``sid`` to its current host.

        Transitive with a cycle guard: if following the chain revisits a
        shard (two shards diverted at each other), routing falls back to
        the *original* shard — a cycle means no healthy host exists, and
        the supervisor's spill queue is the right destination.
        """
        seen = {sid}
        cur = sid
        while cur in self.diverted:
            cur = self.diverted[cur]
            if cur in seen:
                return sid
            seen.add(cur)
        return cur

    def divert(self, src: int, dst: int) -> None:
        """Route ``src``'s key range to ``dst`` until :meth:`undivert`."""
        if src == dst:
            raise InvalidInstanceError(
                f"shard {src} cannot divert to itself"
            )
        for s in (src, dst):
            if not (0 <= s < self.n_shards):
                raise InvalidInstanceError(
                    f"shard {s} outside [0, {self.n_shards})"
                )
        self.diverted[src] = dst

    def undivert(self, src: int) -> None:
        """Remove ``src``'s overlay entry (no-op when not diverted)."""
        self.diverted.pop(src, None)
