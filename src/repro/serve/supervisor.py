"""Shard supervision: health tracking, circuit breakers, live restart.

The plain :class:`~repro.serve.loop.ServiceLoop` executes every shard
inline, so one wedged shard — a stall burst, a planner deadlock, a
killed worker — degrades or halts the whole service.  This module wraps
each :class:`~repro.serve.router.ShardEngine` in a supervision layer:

**Health state machine.**  Every shard is ``healthy``, ``degraded``,
``quarantined``, or ``recovering``.  At each epoch boundary the
supervisor takes a :class:`Heartbeat` from the engine's own counters
(flushes, completions, failed attempts since the last beat).  An epoch
with work pending but zero flushes *and* zero completions is a *stalled
epoch*: one marks the shard degraded, ``trip_after`` consecutive ones
trip its breaker.

**Circuit breaker.**  Per shard, closed / open / half-open.  It trips on
consecutive stalled epochs, on forced-replan exhaustion (where the plain
loop raises :class:`~repro.util.errors.ExecutionStalledError`, the
supervised loop quarantines the one shard and keeps serving), and on
chaos ``kill`` events.  While open the shard is skipped entirely —
no drain, no planning, no stepping — and its arrivals are **held in a
bounded spill queue** (counted by ``ServeMetrics.note_spill``) or, past
capacity, **counted-shed**; nothing is ever silently dropped, so
conservation (arrived = completed + shed + queued + spilled + in-flight)
reconciles exactly at every step.  Probe scheduling is deterministic
from ``ServeConfig.seed``: backoff doubles per trip up to
``max_backoff`` epochs, plus a seeded 0/1-epoch jitter.

**Live restart from the journal.**  When a probe fires, the shard is
rebuilt from its own durable history: the loop seals durability with a
checkpoint (every prior step becomes durable under the journal's
durable-step rule, confirmed through
:class:`~repro.dam.journal.RecoveryManager`), then
:func:`rebuild_shard_state` folds the shard-tagged flush records into
per-message locations, verifying every record against the admitted /
completed sets — any inconsistency is a typed
:class:`~repro.util.errors.JournalCorruptionError`, never a silent
wrong answer.  The fold itself runs over the loop's in-memory mirror of
the journaled records (byte-for-byte the same fold; the mirror is kept
precisely so restart composes with segment rotation + auto-compaction,
which may legitimately drop sealed flush records that a checkpoint
superseded), while the scan cross-checks that the durable journal holds
no shard record the mirror doesn't.  A restart consumes one unit of the
shard's ``restart_budget``; exhaustion (or a corrupt restart source)
**abandons** the shard: all of its outstanding messages are
counted-shed and the breaker is locked open.

**Multi-worker driver.**  ``workers > 1`` steps shards concurrently on a
:class:`~concurrent.futures.ThreadPoolExecutor` (shard-per-worker), with
a per-step deadline watchdog and bounded miss budget that converts a
hung worker into a diagnosable ``ExecutionStalledError``.  Engines
journal into per-shard buffers that the main thread replays in shard-id
order, so the journal bytes are identical to the sequential loop's — and
a single-shard, fault-free supervised run is byte-identical to
:class:`ServiceLoop` (journal bytes and completion times both), which
the determinism tests pin.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import asdict, dataclass, field
from dataclasses import fields as dataclass_fields

import numpy as np

from repro.dam.journal import JournalWriter, REC_FLUSH, RecoveryManager
from repro.dam.schedule import Flush, FlushSchedule
from repro.faults.chaos import (
    CHAOS_CORRUPT,
    CHAOS_DISK_FAULT,
    CHAOS_KILL,
    CHAOS_KILL_WORKER,
    ChaosInjector,
    ChaosPlan,
)
from repro.faults.iofaults import FaultFS, parse_plan
from repro.obs.hooks import current_obs
from repro.serve.loop import (
    MAX_FORCED_REPLANS,
    ServeConfig,
    ServeReport,
    ServiceLoop,
    _ServeJournal,
    _spawn_seed,
)
from repro.serve.router import ShardEngine
from repro.tree.topology import TreeTopology
from repro.util.errors import (
    ExecutionStalledError,
    InvalidInstanceError,
    JournalCorruptionError,
)
from repro.util.fsio import install

#: Shard health states.
HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"
RECOVERING = "recovering"
HEALTH_STATES = (HEALTHY, DEGRADED, QUARANTINED, RECOVERING)

#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision knobs (separate from :class:`ServeConfig` on purpose:
    the serve config is the journaled identity of the *run*; supervision
    parameters shape how faults are survived, and the default-valued
    supervised journal stays byte-identical to the plain loop's).

    Attributes
    ----------
    trip_after:
        Consecutive stalled epochs that trip a shard's breaker.
    probe_backoff:
        Epochs an open breaker waits before its first half-open probe.
        Doubles per trip (``probe_backoff * 2**(trips-1)``).
    max_backoff:
        Cap on the probe backoff, in epochs.
    spill_capacity:
        Bound on each shard's spill queue (0 = derived, ``16 * B``).
        Arrivals past the bound are counted-shed.
    restart_budget:
        Live restarts a shard may consume before it is abandoned.
    watchdog_deadline:
        Seconds a worker may take for one shard-step before the
        watchdog counts a miss (multi-worker driver only).
    watchdog_budget:
        Consecutive watchdog misses tolerated before the run fails with
        a diagnosable :class:`ExecutionStalledError` (thread driver; the
        process driver escalates cancel → terminate → kill instead).
    divert:
        Breaker-aware routing: while a shard's breaker is open, route
        its key range to a healthy neighbor shard (spill queue handed
        off with the switch, journal-checkpointed) and merge back on
        probe success.  Off by default — diversion changes which shard
        serves which key, so it is an explicit opt-in.
    """

    trip_after: int = 2
    probe_backoff: int = 1
    max_backoff: int = 8
    spill_capacity: int = 0
    restart_budget: int = 3
    watchdog_deadline: float = 30.0
    watchdog_budget: int = 3
    divert: bool = False

    def __post_init__(self) -> None:
        if self.trip_after < 1:
            raise InvalidInstanceError(
                f"trip_after must be >= 1, got {self.trip_after}"
            )
        if self.probe_backoff < 1 or self.max_backoff < self.probe_backoff:
            raise InvalidInstanceError(
                f"need 1 <= probe_backoff <= max_backoff, got "
                f"{self.probe_backoff}, {self.max_backoff}"
            )
        if self.spill_capacity < 0:
            raise InvalidInstanceError(
                f"spill_capacity must be >= 0, got {self.spill_capacity}"
            )
        if self.restart_budget < 0:
            raise InvalidInstanceError(
                f"restart_budget must be >= 0, got {self.restart_budget}"
            )
        if not self.watchdog_deadline > 0:
            raise InvalidInstanceError(
                f"watchdog_deadline must be > 0, got {self.watchdog_deadline}"
            )
        if self.watchdog_budget < 1:
            raise InvalidInstanceError(
                f"watchdog_budget must be >= 1, got {self.watchdog_budget}"
            )

    def to_meta(self) -> dict:
        """JSON-ready form for a journal ``meta`` payload."""
        return asdict(self)

    @classmethod
    def from_meta(cls, payload: dict) -> "SupervisorConfig":
        """Inverse of :meth:`to_meta` (unknown keys ignored)."""
        names = {f.name for f in dataclass_fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})


class CircuitBreaker:
    """One shard's closed / open / half-open breaker.

    Probe scheduling is deterministic: backoff doubles per trip (capped)
    and the jitter draw comes from a per-shard generator seeded from the
    run seed, so two identical runs probe at identical epochs.
    """

    def __init__(
        self,
        shard_id: int,
        *,
        trip_after: int,
        probe_backoff: int,
        max_backoff: int,
        seed: int,
    ) -> None:
        self.shard_id = int(shard_id)
        self.trip_after = int(trip_after)
        self.probe_backoff = int(probe_backoff)
        self.max_backoff = int(max_backoff)
        self._rng = np.random.default_rng(
            np.random.SeedSequence(entropy=int(seed) & 0xFFFFFFFF)
        )
        self.state = BREAKER_CLOSED
        self.consecutive_stalls = 0
        self.trips = 0
        #: epoch of the next half-open probe (-1 while closed/permanent).
        self.probe_at = -1
        #: abandoned shards lock their breaker open forever.
        self.permanent = False

    def note_ok(self) -> None:
        """A closed-state epoch made progress (or had nothing to do)."""
        self.consecutive_stalls = 0

    def note_stall(self) -> bool:
        """Count a stalled epoch; True when the trip threshold is hit."""
        self.consecutive_stalls += 1
        return self.consecutive_stalls >= self.trip_after

    def trip(self, epoch: int) -> None:
        """Open (from closed or half-open) and schedule the next probe."""
        if self.state == BREAKER_OPEN:
            return
        self.state = BREAKER_OPEN
        self.trips += 1
        self.consecutive_stalls = 0
        backoff = min(
            self.max_backoff, self.probe_backoff << (self.trips - 1)
        )
        jitter = int(self._rng.integers(0, 2))
        self.probe_at = int(epoch) + backoff + jitter

    def probe_due(self, epoch: int) -> bool:
        """True when an open breaker should go half-open at ``epoch``."""
        return (
            self.state == BREAKER_OPEN
            and not self.permanent
            and self.probe_at >= 0
            and int(epoch) >= self.probe_at
        )

    def half_open(self) -> None:
        self.state = BREAKER_HALF_OPEN

    def close(self) -> None:
        self.state = BREAKER_CLOSED
        self.consecutive_stalls = 0
        self.probe_at = -1

    def lock_open(self) -> None:
        """Open permanently (abandoned shard): probes never fire again."""
        self.state = BREAKER_OPEN
        self.permanent = True
        self.probe_at = -1

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(shard={self.shard_id}, {self.state}, "
            f"trips={self.trips}, probe_at={self.probe_at})"
        )


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """One shard's per-epoch vital signs (deltas since the last beat)."""

    epoch: int
    shard: int
    state: str
    flushes: int
    completions: int
    failed_attempts: int
    in_flight: int
    queued: int
    spilled: int
    stalled: bool


@dataclass
class SupervisorStats:
    """Everything the supervision layer did, countable and JSON-ready."""

    trips: int = 0
    probes: int = 0
    quarantine_epochs: int = 0
    spilled: int = 0
    spill_overflow_shed: int = 0
    restarts: int = 0
    replayed_flushes: int = 0
    corrupt_restarts: int = 0
    abandoned_shards: int = 0
    abandoned_messages: int = 0
    watchdog_timeouts: int = 0
    #: process-driver supervision (always 0 under the thread driver).
    worker_deaths: int = 0
    worker_respawns: int = 0
    watchdog_cancels: int = 0
    watchdog_terminates: int = 0
    watchdog_kills: int = 0
    #: chaos ``disk-fault`` windows (always 0 without disk-fault events).
    disk_fault_windows: int = 0
    disk_faults_injected: int = 0
    store_degraded_epochs: int = 0
    #: breaker-aware routing (always 0 unless ``divert`` is enabled).
    diversions: int = 0
    merge_backs: int = 0
    divert_handoff_msgs: int = 0
    trips_by_shard: dict = field(default_factory=dict)
    quarantine_epochs_by_shard: dict = field(default_factory=dict)
    restarts_by_shard: dict = field(default_factory=dict)
    spilled_by_shard: dict = field(default_factory=dict)

    def _bump(self, by_shard: dict, shard: int, n: int = 1) -> None:
        by_shard[int(shard)] = by_shard.get(int(shard), 0) + n

    def snapshot(self) -> dict:
        """Plain-dict form (stable key order under ``sort_keys``)."""
        snap = asdict(self)
        for key in (
            "trips_by_shard", "quarantine_epochs_by_shard",
            "restarts_by_shard", "spilled_by_shard",
        ):
            snap[key] = {str(s): n for s, n in sorted(snap[key].items())}
        return snap


@dataclass
class SupervisedReport(ServeReport):
    """A :class:`ServeReport` plus what supervision did to produce it."""

    supervisor: "SupervisorStats | None" = None
    health_log: "tuple[Heartbeat, ...]" = ()
    chaos: "ChaosPlan | None" = None
    #: process-driver lifecycle: ``(event, shard, pid, step)`` tuples
    #: (pids are real and therefore non-deterministic; they live here,
    #: never in the metrics snapshot that determinism drills diff).
    worker_log: "tuple[tuple, ...]" = ()


def rebuild_shard_state(
    flush_records: "list[tuple[int, int, int, tuple[int, ...]]]",
    *,
    admitted: "set[int]",
    completed: "set[int]",
    targets: "dict[int, int]",
    topology: TreeTopology,
) -> "tuple[dict[int, int], FlushSchedule]":
    """Fold one shard's journaled flushes back into machine state.

    ``flush_records`` is the shard's durable flush history in journal
    order, as ``(t, src, dest, msgs)`` tuples.  ``admitted`` is the set
    of global ids admitted to the shard and still outstanding;
    ``completed`` the ids the shard already delivered.  Every admitted
    message starts at the root and moves along its records; a record
    referencing an unknown message, or moving a message from a node it
    is not at, or a completed message whose delivery the fold never saw,
    raises a typed :class:`JournalCorruptionError` — restart is exact or
    it is a detected failure, never silently wrong.

    Returns ``(locations, schedule)``: the outstanding messages' current
    nodes (root-resident ones included) and the realized
    :class:`FlushSchedule` rebuilt from the records.
    """
    root = topology.root
    known = admitted | completed
    locations: "dict[int, int]" = {}
    for m in known:
        target = targets.get(m)
        if target is None:
            raise JournalCorruptionError(
                f"message {m} has no recorded target leaf",
                reason="schedule-mismatch",
            )
        if target != root:
            locations[m] = root
    schedule = FlushSchedule()
    for t, src, dest, msgs in flush_records:
        schedule.add(int(t), Flush(int(src), int(dest), tuple(msgs)))
        for m in msgs:
            if m not in known:
                raise JournalCorruptionError(
                    f"journaled flush at step {t} references message {m}, "
                    "which was never admitted to this shard",
                    reason="schedule-mismatch",
                )
            if locations.get(m) != src:
                raise JournalCorruptionError(
                    f"journaled flush at step {t} moves message {m} from "
                    f"node {src}, but the fold places it at "
                    f"{locations.get(m)}",
                    reason="schedule-mismatch",
                )
            if dest == targets[m]:
                del locations[m]
            else:
                locations[m] = dest
    for m in completed:
        if m in locations:
            raise JournalCorruptionError(
                f"message {m} completed but its delivery flush is missing "
                "from the durable journal prefix",
                reason="schedule-mismatch",
            )
    return locations, schedule


class _ShardJournalBuffer:
    """Per-shard record buffer for one step of (possibly threaded)
    execution.  Presents the ``record_flush`` / ``record_fault`` face of
    :class:`_ServeJournal`; the main thread replays buffers in shard-id
    order so journal bytes match the sequential loop exactly."""

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: "list[tuple]" = []

    def record_flush(self, t: int, shard: int, flush: Flush) -> None:
        self.records.append((REC_FLUSH, t, shard, flush))

    def record_fault(self, t: int, shard: int, kind: str, src: int,
                     dest: int, detail: str) -> None:
        self.records.append(("fault", t, shard, (kind, src, dest, detail)))

    def replay(self, journal: "_ServeJournal | None",
               shadow: "list[tuple[int, int, Flush]]") -> None:
        for rtype, t, shard, payload in self.records:
            if rtype == REC_FLUSH:
                if journal is not None:
                    journal.record_flush(t, shard, payload)
                shadow.append((t, shard, payload))
            elif journal is not None:
                journal.record_fault(t, shard, *payload)


def apply_chaos_windows(engine: ShardEngine, chaos: ChaosPlan,
                        config: ServeConfig, sid: int) -> None:
    """Layer a chaos plan's stall windows over one shard's injector.

    Factored out of the loop constructor so a shared-nothing worker
    process can wrap its rebuilt engine identically (the injector seed
    is a pure function of the run seed and the shard id).
    """
    windows = chaos.stall_windows(sid)
    if windows:
        engine.injector = ChaosInjector(
            windows, base=engine.injector, shard_id=sid,
            seed=_spawn_seed(config.seed, 98, sid),
        )
        engine.fault_aware = bool(config.fault_aware)


class SupervisedLoop(ServiceLoop):
    """:class:`ServiceLoop` under supervision (see module docstring).

    ``workers=0`` means shard-per-worker; ``workers=1`` forces the
    sequential path (which a single-shard run always takes).  ``chaos``
    drives the scenario; ``supervisor`` tunes the breaker/restart
    policy.  Journal meta carries the chaos plan and any non-default
    supervisor config, so :func:`~repro.serve.loop.recover_serve`
    re-derives the identical supervised run.
    """

    def __init__(
        self,
        config: ServeConfig,
        *,
        supervisor: "SupervisorConfig | None" = None,
        chaos: "ChaosPlan | None" = None,
        workers: int = 0,
        journal=None,
        sync: bool = False,
        max_segment_bytes: "int | None" = None,
        compact_every_rotations: int = 0,
    ) -> None:
        super().__init__(
            config, journal=journal, sync=sync,
            max_segment_bytes=max_segment_bytes,
            compact_every_rotations=compact_every_rotations,
        )
        self.supervisor_config = (
            supervisor if supervisor is not None else SupervisorConfig()
        )
        self.chaos = chaos if chaos is not None else ChaosPlan()
        n = len(self.engines)
        self.workers = min(int(workers), n) if workers else n
        sup = self.supervisor_config
        self._spill_capacity = sup.spill_capacity or 16 * config.B
        self._breakers = [
            CircuitBreaker(
                s,
                trip_after=sup.trip_after,
                probe_backoff=sup.probe_backoff,
                max_backoff=sup.max_backoff,
                seed=_spawn_seed(config.seed, 97, s),
            )
            for s in range(n)
        ]
        self._health = [HEALTHY] * n
        self._spill: "list[deque]" = [deque() for _ in range(n)]
        self._restarts_left = [sup.restart_budget] * n
        self._abandoned = [False] * n
        self._corrupted = [False] * n
        #: every routed message's target leaf (restart folds need the
        #: targets of completed messages too, which metrics drop).
        self._leaf_of: "dict[int, int]" = {}
        #: in-memory mirror of journaled flush records (t, shard, flush);
        #: the restart fold runs on this (see module docstring).
        self._shadow: "list[tuple[int, int, Flush]]" = []
        self._last_hb = [(0, 0, 0)] * n
        self.sup_stats = SupervisorStats()
        self.health_log: "list[Heartbeat]" = []
        self.worker_log: "list[tuple]" = []
        self._pool: "ThreadPoolExecutor | None" = None
        #: active chaos disk-fault windows as ``(end_step, rules)``; the
        #: union of their rules is the ambient FaultFS while any is open.
        self._fault_windows: "list[tuple[int, tuple]]" = []
        self._fault_fs: "FaultFS | None" = None
        #: the step currently being supervised (diversion handoffs fire
        #: from breaker trips, which happen at several call depths).
        self._clock = 0
        # Chaos stall windows wrap the target shards' injectors; kills
        # and corruptions are applied by _begin_step.
        for s, eng in enumerate(self.engines):
            apply_chaos_windows(eng, self.chaos, config, s)

    # -- journal meta / lifecycle --------------------------------------
    def _journal_meta(self) -> dict:
        """Journal meta for this run.  Only non-default supervision
        state goes in: the default supervised journal stays
        byte-identical to ServiceLoop's.  When supervision *is* in
        play, the driver topology rides along so recovery re-derives
        the run under the identical driver."""
        meta = self.config.to_meta()
        if not self.chaos.is_zero:
            meta["chaos"] = self.chaos.to_meta()
        if self.supervisor_config != SupervisorConfig():
            meta["supervisor"] = self.supervisor_config.to_meta()
        if "chaos" in meta or "supervisor" in meta:
            meta["driver"] = self._driver_meta()
        return meta

    def _driver_meta(self) -> dict:
        return {"kind": "threads", "workers": self.workers}

    def _open_journal(self) -> "_ServeJournal | None":
        if self._journal_arg is None:
            return None
        if isinstance(self._journal_arg, JournalWriter):
            return _ServeJournal(self._journal_arg, False,
                                 self.config.checkpoint_every)
        meta = self._journal_meta()
        writer = JournalWriter(
            self._journal_arg, meta=meta, sync=self._sync,
            max_segment_bytes=self._max_segment_bytes,
            compact_every_rotations=self._compact_every,
        )
        return _ServeJournal(writer, True, self.config.checkpoint_every)

    def run(self) -> "SupervisedReport":
        try:
            return super().run()
        finally:
            if self._fault_fs is not None or self._fault_windows:
                self._fault_windows = []
                self._refresh_fault_fs()
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = None

    # -- small helpers -------------------------------------------------
    def _count(self, name: str, desc: str, *, shard: "int | None" = None,
               n: int = 1) -> None:
        obs = current_obs()
        if not obs.enabled:
            return
        counter = obs.metrics.counter(name, desc)
        counter.inc(n)
        if shard is not None:
            counter.labels(shard=shard).inc(n)

    def _shed(self, gid: int, t: int) -> None:
        self.metrics.note_shed(gid, t)
        self.arrivals.notify_shed(gid, t)

    def _open_breaker(self, sid: int, epoch: int) -> None:
        self._breakers[sid].trip(epoch)
        self._health[sid] = QUARANTINED
        self.sup_stats.trips += 1
        self.sup_stats._bump(self.sup_stats.trips_by_shard, sid)
        self._count(
            "serve_breaker_trips_total", "shard circuit breakers tripped",
            shard=sid,
        )
        self._maybe_divert(sid)

    # -- breaker-aware diversion ---------------------------------------
    def _divert_target(self, sid: int) -> "int | None":
        """Deterministic neighbor choice: prefer ``sid + 1``, else
        ``sid - 1``; a candidate must be serving (not quarantined or
        abandoned) and must still own its own range."""
        for n in (sid + 1, sid - 1):
            if not (0 <= n < len(self.engines)) or self._abandoned[n]:
                continue
            if self._health[n] in (HEALTHY, DEGRADED) \
                    and self.router.resolve(n) == n:
                return n
        return None

    def _remap_leaf(self, src: int, dst: int, leaf: int) -> int:
        """Map a src-shard leaf onto dst's leaves, preserving key order."""
        src_leaves = self.router.shards[src].leaves
        dst_leaves = self.router.shards[dst].leaves
        idx = src_leaves.index(leaf) * len(dst_leaves) // len(src_leaves)
        return dst_leaves[min(idx, len(dst_leaves) - 1)]

    def _maybe_divert(self, sid: int) -> None:
        """Divert a breaker-open shard's key range to a healthy neighbor.

        The switch is journal-checkpointed: durability is sealed first,
        then a ``divert`` record names the new host and every spill-queue
        message handed over with it, so the ownership move is durable at
        the moment it happened.  Conservation is exact across the
        handoff — every spilled message is either requeued on the
        neighbor or counted-shed, and its ``shard_of`` moves with it.
        """
        if not self.supervisor_config.divert or self._abandoned[sid]:
            return
        if sid in self.router.diverted:
            return
        target = self._divert_target(sid)
        if target is None:
            return
        t = self._clock
        self.router.divert(sid, target)
        items = [
            (gid, self._remap_leaf(sid, target, leaf))
            for gid, leaf in self._spill[sid]
        ]
        self._spill[sid].clear()
        for gid, leaf in items:
            self._leaf_of[gid] = leaf
            self.metrics.shard_of[gid] = target
        if self._journal is not None:
            if t > 1:
                self._journal.checkpoint(
                    t - 1, self._next_gid, len(self.metrics.completion_step)
                )
            self._journal.record_divert(t, sid, target,
                                        [gid for gid, _ in items])
        self.sup_stats.diversions += 1
        self.sup_stats.divert_handoff_msgs += len(items)
        self._count(
            "serve_diversions_total",
            "breaker-open key-range diversions", shard=sid,
        )
        if items:
            self._count(
                "serve_divert_handoff_msgs_total",
                "spill-queue messages handed off by diversions",
                n=len(items),
            )
        self._deliver_requeue(target, items, t)

    def _merge_back(self, sid: int, t: int) -> None:
        """Remove ``sid``'s overlay on probe success (messages already
        diverted stay with the neighbor that admitted them)."""
        if sid not in self.router.diverted:
            return
        self.router.undivert(sid)
        if self._journal is not None:
            self._journal.record_divert(t, sid, sid)
        self.sup_stats.merge_backs += 1
        self._count(
            "serve_merge_backs_total",
            "diverted key ranges merged back", shard=sid,
        )

    def _deliver_requeue(self, sid: int, items: "list[tuple[int, int]]",
                         t: int) -> None:
        """Put handed-off ``(gid, leaf)`` pairs in front of ``sid``'s
        admission; the queue bound sheds the overflow, counted."""
        accepted = self.admission.handoff(sid, items)
        for gid, _leaf in items[accepted:]:
            self._shed(gid, t)
            self.sup_stats.spill_overflow_shed += 1

    # -- phase overrides -----------------------------------------------
    def _finished(self) -> bool:
        if not super()._finished():
            return False
        if any(self._spill):
            return False
        m = self.metrics
        outstanding = (
            len(m.arrival_step) - len(m.completion_step) - len(m.shed_ids)
        )
        # Outstanding messages with every queue empty live only in a
        # killed shard's lost state: the run isn't over until a probe
        # restores them (or abandonment sheds them).
        return outstanding == 0

    def _begin_step(self, t: int) -> None:
        self._clock = t
        super()._begin_step(t)  # tenancy: epoch ledger + SLO breakers
        if self.planner.is_boundary(t) and t > 1:
            self._heartbeat(t)
        refresh = False
        if self._fault_windows:
            live = [w for w in self._fault_windows if w[0] > t]
            if len(live) != len(self._fault_windows):
                self._fault_windows = live
                refresh = True
        for event in self.chaos.events_at(t):
            if event.shard >= len(self.engines):
                continue
            if event.kind == CHAOS_KILL:
                self._kill_shard(event.shard, t)
            elif event.kind == CHAOS_CORRUPT:
                self._corrupted[event.shard] = True
            elif event.kind == CHAOS_KILL_WORKER:
                self._kill_worker(event.shard, t)
            elif event.kind == CHAOS_DISK_FAULT:
                refresh = self._open_fault_window(event, t) or refresh
        if refresh:
            self._refresh_fault_fs()

    # -- disk-fault windows --------------------------------------------
    def _open_fault_window(self, event, t: int) -> bool:
        """Start one chaos ``disk-fault`` window: for ``duration`` steps
        every storage syscall in this process routes through a
        :class:`FaultFS` armed with the event's plan.  The thread driver
        owns every store and journal in-process, so the ambient handle
        is the whole fault domain (the process driver additionally arms
        its workers; see :mod:`repro.serve.procpool`)."""
        self._fault_windows.append((t + event.duration,
                                    parse_plan(event.spec)))
        self.sup_stats.disk_fault_windows += 1
        self._count(
            "serve_disk_fault_windows_total",
            "chaos disk-fault windows opened",
            shard=event.shard,
        )
        return True

    def _refresh_fault_fs(self) -> None:
        """(Re)install the ambient handle for the active windows; the
        retiring handle's fired log is drained into the stats first."""
        if self._fault_fs is not None:
            self._note_faults_fired(self._fault_fs)
        rules = tuple(
            rule for _end, plan in self._fault_windows for rule in plan
        )
        if rules:
            self._fault_fs = FaultFS(rules)
            install(self._fault_fs)
        else:
            self._fault_fs = None
            install(None)

    def _note_faults_fired(self, fs: "FaultFS") -> None:
        fired = len(fs.fired)
        if fired:
            self.sup_stats.disk_faults_injected += fired
            self._count(
                "serve_disk_faults_injected_total",
                "syscall faults injected by chaos disk-fault windows",
                n=fired,
            )
            fs.fired.clear()

    def _kill_worker(self, sid: int, t: int) -> None:
        """``kill-worker`` under a threads-only driver degrades to a
        simulated kill: there is no separate process to SIGKILL, but the
        shard still loses all in-memory state (the process driver
        overrides this with a real signal)."""
        self._kill_shard(sid, t)

    def _offer(self, sid: int, gid: int, leaf: int, t: int) -> None:
        self._leaf_of[gid] = leaf
        if self._abandoned[sid]:
            # Still an offer at the door — the shard just cannot take it.
            self.admission.stats.offered += 1
            self.admission.stats.shed += 1
            by = self.admission.stats.shed_by_shard
            by[sid] = by.get(sid, 0) + 1
            self.admission.note_external_shed(sid, gid)
            self._shed(gid, t)
            self.sup_stats.abandoned_messages += 1
            return
        if self._health[sid] == QUARANTINED:
            self.admission.stats.offered += 1
            if len(self._spill[sid]) < self._spill_capacity:
                self._spill[sid].append((gid, leaf))
                self.metrics.note_spill(gid, t)
                self.sup_stats.spilled += 1
                self.sup_stats._bump(self.sup_stats.spilled_by_shard, sid)
                self._count(
                    "serve_spilled_total",
                    "arrivals held in supervisor spill queues",
                    shard=sid,
                )
            else:
                self.admission.stats.shed += 1
                by = self.admission.stats.shed_by_shard
                by[sid] = by.get(sid, 0) + 1
                self.admission.note_external_shed(sid, gid)
                self._shed(gid, t)
                self.sup_stats.spill_overflow_shed += 1
            return
        super()._offer(sid, gid, leaf, t)

    def _drain_shard(self, sid: int, engine: ShardEngine, t: int) -> None:
        if self._health[sid] == QUARANTINED:
            return
        super()._drain_shard(sid, engine, t)

    def _plan_shard(self, sid: int, engine: ShardEngine, t: int,
                    boundary: bool) -> None:
        if self._health[sid] == QUARANTINED:
            return
        super()._plan_shard(sid, engine, t, boundary)

    def _on_replans_exhausted(self, sid: int, engine: ShardEngine,
                              t: int) -> None:
        # Where the plain loop raises, the supervised loop quarantines
        # the one deadlocked shard and keeps the rest serving; the probe
        # path restarts it from the journal with a fresh plan.
        self._open_breaker(sid, self.planner.epoch_of(t))

    def _queue_depth(self, sid: int) -> int:
        return super()._queue_depth(sid) + len(self._spill[sid])

    def _execute_shards(self, t: int) -> None:
        active = [
            s for s in range(len(self.engines))
            if self._health[s] != QUARANTINED
        ]
        buffers = {s: _ShardJournalBuffer() for s in active}
        if self.workers > 1 and len(active) > 1:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="shard-worker",
                )
            futures = {
                s: self._pool.submit(self.engines[s].step, t, buffers[s])
                for s in active
            }
            results = {s: self._await(s, futures[s], t) for s in active}
        else:
            results = {
                s: self.engines[s].step(t, buffers[s]) for s in active
            }
        for s in active:
            buffers[s].replay(self._journal, self._shadow)
            for gid, step in results[s]:
                self._complete(gid, step)

    def _await(self, sid: int, future, t: int):
        """Deadline-watchdogged result collection for one shard step."""
        sup = self.supervisor_config
        misses = 0
        while True:
            try:
                return future.result(timeout=sup.watchdog_deadline)
            except FutureTimeoutError:
                misses += 1
                self.sup_stats.watchdog_timeouts += 1
                self._count(
                    "serve_watchdog_timeouts_total",
                    "shard-step watchdog deadline misses",
                    shard=sid,
                )
                if misses >= sup.watchdog_budget:
                    raise ExecutionStalledError(
                        f"shard {sid} missed {misses} watchdog "
                        f"deadline(s) of {sup.watchdog_deadline}s at "
                        f"step {t}",
                        step=t,
                        shard_id=sid,
                        epoch=self.planner.epoch_of(t),
                        last_durable_step=self._durable_step(),
                    ) from None

    # -- supervision proper --------------------------------------------
    def _vitals(self, sid: int) -> "tuple[int, int, int, int]":
        """Cumulative ``(flushes, completed, failed_attempts, in_flight)``
        for one shard.  The thread driver reads the live engine; the
        process driver overrides this to read its merged mirrors."""
        es = self.engines[sid].stats
        return (es.flushes, es.completed, es.failed_attempts,
                self.engines[sid].in_flight)

    def _admission_depth(self, sid: int) -> int:
        """Arrivals queued in front of ``sid`` (driver-specific source)."""
        return self.admission.queue_depth(sid)

    def _heartbeat(self, t: int) -> None:
        """Evaluate the epoch that ended at step ``t - 1``."""
        epoch = self.planner.epoch_of(t - 1)
        stats = self.sup_stats
        if self._fault_fs is not None:
            # Surface injected faults as they happen, not only at close.
            self._note_faults_fired(self._fault_fs)
        store = getattr(self, "store", None)
        if store is not None and getattr(store, "degraded", ""):
            stats.store_degraded_epochs += 1
            self._count(
                "serve_store_degraded_epochs_total",
                "epochs the durable store spent degraded (read-only)",
            )
        for sid in range(len(self.engines)):
            flushes, completed, failed, in_flight = self._vitals(sid)
            prev = self._last_hb[sid]
            d_flush = flushes - prev[0]
            d_done = completed - prev[1]
            d_failed = failed - prev[2]
            self._last_hb[sid] = (flushes, completed, failed)
            queued = self._admission_depth(sid)
            spilled = len(self._spill[sid])
            pending = in_flight > 0 or queued > 0
            stalled = pending and d_flush == 0 and d_done == 0
            state = self._health[sid]
            self.health_log.append(Heartbeat(
                epoch=epoch, shard=sid, state=state,
                flushes=d_flush, completions=d_done,
                failed_attempts=d_failed, in_flight=in_flight,
                queued=queued, spilled=spilled, stalled=stalled,
            ))
            if self._abandoned[sid]:
                continue
            breaker = self._breakers[sid]
            if state == QUARANTINED:
                stats.quarantine_epochs += 1
                stats._bump(stats.quarantine_epochs_by_shard, sid)
                self._count(
                    "serve_quarantine_epochs_total",
                    "epochs shards spent quarantined",
                    shard=sid,
                )
                # A shard that tripped with no healthy neighbor may gain
                # one later — divert then, handing over whatever spilled
                # in the meantime.
                self._maybe_divert(sid)
                if breaker.probe_due(epoch):
                    breaker.half_open()
                    self._health[sid] = RECOVERING
                    stats.probes += 1
                    self._count(
                        "serve_breaker_probes_total",
                        "half-open breaker probes",
                        shard=sid,
                    )
                    self._restart_shard(sid, t)
            elif state == RECOVERING:
                if d_flush > 0 or d_done > 0 or (
                    in_flight == 0 and queued == 0 and spilled == 0
                ):
                    breaker.close()
                    self._health[sid] = HEALTHY
                    self._merge_back(sid, t)
                else:
                    # The probe epoch made no progress: back to open,
                    # with a deeper backoff.
                    self._open_breaker(sid, epoch)
            else:
                if stalled:
                    self._health[sid] = DEGRADED
                    if breaker.note_stall():
                        self._open_breaker(sid, epoch)
                else:
                    breaker.note_ok()
                    self._health[sid] = HEALTHY

    def _kill_shard(self, sid: int, t: int) -> None:
        """Chaos kill: the shard loses all in-memory state right now."""
        self.engines[sid].wipe()
        self.admission.reset_shard_residency(sid)
        self._fresh[sid] = []
        if self._breakers[sid].state != BREAKER_OPEN:
            self._open_breaker(sid, self.planner.epoch_of(t))

    def _outstanding(self, sid: int) -> "list[int]":
        m = self.metrics
        return sorted(
            g for g, s in m.shard_of.items()
            if s == sid
            and g not in m.completion_step
            and g not in m.shed_ids
        )

    def _restart_records(
        self, sid: int, t: int
    ) -> "list[tuple[int, int, int, tuple[int, ...]]]":
        """The shard's durable flush history for the restart fold.

        With a journal attached, durability is sealed first (checkpoint
        + flush: every record through step ``t - 1`` becomes durable)
        and the scan cross-checks that the durable journal holds no
        record for this shard that the in-memory mirror doesn't — the
        detection half of the exact-or-typed-error contract.  The fold
        itself always runs on the mirror, which survives rotation +
        compaction dropping sealed records a checkpoint superseded.
        """
        mirror = [
            (t0, f.src, f.dest, tuple(f.messages))
            for t0, s, f in self._shadow if s == sid
        ]
        if self._journal is not None:
            self._journal.checkpoint(
                t - 1, self._next_gid, len(self.metrics.completion_step)
            )
            manager = RecoveryManager(self._journal.writer.path)
            scan = manager.scan(refresh=True)
            durable = manager.last_durable_step()
            mirrored = set(mirror)
            for rec in scan.records:
                if rec["type"] != REC_FLUSH or int(rec.get("shard", 0)) != sid:
                    continue
                if int(rec["t"]) > durable:
                    continue
                key = (int(rec["t"]), int(rec["src"]), int(rec["dest"]),
                       tuple(int(m) for m in rec["msgs"]))
                if key not in mirrored:
                    raise JournalCorruptionError(
                        f"shard {sid}: durable journal holds flush "
                        f"{key!r} that this run never executed",
                        reason="schedule-mismatch",
                    )
        return mirror

    def _restart_shard(self, sid: int, t: int) -> bool:
        """Rebuild a quarantined shard from its durable history."""
        engine = self.engines[sid]
        stats = self.sup_stats
        if self._restarts_left[sid] <= 0:
            self._abandon(sid, t)
            return False
        self._restarts_left[sid] -= 1
        try:
            if self._corrupted[sid]:
                raise JournalCorruptionError(
                    f"shard {sid}: restart source poisoned by a chaos "
                    "corrupt event",
                    reason="bad-payload",
                )
            records = self._restart_records(sid, t)
            admitted = {
                m for m in self.metrics.admit_step
                if self.metrics.shard_of[m] == sid
                and m not in self.metrics.completion_step
            }
            completed = {
                m for m in self.metrics.completion_step
                if self.metrics.shard_of[m] == sid
            }
            locations, _schedule = rebuild_shard_state(
                records,
                admitted=admitted,
                completed=completed,
                targets=self._leaf_of,
                topology=engine.topology,
            )
        except JournalCorruptionError:
            stats.corrupt_restarts += 1
            self._abandon(sid, t)
            return False
        self._apply_restart(sid, t, locations)
        stats.restarts += 1
        stats._bump(stats.restarts_by_shard, sid)
        stats.replayed_flushes += len(records)
        self._count(
            "serve_shard_restarts_total",
            "live shard restarts from the journal",
            shard=sid,
        )
        self._count(
            "serve_restart_replayed_flushes_total",
            "journaled flushes folded during shard restarts",
            shard=sid,
            n=len(records),
        )
        return True

    def _apply_restart(self, sid: int, t: int,
                       locations: "dict[int, int]") -> None:
        """Install the folded restart state and requeue the spill.

        The thread driver rebuilds the in-process engine; the process
        driver overrides this to ship the state to a worker (a fresh
        process when the old one died).  The engine's realized schedule
        and counters survive the wipe (they belong to the run's
        accounting); only machine state is rebuilt.
        """
        engine = self.engines[sid]
        engine.wipe()
        engine.restore_state(locations, self._leaf_of)
        self.admission.rebuild_residency(sid, locations.keys())
        self._fresh[sid] = []
        self._replans_left[sid] = MAX_FORCED_REPLANS
        if engine.location:
            self.planner.plan(engine, [], force_full=True)
        # Spilled arrivals go back in front of admission; any the queue
        # bound rejects are counted-shed, never dropped.
        items = list(self._spill[sid])
        self._spill[sid].clear()
        accepted = self.admission.requeue(sid, items)
        for gid, _leaf in items[accepted:]:
            self._shed(gid, t)
            self.sup_stats.spill_overflow_shed += 1

    def _abandon(self, sid: int, t: int) -> None:
        """Permanent quarantine: counted-shed everything and lock open."""
        if self._abandoned[sid]:
            return
        self._abandoned[sid] = True
        self._health[sid] = QUARANTINED
        self._breakers[sid].lock_open()
        stats = self.sup_stats
        stats.abandoned_shards += 1
        shed_here = 0
        for gid in self._outstanding(sid):
            self._shed(gid, t)
            stats.abandoned_messages += 1
            shed_here += 1
        self._spill[sid].clear()
        self.admission.clear_shard(sid)
        self.admission.reset_shard_residency(sid)
        self.engines[sid].wipe()
        self._fresh[sid] = []
        if shed_here:
            self._count(
                "serve_abandoned_total",
                "messages counted-shed by shard abandonment",
                shard=sid,
                n=shed_here,
            )

    # -- reporting -----------------------------------------------------
    def _build_report(self, t: int) -> "SupervisedReport":
        base = super()._build_report(t)
        snapshot = dict(base.snapshot)
        snapshot["supervisor"] = self.sup_stats.snapshot()
        return SupervisedReport(
            config=base.config,
            n_steps=base.n_steps,
            snapshot=snapshot,
            completions=base.completions,
            shard_schedules=base.shard_schedules,
            planner_stats=base.planner_stats,
            admission_stats=base.admission_stats,
            shard_stats=base.shard_stats,
            metrics=base.metrics,
            supervisor=self.sup_stats,
            health_log=tuple(self.health_log),
            chaos=self.chaos,
            worker_log=tuple(self.worker_log),
        )
