"""Arrival processes for the online serving loop.

The batch pipeline freezes the message set before planning; a service
ingests messages *over time*.  Every process here answers one question
per step — which keys arrive now? — deterministically from a seed, so a
serving run is replayable (the property the journal recovery path and
every test in ``tests/serve`` lean on).

Four processes cover the standard evaluation regimes:

* :class:`PoissonArrivals` — open-loop, iid ``Poisson(rate)`` arrivals
  per step (the classic steady-state / overload sweep driver);
* :class:`MMPPArrivals` — a two-state Markov-modulated Poisson process
  (calm/burst) for correlated load spikes, the arrival-side analogue of
  :class:`~repro.faults.bursts.BurstInjector`;
* :class:`TraceArrivals` — replay an explicit ``(step, key)`` trace;
* :class:`ClosedLoopArrivals` — ``n_clients`` clients with a think time:
  a client issues its next message only after its previous one completed
  (or was shed), so offered load adapts to service capacity.

Keys are integers in ``[0, key_space)``; :class:`KeySampler` draws them
uniformly or Zipf-skewed (hot keys), mirroring
:func:`repro.workloads.zipf_instance`.  The serving loop routes keys to
shards and shard leaves (:mod:`repro.serve.router`).

Steps are 1-based like everywhere else in the package; an arrival
stamped at step 0 (or lower) is normalized to step 1, i.e. it is present
before the first flush — exactly the offline special case.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import InvalidInstanceError
from repro.util.rng import make_rng


class KeySampler:
    """Deterministic key popularity distribution over ``[0, key_space)``.

    ``theta = 0`` is uniform; larger values concentrate traffic on a few
    hot keys (Zipf over shuffled ranks, so hotness does not correlate
    with key order — and therefore not with shard id either).
    """

    def __init__(self, key_space: int, *, theta: float = 0.0,
                 seed: "int | np.random.Generator | None" = None) -> None:
        if key_space < 1:
            raise InvalidInstanceError(
                f"key_space must be >= 1, got {key_space}"
            )
        if theta < 0:
            raise InvalidInstanceError(f"theta must be >= 0, got {theta}")
        self.key_space = int(key_space)
        self.theta = float(theta)
        self._rng = make_rng(seed)
        if theta > 0:
            ranks = np.arange(1, self.key_space + 1, dtype=np.float64)
            probs = ranks**-theta
            probs /= probs.sum()
            self._probs = probs
            self._keys = self._rng.permutation(self.key_space)
        else:
            self._probs = None
            self._keys = None

    def draw(self, n: int) -> "list[int]":
        """Draw ``n`` keys (deterministic given the construction seed)."""
        if n <= 0:
            return []
        if self._probs is None:
            return [int(k) for k in
                    self._rng.integers(0, self.key_space, size=n)]
        return [int(k) for k in
                self._rng.choice(self._keys, size=n, p=self._probs)]


class ArrivalProcess:
    """Interface the serving loop drives.

    ``take(step)`` must be called exactly once per step, with steps
    strictly increasing; it returns the keys arriving at that step.  The
    loop then reports the global message ids it assigned via
    :meth:`on_emitted`, and later feeds back completions/sheds — open-loop
    processes ignore the feedback, closed-loop ones live off it.
    """

    def take(self, step: int) -> "list[int]":
        raise NotImplementedError

    @property
    def exhausted(self) -> bool:
        """True once no future step can produce an arrival."""
        raise NotImplementedError

    def on_emitted(self, msg_ids: "list[int]") -> None:
        """The loop assigned these global ids to the keys just taken."""

    def notify_completion(self, msg_id: int, step: int) -> None:
        """Message ``msg_id`` reached its target leaf at ``step``."""

    def notify_shed(self, msg_id: int, step: int) -> None:
        """Message ``msg_id`` was shed by admission control at ``step``."""


class PoissonArrivals(ArrivalProcess):
    """Open loop: ``Poisson(rate)`` arrivals per step, ``n_messages`` total.

    The final draw is truncated so exactly ``n_messages`` keys are emitted
    over the run.
    """

    def __init__(self, rate: float, n_messages: int, sampler: KeySampler,
                 *, seed: "int | np.random.Generator | None" = None) -> None:
        if not rate > 0:  # also rejects NaN
            raise InvalidInstanceError(f"rate must be > 0, got {rate}")
        if n_messages < 0:
            raise InvalidInstanceError(
                f"n_messages must be >= 0, got {n_messages}"
            )
        self.rate = float(rate)
        self.n_messages = int(n_messages)
        self.sampler = sampler
        self._rng = make_rng(seed)
        self._emitted = 0

    def take(self, step: int) -> "list[int]":
        left = self.n_messages - self._emitted
        if left <= 0:
            return []
        n = min(left, int(self._rng.poisson(self.rate)))
        self._emitted += n
        return self.sampler.draw(n)

    @property
    def exhausted(self) -> bool:
        return self._emitted >= self.n_messages


class MMPPArrivals(ArrivalProcess):
    """Markov-modulated Poisson process: calm/burst states with their own
    rates and geometric sojourns (``p_burst`` = calm->burst transition
    probability per step, ``p_calm`` = burst->calm)."""

    def __init__(self, calm_rate: float, burst_rate: float, n_messages: int,
                 sampler: KeySampler, *, p_burst: float = 0.05,
                 p_calm: float = 0.25,
                 seed: "int | np.random.Generator | None" = None) -> None:
        if not calm_rate >= 0 or not burst_rate > 0:  # also rejects NaN
            raise InvalidInstanceError(
                "rates must satisfy calm_rate >= 0 and burst_rate > 0"
            )
        for name, p in (("p_burst", p_burst), ("p_calm", p_calm)):
            if not (0.0 < p <= 1.0):
                raise InvalidInstanceError(f"{name} must be in (0, 1]")
        self.calm_rate = float(calm_rate)
        self.burst_rate = float(burst_rate)
        self.p_burst = float(p_burst)
        self.p_calm = float(p_calm)
        self.n_messages = int(n_messages)
        self.sampler = sampler
        self._rng = make_rng(seed)
        self._emitted = 0
        self._bursting = False

    def take(self, step: int) -> "list[int]":
        # State transition first, then the draw, so a burst's first step
        # already runs hot.
        flip = float(self._rng.random())
        if self._bursting:
            if flip < self.p_calm:
                self._bursting = False
        elif flip < self.p_burst:
            self._bursting = True
        left = self.n_messages - self._emitted
        if left <= 0:
            return []
        rate = self.burst_rate if self._bursting else self.calm_rate
        n = min(left, int(self._rng.poisson(rate)))
        self._emitted += n
        return self.sampler.draw(n)

    @property
    def exhausted(self) -> bool:
        return self._emitted >= self.n_messages


class TraceArrivals(ArrivalProcess):
    """Replay an explicit ``(step, key)`` trace (steps normalized to >= 1).

    The offline special case is ``TraceArrivals([(0, k) for k in keys])``:
    everything present before the first flush.
    """

    def __init__(self, trace: "list[tuple[int, int]]") -> None:
        self._by_step: dict[int, list[int]] = {}
        self._last_step = 0
        for step, key in trace:
            s = max(1, int(step))
            self._by_step.setdefault(s, []).append(int(key))
            self._last_step = max(self._last_step, s)
        self._taken_through = 0

    def take(self, step: int) -> "list[int]":
        self._taken_through = max(self._taken_through, int(step))
        return self._by_step.get(int(step), [])

    @property
    def exhausted(self) -> bool:
        return self._taken_through >= self._last_step


class ClosedLoopArrivals(ArrivalProcess):
    """Closed loop: each of ``n_clients`` clients keeps one message in
    flight, issuing the next one ``think_time`` steps after the previous
    completed (or was shed).  Stops after ``n_messages`` total issues.
    """

    def __init__(self, n_clients: int, n_messages: int, sampler: KeySampler,
                 *, think_time: int = 0) -> None:
        if n_clients < 1:
            raise InvalidInstanceError(
                f"n_clients must be >= 1, got {n_clients}"
            )
        if think_time < 0:
            raise InvalidInstanceError(
                f"think_time must be >= 0, got {think_time}"
            )
        self.n_clients = int(n_clients)
        self.n_messages = int(n_messages)
        self.think_time = int(think_time)
        self.sampler = sampler
        self._emitted = 0
        #: client id -> step at which it may issue again (1 = immediately).
        self._ready_at = [1] * self.n_clients
        #: clients whose issue at the current take() awaits an id mapping.
        self._issuing: list[int] = []
        #: global message id -> client that issued it.
        self._owner: dict[int, int] = {}

    def take(self, step: int) -> "list[int]":
        self._issuing = []
        if self._emitted >= self.n_messages:
            return []
        for client in range(self.n_clients):
            if self._emitted >= self.n_messages:
                break
            ready = self._ready_at[client]
            if ready is not None and ready <= step:
                self._ready_at[client] = None  # in flight
                self._issuing.append(client)
                self._emitted += 1
        return self.sampler.draw(len(self._issuing))

    def on_emitted(self, msg_ids: "list[int]") -> None:
        for client, gid in zip(self._issuing, msg_ids):
            self._owner[gid] = client
        self._issuing = []

    def _release(self, msg_id: int, step: int) -> None:
        # pop() makes release exactly-once: a duplicate completion/shed
        # notification (or a shed racing a completion) finds no owner and
        # cannot double-free the client slot.
        client = self._owner.pop(msg_id, None)
        if client is not None:
            self._ready_at[client] = step + 1 + self.think_time

    def notify_completion(self, msg_id: int, step: int) -> None:
        self._release(msg_id, step)

    def notify_shed(self, msg_id: int, step: int) -> None:
        """A shed releases the issuing client exactly once (idempotent)."""
        self._release(msg_id, step)

    @property
    def exhausted(self) -> bool:
        return self._emitted >= self.n_messages
