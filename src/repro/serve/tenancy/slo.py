"""Per-tenant sojourn SLOs with breaker-integrated shedding.

Fairness in a write-optimized store is judged by *tail sojourn*, not
mean throughput (Luo & Carey: write-stall variance is what kills
production deployments).  :class:`SLOTracker` therefore watches, per
tenant, the nearest-rank percentile of sojourn times over the
completions of each epoch and compares it against the tenant's
``slo_sojourn`` target.

The enforcement mirrors the shard circuit breakers: a tenant trips
after :data:`SLO_TRIP_AFTER` consecutive violating epochs.  Tripping
sheds the *offending* tenant's queued backlog (the serving loop purges
its admission lanes) and closes its door for :data:`SLO_COOLDOWN`
epochs, instead of tail-dropping globally — the hot tenant pays for its
own violation while light tenants keep their lanes.

Everything is integer-epoch, deterministic, and journal-free: the
tracker's decisions replay exactly from the arrival stream, so
recovered runs re-derive identical shed sets.
"""

from __future__ import annotations

from repro.analysis.stats import nearest_rank

#: consecutive violating epochs before a tenant's breaker trips.
SLO_TRIP_AFTER = 2
#: epochs the door stays closed after a trip.
SLO_COOLDOWN = 2


class _TenantSLO:
    """Breaker state for one tenant (internal)."""

    __slots__ = (
        "target", "percentile", "window", "violations", "trips",
        "violation_epochs", "open_until", "attained",
    )

    def __init__(self, target: int, percentile: float) -> None:
        self.target = int(target)
        self.percentile = float(percentile)
        self.window: list[int] = []   # sojourns completed this epoch
        self.violations = 0           # consecutive violating epochs
        self.trips = 0
        self.violation_epochs = 0
        self.open_until = 0           # door closed through this epoch
        self.attained = 0             # last evaluated percentile sojourn


class SLOTracker:
    """Evaluate per-tenant sojourn percentiles once per epoch."""

    def __init__(self, specs) -> None:
        self.specs = tuple(specs)
        self._state = [
            _TenantSLO(t.slo_sojourn, t.slo_percentile) for t in self.specs
        ]

    def note_completion(self, tenant: int, sojourn: int) -> None:
        st = self._state[tenant]
        if st.target > 0:
            st.window.append(int(sojourn))

    def evaluate(self, epoch: int) -> "tuple[set[int], list[int]]":
        """Close out ``epoch``; returns ``(door_closed, newly_tripped)``.

        ``door_closed`` is the full set of tenants whose door must be
        closed for the *next* epoch; ``newly_tripped`` lists tenants
        that tripped at this boundary (their queues are to be purged).
        """
        door: set[int] = set()
        tripped: list[int] = []
        for tid, st in enumerate(self._state):
            if st.target <= 0:
                continue
            if st.window:
                st.attained = nearest_rank(st.window, st.percentile)
                violated = st.attained > st.target
                st.window = []
            else:
                violated = False  # an idle epoch cannot violate
            if violated:
                st.violations += 1
                st.violation_epochs += 1
            else:
                st.violations = 0
            if st.violations >= SLO_TRIP_AFTER and epoch >= st.open_until:
                st.trips += 1
                st.violations = 0
                st.open_until = epoch + SLO_COOLDOWN
                tripped.append(tid)
            if epoch < st.open_until:
                door.add(tid)
        return door, tripped

    def row(self, tenant: int) -> dict:
        """Snapshot fragment for reports / the metrics endpoint."""
        st = self._state[tenant]
        if st.target <= 0:
            return {"slo": None}
        return {
            "slo": {
                "target": st.target,
                "percentile": st.percentile,
                "attained": st.attained,
                "violation_epochs": st.violation_epochs,
                "trips": st.trips,
            }
        }
