"""Tenancy runtime: the loop-facing façade of the QoS subsystem.

One :class:`TenancyRuntime` per serving loop bundles the tenant specs,
the SLO tracker, and the per-epoch conservation ledger, and knows how to
annotate a :class:`~repro.serve.metrics.ServeMetrics` snapshot with the
per-tenant view.  The serving loop only talks to this object (plus the
:class:`~repro.serve.tenancy.fair.TenantAdmissionController` it installs
in place of the base admission controller), which keeps the tenancy
surface in ``loop.py`` down to a handful of guarded calls.
"""

from __future__ import annotations

from repro.serve.metrics import LatencyStats
from repro.serve.tenancy.slo import SLOTracker


class TenancyRuntime:
    """Tenant specs + SLO state + per-epoch conservation ledger."""

    def __init__(self, specs) -> None:
        self.specs = tuple(specs)
        self.names = tuple(t.name for t in self.specs)
        self.tracker = SLOTracker(self.specs)
        #: per-epoch conservation rows (epoch -> tenant -> counters);
        #: appended at every epoch boundary for the conservation tests.
        self.epoch_ledger: "list[dict]" = []

    # ------------------------------------------------------------------
    def tenant_counts(self, metrics) -> "list[dict]":
        """Current per-tenant arrived/completed/shed/in-flight counters."""
        n = len(self.specs)
        arrived = [0] * n
        completed = [0] * n
        shed = [0] * n
        tenant_of = metrics.tenant_of
        for gid in metrics.arrival_step:
            tid = tenant_of.get(gid)
            if tid is not None:
                arrived[tid] += 1
        for gid in metrics.completion_step:
            tid = tenant_of.get(gid)
            if tid is not None:
                completed[tid] += 1
        for gid in metrics.shed_ids:
            tid = tenant_of.get(gid)
            if tid is not None:
                shed[tid] += 1
        return [
            {
                "tenant": self.names[tid],
                "arrived": arrived[tid],
                "completed": completed[tid],
                "shed": shed[tid],
                "in_flight": arrived[tid] - completed[tid] - shed[tid],
            }
            for tid in range(n)
        ]

    def close_epoch(self, epoch: int, metrics) -> None:
        """Record the conservation ledger row for a finished epoch."""
        self.epoch_ledger.append(
            {"epoch": epoch, "tenants": self.tenant_counts(metrics)}
        )

    # ------------------------------------------------------------------
    def tenant_rows(self, metrics, n_steps: int) -> "list[dict]":
        """Full per-tenant snapshot rows (counters + sojourn + SLO)."""
        counts = self.tenant_counts(metrics)
        tenant_of = metrics.tenant_of
        sojourns: "dict[int, list[int]]" = {}
        for gid, step in metrics.completion_step.items():
            tid = tenant_of.get(gid)
            if tid is not None:
                sojourns.setdefault(tid, []).append(
                    step - metrics.arrival_step[gid] + 1
                )
        rows = []
        for tid, row in enumerate(counts):
            row = dict(row)
            row["weight"] = self.specs[tid].weight
            row["throughput"] = (
                round(row["completed"] / n_steps, 4) if n_steps else 0.0
            )
            row["sojourn"] = LatencyStats.of(sojourns.get(tid, [])).row()
            row.update(self.tracker.row(tid))
            rows.append(row)
        return rows

    def annotate(self, snapshot: dict, metrics) -> dict:
        """Add the ``tenants`` section to a metrics snapshot (in place)."""
        snapshot["tenants"] = self.tenant_rows(metrics, snapshot["n_steps"])
        return snapshot


def format_tenant_report(snapshot: dict) -> str:
    """Render the per-tenant table of an annotated snapshot."""
    lines = [
        f"{'tenant':>8} {'weight':>7} {'arrived':>8} {'completed':>10} "
        f"{'shed':>6} {'inflt':>6} {'thruput':>8} {'p50':>6} {'p99':>6} "
        f"{'slo':>14}"
    ]
    for row in snapshot.get("tenants", []):
        sj = row["sojourn"]
        slo = row.get("slo")
        if slo is None:
            slo_txt = "-"
        else:
            slo_txt = (
                f"{slo['attained']:.0f}/{slo['target']}"
                f"@p{slo['percentile']:g}"
            )
            if slo["trips"]:
                slo_txt += f" ({slo['trips']} trips)"
        lines.append(
            f"{row['tenant']:>8} {row['weight']:>7.2f} {row['arrived']:>8} "
            f"{row['completed']:>10} {row['shed']:>6} {row['in_flight']:>6} "
            f"{row['throughput']:>8.3f} {sj['p50']:>6.0f} {sj['p99']:>6.0f} "
            f"{slo_txt:>14}"
        )
    return "\n".join(lines)
