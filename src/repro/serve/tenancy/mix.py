"""Tenant-tagged arrivals: compose per-tenant processes into one stream.

:class:`TenantMix` owns one :class:`~repro.serve.arrivals.ArrivalProcess`
per tenant, each with its own seeded Zipf :class:`KeySampler` (tenants
share the key space but not their hot sets), and presents the union to
the serving loop through the standard ``ArrivalProcess`` interface.  The
loop stays tenant-oblivious in its hot path; the mix remembers which
tenant produced each key position and, once the loop reports the global
message ids via :meth:`on_emitted`, publishes the ``gid -> tenant``
mapping and fans completion/shed feedback back to the owning tenant's
process (closed-loop tenants live off that feedback).

Determinism: tenant ``i`` draws its sampler from spawn coordinates
``(seed, 40, i, 1)`` and its process from ``(seed, 40, i, 2)`` — a
namespace disjoint from the single-stream coordinates ``(seed, 1)`` /
``(seed, 2)``, so enabling tenancy changes the arrival stream (it must:
different processes) while two runs of the same tenant config are
byte-identical.
"""

from __future__ import annotations

from repro.serve.arrivals import (
    ArrivalProcess,
    ClosedLoopArrivals,
    KeySampler,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.util.errors import InvalidInstanceError

#: spawn-coordinate namespace for tenant RNG streams (see module doc).
TENANT_SEED_NS = 40


def _build_process(spec, key_space: int, index: int, seed: int,
                   spawn) -> ArrivalProcess:
    sampler = KeySampler(
        key_space,
        theta=spec.theta,
        seed=spawn(seed, TENANT_SEED_NS, index, 1),
    )
    if spec.arrivals == "poisson":
        return PoissonArrivals(
            spec.rate, spec.messages, sampler,
            seed=spawn(seed, TENANT_SEED_NS, index, 2),
        )
    if spec.arrivals == "mmpp":
        return MMPPArrivals(
            spec.rate, spec.burst_rate, spec.messages, sampler,
            p_burst=spec.p_burst, p_calm=spec.p_calm,
            seed=spawn(seed, TENANT_SEED_NS, index, 2),
        )
    if spec.arrivals == "closed":
        return ClosedLoopArrivals(
            spec.n_clients, spec.messages, sampler,
            think_time=spec.think_time,
        )
    raise InvalidInstanceError(
        f"tenant {spec.name!r}: unknown arrival process {spec.arrivals!r}"
    )


class TenantMix(ArrivalProcess):
    """Union of per-tenant arrival processes, tagged by tenant id.

    ``tenant_of`` maps every emitted global message id to the *index* of
    the tenant that issued it (indices into ``specs`` — the compact form
    the admission scheduler and metrics key on; ``names[tid]`` recovers
    the display name).
    """

    def __init__(self, specs, key_space: int, *, seed: int, spawn) -> None:
        if not specs:
            raise InvalidInstanceError("TenantMix needs >= 1 tenant spec")
        self.specs = tuple(specs)
        self.names = tuple(t.name for t in self.specs)
        self.processes: "list[ArrivalProcess]" = [
            _build_process(spec, key_space, i, seed, spawn)
            for i, spec in enumerate(self.specs)
        ]
        #: global message id -> tenant index (grows over the run).
        self.tenant_of: dict[int, int] = {}
        #: tenant index per key position of the most recent take().
        self._pending: list[int] = []

    def take(self, step: int) -> "list[int]":
        keys: list[int] = []
        self._pending = []
        for tid, proc in enumerate(self.processes):
            tenant_keys = proc.take(step)
            keys.extend(tenant_keys)
            self._pending.extend([tid] * len(tenant_keys))
        return keys

    @property
    def pending_tenants(self) -> "list[int]":
        """Tenant index per key of the most recent :meth:`take` (aligned)."""
        return self._pending

    def on_emitted(self, msg_ids: "list[int]") -> None:
        per_tenant: dict[int, list[int]] = {}
        for tid, gid in zip(self._pending, msg_ids):
            self.tenant_of[gid] = tid
            per_tenant.setdefault(tid, []).append(gid)
        self._pending = []
        for tid, gids in per_tenant.items():
            self.processes[tid].on_emitted(gids)

    def notify_completion(self, msg_id: int, step: int) -> None:
        tid = self.tenant_of.get(msg_id)
        if tid is not None:
            self.processes[tid].notify_completion(msg_id, step)

    def notify_shed(self, msg_id: int, step: int) -> None:
        tid = self.tenant_of.get(msg_id)
        if tid is not None:
            self.processes[tid].notify_shed(msg_id, step)

    @property
    def exhausted(self) -> bool:
        return all(proc.exhausted for proc in self.processes)
