"""Weighted-fair admission: deficit round-robin over per-tenant queues.

:class:`TenantAdmissionController` replaces the single FIFO in front of
each shard root with one FIFO *per tenant*, drained by deficit round
robin (DRR): every round each backlogged tenant's deficit grows by its
weight, and it admits one message per unit of deficit.  Over any
backlogged interval tenants therefore share root-buffer bandwidth in
proportion to their weights, independent of offered load — the classic
fair-queueing guarantee, here applied at the admission/planner boundary
of a write-optimized tree.

Three further policies hang off the same queues:

* **per-tenant shed bounds** — a tenant's *fresh* arrivals are bounded to
  its weight-proportional share of ``max_queue``, so a hot tenant fills
  (and sheds from) its own lane while light tenants keep headroom.
  Requeue/handoff traffic (already offered once) uses the global bound,
  preserving the base controller's prefix-accept contract.
* **SLO doors** — the serving loop closes a tenant's door while its SLO
  breaker is open; offers shed at the door, counted per tenant.
* **buffer quotas** — à la Marchal/Sinnen/Vivien, a tenant with
  ``buffer_quota > 0`` may keep at most that many messages resident in
  any one shard's internal-node buffers.  Draining holds the tenant's
  queue (without shedding) while its quota is saturated and resumes as
  completions call :meth:`note_departed` — makespan traded for a hard
  peak-memory bound.

Conservation is exact and per-tenant: every offer increments ``offered``
exactly once, every shed is counted against the shedding tenant, and
re-admission paths never re-offer.
"""

from __future__ import annotations

from collections import deque

from repro.obs.hooks import current_obs
from repro.serve.admission import AdmissionController


class TenantAdmissionController(AdmissionController):
    """Per-shard, per-tenant bounded queues with DRR draining.

    ``tenant_of`` is the live ``gid -> tenant index`` mapping (shared
    with :class:`~repro.serve.tenancy.mix.TenantMix` or fed over the
    procpool pipe); messages missing from it — none in practice — fall
    into tenant 0.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        max_root_backlog: int,
        max_queue: int,
        specs,
        tenant_of: "dict[int, int]",
    ) -> None:
        super().__init__(
            n_shards,
            max_root_backlog=max_root_backlog,
            max_queue=max_queue,
        )
        self.specs = tuple(specs)
        self.tenant_of = tenant_of
        n = len(self.specs)
        total_w = sum(t.weight for t in self.specs)
        min_w = min(t.weight for t in self.specs)
        #: cap on a tenant's *fresh* backlog per shard (weight share).
        self.tenant_bound = [
            max(1, int(self.max_queue * t.weight / total_w))
            for t in self.specs
        ]
        #: DRR quantum per round, normalized so the lightest backlogged
        #: tenant accrues exactly 1.0 credit per round (ratios — and so
        #: the fairness guarantee — are unchanged; rounds never stall).
        self._quantum = [t.weight / min_w for t in self.specs]
        #: per-shard, per-tenant FIFOs of (msg_id, target_leaf).
        self.tqueues: "list[list[deque]]" = [
            [deque() for _ in range(n)] for _ in range(n_shards)
        ]
        #: DRR deficit counters, same shape as tqueues.
        self._deficit: "list[list[float]]" = [
            [0.0] * n for _ in range(n_shards)
        ]
        #: tenants whose SLO breaker is open (offers shed at the door).
        self.door_closed: set[int] = set()
        #: per-tenant sheds (door + bound), mirrors stats.shed_by_shard.
        self.shed_by_tenant: dict[int, int] = {}
        #: admitted-but-not-departed gids -> (shard, tenant); quota state.
        self._resident: dict[int, tuple[int, int]] = {}
        self._res_count: "list[list[int]]" = [
            [0] * n for _ in range(n_shards)
        ]

    # -- bookkeeping helpers -------------------------------------------

    def _tenant(self, msg_id: int) -> int:
        return self.tenant_of.get(msg_id, 0)

    def _count_shed(self, shard_id: int, tenant: int) -> None:
        self.stats.shed += 1
        by = self.stats.shed_by_shard
        by[shard_id] = by.get(shard_id, 0) + 1
        self.shed_by_tenant[tenant] = self.shed_by_tenant.get(tenant, 0) + 1
        obs = current_obs()  # rare event: look up at the site
        if obs.enabled:
            shed = obs.metrics.counter(
                "serve_shed_total", "arrivals shed by admission"
            )
            shed.inc()
            shed.labels(shard=shard_id).inc()
            shed.labels(tenant=self.specs[tenant].name).inc()

    def _note_depth(self, shard_id: int) -> None:
        depth = self.queue_depth(shard_id)
        if depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = depth

    # -- depth / residency interface -----------------------------------

    def queue_depth(self, shard_id: int) -> int:
        return sum(len(q) for q in self.tqueues[shard_id])

    def total_queued(self) -> int:
        return sum(
            len(q) for shard in self.tqueues for q in shard
        )

    def note_departed(self, msg_id: int) -> None:
        """A message left its shard's buffers (completed): free quota."""
        loc = self._resident.pop(msg_id, None)
        if loc is not None:
            sid, tid = loc
            self._res_count[sid][tid] -= 1

    def reset_shard_residency(self, shard_id: int) -> None:
        """Forget residency for a wiped shard (restart/abandon path)."""
        n = len(self.specs)
        self._res_count[shard_id] = [0] * n
        self._resident = {
            gid: loc for gid, loc in self._resident.items()
            if loc[0] != shard_id
        }

    def rebuild_residency(self, shard_id: int, msg_ids) -> None:
        """Re-register buffered survivors after a restart restored them."""
        self.reset_shard_residency(shard_id)
        for gid in msg_ids:
            tid = self._tenant(gid)
            self._resident[int(gid)] = (shard_id, tid)
            self._res_count[shard_id][tid] += 1

    def _admit_one(self, shard_id: int, tenant: int, engine, step: int,
                   admitted) -> None:
        msg_id, leaf = self.tqueues[shard_id][tenant].popleft()
        done = engine.admit(msg_id, leaf, step)
        admitted.append((msg_id, leaf, done))
        self.stats.admitted += 1
        if done is None:  # still buffered inside the shard
            self._resident[msg_id] = (shard_id, tenant)
            self._res_count[shard_id][tenant] += 1

    def _quota_open(self, shard_id: int, tenant: int) -> bool:
        quota = self.specs[tenant].buffer_quota
        return quota <= 0 or self._res_count[shard_id][tenant] < quota

    def note_external_shed(self, shard_id: int, msg_id: int) -> None:
        tenant = self._tenant(msg_id)
        self.shed_by_tenant[tenant] = self.shed_by_tenant.get(tenant, 0) + 1

    # -- offer / requeue / drain ---------------------------------------

    def offer(self, shard_id: int, msg_id: int, target_leaf: int) -> bool:
        self.stats.offered += 1
        tenant = self._tenant(msg_id)
        q = self.tqueues[shard_id][tenant]
        if tenant in self.door_closed or len(q) >= self.tenant_bound[tenant]:
            self._count_shed(shard_id, tenant)
            return False
        q.append((msg_id, target_leaf))
        self._note_depth(shard_id)
        return True

    def requeue(self, shard_id: int, items) -> int:
        """Prefix-accept re-admission into the owning tenants' queues.

        Bounded by the *global* ``max_queue`` (these messages were
        already offered and admitted to a queue once; the per-tenant
        fresh-arrival bound does not re-apply).  Same contract as the
        base class: returns how many fit, caller sheds the rest.
        """
        accepted = 0
        for msg_id, leaf in items:
            if self.queue_depth(shard_id) >= self.max_queue:
                break
            self.tqueues[shard_id][self._tenant(msg_id)].append(
                (msg_id, leaf)
            )
            accepted += 1
        self._note_depth(shard_id)
        return accepted

    def load_requeue(self, shard_id: int, items) -> None:
        for msg_id, leaf in items:
            self.tqueues[shard_id][self._tenant(msg_id)].append(
                (msg_id, leaf)
            )
        self._note_depth(shard_id)

    def load_queue(self, shard_id: int, items) -> None:
        self.clear_shard(shard_id)
        self.load_requeue(shard_id, items)

    def clear_shard(self, shard_id: int) -> "list[tuple[int, int]]":
        """Empty every tenant queue of a shard; returns what was dropped
        in drain order (tenant-major FIFO)."""
        dropped: "list[tuple[int, int]]" = []
        for q in self.tqueues[shard_id]:
            dropped.extend(q)
            q.clear()
        for tid in range(len(self.specs)):
            self._deficit[shard_id][tid] = 0.0
        return dropped

    def purge_tenant_shard(self, shard_id: int, tenant: int) -> "list[int]":
        """SLO enforcement: shed everything the tenant has queued at one
        shard.  Returns the shed gids; sheds are counted here, the caller
        reports them to metrics/arrival feedback."""
        q = self.tqueues[shard_id][tenant]
        gids = [msg_id for msg_id, _leaf in q]
        q.clear()
        self._deficit[shard_id][tenant] = 0.0
        for _ in gids:
            self._count_shed(shard_id, tenant)
        return gids

    def purge_tenant(self, tenant: int) -> "list[tuple[int, int]]":
        """Purge the tenant's queues at every shard; ``(shard, gid)`` list."""
        out: "list[tuple[int, int]]" = []
        for sid in range(len(self.tqueues)):
            out.extend((sid, gid)
                       for gid in self.purge_tenant_shard(sid, tenant))
        return out

    def drain(self, shard_id: int, engine, step: int):
        """DRR-admit queued arrivals while the shard root has headroom."""
        admitted: "list[tuple[int, int, int | None]]" = []
        queues = self.tqueues[shard_id]
        deficit = self._deficit[shard_id]
        if any(queues) and engine.root_stalled(step):
            self.stats.stall_holds += 1
            obs = current_obs()  # rare event: look up at the site
            if obs.enabled:
                holds = obs.metrics.counter(
                    "serve_stall_holds_total",
                    "drain steps held for a stalled shard root",
                )
                holds.inc()
                holds.labels(shard=shard_id).inc()
        else:
            while engine.root_backlog < self.max_root_backlog:
                progressed = False
                for tid in range(len(self.specs)):
                    q = queues[tid]
                    if not q:
                        deficit[tid] = 0.0  # no backlog, no credit carry
                        continue
                    deficit[tid] += self._quantum[tid]
                    while (
                        q
                        and deficit[tid] >= 1.0
                        and engine.root_backlog < self.max_root_backlog
                    ):
                        if not self._quota_open(shard_id, tid):
                            # Quota saturated: hold (not shed), and drop
                            # banked credit so the tenant cannot burst
                            # past its quota the moment space frees up.
                            deficit[tid] = 0.0
                            break
                        self._admit_one(shard_id, tid, engine, step,
                                        admitted)
                        deficit[tid] -= 1.0
                        progressed = True
                if not progressed:
                    break
        self.stats.queue_wait_steps += self.queue_depth(shard_id)
        return admitted
