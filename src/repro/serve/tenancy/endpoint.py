"""Live ``/metrics`` endpoint: the obs registry + tenant SLO state as JSON.

A stdlib :class:`http.server.ThreadingHTTPServer` on a daemon thread, off
by default and enabled with ``serve --metrics-port``.  The handler calls
a provider function that assembles the payload from the deterministic
:mod:`repro.obs` metrics registry plus the per-tenant SLO rows — the
same dicts the final report prints, so a dashboard scraping the endpoint
and a test reading the report see the one source of truth.

The serving loop stays single-threaded and deterministic: the endpoint
only *reads* snapshots.  A read racing a loop-side update can observe a
torn intermediate (Python-level atomicity keeps it structurally sound);
the handler degrades to a 503 with an error payload rather than taking
a lock on the hot path.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer


class MetricsEndpoint:
    """Serve ``provider()`` as JSON on ``GET /metrics`` (and ``/``)."""

    def __init__(self, provider, *, port: int = 0,
                 host: str = "127.0.0.1") -> None:
        self._provider = provider

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(handler) -> None:  # noqa: N805 (stdlib callback)
                if handler.path.split("?", 1)[0] not in ("/", "/metrics"):
                    handler.send_error(404)
                    return
                try:
                    body = json.dumps(
                        provider(), indent=2, sort_keys=True
                    ).encode()
                    status = 200
                except Exception as exc:  # torn read mid-update
                    body = json.dumps(
                        {"error": f"snapshot unavailable: {exc}"}
                    ).encode()
                    status = 503
                handler.send_response(status)
                handler.send_header("Content-Type", "application/json")
                handler.send_header("Content-Length", str(len(body)))
                handler.end_headers()
                handler.wfile.write(body)

            def log_message(handler, *args) -> None:  # noqa: N805
                pass  # keep the CLI report clean

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-endpoint",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` in tests)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}/metrics"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
