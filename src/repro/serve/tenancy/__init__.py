"""Multi-tenant QoS for the serving layer.

Tenant-tagged arrivals (:class:`TenantMix`), deficit-round-robin
weighted-fair admission (:class:`TenantAdmissionController`), per-tenant
sojourn SLOs with breaker-integrated shedding (:class:`SLOTracker`),
memory-budgeted buffer quotas, and the live ``/metrics`` endpoint
(:class:`MetricsEndpoint`).  Enabled by ``ServeConfig.tenants``; with it
unset every serving run is byte-identical to a pre-tenancy run.
"""

from repro.serve.tenancy.endpoint import MetricsEndpoint
from repro.serve.tenancy.fair import TenantAdmissionController
from repro.serve.tenancy.mix import TenantMix
from repro.serve.tenancy.runtime import TenancyRuntime, format_tenant_report
from repro.serve.tenancy.slo import SLO_COOLDOWN, SLO_TRIP_AFTER, SLOTracker
from repro.serve.tenancy.spec import TenantSpec, make_tenants, validate_tenants

__all__ = [
    "MetricsEndpoint",
    "SLO_COOLDOWN",
    "SLO_TRIP_AFTER",
    "SLOTracker",
    "TenancyRuntime",
    "TenantAdmissionController",
    "TenantMix",
    "TenantSpec",
    "format_tenant_report",
    "make_tenants",
    "validate_tenants",
]
