"""Tenant specifications: the journaled identity of a multi-tenant run.

A :class:`TenantSpec` describes one tenant sharing the serving fleet:
its arrival process (kind, rate, message budget, key skew), its
weighted-fair share of admission bandwidth, its sojourn SLO, and its
buffer quota (the Marchal/Sinnen/Vivien memory bound: how many of the
tenant's messages may sit buffered in a shard's internal nodes at once).

The tuple of specs rides in ``ServeConfig.tenants`` and therefore in the
journal ``meta`` payload, so a recovered run rebuilds the identical
tenant mix.  With ``tenants=None`` (the default) the key is omitted from
the meta entirely and every byte of a run is identical to a
pre-tenancy run — the byte-equivalence contract the parity tests pin.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from dataclasses import fields as dataclass_fields

from repro.util.errors import InvalidInstanceError

#: arrival kinds a tenant may use (``trace`` is whole-run only).
TENANT_ARRIVALS = ("poisson", "mmpp", "closed")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's share of a serving run (JSON-round-trippable).

    Attributes
    ----------
    name:
        Stable tenant identifier (reports, journal meta, CLI tables).
    weight:
        Deficit-round-robin admission weight.  Tenants drain from their
        per-tenant queues in proportion to their weights when both are
        backlogged; a tenant's fresh arrivals are also bounded to its
        weight-proportional share of ``max_queue``.
    arrivals / rate / burst_rate / p_burst / p_calm / n_clients /
    think_time:
        The tenant's arrival process, with the same semantics as the
        matching :class:`~repro.serve.loop.ServeConfig` fields.
    messages:
        The tenant's total message budget.  The sum over all tenants
        must equal ``ServeConfig.messages``.
    theta:
        Zipf key-popularity skew of the tenant's own key sampler
        (tenants share the key space but not their hot sets).
    slo_sojourn:
        Target sojourn (steps) at ``slo_percentile``; 0 disables SLO
        tracking for this tenant.
    slo_percentile:
        The percentile the sojourn target applies to (nearest-rank).
    buffer_quota:
        Max messages this tenant may have resident in any one shard's
        internal-node buffers (0 = unlimited).  Enforced at the
        admission/planner boundary: admission holds the tenant's queue
        while the quota is saturated, trading the tenant's makespan for
        a hard bound on its peak buffer memory.
    """

    name: str
    weight: float = 1.0
    arrivals: str = "poisson"
    rate: float = 4.0
    burst_rate: float = 16.0
    p_burst: float = 0.05
    p_calm: float = 0.25
    n_clients: int = 8
    think_time: int = 0
    messages: int = 0
    theta: float = 0.0
    slo_sojourn: int = 0
    slo_percentile: float = 99.0
    buffer_quota: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidInstanceError("tenant name must be non-empty")
        if not self.weight > 0:  # also rejects NaN
            raise InvalidInstanceError(
                f"tenant {self.name!r}: weight must be > 0, "
                f"got {self.weight}"
            )
        if self.arrivals not in TENANT_ARRIVALS:
            raise InvalidInstanceError(
                f"tenant {self.name!r}: unknown arrival process "
                f"{self.arrivals!r} (expected one of {TENANT_ARRIVALS})"
            )
        if self.arrivals == "poisson" and not self.rate > 0:
            raise InvalidInstanceError(
                f"tenant {self.name!r}: rate must be > 0, got {self.rate}"
            )
        if self.arrivals == "mmpp" and (
            not self.rate >= 0 or not self.burst_rate > 0
        ):
            raise InvalidInstanceError(
                f"tenant {self.name!r}: mmpp needs rate >= 0 and "
                f"burst_rate > 0, got {self.rate}, {self.burst_rate}"
            )
        if self.arrivals == "closed" and self.n_clients < 1:
            raise InvalidInstanceError(
                f"tenant {self.name!r}: closed loop needs n_clients >= 1"
            )
        if self.messages < 0:
            raise InvalidInstanceError(
                f"tenant {self.name!r}: messages must be >= 0, "
                f"got {self.messages}"
            )
        if self.theta < 0:
            raise InvalidInstanceError(
                f"tenant {self.name!r}: theta must be >= 0, got {self.theta}"
            )
        if self.slo_sojourn < 0:
            raise InvalidInstanceError(
                f"tenant {self.name!r}: slo_sojourn must be >= 0, "
                f"got {self.slo_sojourn}"
            )
        if not (0.0 < self.slo_percentile <= 100.0):
            raise InvalidInstanceError(
                f"tenant {self.name!r}: slo_percentile must be in "
                f"(0, 100], got {self.slo_percentile}"
            )
        if self.buffer_quota < 0:
            raise InvalidInstanceError(
                f"tenant {self.name!r}: buffer_quota must be >= 0, "
                f"got {self.buffer_quota}"
            )

    def to_meta(self) -> dict:
        """JSON-ready form for a journal ``meta`` payload."""
        return asdict(self)

    @classmethod
    def from_meta(cls, payload: dict) -> "TenantSpec":
        """Inverse of :meth:`to_meta` (unknown keys ignored)."""
        names = {f.name for f in dataclass_fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})


def validate_tenants(tenants, total_messages: int) -> None:
    """Cross-field checks for ``ServeConfig.tenants``."""
    if not tenants:
        raise InvalidInstanceError("tenants must be a non-empty tuple")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise InvalidInstanceError(f"tenant names must be unique: {names}")
    budget = sum(t.messages for t in tenants)
    if budget != total_messages:
        raise InvalidInstanceError(
            f"tenant message budgets sum to {budget}, but "
            f"messages={total_messages}; they must match"
        )


def split_messages(total: int, shares: "list[float]") -> "list[int]":
    """Split ``total`` proportionally to ``shares`` (largest-remainder,
    deterministic: ties go to the earlier tenant)."""
    if total < 0:
        raise InvalidInstanceError(f"total must be >= 0, got {total}")
    weight = sum(shares)
    if not weight > 0:
        raise InvalidInstanceError("shares must sum to > 0")
    exact = [total * s / weight for s in shares]
    out = [int(e) for e in exact]
    remainder = total - sum(out)
    order = sorted(
        range(len(shares)), key=lambda i: (-(exact[i] - out[i]), i)
    )
    for i in order[:remainder]:
        out[i] += 1
    return out


def make_tenants(
    n: int,
    total_messages: int,
    *,
    rates: "list[float] | None" = None,
    weights: "list[float] | None" = None,
    thetas: "list[float] | None" = None,
    slos: "list[int] | None" = None,
    slo_percentile: float = 99.0,
    quotas: "list[int] | None" = None,
    arrivals: str = "poisson",
) -> "tuple[TenantSpec, ...]":
    """Build ``n`` tenants named ``t0..t{n-1}`` from parallel lists.

    Message budgets split proportionally to the offered rates so the
    run's total matches ``ServeConfig.messages`` exactly (the CLI path).
    """
    if n < 1:
        raise InvalidInstanceError(f"need n >= 1 tenants, got {n}")

    def _pick(vals, default):
        if vals is None:
            return [default] * n
        if len(vals) != n:
            raise InvalidInstanceError(
                f"expected {n} values, got {len(vals)}: {vals}"
            )
        return list(vals)

    rates = _pick(rates, 4.0)
    weights = _pick(weights, 1.0)
    thetas = _pick(thetas, 0.0)
    slos = _pick(slos, 0)
    quotas = _pick(quotas, 0)
    budgets = split_messages(total_messages, rates)
    return tuple(
        TenantSpec(
            name=f"t{i}",
            weight=weights[i],
            arrivals=arrivals,
            rate=rates[i],
            messages=budgets[i],
            theta=thetas[i],
            slo_sojourn=int(slos[i]),
            slo_percentile=slo_percentile,
            buffer_quota=int(quotas[i]),
        )
        for i in range(n)
    )
