"""Per-message sojourn-time accounting for serving runs.

Batch experiments score *completion time* (steps since the single start
of time).  A service scores **sojourn time**: how long each message was
in the system, from arrival to delivery at its target leaf —

* ``sojourn(m) = completion_step - arrival_step + 1`` (a message that
  arrives at the start of step ``t`` and is delivered by a flush at step
  ``t`` has sojourn 1);
* ``wait(m) = admit_step - arrival_step`` (steps spent queued by
  admission control before reaching the shard root; 0 when admitted on
  arrival).

With every arrival stamped at step 1, sojourn equals the offline
completion time — the bridge the online/offline equivalence tests use.

Percentiles are nearest-rank (:func:`repro.analysis.stats.nearest_rank`):
a reported p99 is an observed sample, and a single-sample distribution
reports that sample at every percentile instead of interpolation
artifacts.  Everything snapshots to plain dicts / JSON for the analysis
layer and CI artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.stats import guarded_rank, nearest_rank


@dataclass(frozen=True)
class LatencyStats:
    """Nearest-rank summary of a latency sample (all values observed).

    ``p999`` carries the minimum-sample guard from
    :func:`repro.analysis.stats.guarded_rank`: it is ``None`` (rendered
    "n/a") until the sample has at least 1000 observations, because a
    "p99.9" of fewer samples is just the max in disguise.
    """

    n: int
    p50: float
    p95: float
    p99: float
    p999: "float | None"
    max: float
    mean: float

    @classmethod
    def of(cls, values: "list[int] | list[float]") -> "LatencyStats":
        """Summarize a sample; an empty sample reports all-zero (n=0)."""
        vals = list(values)
        if not vals:
            return cls(0, 0.0, 0.0, 0.0, None, 0.0, 0.0)
        return cls(
            n=len(vals),
            p50=nearest_rank(vals, 50),
            p95=nearest_rank(vals, 95),
            p99=nearest_rank(vals, 99),
            p999=guarded_rank(vals, 99.9),
            max=float(max(vals)),
            mean=float(sum(vals)) / len(vals),
        )

    def row(self) -> "dict[str, float]":
        return {
            "n": self.n,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "p999": self.p999,
            "max": self.max,
            "mean": round(self.mean, 3),
        }


@dataclass
class ShardTimeline:
    """Per-step queue/backlog depths for one shard."""

    queue_depth: "list[int]" = field(default_factory=list)
    root_backlog: "list[int]" = field(default_factory=list)
    in_flight: "list[int]" = field(default_factory=list)


class ServeMetrics:
    """Accumulates the full latency/throughput picture of a serving run."""

    def __init__(self, n_shards: int,
                 tenant_names: "tuple[str, ...] | None" = None) -> None:
        self.n_shards = int(n_shards)
        self.arrival_step: "dict[int, int]" = {}
        self.admit_step: "dict[int, int]" = {}
        self.completion_step: "dict[int, int]" = {}
        self.shard_of: "dict[int, int]" = {}
        self.shed_ids: "set[int]" = set()
        #: messages that passed through a supervisor spill queue (held
        #: while their shard's circuit breaker was open, never dropped).
        self.spilled_ids: "set[int]" = set()
        self.timelines = [ShardTimeline() for _ in range(self.n_shards)]
        #: tenant display names when the run is multi-tenant (else None).
        self.tenant_names = tenant_names
        #: message id -> tenant index (only populated under tenancy).
        self.tenant_of: "dict[int, int]" = {}

    # ------------------------------------------------------------------
    def note_arrival(self, msg_id: int, shard_id: int, step: int,
                     tenant: "int | None" = None) -> None:
        self.arrival_step[msg_id] = step
        self.shard_of[msg_id] = shard_id
        if tenant is not None:
            self.tenant_of[msg_id] = tenant

    def note_shed(self, msg_id: int, step: int) -> None:
        self.shed_ids.add(msg_id)

    def note_spill(self, msg_id: int, step: int) -> None:
        """``msg_id`` was held in a spill queue at ``step`` (supervisor)."""
        self.spilled_ids.add(msg_id)

    def note_admit(self, msg_id: int, step: int) -> None:
        self.admit_step[msg_id] = step

    def note_completion(self, msg_id: int, step: int) -> None:
        self.completion_step[msg_id] = step

    def note_step(self, queue_depths, root_backlogs, in_flight) -> None:
        """Record one step's per-shard depths (parallel sequences)."""
        for s in range(self.n_shards):
            tl = self.timelines[s]
            tl.queue_depth.append(queue_depths[s])
            tl.root_backlog.append(root_backlogs[s])
            tl.in_flight.append(in_flight[s])

    # ------------------------------------------------------------------
    def sojourns(self) -> "list[int]":
        """Sojourn times of all completed messages (arrival order)."""
        return [
            step - self.arrival_step[m] + 1
            for m, step in sorted(self.completion_step.items())
        ]

    def completion_times(self) -> "list[tuple[int, int]]":
        """``(msg_id, completion_step)`` for completed messages, by id."""
        return sorted(self.completion_step.items())

    def snapshot(self, n_steps: int) -> dict:
        """The run's full metrics as one JSON-ready dict."""
        sojourn = LatencyStats.of(self.sojourns())
        waits = [
            self.admit_step[m] - self.arrival_step[m]
            for m in self.admit_step
        ]
        per_shard = []
        for s in range(self.n_shards):
            done = [
                step - self.arrival_step[m] + 1
                for m, step in self.completion_step.items()
                if self.shard_of[m] == s
            ]
            completed = sum(
                1 for m in self.completion_step if self.shard_of[m] == s
            )
            tl = self.timelines[s]
            per_shard.append({
                "shard": s,
                "arrived": sum(
                    1 for m in self.shard_of if self.shard_of[m] == s
                ),
                "completed": completed,
                "shed": sum(
                    1 for m in self.shed_ids if self.shard_of[m] == s
                ),
                "spilled": sum(
                    1 for m in self.spilled_ids if self.shard_of[m] == s
                ),
                "throughput": round(completed / n_steps, 4) if n_steps else 0.0,
                "sojourn": LatencyStats.of(done).row(),
                "max_queue_depth": max(tl.queue_depth, default=0),
                "max_root_backlog": max(tl.root_backlog, default=0),
            })
        arrived = len(self.arrival_step)
        completed = len(self.completion_step)
        return {
            "n_steps": n_steps,
            "arrived": arrived,
            "admitted": len(self.admit_step),
            "completed": completed,
            "shed": len(self.shed_ids),
            "spilled": len(self.spilled_ids),
            "in_flight": arrived - completed - len(self.shed_ids),
            "throughput": round(completed / n_steps, 4) if n_steps else 0.0,
            "sojourn": sojourn.row(),
            "admission_wait": LatencyStats.of(waits).row(),
            "shards": per_shard,
        }

    def to_json(self, n_steps: int, **extra) -> str:
        """Snapshot (plus any ``extra`` top-level keys) as a JSON string."""
        snap = self.snapshot(n_steps)
        snap.update(extra)
        return json.dumps(snap, indent=2, sort_keys=True)


def format_serve_report(snapshot: dict, *, title: str = "serving run") -> str:
    """Render a metrics snapshot as the CLI's plain-text report."""
    s = snapshot["sojourn"]
    w = snapshot["admission_wait"]
    lines = [
        f"== {title} ==",
        f"steps {snapshot['n_steps']}, arrived {snapshot['arrived']}, "
        f"admitted {snapshot['admitted']}, completed {snapshot['completed']}, "
        f"shed {snapshot['shed']}, in flight {snapshot['in_flight']}",
        f"throughput {snapshot['throughput']} msgs/step",
        f"sojourn   p50 {s['p50']:.0f}  p95 {s['p95']:.0f}  "
        f"p99 {s['p99']:.0f}  p99.9 "
        + (f"{s['p999']:.0f}" if s.get("p999") is not None else "n/a")
        + f"  max {s['max']:.0f}  mean {s['mean']:.2f}",
        f"adm. wait p50 {w['p50']:.0f}  p95 {w['p95']:.0f}  "
        f"p99 {w['p99']:.0f}  max {w['max']:.0f}  mean {w['mean']:.2f}",
    ]
    pace = snapshot.get("pace")
    if pace:
        lines.append(
            f"pace      budget {pace['budget']}  "
            f"max step work {pace['max_step_work']}  "
            f"holds {sum(r['paced_holds'] for r in pace['shards'])}  "
            f"splits {sum(r['paced_splits'] for r in pace['shards'])}"
        )
    header = (f"{'shard':>6} {'arrived':>8} {'completed':>10} {'shed':>6} "
              f"{'thruput':>8} {'p50':>6} {'p99':>6} {'maxQ':>6}")
    lines.append(header)
    for row in snapshot["shards"]:
        sj = row["sojourn"]
        lines.append(
            f"{row['shard']:>6} {row['arrived']:>8} {row['completed']:>10} "
            f"{row['shed']:>6} {row['throughput']:>8.3f} {sj['p50']:>6.0f} "
            f"{sj['p99']:>6.0f} {row['max_queue_depth']:>6}"
        )
    return "\n".join(lines)
