"""Admission control: bounded root-buffer backpressure + load shedding.

The WORMS model gives the root an unbounded backlog; a real service does
not.  :class:`AdmissionController` bounds, per shard, (1) how many
admitted messages may sit at the root awaiting their first flush
(``max_root_backlog``) and (2) how many arrivals may queue in front of
admission (``max_queue``).  Arrivals beyond both bounds are **shed** —
counted, reported, and surfaced to closed-loop arrival processes, never
silently dropped.

The queue drains in FIFO order at the start of every step while the
shard's root has headroom.  Draining also consults
:meth:`~repro.serve.router.ShardEngine.root_stalled`, so backpressure
composes with fault-aware triage: while a shard's ingest node sits in an
observed stall window the queue holds (messages wait at the door rather
than piling into a frozen root and then competing with recovery traffic
for IO slots).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.obs.hooks import current_obs
from repro.serve.router import ShardEngine
from repro.util.errors import InvalidInstanceError


@dataclass
class AdmissionStats:
    """Backpressure counters, per shard and in total."""

    offered: int = 0
    admitted: int = 0
    shed: int = 0
    #: message-steps spent waiting in admission queues (total).
    queue_wait_steps: int = 0
    max_queue_depth: int = 0
    #: steps on which draining held because the shard root was stalled.
    stall_holds: int = 0
    #: messages handed to a neighbor shard by a breaker-open diversion
    #: (they stay counted in ``offered`` once; the handoff moves them).
    handoff_in: int = 0
    #: handoff messages the receiving queue had no room for (the
    #: supervisor sheds these and counts the shedding itself).
    handoff_overflow: int = 0
    shed_by_shard: dict = field(default_factory=dict)


class AdmissionController:
    """Per-shard bounded queues in front of the shard roots."""

    def __init__(
        self,
        n_shards: int,
        *,
        max_root_backlog: int,
        max_queue: int,
    ) -> None:
        if max_root_backlog < 1:
            raise InvalidInstanceError(
                f"max_root_backlog must be >= 1, got {max_root_backlog}"
            )
        if max_queue < 0:
            raise InvalidInstanceError(
                f"max_queue must be >= 0, got {max_queue}"
            )
        self.max_root_backlog = int(max_root_backlog)
        self.max_queue = int(max_queue)
        #: per-shard FIFO of (msg_id, target_leaf) awaiting admission.
        self.queues: "list[deque]" = [deque() for _ in range(n_shards)]
        self.stats = AdmissionStats()

    def queue_depth(self, shard_id: int) -> int:
        """Arrivals currently waiting in front of ``shard_id``."""
        return len(self.queues[shard_id])

    def total_queued(self) -> int:
        """Arrivals waiting in front of any shard."""
        return sum(len(q) for q in self.queues)

    def clear_shard(self, shard_id: int) -> "list[tuple[int, int]]":
        """Empty a shard's queue; returns the dropped items in FIFO order.

        The caller owns the accounting for whatever it does with them
        (shed them, reload them elsewhere) — this only empties the lane.
        """
        q = self.queues[shard_id]
        dropped = list(q)
        q.clear()
        return dropped

    def load_queue(
        self, shard_id: int, items: "list[tuple[int, int]]"
    ) -> None:
        """Replace a shard's queue wholesale (worker restore path).

        Unbounded on purpose: the items are a snapshot of a queue that
        already respected the bound when it was captured.
        """
        q = self.queues[shard_id]
        q.clear()
        q.extend((int(m), int(leaf)) for m, leaf in items)
        if len(q) > self.stats.max_queue_depth:
            self.stats.max_queue_depth = len(q)

    def load_requeue(
        self, shard_id: int, items: "list[tuple[int, int]]"
    ) -> None:
        """Append already-admissible items unbounded (worker requeue path:
        the parent applied the room check before shipping them)."""
        q = self.queues[shard_id]
        q.extend((int(m), int(leaf)) for m, leaf in items)
        if len(q) > self.stats.max_queue_depth:
            self.stats.max_queue_depth = len(q)

    def note_external_shed(self, shard_id: int, msg_id: int) -> None:
        """A driver shed ``msg_id`` outside :meth:`offer` (abandoned or
        overflowing spill paths) after bumping ``stats`` itself.  No-op
        here; the tenant controller mirrors it into its per-tenant
        ledger."""

    # Buffer-residency hooks: no-ops here so drivers can call them
    # unconditionally; the tenant controller overrides them to enforce
    # per-tenant buffer quotas.
    def note_departed(self, msg_id: int) -> None:
        """``msg_id`` left its shard's buffers (completed)."""

    def reset_shard_residency(self, shard_id: int) -> None:
        """``shard_id``'s buffers were wiped."""

    def rebuild_residency(self, shard_id: int, msg_ids) -> None:
        """``shard_id`` was restored with these messages buffered."""

    def offer(
        self, shard_id: int, msg_id: int, target_leaf: int
    ) -> bool:
        """Enqueue one arrival; returns False (shed) when the queue is full."""
        self.stats.offered += 1
        q = self.queues[shard_id]
        if len(q) >= self.max_queue:
            self.stats.shed += 1
            by = self.stats.shed_by_shard
            by[shard_id] = by.get(shard_id, 0) + 1
            obs = current_obs()  # rare event: look up at the site
            if obs.enabled:
                shed = obs.metrics.counter(
                    "serve_shed_total", "arrivals shed by admission"
                )
                shed.inc()
                shed.labels(shard=shard_id).inc()
            return False
        q.append((msg_id, target_leaf))
        if len(q) > self.stats.max_queue_depth:
            self.stats.max_queue_depth = len(q)
        return True

    def requeue(
        self, shard_id: int, items: "list[tuple[int, int]]"
    ) -> int:
        """Re-enqueue spilled ``(msg_id, target_leaf)`` pairs after recovery.

        Used by the supervisor when a shard leaves quarantine: arrivals
        that were parked in the spill queue while the breaker was open go
        back in front of admission.  They were already counted in
        ``stats.offered`` at arrival, so this does *not* re-offer them;
        it only appends up to the queue bound and returns how many fit.
        The caller sheds the remainder (and counts that shedding itself).
        """
        q = self.queues[shard_id]
        accepted = 0
        for msg_id, leaf in items:
            if len(q) >= self.max_queue:
                break
            q.append((msg_id, leaf))
            accepted += 1
        if len(q) > self.stats.max_queue_depth:
            self.stats.max_queue_depth = len(q)
        return accepted

    def handoff(
        self, to_shard: int, items: "list[tuple[int, int]]"
    ) -> int:
        """Hand diverted ``(msg_id, target_leaf)`` pairs to ``to_shard``.

        Same bounded-append discipline as :meth:`requeue` (the messages
        were already offered once at arrival), but counted separately so
        reports can distinguish a recovery requeue from a breaker-open
        handoff.  Returns how many fit; the caller sheds the rest.
        """
        accepted = self.requeue(to_shard, items)
        self.stats.handoff_in += accepted
        self.stats.handoff_overflow += len(items) - accepted
        return accepted

    def drain(
        self, shard_id: int, engine: ShardEngine, step: int
    ) -> "list[tuple[int, int, int | None]]":
        """Admit queued arrivals while the shard root has headroom.

        Returns ``(msg_id, target_leaf, completed_step_or_None)`` tuples
        for everything admitted this step (the completion slot is for
        degenerate single-node shards, where admission *is* completion).
        """
        q = self.queues[shard_id]
        admitted: "list[tuple[int, int, int | None]]" = []
        if q and engine.root_stalled(step):
            self.stats.stall_holds += 1
            obs = current_obs()  # rare event: look up at the site
            if obs.enabled:
                holds = obs.metrics.counter(
                    "serve_stall_holds_total",
                    "drain steps held for a stalled shard root",
                )
                holds.inc()
                holds.labels(shard=shard_id).inc()
        else:
            while q and engine.root_backlog < self.max_root_backlog:
                msg_id, leaf = q.popleft()
                done = engine.admit(msg_id, leaf, step)
                admitted.append((msg_id, leaf, done))
                self.stats.admitted += 1
        self.stats.queue_wait_steps += len(q)
        return admitted
