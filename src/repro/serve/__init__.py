"""repro.serve — online ingestion & serving on top of the WORMS pipeline.

The batch layers answer "given all messages up front, what is the best
root-to-leaf schedule?".  This package turns that machinery into a
service: messages arrive over time (:mod:`~repro.serve.arrivals`), are
routed to sharded B^ε-trees (:mod:`~repro.serve.router`), held at the
door under backpressure (:mod:`~repro.serve.admission`), re-planned in
epochs with the paper pipeline (:mod:`~repro.serve.planner`), and
metered per-message (:mod:`~repro.serve.metrics`) — all driven by the
deterministic, journal-capable :class:`~repro.serve.loop.ServiceLoop`.
:mod:`~repro.serve.supervisor` layers per-shard health tracking, circuit
breakers, and live restart-from-journal on top of the loop;
:mod:`~repro.serve.procpool` runs the same supervised loop over
shard-per-process workers with real SIGKILL recovery.
:mod:`~repro.serve.tenancy` adds multi-tenant QoS — tenant-tagged
arrivals, weighted-fair admission, per-tenant sojourn SLOs with
breaker-integrated shedding, buffer quotas, and a live ``/metrics``
endpoint — enabled by ``ServeConfig.tenants`` and byte-invisible when
disabled.
"""

from repro.serve.admission import AdmissionController, AdmissionStats
from repro.serve.arrivals import (
    ArrivalProcess,
    ClosedLoopArrivals,
    KeySampler,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.serve.loop import (
    SERVE_POLICY,
    ServeConfig,
    ServeRecoveryReport,
    ServeReport,
    ServiceLoop,
    build_planner,
    recover_serve,
)
from repro.serve.metrics import (
    LatencyStats,
    ServeMetrics,
    format_serve_report,
)
from repro.serve.planner import (
    EpochPlanner,
    PacedPlanner,
    PlannerStats,
    plan_flushes,
)
from repro.serve.procpool import ProcPoolLoop
from repro.serve.router import (
    ShardEngine,
    ShardRouter,
    ShardSpec,
    ShardStats,
)
from repro.serve.supervisor import (
    CircuitBreaker,
    DEGRADED,
    HEALTHY,
    Heartbeat,
    QUARANTINED,
    RECOVERING,
    SupervisedLoop,
    SupervisedReport,
    SupervisorConfig,
    SupervisorStats,
    rebuild_shard_state,
)
from repro.serve.tenancy import (
    MetricsEndpoint,
    SLOTracker,
    TenancyRuntime,
    TenantAdmissionController,
    TenantMix,
    TenantSpec,
    format_tenant_report,
    make_tenants,
)

__all__ = [
    "MetricsEndpoint",
    "SLOTracker",
    "TenancyRuntime",
    "TenantAdmissionController",
    "TenantMix",
    "TenantSpec",
    "format_tenant_report",
    "make_tenants",
    "AdmissionController",
    "AdmissionStats",
    "ArrivalProcess",
    "ClosedLoopArrivals",
    "EpochPlanner",
    "PacedPlanner",
    "KeySampler",
    "LatencyStats",
    "MMPPArrivals",
    "PlannerStats",
    "PoissonArrivals",
    "ProcPoolLoop",
    "SERVE_POLICY",
    "ServeConfig",
    "ServeMetrics",
    "ServeRecoveryReport",
    "ServeReport",
    "ServiceLoop",
    "build_planner",
    "ShardEngine",
    "ShardRouter",
    "ShardSpec",
    "ShardStats",
    "SupervisedLoop",
    "SupervisedReport",
    "SupervisorConfig",
    "SupervisorStats",
    "CircuitBreaker",
    "Heartbeat",
    "HEALTHY",
    "DEGRADED",
    "QUARANTINED",
    "RECOVERING",
    "TraceArrivals",
    "format_serve_report",
    "plan_flushes",
    "rebuild_shard_state",
    "recover_serve",
]
