"""Shard-per-process serving: shared-nothing workers behind the
supervised loop.

:class:`ProcPoolLoop` drives the same run :class:`~repro.serve.supervisor.
SupervisedLoop` does, but shard engines live in separate **processes**.
The parent keeps everything global — arrivals, routing, metrics, the
journal, the supervision state machine — and ships each worker per-epoch
batches of pre-routed arrivals over a pipe; workers own only their
shards' engines, admission queues, and a planner, and answer with
per-step results (admits, completions, sheds, buffered journal records,
depth samples) plus counter deltas.

The determinism story is the same one that makes the threaded driver
byte-identical to the sequential loop, pushed across a process boundary:

* every per-shard decision is a pure function of ``(config, spec)`` —
  :func:`~repro.serve.loop.build_shard_engine` and
  :func:`~repro.serve.supervisor.apply_chaos_windows` rebuild the exact
  engine in the worker, and fault draws are memoized pure functions of
  the derived seed, so a worker answers every injector query exactly as
  the in-process engine would;
* the parent pre-draws arrivals for the whole chunk (arrival RNG state
  only ever advances by ``take`` calls in step order) and merges worker
  results **per (step, shard) in ascending order**, so journal records,
  checkpoints, and metrics land byte-identically to the sequential loop;
* chunks end at epoch boundaries and split at chaos-event steps, so
  every supervision transition (heartbeat, breaker trip, kill) happens
  at a barrier where the parent's view of the world is complete.
  Closed-loop arrivals force one-step chunks (completions feed the
  arrival process).

A fault-free ``--processes N`` journal is therefore byte-identical to a
``ServiceLoop`` journal for every N — pinned by test.

Three behaviors exist only here:

* **dead workers**: a worker that exits (SIGKILL from
  ``kill-worker`` chaos, a crash, or watchdog escalation) quarantines
  every shard it hosted; the probe path restarts each shard **on a
  fresh process** from the journal fold, under the normal
  ``restart_budget``;
* **watchdog escalation**: a chunk that misses the soft deadline gets a
  cooperative cancel (an :class:`multiprocessing.Event` the worker
  polls between steps), then ``terminate()`` (SIGTERM), then ``kill()``
  (SIGKILL).  Every rung ends with the worker dead and the standard
  dead-worker path taking over; un-merged chunk results are discarded —
  the journal and the parent's shadow are the only truth;
* **queue mirroring**: the parent mirrors every worker admission queue
  (insert on dispatch, remove on reported admit/shed), so a dead
  worker's queue is reconstructed exactly when its shard restarts.

Known (chaos-only) divergences from the thread driver, all conservation
-exact: a shard that deadlocks mid-chunk is quarantined at the next
barrier rather than mid-step, its unconsumed chunk arrivals spilling at
the barrier; depth timelines meter the spill one barrier late.  Fault-
free runs have none of these.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
from dataclasses import asdict

from pathlib import Path

from repro.dam.journal import REC_FLUSH
from repro.dam.schedule import FlushSchedule
from repro.faults.chaos import CHAOS_DISK_FAULT
from repro.faults.iofaults import FaultFS, parse_plan
from repro.obs.hooks import current_obs
from repro.obs.profile import PHASE_EXECUTE
from repro.policies.executor import MAX_IDLE_STEPS
from repro.serve.admission import AdmissionController
from repro.serve.loop import (
    MAX_FORCED_REPLANS,
    build_planner,
    build_shard_engine,
)
from repro.serve.tenancy.fair import TenantAdmissionController
from repro.serve.router import ShardStats
from repro.serve.supervisor import (
    BREAKER_OPEN,
    DEGRADED,
    HEALTHY,
    QUARANTINED,
    SupervisedLoop,
    _ShardJournalBuffer,
    apply_chaos_windows,
)
from repro.util.errors import (
    ExecutionStalledError,
    InvalidInstanceError,
    StorageError,
)
from repro.util.fsio import install

#: seconds each escalation rung waits before climbing to the next.
ESCALATION_GRACE = 1.0


# ---------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------
class _WorkerShard:
    """One shard's per-process loop state (mirrors the parent's
    ``_fresh`` / ``_replans_left`` bookkeeping)."""

    __slots__ = ("engine", "fresh", "replans_left", "frozen_at",
                 "unconsumed")

    def __init__(self, engine) -> None:
        self.engine = engine
        self.fresh: "list[int]" = []
        self.replans_left = MAX_FORCED_REPLANS
        #: step at which this shard deadlocked with no re-plans left
        #: (the parent quarantines it at the barrier), else None.
        self.frozen_at: "int | None" = None
        #: arrivals the freeze left unoffered, returned to the parent.
        self.unconsumed: "list[tuple[int, int, int]]" = []


class _ShardWorker:
    """Everything one worker process owns."""

    def __init__(self, config, chaos, specs, cancel,
                 debug_hang=None) -> None:
        self.config = config
        self.cancel = cancel
        #: test hook: ``(shard, step, mode)`` hangs the worker at that
        #: step; mode is ``cancellable`` (honors the cancel event),
        #: ``stubborn-term`` (dies only to SIGTERM), or ``stubborn-kill``
        #: (ignores SIGTERM; dies only to SIGKILL).
        self.debug_hang = debug_hang
        self.planner = build_planner(config)
        #: gid -> tenant index, fed by the parent with each batch (the
        #: worker never sees the arrival process, only routed gids).
        self.tenant_of: "dict[int, int]" = {}
        if config.tenants:
            self.admission: AdmissionController = TenantAdmissionController(
                config.shards,
                max_root_backlog=config.max_root_backlog or 4 * config.B,
                max_queue=config.max_queue or 16 * config.B,
                specs=config.tenants,
                tenant_of=self.tenant_of,
            )
        else:
            self.admission = AdmissionController(
                config.shards,
                max_root_backlog=config.max_root_backlog or 4 * config.B,
                max_queue=config.max_queue or 16 * config.B,
            )
        self.shards: "dict[int, _WorkerShard]" = {}
        for sid in sorted(specs):
            engine = build_shard_engine(config, specs[sid])
            apply_chaos_windows(engine, chaos, config, sid)
            self.shards[sid] = _WorkerShard(engine)
        #: per-shard durable sinks (engine='lsm'): each hosted shard
        #: owns ``data_dir/shard-<sid>``.  Opening is normal recovery —
        #: a fresh process after a SIGKILL replays the WAL it was left.
        self.stores: dict = {}
        if config.engine == "lsm":
            from repro.lsm.disk import KVStore
            for sid in sorted(specs):
                self.stores[sid] = KVStore(
                    Path(config.data_dir) / f"shard-{sid}", sync=False
                )
        #: gid -> routed key, fed by the parent with each batch/restore
        #: (the durable sink records completions under the routed key).
        self.key_of: "dict[int, int]" = {}
        #: per-chunk durable-sink rejections, reported with the result.
        self._store_errors: "dict[int, int]" = {}
        #: chaos disk-fault windows live worker-side too: the worker
        #: owns the stores, so its syscalls are the fault domain.
        self.chaos = chaos
        self._fault_windows: "list[tuple[int, tuple]]" = []
        self._fault_fs: "FaultFS | None" = None
        self._faults_fired = 0
        # Deltas are taken against the last *reported* totals, not the
        # chunk start, so counters bumped between chunks (the forced
        # re-plan a restore issues) reach the parent with the next chunk.
        self._last_stats = {
            sid: asdict(ws.engine.stats) for sid, ws in self.shards.items()
        }
        self._last_adm = asdict(self.admission.stats)
        self._last_plan = asdict(self.planner.stats)

    def _maybe_hang(self, t: int) -> None:
        if self.debug_hang is None:
            return
        sid, step, mode = self.debug_hang
        if sid not in self.shards or t != step:
            return
        if mode == "stubborn-kill":
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
        if mode == "cancellable":
            while not self.cancel.is_set():
                time.sleep(0.005)
        else:
            while True:
                time.sleep(0.05)

    # -- disk-fault windows (worker-side fault domain) -----------------
    def _step_fault_windows(self, t: int) -> None:
        """Expire/open chaos disk-fault windows at step ``t``.  A window
        arms only on the worker hosting the event's shard, so per-shard
        stores get per-shard fault domains."""
        refresh = False
        if self._fault_windows:
            live = [w for w in self._fault_windows if w[0] > t]
            if len(live) != len(self._fault_windows):
                self._fault_windows = live
                refresh = True
        for ev in self.chaos.events_at(t):
            if ev.kind == CHAOS_DISK_FAULT and ev.shard in self.shards:
                self._fault_windows.append(
                    (t + ev.duration, parse_plan(ev.spec))
                )
                refresh = True
        if refresh:
            self._refresh_fault_fs()

    def _refresh_fault_fs(self) -> None:
        if self._fault_fs is not None:
            self._faults_fired += len(self._fault_fs.fired)
            self._fault_fs.fired.clear()
        rules = tuple(
            rule for _end, plan in self._fault_windows for rule in plan
        )
        if rules:
            self._fault_fs = FaultFS(rules)
            install(self._fault_fs)
        else:
            self._fault_fs = None
            install(None)

    # -- durable sink --------------------------------------------------
    def _store_put(self, sid: int, gid: int, step: int) -> None:
        """Record one completion in the shard's store (degradation-
        tolerant: the completion's acknowledgment is the parent journal;
        a rejected write is counted and shipped home, never fatal)."""
        store = self.stores.get(sid)
        if store is None:
            return
        key = self.key_of.pop(gid, None)
        if key is None:
            return
        try:
            store.put(str(key), {"gid": int(gid), "step": int(step)})
        except StorageError:
            self._store_errors[sid] = self._store_errors.get(sid, 0) + 1

    def shutdown(self) -> None:
        """Close the stores (flushing their WALs) before the process
        exits via ``os._exit`` — which skips finalizers on purpose."""
        for store in self.stores.values():
            try:
                store.close()
            except (StorageError, OSError):
                pass
        self.stores.clear()
        if self._fault_fs is not None or self._fault_windows:
            self._fault_windows = []
            self._fault_fs = None
            install(None)

    def restore(self, sid, locations, targets, queue_items,
                tenants=None, keys=None) -> None:
        """Install folded restart state shipped by the parent."""
        if tenants:
            self.tenant_of.update(
                {int(g): int(tid) for g, tid in tenants.items()}
            )
        if keys:
            self.key_of.update(
                {int(g): int(k) for g, k in keys.items()}
            )
        ws = self.shards[sid]
        ws.engine.wipe()
        ws.engine.restore_state(locations, targets)
        ws.fresh = []
        ws.replans_left = MAX_FORCED_REPLANS
        ws.frozen_at = None
        ws.unconsumed = []
        if ws.engine.location:
            self.planner.plan(ws.engine, [], force_full=True)
        self.admission.load_queue(sid, queue_items)
        self.admission.rebuild_residency(sid, locations)

    def run_chunk(self, t0, t1, batch, active, slo=None):
        """Execute steps ``t0..t1`` for ``active`` hosted shards.

        Phase order within each step matches ``ServiceLoop.run``
        exactly; cross-shard state (metrics, arrivals, journal) lives in
        the parent, so shards on different workers need no ordering.
        ``slo`` carries the parent's outstanding SLO decisions — the
        full door set plus ``{shard: [tenants]}`` purge debts — the
        parent owns the tracker, the worker owns the queues.  Debts are
        re-delivered until a chunk that applied them merges, so a worker
        SIGKILLed with the dispatch cannot lose a purge."""
        order = sorted(set(self.shards) & set(active))
        out = {
            sid: {"admits": {}, "sheds": {}, "records": {}, "exec": {},
                  "depths": {}, "frozen_at": None}
            for sid in order
        }
        adm = self.admission
        self._store_errors = {}
        for sid in order:
            tags = batch.get(sid, {}).get("tenants")
            if tags:
                self.tenant_of.update(
                    {int(g): int(tid) for g, tid in tags.items()}
                )
            keys = batch.get(sid, {}).get("keys")
            if keys:
                self.key_of.update(
                    {int(g): int(k) for g, k in keys.items()}
                )
        if slo is not None:
            adm.door_closed = set(slo["door"])
            for sid in order:
                for tid in slo["purge"].get(sid, ()):
                    purged = adm.purge_tenant_shard(sid, tid)
                    if purged:
                        out[sid].setdefault("purged", []).extend(purged)
        for sid in order:
            items = batch.get(sid, {}).get("requeue", ())
            if items:
                adm.load_requeue(sid, items)
        for t in range(t0, t1 + 1):
            if self.cancel.is_set():
                return None
            self._maybe_hang(t)
            if self.cancel.is_set():
                return None
            self._step_fault_windows(t)
            boundary = self.planner.is_boundary(t)
            for sid in order:  # phase 1: offer routed arrivals
                ws = self.shards[sid]
                arrivals = batch.get(sid, {}).get("arrivals", {}).get(t, ())
                if ws.frozen_at is not None:
                    ws.unconsumed.extend((t, g, leaf) for g, leaf in arrivals)
                    continue
                sheds = [g for g, leaf in arrivals
                         if not adm.offer(sid, g, leaf)]
                if sheds:
                    out[sid]["sheds"][t] = sheds
            for sid in order:  # phase 2: drain admission -> roots
                ws = self.shards[sid]
                if ws.frozen_at is not None:
                    continue
                admits = adm.drain(sid, ws.engine, t)
                if admits:
                    out[sid]["admits"][t] = [(g, done) for g, _l, done
                                             in admits]
                    ws.fresh.extend(g for g, _l, done in admits
                                    if done is None)
                    for g, _l, done in admits:
                        if done is not None:
                            self._store_put(sid, g, done)
            for sid in order:  # phase 3: epoch / forced planning
                ws = self.shards[sid]
                if ws.frozen_at is not None:
                    continue
                force = ws.engine.idle_streak > MAX_IDLE_STEPS
                if force and ws.replans_left <= 0:
                    ws.frozen_at = t
                    out[sid]["frozen_at"] = t
                    continue
                if force or (boundary and ws.fresh):
                    self.planner.plan(ws.engine, ws.fresh, force_full=force)
                    ws.fresh = []
                    if force:
                        ws.replans_left -= 1
            for sid in order:  # phase 4: one DAM step, records buffered
                ws = self.shards[sid]
                if ws.frozen_at is not None:
                    continue
                buf = _ShardJournalBuffer()
                done = ws.engine.step(t, buf)
                if buf.records:
                    out[sid]["records"][t] = buf.records
                if done:
                    out[sid]["exec"][t] = done
                    for gid, step in done:
                        adm.note_departed(gid)
                        self._store_put(sid, gid, step)
            for sid in order:  # phase 5: depth samples
                ws = self.shards[sid]
                out[sid]["depths"][t] = (
                    adm.queue_depth(sid),
                    ws.engine.root_backlog,
                    ws.engine.in_flight,
                )
        for sid in order:
            ws = self.shards[sid]
            cur = asdict(ws.engine.stats)
            prev = self._last_stats[sid]
            out[sid]["stats"] = {k: cur[k] - prev[k] for k in cur}
            self._last_stats[sid] = cur
            out[sid]["unconsumed"] = ws.unconsumed
            ws.unconsumed = []
            out[sid]["queue_len"] = adm.queue_depth(sid)
            store = self.stores.get(sid)
            if store is not None:
                # Flush the WAL before the results ship: every
                # completion the parent merges (= acknowledges) from
                # this chunk has its store write out of process-local
                # buffers, so a SIGKILL between chunks loses none.
                try:
                    store.sync_wal()
                except StorageError:
                    self._store_errors[sid] = (
                        self._store_errors.get(sid, 0) + 1
                    )
                out[sid]["store"] = dict(
                    store.health(), errors=self._store_errors.get(sid, 0)
                )
        cur = asdict(adm.stats)
        prev, self._last_adm = self._last_adm, cur
        adm_out = {
            k: cur[k] - prev[k] for k in cur
            if k not in ("max_queue_depth", "shed_by_shard")
        }
        adm_out["max_queue_depth"] = cur["max_queue_depth"]
        adm_out["shed_by_shard"] = {
            s: cur["shed_by_shard"][s] - prev["shed_by_shard"].get(s, 0)
            for s in cur["shed_by_shard"]
        }
        cur = asdict(self.planner.stats)
        prev, self._last_plan = self._last_plan, cur
        if self._fault_fs is not None:
            self._faults_fired += len(self._fault_fs.fired)
            self._fault_fs.fired.clear()
        fired, self._faults_fired = self._faults_fired, 0
        return {
            "shards": out,
            "admission": adm_out,
            "planner": {k: cur[k] - prev[k] for k in cur},
            "faults_fired": fired,
        }


def _worker_main(conn, cancel, config, chaos, specs,
                 debug_hang=None) -> None:
    worker = _ShardWorker(config, chaos, specs, cancel, debug_hang)
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            cmd = msg[0]
            try:
                if cmd == "chunk":
                    res = worker.run_chunk(*msg[1:])
                    if res is None:  # cooperative cancel honored
                        conn.send(("cancelled",))
                        break
                    conn.send(("ok", res))
                elif cmd == "restore":
                    worker.restore(*msg[1:])
                    conn.send(("ok", None))
                elif cmd == "stop":
                    break
            except BaseException as exc:  # ship the typed error home
                try:
                    conn.send(("err", exc))
                except Exception:
                    break
    finally:
        try:
            worker.shutdown()  # the stores are child-owned: close them
        except Exception:
            pass
        try:
            conn.close()
        except Exception:
            pass
        # Skip interpreter finalizers: a forked child shares journal
        # segment descriptors with the parent, and letting GC flush an
        # inherited buffered writer would double-write its bytes.
        os._exit(0)


# ---------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------
class _WorkerSlot:
    """A live worker process and the shards it hosts."""

    __slots__ = ("slot_id", "proc", "conn", "cancel", "shards",
                 "door_seen")

    def __init__(self, slot_id, proc, conn, cancel, shards) -> None:
        self.slot_id = slot_id
        self.proc = proc
        self.conn = conn
        self.cancel = cancel
        self.shards = set(shards)
        #: door version last *merged* from this slot (0 = the initial
        #: all-open door every fresh worker is born with); a respawned
        #: slot starts at 0 and therefore re-receives the current door.
        self.door_seen = 0


class ProcPoolLoop(SupervisedLoop):
    """:class:`SupervisedLoop` over shard-per-process workers.

    ``processes=0`` means one worker per shard; shards round-robin over
    fewer slots.  ``debug_hang=(shard, step, mode)`` is a test hook that
    wedges the hosting worker at that step to exercise the watchdog
    escalation ladder.
    """

    def __init__(
        self,
        config,
        *,
        processes: int = 0,
        supervisor=None,
        chaos=None,
        journal=None,
        sync: bool = False,
        max_segment_bytes: "int | None" = None,
        compact_every_rotations: int = 0,
        debug_hang=None,
    ) -> None:
        if int(processes) < 0:
            raise InvalidInstanceError(
                f"processes must be >= 0, got {processes}"
            )
        super().__init__(
            config, supervisor=supervisor, chaos=chaos, workers=1,
            journal=journal, sync=sync,
            max_segment_bytes=max_segment_bytes,
            compact_every_rotations=compact_every_rotations,
        )
        n = len(self.engines)
        self.processes = min(int(processes), n) if processes else n
        self._ctx = mp.get_context("fork")
        self._debug_hang = debug_hang
        self._slots: "dict[int, _WorkerSlot]" = {}
        self._slot_of: "dict[int, int]" = {}
        self._next_slot_id = 0
        #: per-shard mirror of the worker admission queue, gid -> leaf
        #: in FIFO order (dicts preserve insertion order).
        self._mirror: "list[dict[int, int]]" = [{} for _ in range(n)]
        #: diversion handoffs staged for delivery at the next dispatch.
        self._pending_requeue: "list[list]" = [[] for _ in range(n)]
        #: merged per-shard counters (worker deltas accumulate here; the
        #: report reads these, never the parent's inert engines).
        self._acc_stats = [ShardStats() for _ in range(n)]
        #: realized schedules rebuilt from merged flush records.
        self._schedules = [FlushSchedule() for _ in range(n)]
        self._last_inflight = [0] * n
        self._last_backlog = [0] * n
        #: journal-checkpointed SLO state (the workers own the queues
        #: the decisions act on).  The door is versioned and per-shard
        #: purge debts persist until a chunk that applied them merges,
        #: so a worker death between dispatch and merge re-delivers the
        #: directive to the respawned worker instead of losing it.
        self._door: "list[int]" = []
        self._door_version = 0
        self._owed_purge: "list[set[int]]" = [set() for _ in range(n)]
        #: last reported per-shard store degradation reason ("" = ok).
        self._store_health: "list[str]" = [""] * n

    # -- journal meta --------------------------------------------------
    def _driver_meta(self) -> dict:
        return {"kind": "procpool", "processes": self.processes}

    # -- durable sink (worker-owned under this driver) ------------------
    def _open_store(self, config):
        """Per-shard stores live in the workers (``data_dir/shard-<k>``),
        never in the parent: a store held here would double-write every
        completion the merge path replays, and a SIGKILLed worker could
        not take its own store down with it."""
        return None

    def _note_routed(self, gid: int, key, sid: int, t: int) -> None:
        super()._note_routed(gid, key, sid, t)
        if self._worker_stores:
            # The parent still owns the gid -> key map: restores ship it
            # to fresh workers, batches carry the per-chunk slice.
            self._gid_key[gid] = key

    @property
    def _worker_stores(self) -> bool:
        return self.config.engine == "lsm"

    def _merge_store_health(self, sid: int, sdata: dict) -> None:
        """Fold one shard's reported store health into supervision.

        Degradation feeds the existing health machinery at its advisory
        stage: the shard is marked DEGRADED (heartbeats re-evaluate it
        every epoch), counted on first entry and on re-arm.  It never
        trips the breaker by itself — completions are journal-durable,
        so a read-only store degrades the sink, not the service.
        """
        errs = int(sdata.get("errors", 0))
        if errs:
            self.store_put_errors += errs
            self._count(
                "serve_store_degraded_total",
                "durable-sink writes rejected by a degraded store",
                shard=sid, n=errs,
            )
        reason = str(sdata.get("degraded", ""))
        prev, self._store_health[sid] = self._store_health[sid], reason
        if reason:
            if self._health[sid] == HEALTHY:
                self._health[sid] = DEGRADED
            if not prev:
                self._count(
                    "serve_shard_store_degraded_total",
                    "shard stores that entered degraded (read-only) mode",
                    shard=sid,
                )
        elif prev:
            self._count(
                "serve_shard_store_rearmed_total",
                "shard stores that re-armed out of degraded mode",
                shard=sid,
            )

    # -- worker lifecycle ----------------------------------------------
    def _start_workers(self) -> None:
        n = len(self.engines)
        for w in range(self.processes):
            sids = set(range(w, n, self.processes))
            if sids:
                self._spawn_slot(sids)

    def _spawn_slot(self, sids) -> _WorkerSlot:
        if self._journal is not None:
            # Nothing of the parent's journal may sit unflushed in the
            # child's inherited copy of the buffered writer.
            self._journal.writer.flush()
        parent_conn, child_conn = self._ctx.Pipe()
        cancel = self._ctx.Event()
        specs = {sid: self.router.shards[sid] for sid in sids}
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, cancel, self.config, self.chaos, specs,
                  self._debug_hang),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        slot = _WorkerSlot(self._next_slot_id, proc, parent_conn, cancel,
                           sids)
        self._next_slot_id += 1
        self._slots[slot.slot_id] = slot
        for sid in sids:
            self._slot_of[sid] = slot.slot_id
        return slot

    def _stop_workers(self) -> None:
        for slot in self._slots.values():
            try:
                slot.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for slot in self._slots.values():
            slot.proc.join(timeout=2.0)
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join()
            try:
                slot.conn.close()
            except OSError:
                pass
        self._slots.clear()
        self._slot_of.clear()

    def _on_slot_death(self, slot, t: int, reason: str) -> None:
        """A worker process is gone: quarantine everything it hosted.

        Real pids live only in :attr:`worker_log` — never in metrics or
        printed drill output, which deterministic byte-diffs cover."""
        if self._slots.pop(slot.slot_id, None) is None:
            return
        slot.proc.join(timeout=5.0)
        try:
            slot.conn.close()
        except OSError:
            pass
        self.sup_stats.worker_deaths += 1
        obs = current_obs()
        if obs.enabled:
            deaths = obs.metrics.counter(
                "serve_worker_deaths_total", "worker processes lost"
            )
            deaths.inc()
        for sid in sorted(slot.shards):
            self._slot_of.pop(sid, None)
            self.worker_log.append(
                ("death", sid, slot.proc.pid, t, reason,
                 slot.proc.exitcode)
            )
            if obs.enabled:
                deaths.labels(shard=sid).inc()
            # The worker's machine state for this shard is lost with it.
            self._last_inflight[sid] = 0
            self._last_backlog[sid] = 0
            # The respawned worker re-opens the store (normal recovery);
            # its first chunk reports fresh health.
            self._store_health[sid] = ""
            if self._abandoned[sid]:
                continue
            if self._breakers[sid].state != BREAKER_OPEN:
                self._open_breaker(sid, self.planner.epoch_of(max(t, 1)))
            else:
                self._health[sid] = QUARANTINED

    def _escalate(self, slot, t: int) -> None:
        """Soft deadline missed: cancel -> SIGTERM -> SIGKILL.

        Every rung ends with the worker dead; the dead-worker path then
        restarts its shards from the journal on fresh processes."""
        grace = min(ESCALATION_GRACE,
                    self.supervisor_config.watchdog_deadline)
        slot.cancel.set()
        cancelled = False
        try:
            if slot.conn.poll(grace):
                try:
                    cancelled = slot.conn.recv()[0] == "cancelled"
                except (EOFError, OSError):
                    cancelled = True  # died right after cancelling
        except OSError:
            pass
        slot.proc.join(grace)
        if cancelled and not slot.proc.is_alive():
            stage = "cancel"
            self.sup_stats.watchdog_cancels += 1
        else:
            slot.proc.terminate()
            slot.proc.join(grace)
            if not slot.proc.is_alive():
                stage = "terminate"
                self.sup_stats.watchdog_terminates += 1
            else:
                slot.proc.kill()
                slot.proc.join()
                stage = "kill"
                self.sup_stats.watchdog_kills += 1
        obs = current_obs()
        if obs.enabled:
            esc = obs.metrics.counter(
                "serve_watchdog_escalations_total",
                "watchdog escalation ladder outcomes",
            )
            esc.inc()
            esc.labels(stage=stage).inc()
        self._on_slot_death(slot, t, f"watchdog-{stage}")

    # -- supervision overrides -----------------------------------------
    def _dispatchable(self, sid: int) -> bool:
        return self._health[sid] != QUARANTINED and not self._abandoned[sid]

    def _vitals(self, sid: int):
        acc = self._acc_stats[sid]
        return (acc.flushes, acc.completed, acc.failed_attempts,
                self._last_inflight[sid])

    def _admission_depth(self, sid: int) -> int:
        return len(self._mirror[sid]) + len(self._pending_requeue[sid])

    def _queue_depth(self, sid: int) -> int:
        return self._admission_depth(sid) + len(self._spill[sid])

    def _finished(self) -> bool:
        m = self.metrics
        outstanding = (
            len(m.arrival_step) - len(m.completion_step) - len(m.shed_ids)
        )
        return self.arrivals.exhausted and outstanding == 0

    def _kill_shard(self, sid: int, t: int) -> None:
        super()._kill_shard(sid, t)
        self._last_inflight[sid] = 0
        self._last_backlog[sid] = 0

    def _kill_worker(self, sid: int, t: int) -> None:
        """``kill-worker`` chaos: a real SIGKILL to the hosting process,
        applied at the chunk barrier so the drill stays deterministic."""
        slot_id = self._slot_of.get(sid)
        slot = self._slots.get(slot_id) if slot_id is not None else None
        if slot is None:
            super()._kill_worker(sid, t)  # host already gone: state loss
            return
        os.kill(slot.proc.pid, signal.SIGKILL)
        slot.proc.join()
        self._on_slot_death(slot, t, "chaos-kill-worker")

    def _deliver_requeue(self, sid, items, t: int) -> None:
        room = self.admission.max_queue - self._admission_depth(sid)
        fit = items[:max(0, room)]
        self.admission.stats.handoff_in += len(fit)
        self.admission.stats.handoff_overflow += len(items) - len(fit)
        self._pending_requeue[sid].extend(fit)
        for gid, _leaf in items[len(fit):]:
            self._shed(gid, t)
            self.sup_stats.spill_overflow_shed += 1

    def _apply_restart(self, sid: int, t: int, locations) -> None:
        """Ship folded state to the hosting worker — a fresh process
        when the old one died — and requeue the spill behind the
        mirrored queue, shedding past the bound."""
        queue_items = list(self._mirror[sid].items())
        spill = list(self._spill[sid])
        self._spill[sid].clear()
        room = self.admission.max_queue - len(queue_items)
        fit = spill[:max(0, room)]
        for gid, leaf in fit:
            queue_items.append((gid, leaf))
            self._mirror[sid][gid] = leaf
        for gid, _leaf in spill[len(fit):]:
            self._shed(gid, t)
            self.sup_stats.spill_overflow_shed += 1
        self._replans_left[sid] = MAX_FORCED_REPLANS
        slot_id = self._slot_of.get(sid)
        slot = self._slots.get(slot_id) if slot_id is not None else None
        if slot is None:
            slot = self._spawn_slot({sid})
            self.sup_stats.worker_respawns += 1
            self.worker_log.append(("respawn", sid, slot.proc.pid, t))
            obs = current_obs()
            if obs.enabled:
                resp = obs.metrics.counter(
                    "serve_worker_respawns_total",
                    "fresh worker processes spawned for restarts",
                )
                resp.inc()
                resp.labels(shard=sid).inc()
        targets = {m: self._leaf_of[m] for m in locations}
        tenants = None
        keys = None
        gids = set(locations) | {g for g, _leaf in queue_items}
        if self._tenancy is not None:
            tenant_of = self.metrics.tenant_of
            tenants = {
                g: tenant_of[g] for g in gids if g in tenant_of
            }
        if self._worker_stores:
            keys = {
                g: self._gid_key[g] for g in gids if g in self._gid_key
            }
        try:
            slot.conn.send(("restore", sid, locations, targets,
                            queue_items, tenants, keys))
            msg = slot.conn.recv()
            if msg[0] == "err":
                raise msg[1]
        except (EOFError, BrokenPipeError, OSError):
            self._on_slot_death(slot, t, "restore-failed")
            return
        self._last_inflight[sid] = len(locations)
        self._last_backlog[sid] = 0

    def _abandon(self, sid: int, t: int) -> None:
        if self._abandoned[sid]:
            return
        super()._abandon(sid, t)
        self._mirror[sid].clear()
        self._pending_requeue[sid].clear()
        self._owed_purge[sid].clear()
        self._last_inflight[sid] = 0
        self._last_backlog[sid] = 0

    # -- chunked execution ---------------------------------------------
    def _chunk_end(self, t0: int, max_steps: int) -> int:
        closed = (
            any(t.arrivals == "closed" for t in self.config.tenants)
            if self.config.tenants
            else self.config.arrivals == "closed"
        )
        if closed:
            # Completions feed the arrival process step by step.
            return t0
        e = self.planner.epoch_length
        t1 = min(((t0 - 1) // e + 1) * e, max_steps)
        for ev in self.chaos.events:
            if t0 < ev.step <= t1:
                t1 = ev.step - 1
        return t1

    def _stage_offer(self, sid, gid, leaf, t, batch) -> None:
        if self._dispatchable(sid):
            self._leaf_of[gid] = leaf
            entry = batch.setdefault(sid, {"arrivals": {}, "requeue": []})
            entry["arrivals"].setdefault(t, []).append((gid, leaf))
            if self._tenancy is not None:
                entry.setdefault("tenants", {})[gid] = (
                    self.metrics.tenant_of[gid]
                )
            if self._worker_stores and gid in self._gid_key:
                entry.setdefault("keys", {})[gid] = self._gid_key[gid]
            self._mirror[sid][gid] = leaf
        else:
            SupervisedLoop._offer(self, sid, gid, leaf, t)

    def _apply_slo(self, door, tripped, t: int) -> None:
        # The parent's own queues are always empty under this driver
        # (offers are staged to workers or spilled), so the super call
        # only journals the decision and maintains the parent-side door
        # set; the real enforcement ships to the workers as versioned
        # door state plus per-shard purge debts, cleared only when a
        # chunk that applied them merges back.
        super()._apply_slo(door, tripped, t)
        new_door = sorted(door)
        if new_door != self._door:
            self._door = new_door
            self._door_version += 1
        if tripped:
            for sid in range(len(self.engines)):
                if not self._abandoned[sid]:
                    self._owed_purge[sid].update(tripped)

    def _stage_chunk(self, t0: int, t1: int):
        """Pre-draw and route the chunk's arrivals; stage handoffs."""
        batch: dict = {}
        gid_after: "dict[int, int]" = {}
        exhausted_after: "dict[int, bool]" = {}
        for sid in range(len(self.engines)):
            items = self._pending_requeue[sid]
            if not items:
                continue
            self._pending_requeue[sid] = []
            if self._dispatchable(sid):
                entry = batch.setdefault(sid,
                                         {"arrivals": {}, "requeue": []})
                entry["requeue"].extend(items)
                for gid, leaf in items:
                    self._mirror[sid][gid] = leaf
                    if self._tenancy is not None:
                        tid = self.metrics.tenant_of.get(gid)
                        if tid is not None:
                            entry.setdefault("tenants", {})[gid] = tid
                    if self._worker_stores and gid in self._gid_key:
                        entry.setdefault("keys", {})[gid] = (
                            self._gid_key[gid]
                        )
            else:
                # The divert target itself went down before delivery:
                # park the handoff in its spill, shedding past capacity.
                for gid, leaf in items:
                    if self._abandoned[sid] or (
                        len(self._spill[sid]) >= self._spill_capacity
                    ):
                        self._shed(gid, t0)
                        self.sup_stats.spill_overflow_shed += 1
                    else:
                        self._spill[sid].append((gid, leaf))
                        self.metrics.note_spill(gid, t0)
                        self.sup_stats.spilled += 1
                        self.sup_stats._bump(
                            self.sup_stats.spilled_by_shard, sid
                        )
        for t in range(t0, t1 + 1):
            keys = self.arrivals.take(t)
            gids = list(range(self._next_gid, self._next_gid + len(keys)))
            self._next_gid += len(keys)
            tenants = (
                self.arrivals.pending_tenants if self._tenancy is not None
                else None
            )
            for i, (gid, key) in enumerate(zip(gids, keys)):
                sid, leaf = self.router.route(key)
                self.metrics.note_arrival(
                    gid, sid, t,
                    tenants[i] if tenants is not None else None,
                )
                self._note_routed(gid, key, sid, t)
                self._stage_offer(sid, gid, leaf, t, batch)
            self.arrivals.on_emitted(gids)
            gid_after[t] = self._next_gid
            exhausted_after[t] = self.arrivals.exhausted
        return batch, gid_after, exhausted_after

    def _slo_payload(self, slot, sids) -> "dict | None":
        """The outstanding SLO directive for one slot's chunk, or None.

        Sent whenever the slot is behind on the door version or any of
        its dispatched shards carries a purge debt; the payload is a
        pure function of parent state, so a re-delivery after a worker
        death is byte-identical to the lost one.
        """
        if self._tenancy is None:
            return None
        purge = {
            s: sorted(self._owed_purge[s])
            for s in sids if self._owed_purge[s]
        }
        if not purge and slot.door_seen == self._door_version:
            return None
        return {"door": list(self._door), "purge": purge}

    def _dispatch_chunk(self, t0: int, t1: int, batch):
        by_slot: "dict[int, list[int]]" = {}
        for sid in range(len(self.engines)):
            if self._dispatchable(sid):
                by_slot.setdefault(self._slot_of[sid], []).append(sid)
        pending = []
        for slot_id, sids in sorted(by_slot.items()):
            slot = self._slots[slot_id]
            payload = {s: batch[s] for s in sids if s in batch}
            slo = self._slo_payload(slot, sids)
            try:
                slot.conn.send(("chunk", t0, t1, payload, sids, slo))
                pending.append((slot, sids))
            except (BrokenPipeError, OSError):
                self._on_slot_death(slot, t0, "send-failed")
        results = {}
        for slot, sids in pending:
            res = self._collect(slot, t0)
            if res is not None:
                results[slot.slot_id] = res
                # The chunk merged: its directive is applied exactly
                # once, so the debt is settled.  Lost chunks (worker
                # death before collect) keep the debt for re-delivery.
                slot.door_seen = self._door_version
                for s in sids:
                    self._owed_purge[s].clear()
        return results

    def _collect(self, slot, t: int):
        sup = self.supervisor_config
        try:
            if not slot.conn.poll(sup.watchdog_deadline):
                self.sup_stats.watchdog_timeouts += 1
                self._count(
                    "serve_watchdog_timeouts_total",
                    "shard-step watchdog deadline misses",
                    shard=min(slot.shards),
                )
                self._escalate(slot, t)
                return None
            msg = slot.conn.recv()
        except (EOFError, OSError):
            self._on_slot_death(slot, t, "pipe-closed")
            return None
        if msg[0] == "ok":
            return msg[1]
        if msg[0] == "err":
            raise msg[1]
        # An unprompted ("cancelled",) means the worker is going away.
        self._on_slot_death(slot, t, "cancelled")
        return None

    def _merge_chunk(self, t0, t1, results, gid_after, exhausted_after):
        """Fold worker results back in (step, shard) ascending order.

        Returns the finish step if the run completed mid-chunk (steps
        past it are discarded before any journal write), else None."""
        journal = self._journal
        metrics = self.metrics
        per_shard = {}
        frozen: "dict[int, int]" = {}
        unconsumed: "dict[int, list]" = {}
        purged: "dict[int, list]" = {}
        for res in results.values():
            fired = res.get("faults_fired", 0)
            if fired:
                self.sup_stats.disk_faults_injected += fired
                self._count(
                    "serve_disk_faults_injected_total",
                    "syscall faults injected by chaos disk-fault windows",
                    n=fired,
                )
            for sid, data in res["shards"].items():
                per_shard[sid] = data
                if data.get("purged"):
                    purged[sid] = data["purged"]
                if data.get("store"):
                    self._merge_store_health(sid, data["store"])
                acc = self._acc_stats[sid]
                for k, v in data["stats"].items():
                    setattr(acc, k, getattr(acc, k) + v)
                if data["frozen_at"] is not None:
                    frozen[sid] = data["frozen_at"]
                if data["unconsumed"]:
                    unconsumed[sid] = data["unconsumed"]
            st = self.admission.stats
            for k, v in res["admission"].items():
                if k == "max_queue_depth":
                    st.max_queue_depth = max(st.max_queue_depth, v)
                elif k == "shed_by_shard":
                    for s, d in v.items():
                        st.shed_by_shard[s] = st.shed_by_shard.get(s, 0) + d
                else:
                    setattr(st, k, getattr(st, k) + v)
            ps = self.planner.stats
            for k, v in res["planner"].items():
                setattr(ps, k, getattr(ps, k) + v)
        # SLO purges happened worker-side before the chunk's first step;
        # mirror that here (mirror pop + counted shed at t0) before the
        # per-step fold so depth samples and the final queue_len match.
        for sid in sorted(purged):
            for gid in purged[sid]:
                self._mirror[sid].pop(gid, None)
                self._shed(gid, t0)
        order = sorted(per_shard)
        n = len(self.engines)
        end_t = None
        for t in range(t0, t1 + 1):
            for sid in order:  # phases 1-2: sheds, admits, door completions
                data = per_shard[sid]
                for gid in data["sheds"].get(t, ()):
                    self._mirror[sid].pop(gid, None)
                    self._shed(gid, t)
                for gid, done in data["admits"].get(t, ()):
                    self._mirror[sid].pop(gid, None)
                    metrics.note_admit(gid, t)
                    if done is not None:
                        self._complete(gid, done)
            for sid in order:  # phase 4: journal replay, then completions
                data = per_shard[sid]
                for rec in data["records"].get(t, ()):
                    rtype, rt, rsid, payload = rec
                    if rtype == REC_FLUSH:
                        self._schedules[rsid].add(rt, payload)
                        if journal is not None:
                            journal.record_flush(rt, rsid, payload)
                        self._shadow.append((rt, rsid, payload))
                    elif journal is not None:
                        journal.record_fault(rt, rsid, *payload)
                for gid, step in data["exec"].get(t, ()):
                    self._complete(gid, step)
            queues, backs, infl = [], [], []
            for s in range(n):  # phase 5: metering
                d = per_shard[s]["depths"].get(t) if s in per_shard else None
                if d is not None:
                    q, rb, fl = d
                    self._last_backlog[s] = rb
                    self._last_inflight[s] = fl
                    q += len(self._spill[s])
                else:
                    q = self._queue_depth(s)
                    rb = self._last_backlog[s]
                    fl = self._last_inflight[s]
                queues.append(q)
                backs.append(rb)
                infl.append(fl)
            metrics.note_step(queues, backs, infl)
            if journal is not None:
                journal.end_step(t, gid_after[t],
                                 len(metrics.completion_step))
            outstanding = (
                len(metrics.arrival_step) - len(metrics.completion_step)
                - len(metrics.shed_ids)
            )
            if exhausted_after[t] and outstanding == 0:
                end_t = t
                break
        # Barrier work: quarantine mid-chunk freezes, spill what their
        # freeze left unoffered, square the mirror with the workers.
        self._clock = (end_t if end_t is not None else t1) + 1
        for sid in sorted(frozen):
            self._replans_left[sid] = 0
            self._on_replans_exhausted(sid, self.engines[sid], frozen[sid])
        for sid in sorted(unconsumed):
            for ta, gid, leaf in unconsumed[sid]:
                self._mirror[sid].pop(gid, None)
                SupervisedLoop._offer(self, sid, gid, leaf, ta)
        for sid in order:
            assert len(self._mirror[sid]) == per_shard[sid]["queue_len"], (
                f"shard {sid}: queue mirror diverged from worker "
                f"({len(self._mirror[sid])} != "
                f"{per_shard[sid]['queue_len']})"
            )
        if end_t is not None and end_t < t1:
            # Workers ran the chunk tail after the system drained; those
            # steps never happened as far as the run is concerned.
            extra = t1 - end_t
            for sid in order:
                if sid not in frozen:
                    self._acc_stats[sid].idle_steps -= extra
        return end_t

    # -- the run loop --------------------------------------------------
    def run(self):
        if self._ran:
            raise InvalidInstanceError("a ServiceLoop runs exactly once")
        self._ran = True
        config = self.config
        metrics = self.metrics
        obs = current_obs()
        enabled = obs.enabled
        run_span = obs.tracer.span(
            "serve.run", category="serve",
            shards=len(self.engines), messages=config.messages,
        )
        clock = obs.profiler.clock
        self._journal = journal = self._open_journal()
        max_steps = config.max_steps or max(
            1000, 50 * config.messages * (config.height + 2)
        )
        self._fresh = [[] for _ in self.engines]
        self._replans_left = [MAX_FORCED_REPLANS] * len(self.engines)
        self._next_gid = 0
        self._start_workers()
        t = 0
        try:
            while True:
                if self._finished():
                    break
                t0 = t + 1
                if t0 > max_steps:
                    raise ExecutionStalledError(
                        f"serving loop exceeded max_steps={max_steps} "
                        f"(in flight: {sum(self._last_inflight)})",
                        step=t0,
                        epoch=self.planner.epoch_of(t0),
                        last_durable_step=self._durable_step(),
                    )
                self._begin_step(t0)
                t1 = self._chunk_end(t0, max_steps)
                batch, gid_after, exhausted = self._stage_chunk(t0, t1)
                t_exec = clock() if enabled else 0.0
                results = self._dispatch_chunk(t0, t1, batch)
                if enabled:
                    obs.profiler.add(PHASE_EXECUTE, clock() - t_exec)
                end_t = self._merge_chunk(t0, t1, results, gid_after,
                                          exhausted)
                t = end_t if end_t is not None else t1
                if end_t is not None:
                    break
        except ExecutionStalledError:
            if journal is not None:
                journal.abort()
            run_span.set("stalled", True)
            run_span.finish()
            raise
        finally:
            self._stop_workers()
            self._close_store()
        for s in range(len(self.engines)):
            self._schedules[s].trim()
            # The parent's engines never stepped; the report reads the
            # merged truth through them.
            self.engines[s].schedule = self._schedules[s]
            self.engines[s].stats = self._acc_stats[s]
        if journal is not None:
            journal.finish(t, self._next_gid, len(metrics.completion_step))
        if enabled:
            run_span.set_steps(1, t)
            reg = obs.metrics
            reg.counter("serve_runs_total", "serving runs completed").inc()
            reg.counter("serve_steps_total", "serving DAM steps").inc(t)
            reg.counter(
                "serve_arrivals_total", "messages that arrived"
            ).inc(self._next_gid)
            reg.counter(
                "serve_admitted_total", "messages admitted past the queues"
            ).inc(self.admission.stats.admitted)
            reg.counter(
                "serve_completions_total", "messages delivered to leaves"
            ).inc(len(metrics.completion_step))
            reg.counter(
                "serve_planned_flushes_total", "flushes emitted by planning"
            ).inc(self.planner.stats.planned_flushes)
            flush_counter = reg.counter(
                "serve_flushes_total", "flushes realized by shard engines"
            )
            retry_counter = reg.counter(
                "serve_retries_total", "failed flush attempts across shards"
            )
            for engine in self.engines:
                flush_counter.inc(engine.stats.flushes)
                flush_counter.labels(shard=engine.shard_id).inc(
                    engine.stats.flushes
                )
                retry_counter.inc(engine.stats.failed_attempts)
            self._emit_pace_obs(reg)
        run_span.finish()
        return self._build_report(t)
