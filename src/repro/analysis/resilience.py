"""Resilience analysis: completion-time inflation under injected faults.

For each policy, the sweep takes the policy's planned flush order,
executes it closed-loop through :class:`ResilientExecutor` under a
parameterized :class:`FaultPlan`, validates the realized schedule with
the fault-free validator (resilient execution must never trade validity
for progress), and reports mean and p99 completion-time inflation
relative to the same policy's own fault-free execution.

This is the experiment "On Performance Stability in LSM-based Storage
Systems" motivates: it is not the *average* that faults destroy first
but the *tail*, and policies differ sharply in how gracefully their
tails degrade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.stats import summarize
from repro.core.worms import WORMSInstance
from repro.dam.schedule import Flush, FlushSchedule
from repro.dam.validator import validate_valid
from repro.faults.bursts import BurstInjector, BurstPlan
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.util.errors import ExecutionStalledError
from repro.policies.base import Policy
from repro.policies.eager import EagerPolicy
from repro.policies.greedy_batch import GreedyBatchPolicy
from repro.policies.lazy_threshold import LazyThresholdPolicy
from repro.policies.online import OnlineDensityPolicy
from repro.policies.resilient import ResilienceStats, ResilientExecutor
from repro.policies.worms_policy import WormsPolicy


def default_resilience_policies() -> "list[Policy]":
    """The five policies the resilience report compares."""
    return [
        EagerPolicy(),
        LazyThresholdPolicy(),
        GreedyBatchPolicy(),
        WormsPolicy(),
        OnlineDensityPolicy(),
    ]


@dataclass(frozen=True)
class ResilienceCell:
    """One (policy, fault rate) cell of the resilience sweep."""

    policy: str
    fault_rate: float
    mean: float
    p99: float
    max: int
    n_steps: int
    #: mean / p99 completion time over the policy's own fault-free run.
    mean_inflation: float
    p99_inflation: float
    #: what the recovery machinery did (retries, redeliveries, replans).
    stats: ResilienceStats
    #: set when recovery was exhausted and execution raised
    #: :class:`ExecutionStalledError` — the cell then carries the error's
    #: diagnostics instead of completion statistics.
    stalled: bool = False
    stalled_step: int = -1
    parked: int = 0
    blocking: str = ""

    def row(self) -> "list":
        """Flat row for bench tables."""
        if self.stalled:
            stall = f"@{self.stalled_step}:{self.parked}p"
        else:
            stall = "-"
        return [
            self.policy,
            self.fault_rate,
            "-" if self.stalled else round(self.mean, 1),
            "-" if self.stalled else round(self.p99, 1),
            self.n_steps,
            "-" if self.stalled else round(self.mean_inflation, 2),
            "-" if self.stalled else round(self.p99_inflation, 2),
            self.stats.failed_attempts + self.stats.partial_deliveries,
            self.stats.replans,
            stall,
        ]


def _ordered_flushes(schedule: FlushSchedule) -> "list[Flush]":
    """A schedule's flushes in time order = the executor priority order."""
    return [f for _t, f in schedule.iter_timed()]


def resilience_sweep(
    instance: WORMSInstance,
    policies: "Iterable[Policy] | None" = None,
    *,
    fault_rates: Sequence[float] = (0.05, 0.1, 0.2),
    seed: int = 0,
    retry_budget: int = 5,
    max_replans: int = 4,
    burst: bool = False,
    fault_aware: bool = False,
) -> "list[ResilienceCell]":
    """Run every policy under every fault rate; returns one cell per pair.

    Each policy's planned order is first executed fault-free through the
    same resilient executor (the zero-overhead path, byte-identical to
    the gated executor) to establish its baseline; inflation is relative
    to that baseline, so the numbers isolate *fault* cost from policy
    cost.  All realized schedules are validated.

    With ``burst=True`` each rate parameterizes a Markov-modulated
    :class:`~repro.faults.BurstInjector` (correlated stall -> partial ->
    failed escalation on a random subtree) instead of independent
    per-flush faults — the regime where ``fault_aware=True`` admission
    pays off.  A cell whose execution exhausts recovery is reported with
    the :class:`ExecutionStalledError` diagnostics (stall step, parked
    messages, blocking flush) rather than aborting the whole sweep.
    """
    if policies is None:
        policies = default_resilience_policies()
    cells: list[ResilienceCell] = []
    for policy in policies:
        ordered = _ordered_flushes(policy.schedule(instance))
        clean_exec = ResilientExecutor(instance)
        clean_sched = clean_exec.run(list(ordered))
        clean = validate_valid(instance, clean_sched)
        clean_stats = summarize(clean.completion_times, clean_sched.n_steps)
        for rate in fault_rates:
            if burst:
                injector: FaultInjector = BurstInjector(
                    FaultPlan.none(),
                    BurstPlan.from_rate(rate),
                    instance.topology,
                    seed=seed,
                )
            else:
                injector = FaultInjector(FaultPlan.uniform(rate), seed=seed)
            executor = ResilientExecutor(
                instance,
                injector,
                retry_budget=retry_budget,
                max_replans=max_replans,
                fault_aware=fault_aware,
            )
            try:
                sched = executor.run(list(ordered))
            except ExecutionStalledError as exc:
                cells.append(
                    ResilienceCell(
                        policy=policy.name,
                        fault_rate=rate,
                        mean=float("nan"),
                        p99=float("nan"),
                        max=0,
                        n_steps=exc.step,
                        mean_inflation=float("nan"),
                        p99_inflation=float("nan"),
                        stats=executor.stats,
                        stalled=True,
                        stalled_step=exc.step,
                        parked=len(exc.parked_messages),
                        blocking=repr(exc.blocking_flush),
                    )
                )
                continue
            sim = validate_valid(instance, sched)
            s = summarize(sim.completion_times, sched.n_steps)
            cells.append(
                ResilienceCell(
                    policy=policy.name,
                    fault_rate=rate,
                    mean=s.mean,
                    p99=s.p99,
                    max=s.max,
                    n_steps=s.n_steps,
                    mean_inflation=s.mean / max(clean_stats.mean, 1e-9),
                    p99_inflation=s.p99 / max(clean_stats.p99, 1e-9),
                    stats=executor.stats,
                )
            )
    return cells


def format_resilience_report(
    cells: "list[ResilienceCell]", *, title: str = "resilience under faults"
) -> str:
    """Render sweep cells as the aligned table the CLI and bench print."""
    headers = ["policy", "rate", "mean", "p99", "IOs",
               "mean-x", "p99-x", "retries", "replans", "stalled"]
    rows = [c.row() for c in cells]
    widths = [
        max(len(h), *(len(str(v)) for v in col)) if rows else len(h)
        for h, col in zip(headers, zip(*rows) if rows else [[]] * len(headers))
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(v).rjust(w) for v, w in zip(row, widths)))
    lines.append(
        "note: mean-x/p99-x = completion-time inflation vs the policy's own "
        "fault-free run; retries = failed + partial flush attempts; "
        "stalled = @step:parked-count when recovery was exhausted."
    )
    return "\n".join(lines)
