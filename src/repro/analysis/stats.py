"""Completion-time statistics and policy comparison helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.worms import WORMSInstance
from repro.dam.validator import validate_valid


def nearest_rank(values, q: float) -> float:
    """Nearest-rank percentile: the smallest sample value ``x`` such that
    at least ``q`` percent of the samples are ``<= x``.

    Unlike ``np.percentile``'s default linear interpolation, the result is
    always an observed sample, which is the standard convention for tail
    latency (a reported p99 latency actually happened).  A single-sample
    input returns that sample for every ``q``; an empty input raises
    ``ValueError`` (callers decide what an undefined percentile means).
    """
    if not (0.0 < q <= 100.0):
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    if arr.size == 0:
        raise ValueError("nearest_rank of an empty sample is undefined")
    idx = max(0, math.ceil(q / 100.0 * arr.size) - 1)
    return float(arr[idx])


def min_samples_for(q: float) -> int:
    """Smallest sample size at which a nearest-rank ``q`` is meaningful.

    A tail percentile needs at least one sample *above* the rank it
    reports, i.e. ``n * (100 - q) / 100 >= 1``: p99 needs 100 samples,
    p99.9 needs 1000.  ``q == 100`` (the max) is meaningful at any n.
    """
    if not (0.0 < q <= 100.0):
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    if q == 100.0:
        return 1
    # Round before ceil: 100 - 99.9 is not exact in binary, and the
    # raw quotient 1000.0000000000057 would demand 1001 samples.
    return math.ceil(round(100.0 / (100.0 - q), 9))


def guarded_rank(values, q: float) -> "float | None":
    """Nearest-rank percentile with an explicit minimum-sample guard.

    Returns ``None`` instead of a silently meaningless rank when the
    sample is too small to resolve ``q`` (fewer than
    :func:`min_samples_for` observations — e.g. a "p99.9" of 40 samples
    is just the max wearing a costume).  Callers render ``None`` as
    "n/a"; an empty sample is also ``None``.
    """
    vals = list(values)
    if len(vals) < min_samples_for(q):
        return None
    return nearest_rank(vals, q)


@dataclass(frozen=True)
class CompletionStats:
    """Summary of a completion-time distribution (1-based steps)."""

    n: int
    total: int
    mean: float
    median: float
    p95: float
    p99: float
    max: int
    n_steps: int

    @property
    def throughput(self) -> float:
        """Messages completed per time step over the whole schedule."""
        return self.n / self.n_steps if self.n_steps else 0.0

    def row(self) -> dict[str, float]:
        """Flat dict for bench tables."""
        return {
            "n": self.n,
            "total": self.total,
            "mean": round(self.mean, 2),
            "median": self.median,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
            "steps": self.n_steps,
            "throughput": round(self.throughput, 3),
        }


def summarize(completion_times: np.ndarray, n_steps: int) -> CompletionStats:
    """Build :class:`CompletionStats` from a completion-time array.

    Tail percentiles are nearest-rank: every reported p95/p99 is an
    observed completion time.  (``np.percentile``'s default linear
    interpolation invents values for small samples — the p95 of
    ``[1, 2]`` came out 1.95, a latency no message ever had.)  The
    median keeps the conventional midpoint-of-two definition.
    """
    c = np.asarray(completion_times, dtype=np.float64)
    if c.size == 0:
        return CompletionStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0, n_steps)
    return CompletionStats(
        n=int(c.size),
        total=int(c.sum()),
        mean=float(c.mean()),
        median=float(np.median(c)),
        p95=nearest_rank(c, 95),
        p99=nearest_rank(c, 99),
        max=int(c.max()),
        n_steps=n_steps,
    )


def weighted_total_completion(instance: WORMSInstance, completion_times) -> float:
    """Weighted objective ``sum_m w_m c_m`` for a simulation result."""
    c = np.asarray(completion_times, dtype=np.float64)
    return float(instance.message_weights @ c)


def compare_policies(
    instance: WORMSInstance, policies: Iterable
) -> dict[str, CompletionStats]:
    """Run each policy on ``instance``; validate; return stats by name.

    Raises if any policy emits an invalid schedule — baselines are held to
    the same rules as the paper's scheduler.
    """
    results: dict[str, CompletionStats] = {}
    for policy in policies:
        schedule = policy.schedule(instance)
        sim = validate_valid(instance, schedule)
        results[policy.name] = summarize(sim.completion_times, schedule.n_steps)
    return results
