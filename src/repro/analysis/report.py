"""Plain-text reporting: completion CDFs and utilization timelines.

Everything here renders to monospace text (no plotting dependencies), so
reports drop straight into terminals, logs, and EXPERIMENTS.md.  Used by
the CLI and the examples.
"""

from __future__ import annotations

import numpy as np

#: Unicode eighth-blocks for sparklines, lowest to highest.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 60) -> str:
    """Render values as a fixed-width block sparkline.

    Values are bucketed by mean onto ``width`` columns and scaled to the
    maximum; an empty input renders as an empty string.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    if arr.size > width:
        # Bucket means: pad to a multiple of width, then reshape.  Padding
        # with NaN keeps bucket means honest; a bucket that ends up all-NaN
        # (possible when the padding spans a whole bucket) renders blank.
        pad = (-arr.size) % width
        padded = np.concatenate([arr, np.full(pad, np.nan)])
        buckets = padded.reshape(width, -1)
        counts = np.sum(~np.isnan(buckets), axis=1)
        sums = np.nansum(buckets, axis=1)
        arr = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    top = float(np.nanmax(arr))
    if top <= 0:
        return _BLOCKS[0] * arr.size
    chars = []
    for v in arr:
        if np.isnan(v):
            chars.append(_BLOCKS[0])
            continue
        level = int(round(v / top * (len(_BLOCKS) - 1)))
        chars.append(_BLOCKS[max(0, min(level, len(_BLOCKS) - 1))])
    return "".join(chars)


def completion_cdf_report(
    completion_times, *, n_points: int = 10, label: str = "completions"
) -> str:
    """Textual CDF of completion times: 'p% done by step s' rows."""
    c = np.sort(np.asarray(completion_times, dtype=np.float64))
    if c.size == 0:
        return f"{label}: none"
    lines = [f"{label} CDF ({c.size} messages):"]
    for q in np.linspace(0.1, 1.0, n_points):
        # Round before ceil: linspace gives q = 0.30000000000000004,
        # whose raw ceil(q * size) lands one rank too high whenever
        # q * size should be exact (e.g. the 30% row of 10 samples).
        rank = int(np.ceil(round(float(q) * c.size, 9)))
        idx = min(c.size - 1, max(0, rank - 1))
        lines.append(
            f"  {round(float(q) * 100):>3d}% done by step {int(c[idx])}"
        )
    return "\n".join(lines)


def utilization_report(trace, width: int = 60) -> str:
    """Sparkline view of a :class:`~repro.dam.trace.ScheduleTrace`."""
    lines = [
        f"slot utilization    {sparkline(trace.slot_utilization, width)}",
        f"payload utilization {sparkline(trace.payload_utilization, width)}",
        f"completions/step    {sparkline(trace.completions_per_step, width)}",
    ]
    for d in range(trace.moves_by_level.shape[1]):
        lines.append(
            f"moves into depth {d + 1:<2d} "
            f"{sparkline(trace.moves_by_level[:, d], width)}"
        )
    return "\n".join(lines)


def comparison_report(stats: dict, lower_bound: float | None = None) -> str:
    """Render a policy-comparison dict (name -> CompletionStats)."""
    header = (
        f"{'policy':>16} {'mean':>9} {'median':>8} {'p95':>8} "
        f"{'max':>7} {'IOs':>7}"
    )
    lines = [header, "-" * len(header)]
    for name, s in stats.items():
        lines.append(
            f"{name:>16} {s.mean:>9.1f} {s.median:>8.0f} {s.p95:>8.0f} "
            f"{s.max:>7d} {s.n_steps:>7d}"
        )
    if lower_bound is not None:
        lines.append(f"certified lower bound on total completion: {lower_bound:.0f}")
    return "\n".join(lines)
