"""Analysis: completion statistics, certified lower bounds, NP-hardness."""

from repro.analysis.lower_bounds import (
    scheduling_lower_bound,
    worms_lower_bound,
)
from repro.analysis.npc import (
    ThreePartitionGadget,
    build_gadget,
    canonical_gadget_schedule,
    solve_three_partition,
)
from repro.analysis.resilience import (
    ResilienceCell,
    default_resilience_policies,
    format_resilience_report,
    resilience_sweep,
)
from repro.analysis.stats import CompletionStats, compare_policies, summarize

__all__ = [
    "CompletionStats",
    "summarize",
    "compare_policies",
    "ResilienceCell",
    "resilience_sweep",
    "format_resilience_report",
    "default_resilience_policies",
    "worms_lower_bound",
    "scheduling_lower_bound",
    "ThreePartitionGadget",
    "build_gadget",
    "canonical_gadget_schedule",
    "solve_three_partition",
]
