"""Certified lower bounds on optimal total completion time.

The paper's own lower-bound route (``cost^f`` of PHTF via Lemmas 12-13)
turned out not to be sound as stated — see EXPERIMENTS.md, finding R1 —
so measured approximation ratios in this package are reported against the
*combinatorial* bounds below, each of which holds for every valid (indeed
every overfilling) schedule:

WORMS (messages start at the root, target heights ``h_m``):

* **height bound** — ``c(m) >= h_m`` since a message needs one flush per
  edge of its path: ``OPT >= sum_m h_m``;
* **work bound** — one time step moves at most ``P * B`` message-hops, and
  completing any ``i`` messages takes at least ``H_i`` hops (``H_i`` = sum
  of the ``i`` smallest path lengths), so the ``i``-th earliest completion
  is ``>= ceil(H_i / (P B))``: ``OPT >= sum_i ceil(H_i / (P B))``;
* **leaf-flush bound** — a step performs at most ``P`` flushes and each
  message's completing flush enters its target leaf, a flush delivers to
  one leaf at most ``B`` messages; completing ``i`` messages needs at
  least ``F_i`` leaf-entering flushes (``F_i`` = minimum number of
  (leaf, batch-of-B) slots covering ``i`` messages), so the ``i``-th
  earliest completion is ``>= ceil(F_i / P)``.

``P | outtree, p_j = 1 | Sum wC``:

* **capacity bound** — at most ``P`` tasks complete per step, so pairing
  the largest weights with the earliest slots (rearrangement inequality)
  bounds ``OPT >= sum_i w_(i) * ceil(i / P)``;
* **depth bound** — a task at precedence depth ``d`` completes no earlier
  than ``d + 1``: ``OPT >= sum_j w_j (depth_j + 1)``.

Each function returns the max of its constituent bounds.
"""

from __future__ import annotations

import numpy as np

from repro.core.worms import WORMSInstance
from repro.scheduling.instance import SchedulingInstance


def worms_lower_bound(instance: WORMSInstance) -> float:
    """Max of the height, work, and leaf-flush bounds (see module doc).

    Honors per-message weights: the height bound becomes ``sum w_m h_m``
    and the step-sequence bounds pair the largest weights with the
    earliest feasible completion slots (rearrangement inequality), which
    is the adversarially best assignment and therefore still a valid
    lower bound.  With unit weights this reduces to the unweighted bound.
    """
    topo = instance.topology
    heights = topo.heights
    path_lengths = np.array(
        [
            int(heights[m.target_leaf]) - int(heights[instance.start_of(m.msg_id)])
            for m in instance.messages
        ],
        dtype=np.int64,
    )
    if path_lengths.size == 0:
        return 0
    PB = instance.P * instance.B
    w_desc = np.sort(instance.message_weights)[::-1]

    height_bound = float(instance.message_weights @ path_lengths)

    sorted_lengths = np.sort(path_lengths)
    hops_prefix = np.cumsum(sorted_lengths)
    work_slots = -(-hops_prefix // PB)  # i-th earliest completion >= this
    work_bound = float(w_desc @ work_slots)

    # Leaf-flush bound: completing i messages needs at least F_i
    # leaf-entering flushes, where F_i is met by consuming the largest
    # per-leaf batches (size <= B) first.  Enumerate all batches globally,
    # largest first, so F_i is the exact minimum (a per-leaf ordering
    # would overestimate and invalidate the bound).
    batch_sizes: list[int] = []
    for load in (int(c) for c in instance.messages_per_leaf if c > 0):
        full, rem = divmod(load, instance.B)
        batch_sizes.extend([instance.B] * full)
        if rem:
            batch_sizes.append(rem)
    batch_sizes.sort(reverse=True)
    flush_costs: list[int] = []  # marginal leaf-flush count per message
    for size in batch_sizes:
        flush_costs.append(1)
        flush_costs.extend([0] * (size - 1))
    flushes_prefix = np.cumsum(np.asarray(flush_costs, dtype=np.int64))
    leaf_slots = -(-flushes_prefix // instance.P)
    leaf_bound = float(w_desc @ leaf_slots)

    return max(height_bound, work_bound, leaf_bound)


def scheduling_lower_bound(instance: SchedulingInstance) -> float:
    """Max of the capacity and depth bounds (see module doc)."""
    n = instance.n_tasks
    if n == 0:
        return 0.0
    weights = np.asarray(instance.weights, dtype=np.float64)

    slots = -(-(np.arange(1, n + 1)) // instance.P)  # ceil(i / P)
    capacity_bound = float(np.sort(weights)[::-1] @ slots)

    depths = np.empty(n, dtype=np.int64)
    for j in instance.topological_order():
        p = int(instance.parent[j])
        depths[j] = 0 if p < 0 else depths[p] + 1
    depth_bound = float(weights @ (depths + 1))

    return max(capacity_bound, depth_bound)
