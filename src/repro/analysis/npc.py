"""The NP-hardness gadget of Lemma 15 (reduction from 3-partition).

Given integers ``I`` (``3n'`` values summing to ``n'K``, each in
``(K/4, K/2)``), the gadget is the WORMS instance ``(T1, M1, 1, B)`` with

* ``B = 3X + K`` where ``X = 12 n'^2 K``,
* a root ``r``, a middle node ``x``, and one leaf per integer ``i`` with
  ``X + i`` messages targeting it.

``I`` admits a 3-partition **iff** the gadget has a valid schedule using
at most ``4 n'`` flushes with total completion time at most ``C1`` — each
root-to-``x`` flush must then carry exactly the representatives of a
triple summing to ``K`` (a larger triple does not fit in ``B``).  The
full reduction pads with ``8 n' |M1| + C1`` two-edge paths so the single
bound ``C2`` suffices; padding is optional here because it makes the
instance enormous without changing the interesting structure.

This module builds gadgets, solves 3-partition exactly (for test-sized
inputs), constructs the canonical schedule from a partition, and exposes
the bounds ``C1``/``C2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import combinations

from repro.core.worms import WORMSInstance
from repro.dam.schedule import Flush, FlushSchedule
from repro.tree.messages import Message
from repro.tree.topology import TreeTopology
from repro.util.errors import InvalidInstanceError


@dataclass(frozen=True)
class ThreePartitionGadget:
    """The Lemma 15 instance plus its bookkeeping constants."""

    instance: WORMSInstance
    integers: tuple[int, ...]
    K: int
    X: int
    B: int
    n_groups: int  # the paper's n'
    C1: int
    #: leaf node id for each integer index.
    leaf_of: tuple[int, ...]
    #: message ids targeting each leaf (the "representative messages").
    representatives: tuple[tuple[int, ...], ...]


def build_gadget(integers: "list[int]") -> ThreePartitionGadget:
    """Build ``(T1, M1, 1, B)`` for the 3-partition input ``integers``."""
    if len(integers) % 3 != 0 or not integers:
        raise InvalidInstanceError("3-partition needs a multiple of 3 integers")
    n_groups = len(integers) // 3
    total = sum(integers)
    if total % n_groups != 0:
        raise InvalidInstanceError(
            f"sum {total} is not divisible by n'={n_groups}"
        )
    K = total // n_groups
    for i in integers:
        if not (4 * i > K and 2 * i < K):
            raise InvalidInstanceError(
                f"integer {i} outside the strict (K/4, K/2) range with K={K}"
            )
    X = 12 * n_groups * n_groups * K
    B = 3 * X + K

    # Topology: 0 = r, 1 = x, leaves 2 .. 3n'+1 (leaf j for integer j-2).
    parent = [-1, 0] + [1] * len(integers)
    topo = TreeTopology(parent)
    messages: list[Message] = []
    leaf_of: list[int] = []
    representatives: list[tuple[int, ...]] = []
    for idx, value in enumerate(integers):
        leaf = 2 + idx
        leaf_of.append(leaf)
        ids = []
        for _ in range(X + value):
            ids.append(len(messages))
            messages.append(Message(len(messages), leaf))
        representatives.append(tuple(ids))

    instance = WORMSInstance(topo, messages, P=1, B=B)
    C1 = sum(
        4 * (i - 1) * (3 * X + K) + X * (2 + 3 + 4) + 4 * K
        for i in range(1, n_groups + 1)
    )
    return ThreePartitionGadget(
        instance=instance,
        integers=tuple(integers),
        K=K,
        X=X,
        B=B,
        n_groups=n_groups,
        C1=C1,
        leaf_of=tuple(leaf_of),
        representatives=tuple(representatives),
    )


def canonical_gadget_schedule(
    gadget: ThreePartitionGadget, partition: "list[tuple[int, int, int]]"
) -> FlushSchedule:
    """The canonical schedule induced by a 3-partition of the integers.

    ``partition`` lists index triples into ``gadget.integers``.  Per
    triple: one flush ``r -> x`` carrying all three leaves'
    representatives (exactly ``3X + K = B`` messages), then three flushes
    ``x -> leaf``.  Uses ``4 n'`` flushes and finishes by step ``4 n'``.
    """
    schedule = FlushSchedule()
    t = 0
    for triple in partition:
        if len(triple) != 3:
            raise InvalidInstanceError("each partition class must have 3 items")
        msgs: list[int] = []
        for idx in triple:
            msgs.extend(gadget.representatives[idx])
        if len(msgs) > gadget.B:
            raise InvalidInstanceError(
                f"triple {triple} carries {len(msgs)} messages > B={gadget.B} "
                "(its integers do not sum to K)"
            )
        t += 1
        schedule.add(t, Flush(src=0, dest=1, messages=tuple(msgs)))
        for idx in triple:
            t += 1
            schedule.add(
                t,
                Flush(
                    src=1,
                    dest=gadget.leaf_of[idx],
                    messages=gadget.representatives[idx],
                ),
            )
    return schedule


def solve_three_partition(
    integers: "list[int]",
) -> "list[tuple[int, int, int]] | None":
    """Exact 3-partition by memoized search (test-sized inputs only).

    Returns index triples, or ``None`` when no 3-partition exists.
    """
    n = len(integers)
    if n % 3 != 0:
        return None
    n_groups = n // 3
    total = sum(integers)
    if n_groups == 0 or total % n_groups != 0:
        return None
    K = total // n_groups

    @lru_cache(maxsize=None)
    def search(used_mask: int) -> "tuple[tuple[int, int, int], ...] | None":
        if used_mask == (1 << n) - 1:
            return ()
        first = next(i for i in range(n) if not used_mask & (1 << i))
        rest = [
            i
            for i in range(first + 1, n)
            if not used_mask & (1 << i)
        ]
        for a, b in combinations(rest, 2):
            if integers[first] + integers[a] + integers[b] != K:
                continue
            sub = search(used_mask | (1 << first) | (1 << a) | (1 << b))
            if sub is not None:
                return ((first, a, b),) + sub
        return None

    result = search(0)
    search.cache_clear()
    return list(result) if result is not None else None


def gadget_has_fast_schedule(gadget: ThreePartitionGadget) -> bool:
    """Decision interface of Lemma 15: does a schedule with ``4 n'``
    flushes and cost ``<= C1`` exist?  Equivalent to 3-partition (any
    ``r -> x`` flush of more than one triple's representatives overflows
    ``B``), so it delegates to the exact solver."""
    return solve_three_partition(list(gadget.integers)) is not None
