"""Horn task densities, Horn's trees, and Horn's single-machine algorithm.

For a task ``j``, ``F_j`` is the highest-density subtree rooted at ``j``
(density = total weight / number of tasks); the *task density* of ``j`` is
the density of ``F_j``.  The *Horn's trees* partition all tasks: repeatedly
take a root ``j`` of the remaining forest, carve out ``F_j``, and recurse
(Section 4.2).

The construction runs bottom-up in ``O(n log n)`` using mergeable pairing
heaps: every task starts as its own F-tree; while the densest subtree
pending below the growing ``F_j`` is strictly denser than ``F_j``, absorb
it.  Eager heap melding is sound because a subtree pending below ``F_c``
is strictly less dense than ``F_c`` and therefore can never be popped
before the item for ``F_c`` itself; ties are broken LIFO (higher insertion
sequence first) so an ancestor item always pops before its equal-density
pending descendants.

All densities are exact :class:`fractions.Fraction` values — Observation 11
style arguments (and therefore the Horn-tree partition) depend on exact
density comparisons, which floats would occasionally get wrong.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.scheduling.cost import TaskSchedule
from repro.scheduling.instance import SchedulingInstance
from repro.util.pairing_heap import PairingHeap


@dataclass(frozen=True)
class HornDecomposition:
    """Task densities and the Horn's-tree partition of an instance.

    Attributes
    ----------
    task_density:
        ``task_density[j]`` = density of ``F_j`` (exact fraction).
    f_weight / f_size:
        Weight and size of ``F_j`` at the moment it was fixed.
    horn_root:
        ``horn_root[j]`` = id of the task whose ``F``-tree is the Horn's
        tree containing ``j``.
    """

    task_density: tuple[Fraction, ...]
    f_weight: tuple[Fraction, ...]
    f_size: tuple[int, ...]
    horn_root: np.ndarray

    def tree_density(self, root: int) -> Fraction:
        """Density ``w(T_i)/s(T_i)`` of the Horn's tree rooted at ``root``."""
        return self.task_density[root]

    def tree_members(self) -> dict[int, list[int]]:
        """Map Horn-tree root -> sorted member task ids."""
        members: dict[int, list[int]] = {}
        for j, r in enumerate(self.horn_root):
            members.setdefault(int(r), []).append(j)
        return members

    @property
    def n_trees(self) -> int:
        """Number of Horn's trees in the partition."""
        return len(set(int(r) for r in self.horn_root))


def compute_horn(instance: SchedulingInstance) -> HornDecomposition:
    """Compute task densities and Horn's trees in ``O(n log n)``."""
    n = instance.n_tasks
    children = instance.children_lists()
    order = instance.topological_order()

    density: list[Fraction | None] = [None] * n
    f_weight: list[Fraction | None] = [None] * n
    f_size = [0] * n
    absorbed_into = np.full(n, -1, dtype=np.int64)
    # Heap of pending subtrees strictly below the growing F_j, keyed by
    # (density, insertion sequence) so equal densities pop LIFO.
    pending: list[PairingHeap | None] = [None] * n
    seq = 0

    for j in reversed(order):
        heap: PairingHeap = PairingHeap()
        for c in children[j]:
            child_heap = pending[c]
            assert child_heap is not None
            heap.meld(child_heap)
            pending[c] = None  # released: its items now live in `heap`
            heap.push((density[c], seq), c)
            seq += 1
        w = instance.weight_fraction(j)
        s = 1
        cur = w  # == w / s while s == 1
        while heap and heap.peek()[0][0] > cur:
            (_, _), x = heap.pop()
            w += f_weight[x]
            s += f_size[x]
            cur = w / s
            absorbed_into[x] = j
        density[j] = cur
        f_weight[j] = w
        f_size[j] = s
        pending[j] = heap

    # Resolve the partition: a task's Horn root is the top of its
    # absorbed-into chain.  Iterative with path compression.
    horn_root = np.arange(n, dtype=np.int64)
    for j in range(n):
        chain = []
        x = j
        while absorbed_into[x] != -1 and horn_root[x] == x:
            chain.append(x)
            x = int(absorbed_into[x])
        top = int(horn_root[x])
        for y in chain:
            horn_root[y] = top
        horn_root[j] = top
    horn_root.setflags(write=False)

    return HornDecomposition(
        task_density=tuple(density),  # type: ignore[arg-type]
        f_weight=tuple(f_weight),  # type: ignore[arg-type]
        f_size=tuple(f_size),
        horn_root=horn_root,
    )


def horn_schedule(
    instance: SchedulingInstance,
    horn: HornDecomposition | None = None,
) -> TaskSchedule:
    """Horn's algorithm: optimal for ``1 | outtree | Sum wC`` (Lemma 10).

    Greedy by task density: one task per time step, always the available
    task whose ``F``-tree is densest (ties broken by lowest id).  Works for
    any ``P`` in the instance but is only *optimal* when ``P == 1``; for
    ``P > 1`` use :func:`repro.scheduling.phtf.phtf_schedule`.
    """
    if horn is None:
        horn = compute_horn(instance)
    children = instance.children_lists()
    # Min-heap on (-density, id): highest density first, then lowest id.
    available = [(-horn.task_density[j], j) for j in instance.roots()]
    heapq.heapify(available)
    schedule = TaskSchedule()
    t = 0
    while available:
        t += 1
        _, j = heapq.heappop(available)
        schedule.add(t, j)
        for c in children[j]:
            heapq.heappush(available, (-horn.task_density[c], c))
    return schedule
