"""The classic scheduling problem ``P | outtree, p_j = 1 | Sum w_j C_j``.

Unit-time tasks with out-tree (forest) precedence constraints on ``P``
identical machines, minimizing total weighted completion time.  The paper
reduces WORMS to this problem and contributes a simple 4-approximation:

* :mod:`repro.scheduling.horn` — task densities, Horn's trees, and Horn's
  optimal single-machine algorithm (Lemma 10);
* :mod:`repro.scheduling.phtf` — Parallel Heaviest Tree First, optimal for
  the fractional cost ``cost^f`` (Lemma 12);
* :mod:`repro.scheduling.mphtf` — Modified PHTF, the 4-approximation
  (Lemma 14);
* :mod:`repro.scheduling.brute_force` — exact optimum for tiny instances
  (the problem is strongly NP-hard for general ``P``);
* :mod:`repro.scheduling.baselines` — list-scheduling baselines.
"""

from repro.scheduling.baselines import (
    bfs_order_schedule,
    critical_path_schedule,
    list_schedule,
    random_order_schedule,
    weight_greedy_schedule,
)
from repro.scheduling.brute_force import brute_force_optimal
from repro.scheduling.cost import TaskSchedule, fractional_cost, schedule_cost
from repro.scheduling.generators import random_outtree_instance
from repro.scheduling.horn import HornDecomposition, compute_horn, horn_schedule
from repro.scheduling.instance import SchedulingInstance
from repro.scheduling.mphtf import mphtf_schedule
from repro.scheduling.phtf import phtf_schedule

__all__ = [
    "SchedulingInstance",
    "TaskSchedule",
    "schedule_cost",
    "fractional_cost",
    "HornDecomposition",
    "compute_horn",
    "horn_schedule",
    "phtf_schedule",
    "mphtf_schedule",
    "brute_force_optimal",
    "list_schedule",
    "weight_greedy_schedule",
    "bfs_order_schedule",
    "random_order_schedule",
    "critical_path_schedule",
    "random_outtree_instance",
]
