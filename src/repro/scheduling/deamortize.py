"""De-amortizing a flush obligation list (Das–Iacono–Nekrich style).

The worst-case-update-cost B^ε-tree result (Das, Iacono & Nekrich,
PAPERS.md) shows amortized flush work can be *spread*: instead of
letting one step absorb a whole large obligation (the write-stall shape
Luo & Carey measure in production LSMs), split every obligation into
budget-sized chunks and interleave the chunks across obligations, so no
single step owes more than the budget to any one edge and the work
profile flattens.

These helpers are pure functions over :class:`repro.dam.schedule.Flush`
lists — no engine state, no randomness — so the planner-level controller
(:class:`repro.serve.planner.PacedPlanner`) and tests share one
definition of "paced".  The hard per-step guarantee itself is enforced
by the shard engine's step budget (:attr:`ShardEngine.pace`); the
list-level transform here shapes the *priority order* so that budget is
spent round-robin across obligations instead of head-of-line.
"""

from __future__ import annotations

from repro.dam.schedule import Flush
from repro.util.errors import InvalidInstanceError


def split_flush(flush: Flush, budget: int) -> "list[Flush]":
    """Split one flush into chunks of at most ``budget`` messages.

    Chunks cover the same edge with disjoint, order-preserving message
    slices (``Flush`` keeps messages sorted, so chunk k holds the k-th
    slice of the sorted ids — deterministic by construction).  A flush
    already within budget returns as a single-element list, identity
    object included.
    """
    if budget < 1:
        raise InvalidInstanceError(f"pace budget must be >= 1, got {budget}")
    msgs = flush.messages
    if len(msgs) <= budget:
        return [flush]
    return [
        Flush(flush.src, flush.dest, msgs[i:i + budget])
        for i in range(0, len(msgs), budget)
    ]


def interleave_round_robin(chunk_lists: "list[list[Flush]]") -> "list[Flush]":
    """Round-robin merge: first chunk of every obligation, then seconds…

    Keeps each obligation's own chunks in order (slice k before slice
    k+1) while spreading a step budget across *different* obligations
    rather than draining one large obligation head-of-line.  The input
    order is the priority order; ties within a round keep it.
    """
    out: "list[Flush]" = []
    round_idx = 0
    remaining = True
    while remaining:
        remaining = False
        for chunks in chunk_lists:
            if round_idx < len(chunks):
                out.append(chunks[round_idx])
                if round_idx + 1 < len(chunks):
                    remaining = True
        round_idx += 1
    return out


def pace_flush_list(flushes: "list[Flush]", budget: int) -> "list[Flush]":
    """The full de-amortization transform: split, then interleave.

    Every returned flush moves at most ``budget`` messages, and chunks
    of distinct oversized obligations alternate.  With no oversized
    flush the input list is returned unchanged (same objects, same
    order) — the transform is the identity exactly when pacing has
    nothing to do.
    """
    if budget < 1:
        raise InvalidInstanceError(f"pace budget must be >= 1, got {budget}")
    if all(len(f.messages) <= budget for f in flushes):
        return flushes
    return interleave_round_robin(
        [split_flush(f, budget) for f in flushes]
    )
