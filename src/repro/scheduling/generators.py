"""Random instance generators for the scheduling substrate.

Used by tests (property-based and randomized) and by the E4/E5 benches.
"""

from __future__ import annotations

import numpy as np

from repro.scheduling.instance import SchedulingInstance
from repro.util.errors import InvalidInstanceError
from repro.util.rng import make_rng


def random_outtree_instance(
    n_tasks: int,
    P: int = 2,
    *,
    n_roots: int = 1,
    max_weight: int = 10,
    zero_weight_fraction: float = 0.0,
    seed: "int | None" = None,
) -> SchedulingInstance:
    """Random forest of out-trees with integer weights.

    Task ``j > 0`` attaches to a uniformly random earlier task (or becomes
    a root, for the first ``n_roots`` tasks), giving random recursive
    trees.  ``zero_weight_fraction`` of tasks get weight 0 — the WORMS
    reduction produces many zero-weight chain tasks, so baselines and
    approximations must be exercised on that regime too.
    """
    if n_tasks < 1:
        raise InvalidInstanceError(f"need at least one task, got {n_tasks}")
    if not (1 <= n_roots <= n_tasks):
        raise InvalidInstanceError(
            f"need 1 <= n_roots <= n_tasks, got n_roots={n_roots}"
        )
    rng = make_rng(seed)
    parent = np.full(n_tasks, -1, dtype=np.int64)
    for j in range(n_roots, n_tasks):
        parent[j] = int(rng.integers(0, j))
    weights = rng.integers(1, max_weight + 1, size=n_tasks).astype(np.float64)
    if zero_weight_fraction > 0.0:
        zero = rng.random(n_tasks) < zero_weight_fraction
        weights[zero] = 0.0
    return SchedulingInstance(parent, weights, P)


def random_chain_instance(
    n_chains: int,
    chain_length: int,
    P: int = 2,
    *,
    max_weight: int = 10,
    seed: "int | None" = None,
) -> SchedulingInstance:
    """Disjoint chains (the structure of the WORMS reduction's upper part).

    All weight sits on chain tails with probability 1/2 per chain,
    otherwise spread along the chain — mimicking how the reduction puts
    weight only on leaf-delivery tasks.
    """
    if n_chains < 1 or chain_length < 1:
        raise InvalidInstanceError("need n_chains >= 1 and chain_length >= 1")
    rng = make_rng(seed)
    n = n_chains * chain_length
    parent = np.full(n, -1, dtype=np.int64)
    weights = np.zeros(n, dtype=np.float64)
    for c in range(n_chains):
        base = c * chain_length
        for k in range(1, chain_length):
            parent[base + k] = base + k - 1
        if rng.random() < 0.5:
            weights[base + chain_length - 1] = float(
                rng.integers(1, max_weight + 1)
            )
        else:
            weights[base : base + chain_length] = rng.integers(
                0, max_weight + 1, size=chain_length
            )
    return SchedulingInstance(parent, weights, P)
