"""List-scheduling baselines for ``P | outtree, p_j = 1 | Sum wC``.

All baselines share one engine, :func:`list_schedule`, which at every time
step runs the ``P`` available tasks of highest priority.  They differ only
in the priority function; comparing them against MPHTF in bench E4 shows
why looking at *subtree densities* (and not, say, just a task's own weight)
matters for weighted completion time under precedence constraints.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.scheduling.cost import TaskSchedule
from repro.scheduling.instance import SchedulingInstance
from repro.util.rng import make_rng


def list_schedule(
    instance: SchedulingInstance,
    priority: Callable[[int], float],
) -> TaskSchedule:
    """Greedy list scheduling: highest ``priority(j)`` first, ``P`` per step.

    Ties break by lowest task id for determinism.
    """
    children = instance.children_lists()
    available = [(-priority(j), j) for j in instance.roots()]
    heapq.heapify(available)
    schedule = TaskSchedule()
    t = 0
    while available:
        t += 1
        batch = []
        for _ in range(min(instance.P, len(available))):
            _, j = heapq.heappop(available)
            batch.append(j)
            schedule.add(t, j)
        for j in batch:
            for c in children[j]:
                heapq.heappush(available, (-priority(c), c))
    return schedule


def weight_greedy_schedule(instance: SchedulingInstance) -> TaskSchedule:
    """Priority = the task's own weight (ignores everything below it)."""
    return list_schedule(instance, lambda j: float(instance.weights[j]))


def subtree_weight_schedule(instance: SchedulingInstance) -> TaskSchedule:
    """Priority = total weight of the subtree hanging below the task.

    A natural heuristic ("unlock the heaviest region first") that still
    ignores how *long* unlocking takes; Horn densities fix exactly that.
    """
    n = instance.n_tasks
    subtree = [float(w) for w in instance.weights]
    for j in reversed(instance.topological_order()):
        p = int(instance.parent[j])
        if p >= 0:
            subtree[p] += subtree[j]
    return list_schedule(instance, lambda j: subtree[j])


def bfs_order_schedule(instance: SchedulingInstance) -> TaskSchedule:
    """FIFO: tasks run in the order they become available (weight-blind)."""
    counter = {"next": 0.0}

    def priority(_j: int) -> float:
        counter["next"] -= 1.0  # earlier availability = higher priority
        return counter["next"]

    return list_schedule(instance, priority)


def random_order_schedule(
    instance: SchedulingInstance, seed: "int | None" = None
) -> TaskSchedule:
    """Uniformly random priorities (the weakest sensible baseline)."""
    rng = make_rng(seed)
    prios = rng.random(instance.n_tasks)
    return list_schedule(instance, lambda j: float(prios[j]))


def critical_path_schedule(instance: SchedulingInstance) -> TaskSchedule:
    """Priority = height of the subtree below the task (makespan-driven)."""
    n = instance.n_tasks
    depth_below = [0] * n
    for j in reversed(instance.topological_order()):
        p = int(instance.parent[j])
        if p >= 0:
            depth_below[p] = max(depth_below[p], depth_below[j] + 1)
    return list_schedule(instance, lambda j: float(depth_below[j]))
