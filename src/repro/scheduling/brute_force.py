"""Exact optimum for tiny ``P | outtree, p_j = 1 | Sum wC`` instances.

``P | outtree, p_j = 1 | Sum wC`` is strongly NP-hard (Lenstra & Rinnooy
Kan; Timkovsky), so this exact solver exists purely to certify the
approximation algorithms on small instances in tests and the E4 bench.

It is a memoized dynamic program over the set of completed tasks: from a
state ``done``, the next time step runs some subset of the available tasks,
and the step contributes the total weight of all not-yet-completed tasks
(summing that per step reproduces ``Sum_j w_j C_j``).  With non-negative
weights and unit processing times it is never harmful to keep every machine
busy, so only subsets of size ``min(P, |available|)`` are enumerated.

Complexity is exponential; ``max_tasks`` guards against accidental misuse.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations

from repro.scheduling.cost import TaskSchedule
from repro.scheduling.instance import SchedulingInstance
from repro.util.errors import InvalidInstanceError

#: Hard cap on instance size; the DP state space is 2^n.
MAX_BRUTE_FORCE_TASKS = 18


def brute_force_optimal(
    instance: SchedulingInstance,
    *,
    max_tasks: int = MAX_BRUTE_FORCE_TASKS,
) -> tuple[float, TaskSchedule]:
    """Return ``(optimal_cost, an_optimal_schedule)``.

    Raises :class:`InvalidInstanceError` when the instance exceeds
    ``max_tasks`` (the DP would blow up).
    """
    n = instance.n_tasks
    if n > max_tasks:
        raise InvalidInstanceError(
            f"brute force limited to {max_tasks} tasks, got {n}"
        )
    if n == 0:
        return 0.0, TaskSchedule()

    parent = [int(p) for p in instance.parent]
    weights = [float(w) for w in instance.weights]
    total_weight = sum(weights)
    P = instance.P
    full = (1 << n) - 1

    def available(done_mask: int) -> list[int]:
        avail = []
        for j in range(n):
            if done_mask & (1 << j):
                continue
            p = parent[j]
            if p == -1 or (done_mask & (1 << p)):
                avail.append(j)
        return avail

    @lru_cache(maxsize=None)
    def best(done_mask: int) -> tuple[float, tuple[int, ...]]:
        """Min cost-to-go from ``done_mask``; returns (cost, chosen batch)."""
        if done_mask == full:
            return 0.0, ()
        pending_weight = total_weight - sum(
            weights[j] for j in range(n) if done_mask & (1 << j)
        )
        avail = available(done_mask)
        k = min(P, len(avail))
        best_cost = float("inf")
        best_batch: tuple[int, ...] = ()
        for batch in combinations(avail, k):
            mask = done_mask
            for j in batch:
                mask |= 1 << j
            sub_cost, _ = best(mask)
            cost = pending_weight + sub_cost
            if cost < best_cost:
                best_cost = cost
                best_batch = batch
        return best_cost, best_batch

    opt_cost, _ = best(0)

    # Reconstruct one optimal schedule by replaying the memoized choices.
    schedule = TaskSchedule()
    done_mask = 0
    t = 0
    while done_mask != full:
        t += 1
        _, batch = best(done_mask)
        for j in batch:
            schedule.add(t, j)
            done_mask |= 1 << j
    best.cache_clear()
    return opt_cost, schedule
