"""Parallel Heaviest Tree First (PHTF).

PHTF generalizes Horn's algorithm to ``P`` machines: at each time step it
processes the ``P`` available tasks of highest task density.  It is *not*
a constant approximation for the integral cost, but it is **optimal for
the fractional cost** ``cost^f`` (Lemma 12), which is exactly what the
4-approximate MPHTF needs it for.
"""

from __future__ import annotations

import heapq

from repro.scheduling.cost import TaskSchedule
from repro.scheduling.horn import HornDecomposition, compute_horn
from repro.scheduling.instance import SchedulingInstance


def phtf_schedule(
    instance: SchedulingInstance,
    horn: HornDecomposition | None = None,
) -> TaskSchedule:
    """Run PHTF; returns the schedule (``P`` tasks per step, density order).

    Ties between equal densities are broken by lowest task id, keeping the
    output deterministic (the paper allows arbitrary tie-breaking).
    """
    if horn is None:
        horn = compute_horn(instance)
    children = instance.children_lists()
    available = [(-horn.task_density[j], j) for j in instance.roots()]
    heapq.heapify(available)
    schedule = TaskSchedule()
    t = 0
    while available:
        t += 1
        batch = []
        for _ in range(min(instance.P, len(available))):
            _, j = heapq.heappop(available)
            batch.append(j)
            schedule.add(t, j)
        for j in batch:
            for c in children[j]:
                heapq.heappush(available, (-horn.task_density[c], c))
    return schedule
