"""Instances of ``P | outtree, p_j = 1 | Sum w_j C_j``.

Tasks are ids ``0..n-1``.  Each task has at most one predecessor (its
*parent*); the precedence graph is therefore a forest of out-trees.  Every
task takes one unit of processing on one of ``P`` identical machines, and
carries a non-negative weight; the objective is total weighted completion
time.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

import numpy as np

from repro.util.errors import InvalidInstanceError


@dataclass(frozen=True)
class SchedulingInstance:
    """A ``P | outtree, p_j = 1 | Sum wC`` instance.

    Attributes
    ----------
    parent:
        ``parent[j]`` is the predecessor of task ``j`` (must complete in a
        strictly earlier time step) or ``-1`` if ``j`` has none.
    weights:
        Non-negative per-task weights.  Integer weights keep every density
        computation exact (they become :class:`fractions.Fraction`).
    P:
        Number of identical machines (tasks processed per time step).
    """

    parent: np.ndarray
    weights: np.ndarray
    P: int

    def __init__(
        self,
        parent: Sequence[int],
        weights: Sequence[float],
        P: int,
    ) -> None:
        parent_arr = np.asarray(parent, dtype=np.int64).copy()
        weights_arr = np.asarray(weights, dtype=np.float64).copy()
        parent_arr.setflags(write=False)
        weights_arr.setflags(write=False)
        object.__setattr__(self, "parent", parent_arr)
        object.__setattr__(self, "weights", weights_arr)
        object.__setattr__(self, "P", int(P))
        self._validate()

    def _validate(self) -> None:
        n = self.n_tasks
        if self.P < 1:
            raise InvalidInstanceError(f"P must be >= 1, got {self.P}")
        if self.weights.shape[0] != n:
            raise InvalidInstanceError(
                f"{n} tasks but {self.weights.shape[0]} weights"
            )
        if n and (self.weights < 0).any():
            raise InvalidInstanceError("task weights must be non-negative")
        if n and ((self.parent >= n) | (self.parent < -1)).any():
            raise InvalidInstanceError("parent ids out of range")
        # Forest check: walking up from any node must reach a root without
        # revisiting (no cycles).  One pass with memoized "reaches root".
        ok = np.zeros(n, dtype=bool)
        for start in range(n):
            path = []
            j = start
            while j != -1 and not ok[j]:
                path.append(j)
                j = int(self.parent[j])
                if len(path) > n:
                    raise InvalidInstanceError("precedence constraints contain a cycle")
            if j == -1 or ok[j]:
                ok[list(path)] = True
            else:  # pragma: no cover - unreachable given the length guard
                raise InvalidInstanceError("precedence constraints contain a cycle")

    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        """Number of tasks."""
        return int(self.parent.shape[0])

    def __len__(self) -> int:
        return self.n_tasks

    @property
    def total_weight(self) -> float:
        """Sum of all task weights."""
        return float(self.weights.sum()) if self.n_tasks else 0.0

    def roots(self) -> list[int]:
        """Tasks with no precedence constraint."""
        return [j for j in range(self.n_tasks) if self.parent[j] == -1]

    def children_lists(self) -> list[list[int]]:
        """``children[j]`` = tasks whose parent is ``j``."""
        children: list[list[int]] = [[] for _ in range(self.n_tasks)]
        for j in range(self.n_tasks):
            p = int(self.parent[j])
            if p >= 0:
                children[p].append(j)
        return children

    def topological_order(self) -> list[int]:
        """Task ids ordered parents-before-children (BFS from the roots)."""
        children = self.children_lists()
        order: list[int] = list(self.roots())
        head = 0
        while head < len(order):
            j = order[head]
            head += 1
            order.extend(children[j])
        return order

    def weight_fraction(self, j: int) -> Fraction:
        """Task weight as an exact fraction (floats are converted exactly)."""
        w = float(self.weights[j])
        if w == int(w):
            return Fraction(int(w))
        return Fraction(w)

    def depth(self, j: int) -> int:
        """Number of predecessors above ``j`` (chain length to its root)."""
        d = 0
        while (j := int(self.parent[j])) != -1:
            d += 1
        return d

    def __repr__(self) -> str:
        return (
            f"SchedulingInstance(n_tasks={self.n_tasks}, P={self.P}, "
            f"total_weight={self.total_weight:g})"
        )
