"""Modified Parallel Heaviest Tree First (MPHTF): the 4-approximation.

MPHTF simulates PHTF at half speed: PHTF's time step ``t`` maps to MPHTF
steps ``2t-1`` and ``2t``, and for every task PHTF processes from Horn's
tree ``T_j`` at step ``t``, MPHTF processes one precedence-feasible task
of ``T_j`` at *each* of the two corresponding steps (doing nothing for a
slot whose tree is already exhausted).  Flushing each Horn's tree twice
whenever PHTF touches it once guarantees every tree finishes by twice its
PHTF half-completion time, which combined with Lemmas 12 and 13 yields
``cost(MPHTF) <= 4 * cost(OPT)`` (Lemma 14).

Within a Horn's tree we pick the densest available member task (Horn's own
order restricted to the tree); the paper permits any feasible choice.  A
final *drain phase* processes any still-unfinished tasks at full rate —
the analysis never needs it, but it makes the implementation total on
adversarial inputs where slots were wasted on not-yet-available tasks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.scheduling.cost import TaskSchedule
from repro.scheduling.horn import HornDecomposition, compute_horn
from repro.scheduling.instance import SchedulingInstance
from repro.scheduling.phtf import phtf_schedule


@dataclass
class MPHTFDiagnostics:
    """Execution counters exposed for tests and the ablation bench."""

    wasted_slots: int = 0  # tree slot offered but no member task was ready
    drain_steps: int = 0  # extra steps appended after the 2x-PHTF horizon


def mphtf_schedule(
    instance: SchedulingInstance,
    horn: HornDecomposition | None = None,
    *,
    diagnostics: MPHTFDiagnostics | None = None,
) -> TaskSchedule:
    """Run MPHTF; returns a feasible schedule with ``cost <= 4 * OPT``."""
    if horn is None:
        horn = compute_horn(instance)
    phtf = phtf_schedule(instance, horn)
    n = instance.n_tasks
    children = instance.children_lists()
    if diagnostics is None:
        diagnostics = MPHTFDiagnostics()

    # Per-Horn-tree queue of tasks that are precedence-available in the
    # MPHTF execution, keyed by (-density, id) for deterministic pops.
    tree_queue: dict[int, list[tuple]] = {}
    done = [False] * n
    remaining_in_tree: dict[int, int] = {}
    for j in range(n):
        remaining_in_tree[int(horn.horn_root[j])] = (
            remaining_in_tree.get(int(horn.horn_root[j]), 0) + 1
        )

    def make_available(j: int) -> None:
        root = int(horn.horn_root[j])
        heapq.heappush(
            tree_queue.setdefault(root, []), (-horn.task_density[j], j)
        )

    for j in instance.roots():
        make_available(j)

    schedule = TaskSchedule()
    n_done = 0

    def process_from_tree(root: int, t: int, unlocked: list[int]) -> bool:
        """Process one available task of Horn's tree ``root`` at step ``t``.

        Children of the processed task are appended to ``unlocked`` and
        only become available after the step ends (precedence constraints
        are strict: a child must run at a strictly later step).
        """
        nonlocal n_done
        queue = tree_queue.get(root)
        if not queue:
            return False
        _, j = heapq.heappop(queue)
        done[j] = True
        n_done += 1
        remaining_in_tree[root] -= 1
        schedule.add(t, j)
        unlocked.extend(children[j])
        return True

    t_out = 0
    for step_tasks in phtf.steps:
        # The trees PHTF touched this step, with multiplicity: if PHTF ran
        # two tasks of the same tree in one step, MPHTF owes that tree two
        # slots in each of its two corresponding steps.
        tree_slots = [int(horn.horn_root[j]) for j in step_tasks]
        for _ in range(2):
            t_out += 1
            unlocked: list[int] = []
            for root in tree_slots:
                if remaining_in_tree[root] > 0:
                    if not process_from_tree(root, t_out, unlocked):
                        diagnostics.wasted_slots += 1
            for c in unlocked:
                make_available(c)

    # Drain phase: finish anything left (possible only when slots were
    # wasted above). Full rate, densest-first across all trees.
    if n_done < n:
        global_queue: list[tuple] = []
        for queue in tree_queue.values():
            global_queue.extend(queue)
        heapq.heapify(global_queue)
        while n_done < n:
            if not global_queue:  # pragma: no cover - forest makes this impossible
                raise RuntimeError("MPHTF drain stalled with tasks remaining")
            t_out += 1
            diagnostics.drain_steps += 1
            processed_children: list[int] = []
            for _ in range(min(instance.P, len(global_queue))):
                _, j = heapq.heappop(global_queue)
                if done[j]:
                    continue
                done[j] = True
                n_done += 1
                schedule.add(t_out, j)
                processed_children.extend(children[j])
            for c in processed_children:
                heapq.heappush(global_queue, (-horn.task_density[c], c))

    return schedule.trim()
