"""Task schedules and the two cost functions (``cost`` and ``cost^f``).

A :class:`TaskSchedule` lists, per time step, which tasks are processed.
``schedule_cost`` evaluates the classic objective ``Sum w_j C_j``;
``fractional_cost`` evaluates the relaxed objective of Section 4.2, where
an algorithm gets credit for the *portion* of each Horn's tree it has
completed.  Lemma 13 shows ``cost^f(sigma) <= cost(sigma)`` for every
schedule, which is what makes ``cost^f`` of PHTF a certified lower bound
on the integral optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.scheduling.instance import SchedulingInstance
from repro.util.errors import InvalidScheduleError

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduling.horn import HornDecomposition


@dataclass
class TaskSchedule:
    """``steps[t]`` lists the tasks processed at 1-based time step ``t+1``."""

    steps: list[list[int]] = field(default_factory=list)

    @property
    def n_steps(self) -> int:
        """Number of time steps used."""
        return len(self.steps)

    def add(self, time_step: int, task: int) -> None:
        """Place ``task`` at 1-based ``time_step``."""
        if time_step < 1:
            raise ValueError(f"time steps are 1-based, got {time_step}")
        while len(self.steps) < time_step:
            self.steps.append([])
        self.steps[time_step - 1].append(task)

    def completion_times(self, n_tasks: int) -> np.ndarray:
        """``C[j]`` = 1-based completion step of task ``j`` (0 if absent)."""
        completion = np.zeros(n_tasks, dtype=np.int64)
        for t, tasks in enumerate(self.steps, start=1):
            for j in tasks:
                completion[j] = t
        return completion

    def trim(self) -> "TaskSchedule":
        """Drop trailing empty steps in place; returns self."""
        while self.steps and not self.steps[-1]:
            self.steps.pop()
        return self

    def iter_tasks(self) -> Iterable[int]:
        """All scheduled tasks in time order."""
        for step in self.steps:
            yield from step

    def __repr__(self) -> str:
        n_tasks = sum(len(s) for s in self.steps)
        return f"TaskSchedule({self.n_steps} steps, {n_tasks} tasks)"


def validate_task_schedule(
    instance: SchedulingInstance, schedule: TaskSchedule
) -> np.ndarray:
    """Check machine and precedence feasibility; return completion times.

    Raises :class:`InvalidScheduleError` if a step exceeds ``P`` tasks, a
    task is scheduled more than once or not at all, or a task runs at or
    before its predecessor's completion step.
    """
    n = instance.n_tasks
    completion = np.zeros(n, dtype=np.int64)
    for t, tasks in enumerate(schedule.steps, start=1):
        if len(tasks) > instance.P:
            raise InvalidScheduleError(
                f"step {t} runs {len(tasks)} tasks > P={instance.P}"
            )
        for j in tasks:
            if not (0 <= j < n):
                raise InvalidScheduleError(f"unknown task {j} at step {t}")
            if completion[j] != 0:
                raise InvalidScheduleError(f"task {j} scheduled twice")
            completion[j] = t
    missing = int((completion == 0).sum())
    if missing:
        raise InvalidScheduleError(f"{missing} task(s) never scheduled")
    for j in range(n):
        p = int(instance.parent[j])
        if p >= 0 and completion[j] <= completion[p]:
            raise InvalidScheduleError(
                f"task {j} (step {completion[j]}) does not strictly follow "
                f"its predecessor {p} (step {completion[p]})"
            )
    return completion


def schedule_cost(
    instance: SchedulingInstance,
    schedule: TaskSchedule,
    *,
    validate: bool = True,
) -> float:
    """Total weighted completion time ``Sum_j w_j C_j``."""
    if validate:
        completion = validate_task_schedule(instance, schedule)
    else:
        completion = schedule.completion_times(instance.n_tasks)
    return float((completion * instance.weights).sum())


def fractional_cost(
    instance: SchedulingInstance,
    schedule: TaskSchedule,
    horn: "HornDecomposition",
) -> Fraction:
    """The relaxed cost ``cost^f`` of Section 4.2, computed exactly.

    Each task ``j`` in Horn's tree ``T_i`` is unfinished for ``C_j`` time
    steps and contributes ``w(T_i)/s(T_i)`` per unfinished step, so
    ``cost^f(sigma) = Sum_j C_j * w(T_i(j)) / s(T_i(j))``.
    """
    completion = validate_task_schedule(instance, schedule)
    total = Fraction(0)
    for j in range(instance.n_tasks):
        root = horn.horn_root[j]
        total += int(completion[j]) * horn.tree_density(root)
    return total
