"""Oblivious packed nodes and packed sets (Sections 3.1-3.2).

A node ``v`` is **packed** when at least ``B/6`` messages target its
subtree and are not already claimed by a deeper packed node; the root is
always packed and claims every leftover message.  Each message therefore
belongs to the *packed contents* ``C(v)`` of exactly one packed node — its
lowest packed ancestor-or-self.

The packed contents are then split into **packed sets** of total size in
``[B/6, B/2]``:

* for a *leaf* packed node, messages are chunked directly;
* for an *internal* packed node, whole *children* of ``v`` are grouped
  greedily (each child holds < ``B/6`` unclaimed messages, else it would
  be packed itself), so that two messages flushed from ``v`` to the same
  child always share a packed set — the property Lemma 1's ``L``-schedule
  construction relies on.

This module implements the *oblivious* variant (depends only on
``(T, M, P, B)``, not on any schedule), which is the one the reduction of
Section 3.2 uses.  The divisor 6 is exposed as a parameter for the
ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.worms import WORMSInstance
from repro.util.errors import InvalidInstanceError

#: Paper constants: a node is packed at >= B/PACKED_DENOM unclaimed
#: messages; packed sets have size in [B/PACKED_DENOM, B/2].
PACKED_DENOM = 6


@dataclass(frozen=True)
class PackedSet:
    """One packed set: messages sharing a packed parent and child group."""

    index: int
    parent_node: int
    messages: tuple[int, ...]
    #: children of ``parent_node`` whose subtrees hold this set's messages
    #: (empty when the packed parent is a leaf).
    child_group: tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of messages in the set."""
        return len(self.messages)


@dataclass(frozen=True)
class PackedDecomposition:
    """The full packed-node/packed-set structure of a WORMS instance."""

    instance: WORMSInstance
    packed_nodes: tuple[int, ...]
    sets: tuple[PackedSet, ...]
    #: per message: its packed parent node and its packed-set index.
    packed_parent_of: np.ndarray
    set_of: np.ndarray

    @cached_property
    def sets_of_node(self) -> dict[int, tuple[int, ...]]:
        """Map packed node -> indices of its packed sets."""
        result: dict[int, list[int]] = {v: [] for v in self.packed_nodes}
        for s in self.sets:
            result[s.parent_node].append(s.index)
        return {v: tuple(ixs) for v, ixs in result.items()}

    def check_invariants(self) -> None:
        """Assert the structural properties the paper's lemmas rely on."""
        inst = self.instance
        B = inst.B
        topo = inst.topology
        seen = np.zeros(inst.n_messages, dtype=bool)
        for s in self.sets:
            if not s.messages:
                raise InvalidInstanceError(f"packed set {s.index} is empty")
            for m in s.messages:
                if seen[m]:
                    raise InvalidInstanceError(f"message {m} in two packed sets")
                seen[m] = True
                if self.set_of[m] != s.index:
                    raise InvalidInstanceError("set_of inconsistent")
                if self.packed_parent_of[m] != s.parent_node:
                    raise InvalidInstanceError("packed_parent_of inconsistent")
                if not topo.is_descendant(
                    inst.messages[m].target_leaf, s.parent_node
                ):
                    raise InvalidInstanceError(
                        f"message {m} target not under packed parent"
                    )
            # Size bounds: every non-root set in [B/6, B/2]; root sets may
            # undershoot (the root claims whatever remains).
            if s.parent_node != topo.root and not (
                PACKED_DENOM * s.size >= B and 2 * s.size <= B
            ):
                raise InvalidInstanceError(
                    f"packed set {s.index} size {s.size} outside "
                    f"[B/{PACKED_DENOM}, B/2] with B={B}"
                )
            if s.parent_node == topo.root and 2 * s.size > B:
                raise InvalidInstanceError(
                    f"root packed set {s.index} size {s.size} > B/2"
                )
        if not seen.all():
            raise InvalidInstanceError("some messages belong to no packed set")


def build_packed_sets(
    instance: WORMSInstance, *, denom: int = PACKED_DENOM
) -> PackedDecomposition:
    """Construct the oblivious packed decomposition of ``instance``.

    ``denom`` overrides the packing threshold ``B/6`` (ablation hook);
    set sizes then fall in roughly ``[B/denom, 3B/denom]``, so ``denom``
    must be at least 3 for every set to fit in a single ``B``-flush (the
    paper's 6 leaves the factor-two slack its proofs use).
    """
    if denom < 2:
        raise InvalidInstanceError(f"denom must be >= 2, got {denom}")
    topo = instance.topology
    B = instance.B
    n_nodes = topo.n_nodes
    n_msgs = instance.n_messages

    # Bottom-up: unclaimed[v] = messages targeting subtree(v) not claimed
    # by a packed strict descendant of v.  v becomes packed when
    # unclaimed[v] >= B/denom (exact integer comparison).
    unclaimed = np.array(instance.messages_per_leaf, dtype=np.int64)
    is_packed = np.zeros(n_nodes, dtype=bool)
    parents = topo.parents
    for v in topo.bfs_order[::-1]:
        v = int(v)
        if v == topo.root:
            continue
        if denom * unclaimed[v] >= B:
            is_packed[v] = True
        else:
            p = int(parents[v])
            unclaimed[p] += unclaimed[v]
    is_packed[topo.root] = True

    # Each message's packed parent: lowest packed ancestor-or-self of its
    # target leaf.
    packed_parent_of = np.empty(n_msgs, dtype=np.int64)
    # Memoize per node: lowest packed ancestor-or-self.
    lowest_packed = np.full(n_nodes, -1, dtype=np.int64)
    for v in topo.bfs_order:
        v = int(v)
        if is_packed[v]:
            lowest_packed[v] = v
        else:
            # root is packed, so every non-root node has a packed ancestor;
            # note "lowest" walks bottom-up, so we must not inherit from the
            # parent — a message claimed by a deep packed node must stop
            # there.  lowest_packed[v] here means: the packed node that
            # claims messages whose lowest packed ancestor chain starts at v.
            lowest_packed[v] = lowest_packed[int(parents[v])]
    for m in range(n_msgs):
        leaf = instance.messages[m].target_leaf
        packed_parent_of[m] = lowest_packed[leaf]

    # Group messages by packed parent, preserving message-id order.
    contents: dict[int, list[int]] = {}
    for m in range(n_msgs):
        contents.setdefault(int(packed_parent_of[m]), []).append(m)

    # For internal packed parents we need, per child of v, the unclaimed
    # messages routed through that child.  A message of C(v) routed through
    # child c means c is on the path v -> target; find it by walking up.
    sets: list[PackedSet] = []
    set_of = np.full(n_msgs, -1, dtype=np.int64)
    threshold = -(-B // denom)  # ceil(B / denom)

    packed_nodes = [int(v) for v in np.flatnonzero(is_packed)]
    for v in packed_nodes:
        msgs = contents.get(v, [])
        if not msgs:
            continue  # packed by count but all its messages claimed deeper
        if topo.is_leaf(v):
            _chunk_leaf_sets(sets, set_of, v, msgs, threshold)
        else:
            _group_child_sets(instance, sets, set_of, v, msgs, threshold)

    decomposition = PackedDecomposition(
        instance=instance,
        packed_nodes=tuple(packed_nodes),
        sets=tuple(sets),
        packed_parent_of=packed_parent_of,
        set_of=set_of,
    )
    return decomposition


def _chunk_leaf_sets(
    sets: list[PackedSet],
    set_of: np.ndarray,
    v: int,
    msgs: list[int],
    threshold: int,
) -> None:
    """Split a leaf packed node's messages into chunks of ~threshold."""
    chunks: list[list[int]] = []
    for start in range(0, len(msgs), threshold):
        chunks.append(msgs[start : start + threshold])
    if len(chunks) >= 2 and len(chunks[-1]) < threshold:
        chunks[-2].extend(chunks.pop())
    for chunk in chunks:
        _emit(sets, set_of, v, chunk, ())


def _group_child_sets(
    instance: WORMSInstance,
    sets: list[PackedSet],
    set_of: np.ndarray,
    v: int,
    msgs: list[int],
    threshold: int,
) -> None:
    """Group an internal packed node's children into packed sets."""
    topo = instance.topology
    by_child: dict[int, list[int]] = {}
    own: list[int] = []  # internal-target extension: messages ending at v
    for m in msgs:
        target = instance.messages[m].target_leaf
        if target == v:
            own.append(m)
            continue
        child = topo.child_towards(v, target)
        by_child.setdefault(child, []).append(m)
    # Messages completing at v itself behave like leaf-parent messages:
    # chunk them into their own sets with no child group.
    if own:
        _chunk_leaf_sets(sets, set_of, v, own, threshold)
    groups: list[tuple[list[int], list[int]]] = []  # (children, messages)
    cur_children: list[int] = []
    cur_msgs: list[int] = []
    for child in sorted(by_child):
        cur_children.append(child)
        cur_msgs.extend(by_child[child])
        if len(cur_msgs) >= threshold:
            groups.append((cur_children, cur_msgs))
            cur_children, cur_msgs = [], []
    if cur_msgs:
        if groups:
            groups[-1][0].extend(cur_children)
            groups[-1][1].extend(cur_msgs)
        else:
            groups.append((cur_children, cur_msgs))
    for children, group_msgs in groups:
        _emit(sets, set_of, v, group_msgs, tuple(children))


def _emit(
    sets: list[PackedSet],
    set_of: np.ndarray,
    v: int,
    msgs: list[int],
    child_group: tuple[int, ...],
) -> None:
    index = len(sets)
    for m in msgs:
        set_of[m] = index
    sets.append(
        PackedSet(
            index=index,
            parent_node=v,
            messages=tuple(sorted(msgs)),
            child_group=child_group,
        )
    )
