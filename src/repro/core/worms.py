"""The WORMS problem instance: ``(T, M, P, B)``.

An instance consists of a static tree ``T``, a set of messages ``M`` (each
with a target leaf), and the DAM parameters ``P`` (parallel flushes per
time step) and ``B`` (messages per node / per flush).  The goal is a valid
flush schedule minimizing total completion time (Section 2.1).

Messages conventionally start at the root (the root holds an unbounded
backlog); per-message start nodes on the root-to-target path are also
supported so that mid-tree backlogs snapshotted from a live B^epsilon-tree
can be simulated, but the paper's approximation pipeline requires
root starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.tree.messages import Message
from repro.tree.topology import TreeTopology
from repro.util.errors import InvalidInstanceError


@dataclass(frozen=True)
class WORMSInstance:
    """An instance ``(T, M, P, B)`` of write-optimized root-to-leaf
    message scheduling.

    Attributes
    ----------
    topology:
        The static tree ``T``.
    messages:
        The messages ``M``; ``messages[i].msg_id`` must equal ``i`` so that
        schedules can refer to messages by index.
    P:
        Parallel flushes per time step.
    B:
        Node capacity and flush capacity.
    start_nodes:
        Optional per-message start node (defaults to the root for all).
    weights:
        Optional non-negative per-message weights for the *weighted*
        total completion time objective (the reduction target
        ``P|outtree,p_j=1|Sum wC`` is weighted anyway, so the pipeline
        supports this extension natively).  ``None`` means unit weights,
        i.e. the paper's plain average completion time.
    allow_internal_targets:
        The paper assumes all targets are leaves (footnote 3 notes the
        techniques "likely extend" to internal targets).  Setting this
        flag enables that extension: a message may target any node and
        completes on arrival there.  Off by default to keep the strict
        model.
    """

    topology: TreeTopology
    messages: tuple[Message, ...]
    P: int
    B: int
    start_nodes: tuple[int, ...] | None = None
    weights: tuple[float, ...] | None = None
    allow_internal_targets: bool = False

    def __init__(
        self,
        topology: TreeTopology,
        messages: Sequence[Message],
        P: int,
        B: int,
        start_nodes: Sequence[int] | None = None,
        weights: Sequence[float] | None = None,
        allow_internal_targets: bool = False,
    ) -> None:
        object.__setattr__(
            self, "allow_internal_targets", bool(allow_internal_targets)
        )
        object.__setattr__(self, "topology", topology)
        object.__setattr__(self, "messages", tuple(messages))
        object.__setattr__(self, "P", int(P))
        object.__setattr__(
            self,
            "start_nodes",
            None if start_nodes is None else tuple(int(s) for s in start_nodes),
        )
        object.__setattr__(
            self,
            "weights",
            None if weights is None else tuple(float(w) for w in weights),
        )
        object.__setattr__(self, "B", int(B))
        self._validate()

    def _validate(self) -> None:
        if self.P < 1:
            raise InvalidInstanceError(f"P must be >= 1, got {self.P}")
        if self.B < 1:
            raise InvalidInstanceError(f"B must be >= 1, got {self.B}")
        topo = self.topology
        for i, msg in enumerate(self.messages):
            if msg.msg_id != i:
                raise InvalidInstanceError(
                    f"messages[{i}] has msg_id {msg.msg_id}; ids must be dense"
                )
            if not (0 <= msg.target_leaf < topo.n_nodes):
                raise InvalidInstanceError(
                    f"message {i} targets unknown node {msg.target_leaf}"
                )
            if not self.allow_internal_targets and not topo.is_leaf(
                msg.target_leaf
            ):
                raise InvalidInstanceError(
                    f"message {i} targets non-leaf node {msg.target_leaf} "
                    "(pass allow_internal_targets=True for the footnote-3 "
                    "extension)"
                )
        if self.weights is not None:
            if len(self.weights) != len(self.messages):
                raise InvalidInstanceError(
                    "weights length must match number of messages"
                )
            if any(w < 0 for w in self.weights):
                raise InvalidInstanceError("message weights must be >= 0")
        if self.start_nodes is not None:
            if len(self.start_nodes) != len(self.messages):
                raise InvalidInstanceError(
                    "start_nodes length must match number of messages"
                )
            for i, start in enumerate(self.start_nodes):
                if not topo.is_descendant(self.messages[i].target_leaf, start):
                    raise InvalidInstanceError(
                        f"message {i} starts at {start}, which is not on its "
                        f"root-to-{self.messages[i].target_leaf} path"
                    )

    # ------------------------------------------------------------------
    # Derived data
    # ------------------------------------------------------------------
    @property
    def n_messages(self) -> int:
        """Number of messages ``|M|``."""
        return len(self.messages)

    @property
    def n(self) -> int:
        """The paper's size measure ``n = |M| + |T|``."""
        return len(self.messages) + self.topology.n_nodes

    @property
    def height(self) -> int:
        """Tree height ``h``."""
        return self.topology.height

    def start_of(self, msg_id: int) -> int:
        """Start node of a message (the root unless overridden)."""
        if self.start_nodes is None:
            return self.topology.root
        return self.start_nodes[msg_id]

    @cached_property
    def message_weights(self) -> np.ndarray:
        """Per-message weights as an array (unit weights by default)."""
        if self.weights is None:
            arr = np.ones(len(self.messages), dtype=np.float64)
        else:
            arr = np.asarray(self.weights, dtype=np.float64)
        arr.setflags(write=False)
        return arr

    def weight_of(self, msg_ids: "Sequence[int]") -> float:
        """Total weight of a collection of message ids."""
        w = self.message_weights
        return float(sum(w[m] for m in msg_ids))

    @cached_property
    def targets(self) -> np.ndarray:
        """``targets[i]`` = target leaf of message ``i`` (read-only)."""
        arr = np.fromiter(
            (m.target_leaf for m in self.messages),
            dtype=np.int64,
            count=len(self.messages),
        )
        arr.setflags(write=False)
        return arr

    @cached_property
    def messages_per_leaf(self) -> np.ndarray:
        """``messages_per_leaf[v]`` = number of messages targeting node v."""
        counts = np.bincount(self.targets, minlength=self.topology.n_nodes)
        counts.setflags(write=False)
        return counts

    @cached_property
    def messages_in_subtree(self) -> np.ndarray:
        """``messages_in_subtree[v]`` = messages targeting a descendant of v.

        Computed by one bottom-up pass; the packed-node construction is
        built on this array.
        """
        counts = np.array(self.messages_per_leaf, dtype=np.int64)
        parents = self.topology.parents
        for v in self.topology.bfs_order[::-1]:
            p = int(parents[v])
            if p >= 0:
                counts[p] += counts[v]
        counts.setflags(write=False)
        return counts

    def messages_by_leaf(self) -> dict[int, list[int]]:
        """Map target leaf -> sorted list of message ids targeting it."""
        by_leaf: dict[int, list[int]] = {}
        for i, msg in enumerate(self.messages):
            by_leaf.setdefault(msg.target_leaf, []).append(i)
        return by_leaf

    def total_work(self) -> int:
        """Total message-hops needed: sum over messages of path length."""
        heights = self.topology.heights
        return int(
            sum(
                heights[m.target_leaf] - heights[self.start_of(m.msg_id)]
                for m in self.messages
            )
        )

    def __repr__(self) -> str:
        return (
            f"WORMSInstance(|T|={self.topology.n_nodes}, |M|={self.n_messages}, "
            f"P={self.P}, B={self.B}, h={self.height})"
        )
