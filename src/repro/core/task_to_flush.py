"""Lemma 8: a task schedule for ``T(T,M,P,B)`` becomes an overfilling
flush schedule of *equal* cost.

Each reduced task stands for one flush (a packed set's messages crossing
one tree edge); processing the task at step ``t`` schedules that flush at
step ``t``.  Precedence constraints in the reduced instance guarantee the
flushes are valid (messages are always at the flush source), and a
message's completion step equals the completion step of the weighted task
that delivers it — so ``c(S') = cost(sigma)`` exactly.

The output generally *overfills* interior nodes (sets park in mid-path
nodes between their chain tasks); Lemma 1
(:mod:`repro.core.valid_conversion`) repairs that.
"""

from __future__ import annotations

from repro.core.reduction import ReducedInstance
from repro.dam.schedule import Flush, FlushSchedule
from repro.scheduling.cost import TaskSchedule


def task_schedule_to_flush_schedule(
    reduced: ReducedInstance, sigma: TaskSchedule
) -> FlushSchedule:
    """Convert task schedule ``sigma`` into an overfilling flush schedule."""
    schedule = FlushSchedule()
    edges = reduced.task_edges
    for t, tasks in enumerate(sigma.steps, start=1):
        for j in tasks:
            edge = edges[j]
            schedule.add(
                t, Flush(src=edge.src, dest=edge.dest, messages=edge.messages)
            )
    return schedule.trim()
