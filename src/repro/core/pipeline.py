"""End-to-end WORMS solver (Section 4.3).

``solve_worms`` chains the paper's stages:

1. build the oblivious packed sets and reduce to
   ``P | outtree, p_j = 1 | Sum wC`` (Lemmas 8-9);
2. solve the scheduling instance with MPHTF (Lemma 14; the paper's
   4-approximation) — or any other task scheduler passed in;
3. convert the task schedule to an overfilling flush schedule of equal
   cost (Lemma 8);
4. convert the overfilling schedule to a valid one (Lemma 1).

The result carries every intermediate artifact so experiments can measure
each stage's cost inflation separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.packed import PackedDecomposition, build_packed_sets
from repro.core.reduction import ReducedInstance, reduce_to_scheduling
from repro.core.task_to_flush import task_schedule_to_flush_schedule
from repro.core.valid_conversion import ConversionDiagnostics, make_valid
from repro.core.worms import WORMSInstance
from repro.dam.schedule import FlushSchedule
from repro.dam.simulator import SimulationResult, simulate
from repro.obs.hooks import current_obs
from repro.obs.profile import PHASE_PLAN
from repro.scheduling.cost import TaskSchedule, schedule_cost
from repro.scheduling.horn import compute_horn
from repro.scheduling.instance import SchedulingInstance
from repro.scheduling.mphtf import mphtf_schedule
from repro.util.errors import InvalidScheduleError


@dataclass
class PipelineResult:
    """Everything ``solve_worms`` produced, stage by stage."""

    instance: WORMSInstance
    packed: PackedDecomposition
    reduced: ReducedInstance
    task_schedule: TaskSchedule
    task_cost: float
    overfilling: FlushSchedule
    overfilling_result: SimulationResult
    schedule: FlushSchedule
    result: SimulationResult
    conversion: ConversionDiagnostics

    @property
    def total_completion_time(self) -> int:
        """Objective value of the final valid schedule."""
        return self.result.total_completion_time

    @property
    def mean_completion_time(self) -> float:
        """Average completion time of the final valid schedule."""
        return self.result.mean_completion_time


def solve_worms(
    instance: WORMSInstance,
    *,
    task_scheduler: Callable[[SchedulingInstance], TaskSchedule] | None = None,
    verify: bool = True,
) -> PipelineResult:
    """Run the full O(1)-approximation pipeline on a WORMS instance.

    ``task_scheduler`` defaults to MPHTF; pass e.g. Horn's algorithm for
    ``P == 1`` or a baseline for ablations.  With ``verify`` (default) the
    final schedule is checked by the DAM simulator and an
    :class:`InvalidScheduleError` is raised if it is not valid — this
    should never happen (the fallback stage is valid by construction) and
    exists as an internal safety net.
    """
    obs = current_obs()
    tracer = obs.tracer
    t0 = obs.profiler.clock() if obs.enabled else 0.0
    with tracer.span(
        "pipeline.solve", category="pipeline",
        n=instance.topology.n_nodes, P=instance.P, B=instance.B,
    ) as solve_span:
        with tracer.span("pipeline.packed_sets", category="pipeline"):
            packed = build_packed_sets(instance)
        with tracer.span("pipeline.reduction", category="pipeline"):
            reduced = reduce_to_scheduling(instance, packed)
        if task_scheduler is None:
            with tracer.span("pipeline.horn", category="pipeline"):
                horn = compute_horn(reduced.scheduling)
            with tracer.span("pipeline.mphtf", category="pipeline"):
                sigma = mphtf_schedule(reduced.scheduling, horn)
        else:
            with tracer.span("pipeline.task_scheduler", category="pipeline"):
                sigma = task_scheduler(reduced.scheduling)
        task_cost = schedule_cost(reduced.scheduling, sigma)
        with tracer.span("pipeline.task_to_flush", category="pipeline"):
            overfilling = task_schedule_to_flush_schedule(reduced, sigma)
        with tracer.span("pipeline.simulate_overfilling", category="pipeline"):
            overfilling_result = simulate(instance, overfilling)

        conversion = ConversionDiagnostics()
        with tracer.span("pipeline.make_valid", category="pipeline"):
            schedule = make_valid(
                instance, packed, overfilling, diagnostics=conversion
            )
        with tracer.span("pipeline.validate", category="pipeline"):
            result = simulate(instance, schedule)
        solve_span.set_steps(1, schedule.n_steps)
    if obs.enabled:
        obs.profiler.add(PHASE_PLAN, obs.profiler.clock() - t0)
        metrics = obs.metrics
        metrics.counter(
            "pipeline_solves_total", "solve_worms() invocations"
        ).inc()
        metrics.counter(
            "pipeline_packed_sets_total", "packed sets built across solves"
        ).inc(len(packed.sets))
        metrics.counter(
            "pipeline_reduced_tasks_total", "scheduling tasks across solves"
        ).inc(reduced.scheduling.n_tasks)
    if verify and not result.is_valid:
        raise InvalidScheduleError(
            "pipeline produced an invalid schedule: "
            f"{result.violations[:3]} {result.space_violations[:3]}"
        )
    return PipelineResult(
        instance=instance,
        packed=packed,
        reduced=reduced,
        task_schedule=sigma,
        task_cost=task_cost,
        overfilling=overfilling,
        overfilling_result=overfilling_result,
        schedule=schedule,
        result=result,
        conversion=conversion,
    )
