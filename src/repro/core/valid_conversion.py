"""Lemma 1: convert an overfilling schedule into a valid one.

Faithful implementation of Section 3.1.  Given an overfilling schedule
``S`` and the packed decomposition, we build three partial schedules:

* ``U`` — for every packed set ``C`` (start time ``tau``, packed parent
  ``v`` at height ``h(v)``), greedily reserve ``h(v)`` consecutive flushes
  on one of ``P`` machine tracks moving all of ``C`` from the root to
  ``v``, aiming to arrive at ``tau``;
* ``L`` — replay the *lower* flushes of ``S`` (flushes at or below a
  message's packed parent): a flush out of the packed parent itself is
  released only after ``27 * tau``; any deeper flush waits until all its
  messages have arrived at the source in ``L``;
* ``U_r`` — ``U`` with extra drain flushes inserted immediately before
  each packed set's arrival at an internal packed parent ``v`` (copies of
  the ``L`` flushes out of ``v`` later than the arrival minus ``h``), so
  the parent has room when the set lands.

``U_r`` and ``L`` are then interleaved in epochs of ``h`` steps: epoch
``i`` of ``U_r`` executes in steps ``[3hi+h+1, 3hi+2h]`` of the output and
epoch ``i`` of ``L`` in ``[3hi+2h+1, 3hi+3h]`` (messages already moved on
an edge by a copied drain flush are dropped from the original ``L`` flush).

**Reproduction note.**  The paper's validity proof for the combined
schedule assumes every chain of ``U_r`` stays consecutive, but the global
step insertions that create ``U_r`` can split chains that are in flight,
letting two ancestor packed sets park in one node simultaneously; on some
instances the literal construction therefore violates the space
requirement (or the ``27 tau`` release races a late ``U_r`` arrival).  We
run the literal construction, *check it with the DAM simulator*, and fall
back to :func:`serial_fallback_schedule` — a simple schedule that is valid
by construction (packed sets flushed one at a time, ``P``-parallel below
the packed parent) — whenever the check fails.  The E7 bench quantifies
how often that happens and what it costs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.packed import PackedDecomposition
from repro.core.worms import WORMSInstance
from repro.dam.schedule import Flush, FlushSchedule
from repro.dam.simulator import simulate

#: Paper constants (Section 3.1).  Exposed for the ablation bench.
LAG_MULT = 27  # L releases a packed set's first lower flush after 27*tau
EPOCH_MULT = 3  # the output timeline dilates epochs of h steps by 3x
START_COUNT_DENOM = 12  # tau counts the ceil(B/12)-th message event


@dataclass
class ConversionDiagnostics:
    """What happened inside :func:`make_valid` (for tests and benches)."""

    used_fallback: bool = False
    literal_violations: int = 0
    literal_space_violations: int = 0
    n_sets: int = 0
    n_drain_copies: int = 0


@dataclass(frozen=True)
class _LFlush:
    time: int
    src: int
    dest: int
    set_index: int
    messages: tuple[int, ...]


@dataclass
class _SetTiming:
    tau: int = 0
    arrival_u: int = 0  # time of the last chain flush in U (0 if h(v)==0)


class _SlotTable:
    """First-free-step structure: at most ``P`` flushes per step.

    ``find(s)`` returns the first step ``>= s`` with spare capacity;
    full steps are skipped via union-find path compression.
    """

    def __init__(self, P: int) -> None:
        self._P = P
        self._count: dict[int, int] = {}
        self._next: dict[int, int] = {}

    def _find(self, s: int) -> int:
        path = []
        while s in self._next:
            path.append(s)
            s = self._next[s]
        for p in path:
            self._next[p] = s
        return s

    def take(self, earliest: int) -> int:
        """Occupy and return the first available step ``>= earliest``."""
        s = self._find(max(1, earliest))
        self._count[s] = self._count.get(s, 0) + 1
        if self._count[s] >= self._P:
            self._next[s] = s + 1
        return s


def make_valid(
    instance: WORMSInstance,
    packed: PackedDecomposition,
    overfilling: FlushSchedule,
    *,
    diagnostics: ConversionDiagnostics | None = None,
) -> FlushSchedule:
    """Lemma 1: return a valid schedule for ``instance``.

    Tries the literal Section-3.1 construction first and verifies it with
    the simulator; on any violation falls back to the always-valid serial
    schedule (see module docstring).
    """
    if diagnostics is None:
        diagnostics = ConversionDiagnostics()
    diagnostics.n_sets = len(packed.sets)
    if instance.topology.height == 0 or not packed.sets:
        return FlushSchedule()  # single-node tree or no messages: done

    candidate = literal_lemma1_schedule(
        instance, packed, overfilling, diagnostics=diagnostics
    )
    result = simulate(instance, candidate)
    diagnostics.literal_violations = len(result.violations)
    diagnostics.literal_space_violations = len(result.space_violations)
    if result.is_valid:
        return candidate
    diagnostics.used_fallback = True
    return serial_fallback_schedule(instance, packed, overfilling)


# ----------------------------------------------------------------------
# The literal Section-3.1 construction
# ----------------------------------------------------------------------
def literal_lemma1_schedule(
    instance: WORMSInstance,
    packed: PackedDecomposition,
    overfilling: FlushSchedule,
    *,
    diagnostics: ConversionDiagnostics | None = None,
) -> FlushSchedule:
    """Build S-hat exactly as Section 3.1 describes (may be invalid; see
    the module docstring's reproduction note)."""
    timings = _set_timings(instance, packed, overfilling)
    u_flushes, timings = _build_u(instance, packed, timings)
    l_flushes = _build_l(instance, packed, overfilling, timings)
    ur_flushes, copied = _build_ur(
        instance, packed, timings, u_flushes, l_flushes
    )
    if diagnostics is not None:
        diagnostics.n_drain_copies = len(copied)
    return _interleave(instance, packed, ur_flushes, l_flushes, copied)


def _set_timings(
    instance: WORMSInstance,
    packed: PackedDecomposition,
    overfilling: FlushSchedule,
) -> list[_SetTiming]:
    """Compute each packed set's starting time ``tau`` from ``S``."""
    topo = instance.topology
    n_msgs = instance.n_messages
    parent_of = packed.packed_parent_of
    set_of = packed.set_of

    targets = instance.targets
    out_time = [0] * n_msgs  # flush out of (or delivery at) the packed parent
    arr_time = [0] * n_msgs  # arrival into a *leaf* packed parent
    for t, flush in overfilling.iter_timed():
        for m in flush.messages:
            if flush.src == int(parent_of[m]) and out_time[m] == 0:
                out_time[m] = t
            if flush.dest == int(parent_of[m]):
                if topo.is_leaf(flush.dest):
                    arr_time[m] = t
                elif int(targets[m]) == flush.dest and out_time[m] == 0:
                    # Internal-target extension: delivery at the packed
                    # parent is the message's terminal event.
                    out_time[m] = t

    k_denom = START_COUNT_DENOM
    timings = [_SetTiming() for _ in packed.sets]
    # Per internal packed node: its sets ordered by last flush-out time.
    by_node: dict[int, list[int]] = {}
    for s in packed.sets:
        by_node.setdefault(s.parent_node, []).append(s.index)
    for v, set_ids in by_node.items():
        if topo.is_leaf(v):
            for si in set_ids:
                msgs = packed.sets[si].messages
                k = min(_ceil_div(instance.B, k_denom), len(msgs))
                times = sorted(arr_time[m] for m in msgs)
                timings[si].tau = times[k - 1]
            continue
        last_out = {
            si: max(out_time[m] for m in packed.sets[si].messages)
            for si in set_ids
        }
        ordered = sorted(set_ids, key=lambda si: (last_out[si], si))
        first = ordered[0]
        msgs = packed.sets[first].messages
        k = min(_ceil_div(instance.B, k_denom), len(msgs))
        timings[first].tau = sorted(out_time[m] for m in msgs)[k - 1]
        for prev, cur in zip(ordered, ordered[1:]):
            timings[cur].tau = last_out[prev]
    return timings


def _build_u(
    instance: WORMSInstance,
    packed: PackedDecomposition,
    timings: list[_SetTiming],
) -> tuple[list[tuple[int, int, int, int]], list[_SetTiming]]:
    """Greedy U: per set, ``h(v)`` consecutive flushes on one machine.

    Returns flushes as ``(time, src, dest, set_index)`` and fills in each
    timing's ``arrival_u``.
    """
    topo = instance.topology
    machines = [1] * instance.P  # next free step per machine track
    heapq.heapify(machines)
    u_flushes: list[tuple[int, int, int, int]] = []
    order = sorted(
        range(len(packed.sets)), key=lambda si: (timings[si].tau, si)
    )
    for si in order:
        v = packed.sets[si].parent_node
        hv = topo.height_of(v)
        if hv == 0:
            timings[si].arrival_u = 0
            continue
        desired = max(1, timings[si].tau - hv + 1)
        free = heapq.heappop(machines)
        start = max(desired, free)
        for k, (src, dest) in enumerate(topo.edges_from_root(v)):
            u_flushes.append((start + k, src, dest, si))
        heapq.heappush(machines, start + hv)
        timings[si].arrival_u = start + hv - 1
    return u_flushes, timings


def _build_l(
    instance: WORMSInstance,
    packed: PackedDecomposition,
    overfilling: FlushSchedule,
    timings: list[_SetTiming],
) -> list[_LFlush]:
    """L: replay lower flushes of ``S`` with the Section-3.1 release rules.

    The paper assumes all lower messages of one ``S``-flush share a packed
    set; for arbitrary overfilling inputs we split per packed set, which
    only adds flushes and never breaks the timing bounds.
    """
    topo = instance.topology
    parent_of = packed.packed_parent_of
    set_of = packed.set_of
    slots = _SlotTable(instance.P)
    ready = [0] * instance.n_messages  # step after which m is at its L node
    l_flushes: list[_LFlush] = []

    for t, flush in overfilling.iter_timed():
        groups: dict[int, list[int]] = {}
        for m in flush.messages:
            v = int(parent_of[m])
            if topo.is_descendant(flush.src, v):
                groups.setdefault(int(set_of[m]), []).append(m)
        for si, msgs in sorted(groups.items()):
            v = packed.sets[si].parent_node
            if flush.src == v:
                bound = LAG_MULT * timings[si].tau + 1
            else:
                bound = max(ready[m] for m in msgs) + 1
            s = slots.take(bound)
            l_flushes.append(
                _LFlush(s, flush.src, flush.dest, si, tuple(msgs))
            )
            for m in msgs:
                ready[m] = s
    return l_flushes


def _build_ur(
    instance: WORMSInstance,
    packed: PackedDecomposition,
    timings: list[_SetTiming],
    u_flushes: list[tuple[int, int, int, int]],
    l_flushes: list[_LFlush],
) -> tuple[list[tuple[int, int, int, int, tuple[int, ...] | None]], set[int]]:
    """U_r: shift U and insert drain copies of L flushes before arrivals.

    Returns flushes as ``(time, src, dest, set_index, messages_or_None)``
    (``None`` means "the whole packed set", as in U) plus the indices of
    copied L flushes.
    """
    topo = instance.topology
    h = topo.height
    # L flushes grouped by source node, in time order, for the drain scan.
    out_of: dict[int, list[int]] = {}
    for idx, lf in enumerate(l_flushes):
        out_of.setdefault(lf.src, []).append(idx)
    for v in out_of:
        out_of[v].sort(key=lambda idx: l_flushes[idx].time)

    events = sorted(
        (
            si
            for si, s in enumerate(packed.sets)
            if not topo.is_leaf(s.parent_node)
            and s.parent_node != topo.root
        ),
        key=lambda si: (timings[si].arrival_u, si),
    )
    copied: set[int] = set()
    inserts: list[tuple[int, int]] = []  # (U-time threshold, added steps)
    insert_gaps: list[tuple[int, list[int]]] = []  # (gap start, l indices)

    def delay_before(t: int) -> int:
        return sum(add for thr, add in inserts if thr <= t)

    for si in events:
        v = packed.sets[si].parent_node
        arrival = timings[si].arrival_u
        a_hat = arrival + delay_before(arrival)
        window_start = a_hat - h
        drains = [
            idx
            for idx in out_of.get(v, [])
            if idx not in copied and l_flushes[idx].time > window_start
        ]
        if not drains:
            continue
        copied.update(drains)
        add = _ceil_div(len(drains), instance.P)
        insert_gaps.append((a_hat, drains))
        inserts.append((arrival, add))

    ur: list[tuple[int, int, int, int, tuple[int, ...] | None]] = []
    for t, src, dest, si in u_flushes:
        ur.append((t + delay_before(t), src, dest, si, None))
    for gap_start, drains in insert_gaps:
        for k, idx in enumerate(drains):
            lf = l_flushes[idx]
            ur.append(
                (
                    gap_start + k // instance.P,
                    lf.src,
                    lf.dest,
                    lf.set_index,
                    lf.messages,
                )
            )
    return ur, copied


def _interleave(
    instance: WORMSInstance,
    packed: PackedDecomposition,
    ur_flushes: list[tuple[int, int, int, int, tuple[int, ...] | None]],
    l_flushes: list[_LFlush],
    copied: set[int],
) -> FlushSchedule:
    """Merge U_r and L into S-hat on the 3h-dilated timeline."""
    h = instance.topology.height
    schedule = FlushSchedule()

    for t, src, dest, si, msgs in ur_flushes:
        epoch, offset = divmod(t - 1, h)
        out_t = EPOCH_MULT * h * epoch + h + offset + 1
        if msgs is None:  # a U chain flush moves the whole packed set
            msgs = packed.sets[si].messages
        schedule.add(out_t, Flush(src=src, dest=dest, messages=msgs))
    for idx, lf in enumerate(l_flushes):
        if idx in copied:
            continue  # already executed inside U_r
        epoch, offset = divmod(lf.time - 1, h)
        out_t = EPOCH_MULT * h * epoch + 2 * h + offset + 1
        schedule.add(out_t, Flush(src=lf.src, dest=lf.dest, messages=lf.messages))
    return schedule.trim()


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


# ----------------------------------------------------------------------
# Guaranteed-valid fallback
# ----------------------------------------------------------------------
def serial_fallback_schedule(
    instance: WORMSInstance,
    packed: PackedDecomposition,
    overfilling: FlushSchedule | None = None,
) -> FlushSchedule:
    """A schedule that is valid by construction.

    Packed sets are processed one at a time, ordered by their completion
    in the overfilling schedule (falling back to index order): the set's
    ``<= B/2`` messages ride the chain to the packed parent, then fan out
    below it with up to ``P`` flushes per step, level by level.  At any
    instant only one set occupies internal nodes, so every internal node
    retains at most ``B/2 <= B`` messages across steps.
    """
    topo = instance.topology
    schedule = FlushSchedule()
    t = 0

    order = list(range(len(packed.sets)))
    if overfilling is not None:
        finish: dict[int, int] = {}
        for time, flush in overfilling.iter_timed():
            for m in flush.messages:
                si = int(packed.set_of[m])
                finish[si] = max(finish.get(si, 0), time)
        order.sort(key=lambda si: (finish.get(si, 0), si))

    for si in order:
        pset = packed.sets[si]
        v = pset.parent_node
        # Phase 1: chain from the root to the packed parent.
        for src, dest in topo.edges_from_root(v):
            t += 1
            schedule.add(t, Flush(src=src, dest=dest, messages=pset.messages))
        if topo.is_leaf(v):
            continue
        # Phase 2: fan out below v, level by level, P flushes per step.
        frontier: list[tuple[int, tuple[int, ...]]] = [(v, pset.messages)]
        while frontier:
            next_frontier: list[tuple[int, tuple[int, ...]]] = []
            pending: list[Flush] = []
            for node, msgs in frontier:
                by_child: dict[int, list[int]] = {}
                for m in msgs:
                    target = instance.messages[m].target_leaf
                    if target == node:
                        continue  # delivered (internal-target extension)
                    child = topo.child_towards(node, target)
                    by_child.setdefault(child, []).append(m)
                for child, child_msgs in sorted(by_child.items()):
                    pending.append(
                        Flush(src=node, dest=child, messages=tuple(child_msgs))
                    )
                    if not topo.is_leaf(child):
                        next_frontier.append((child, tuple(child_msgs)))
            for start in range(0, len(pending), instance.P):
                t += 1
                for flush in pending[start : start + instance.P]:
                    schedule.add(t, flush)
            frontier = next_frontier
    return schedule.trim()
