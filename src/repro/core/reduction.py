"""Reduction from WORMS to ``P | outtree, p_j = 1 | Sum wC`` (Section 3.2).

For every oblivious packed set ``C`` with packed parent ``v``:

* a *chain* of ``h(v)`` zero-weight tasks models flushing all of ``C``
  down the root-to-``v`` path, one task per edge, each preceded by the
  task for the edge above;
* if ``v`` is a leaf, the last chain task delivers ``C`` and carries
  weight ``|C|``;
* if ``v`` is internal, the subtree of ``T`` below ``v`` is copied
  (restricted to edges actually crossed by messages of ``C`` — the paper's
  "task is omitted when all descendant leaves have weight 0" pruning):
  the task for an edge into a leaf carries the number of ``C``-messages
  targeting that leaf, all other copied tasks carry weight 0.

Every task remembers the tree edge it stands for and the messages it
moves, so Lemma 8 (:mod:`repro.core.task_to_flush`) can turn any feasible
task schedule directly into an overfilling flush schedule of equal cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.packed import PackedDecomposition, build_packed_sets
from repro.core.worms import WORMSInstance
from repro.scheduling.instance import SchedulingInstance


@dataclass(frozen=True)
class TaskEdge:
    """What a reduced task does: flush ``messages`` over ``(src, dest)``."""

    set_index: int
    src: int
    dest: int
    messages: tuple[int, ...]


@dataclass(frozen=True)
class ReducedInstance:
    """The scheduling instance ``T(T, M, P, B)`` plus back-mapping data."""

    worms: WORMSInstance
    packed: PackedDecomposition
    scheduling: SchedulingInstance
    task_edges: tuple[TaskEdge, ...]

    @property
    def n_tasks(self) -> int:
        """Number of tasks in the reduced instance."""
        return self.scheduling.n_tasks


def reduce_to_scheduling(
    instance: WORMSInstance,
    packed: PackedDecomposition | None = None,
) -> ReducedInstance:
    """Build ``T(T, M, P, B)`` from a WORMS instance.

    The reduction assumes all messages start at the root (the paper's
    model); instances with custom start nodes are rejected.
    """
    if instance.start_nodes is not None and any(
        s != instance.topology.root for s in instance.start_nodes
    ):
        raise ValueError(
            "the paper's reduction requires all messages to start at the root"
        )
    if packed is None:
        packed = build_packed_sets(instance)
    topo = instance.topology

    parent: list[int] = []
    weights: list[float] = []
    edges: list[TaskEdge] = []

    def new_task(
        pred: int, set_index: int, src: int, dest: int, msgs: tuple[int, ...]
    ) -> int:
        task_id = len(parent)
        parent.append(pred)
        weights.append(0.0)
        edges.append(TaskEdge(set_index, src, dest, msgs))
        return task_id

    for pset in packed.sets:
        v = pset.parent_node
        all_msgs = pset.messages
        # Chain: one task per edge of the root-to-v path, all of C moving.
        pred = -1
        for src, dest in topo.edges_from_root(v):
            pred = new_task(pred, pset.index, src, dest, all_msgs)
        # Messages targeting v itself (always the case for a leaf packed
        # parent; possible at internal nodes under the internal-target
        # extension) are delivered by the last chain flush.
        own, deeper = _split_delivered(instance, v, all_msgs)
        if own:
            if pred == -1:
                # Degenerate: packed parent is the root; such messages are
                # already delivered and need no task.
                pass
            else:
                weights[pred] += instance.weight_of(own)
        if not deeper:
            continue
        # Copy the subtree below v, restricted to C's messages.  DFS with
        # an explicit stack: (node u, messages of C crossing into u,
        # predecessor task that delivered them into u).
        by_child = _split_by_child(instance, v, deeper)
        stack = [(child, msgs, pred) for child, msgs in by_child.items()]
        while stack:
            node, msgs, above = stack.pop()
            task = new_task(
                above,
                pset.index,
                int(topo.parent_of(node)),
                node,
                tuple(msgs),
            )
            own, deeper = _split_delivered(instance, node, msgs)
            if own:
                weights[task] += instance.weight_of(own)
            for child, child_msgs in _split_by_child(
                instance, node, deeper
            ).items():
                stack.append((child, child_msgs, task))

    scheduling = SchedulingInstance(
        np.asarray(parent, dtype=np.int64),
        np.asarray(weights, dtype=np.float64),
        instance.P,
    )
    return ReducedInstance(
        worms=instance,
        packed=packed,
        scheduling=scheduling,
        task_edges=tuple(edges),
    )


def _split_delivered(
    instance: WORMSInstance, node: int, msgs: "tuple[int, ...] | list[int]"
) -> tuple[list[int], list[int]]:
    """Split messages at ``node`` into (delivered here, continuing deeper)."""
    own: list[int] = []
    deeper: list[int] = []
    for m in msgs:
        if instance.messages[m].target_leaf == node:
            own.append(m)
        else:
            deeper.append(m)
    return own, deeper


def _split_by_child(
    instance: WORMSInstance, node: int, msgs: tuple[int, ...] | list[int]
) -> dict[int, list[int]]:
    """Partition messages at ``node`` by the child their target lies under."""
    topo = instance.topology
    by_child: dict[int, list[int]] = {}
    for m in msgs:
        target = instance.messages[m].target_leaf
        child = topo.child_towards(node, target)
        by_child.setdefault(child, []).append(m)
    return by_child
