"""WORMS core: the paper's primary contribution.

Pipeline (Section 4.3): a WORMS instance is reduced to a
``P|outtree,p_j=1|Sum wC`` scheduling instance via *oblivious packed sets*
(:mod:`repro.core.packed`, :mod:`repro.core.reduction`), solved with the
4-approximate MPHTF algorithm (:mod:`repro.scheduling.mphtf`), converted
back to an *overfilling* flush schedule (:mod:`repro.core.task_to_flush`,
Lemma 8), and finally made *valid* (:mod:`repro.core.valid_conversion`,
Lemma 1).  :func:`repro.core.pipeline.solve_worms` glues the stages.
"""

from repro.core.packed import PackedDecomposition, build_packed_sets
from repro.core.pipeline import PipelineResult, solve_worms
from repro.core.reduction import ReducedInstance, reduce_to_scheduling
from repro.core.task_to_flush import task_schedule_to_flush_schedule
from repro.core.valid_conversion import make_valid
from repro.core.worms import WORMSInstance

__all__ = [
    "WORMSInstance",
    "PackedDecomposition",
    "build_packed_sets",
    "ReducedInstance",
    "reduce_to_scheduling",
    "task_schedule_to_flush_schedule",
    "make_valid",
    "solve_worms",
    "PipelineResult",
]
