"""Auto-audit for the LSM substrate tests.

Every test in ``tests/lsm`` runs with :class:`LSMTree`'s structural
self-audit woven into the two state-changing operations: after any
``flush_memtable`` or ``compact`` the tree re-verifies its own
invariants (level capacities, run ordering, marker bookkeeping).  A test
that drives the tree into an inconsistent state therefore fails at the
operation that broke it, not at whatever later assertion happens to
notice — and every existing test doubles as an invariant test for free.
"""

from __future__ import annotations

import pytest

from repro.lsm.lsm_tree import LSMTree


@pytest.fixture(autouse=True)
def auto_check_invariants(monkeypatch: pytest.MonkeyPatch):
    """Wrap the mutating operations with a post-call invariant audit."""
    for name in ("flush_memtable", "compact"):
        original = getattr(LSMTree, name)

        def audited(self, *args, __original=original, **kwargs):
            result = __original(self, *args, **kwargs)
            self.check_invariants()
            return result

        monkeypatch.setattr(LSMTree, name, audited)
    yield
