"""Manifest: atomic commits, typed damage, decapitation refusal."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.faults.crashes import flip_byte, truncate_at
from repro.lsm.disk.manifest import (
    MANIFEST_NAME,
    Manifest,
    commit_manifest,
    load_or_init_manifest,
    manifest_path,
    read_manifest,
)
from repro.lsm.disk.sstable import SSTableMeta
from repro.util.atomic import TMP_INFIX
from repro.util.errors import StorageCorruptionError


def _meta(file_id: int, lo: str, hi: str) -> SSTableMeta:
    return SSTableMeta(
        name=f"sst-{file_id:06d}.sst", file_id=file_id, entries=10,
        tombstones=2, min_key=lo, max_key=hi, min_seq=1, max_seq=10,
        blocks=1,
    )


def test_roundtrip(tmp_path: Path) -> None:
    m = Manifest(
        version=7, next_file_id=4, wal_gen=2, last_flushed_seq=99,
        levels=((_meta(1, "a", "m"), _meta(2, "a", "z")),
                (_meta(3, "a", "z"),)),
    )
    commit_manifest(tmp_path, m)
    assert read_manifest(tmp_path) == m


def test_with_edit_bumps_version() -> None:
    m = Manifest()
    assert m.with_edit(wal_gen=3).version == m.version + 1
    assert m.with_edit(wal_gen=3).wal_gen == 3


def test_fresh_directory_initializes(tmp_path: Path) -> None:
    m = load_or_init_manifest(tmp_path)
    assert m == Manifest()
    assert manifest_path(tmp_path).exists()
    # And the init is durable: a reread agrees.
    assert read_manifest(tmp_path) == m


def test_missing_manifest_is_typed(tmp_path: Path) -> None:
    with pytest.raises(StorageCorruptionError) as exc:
        read_manifest(tmp_path)
    assert exc.value.reason == "no-manifest"


def test_decapitated_store_refused(tmp_path: Path) -> None:
    """SSTables without a manifest must not read as an empty store."""
    (tmp_path / "sst-000001.sst").write_bytes(b"whatever")
    with pytest.raises(StorageCorruptionError) as exc:
        load_or_init_manifest(tmp_path)
    assert exc.value.reason == "no-manifest"


def test_bitflip_detected(tmp_path: Path) -> None:
    commit_manifest(tmp_path, Manifest(levels=((_meta(1, "a", "z"),),)))
    flip_byte(manifest_path(tmp_path), 20, in_place=True)
    with pytest.raises(StorageCorruptionError) as exc:
        read_manifest(tmp_path)
    assert exc.value.reason == "bad-crc"


def test_truncation_detected(tmp_path: Path) -> None:
    commit_manifest(tmp_path, Manifest())
    path = manifest_path(tmp_path)
    truncate_at(path, path.stat().st_size - 4, in_place=True)
    with pytest.raises(StorageCorruptionError) as exc:
        read_manifest(tmp_path)
    assert exc.value.reason in ("bad-crc", "bad-magic")


def test_commit_is_atomic_under_kill(tmp_path: Path) -> None:
    """A kill at any byte of a re-commit leaves old-or-new, never torn:
    simulate by verifying the tmp-then-rename litter pattern."""
    first = Manifest(version=1)
    commit_manifest(tmp_path, first)
    # A stranded tmp from a killed writer is invisible to readers.
    stranded = tmp_path / f"{MANIFEST_NAME}{TMP_INFIX}99999"
    stranded.write_bytes(b"partial garbage")
    assert read_manifest(tmp_path) == first
    second = first.with_edit(wal_gen=5)
    commit_manifest(tmp_path, second)
    assert read_manifest(tmp_path) == second


def test_every_byte_flip_is_detected(tmp_path: Path) -> None:
    m = Manifest(
        version=3, next_file_id=9, wal_gen=4, last_flushed_seq=123,
        levels=((_meta(1, "a", "k"),), (_meta(2, "a", "z"),)),
    )
    commit_manifest(tmp_path, m)
    original = manifest_path(tmp_path).read_bytes()
    for offset in range(len(original)):
        damaged = bytearray(original)
        damaged[offset] ^= 0x10
        manifest_path(tmp_path).write_bytes(bytes(damaged))
        try:
            got = read_manifest(tmp_path)
        except StorageCorruptionError:
            continue
        # JSON whitespace-insensitive positions cannot exist: payload is
        # compact, so a survivable flip must decode identically... and
        # none do, because CRC-32 catches every single-byte change.
        raise AssertionError(
            f"flip at byte {offset} went undetected: {got}"
        )
