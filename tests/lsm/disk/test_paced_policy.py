"""Paced disk compaction: the ``kv --pace`` budget at the policy level.

:class:`PacedHornPolicy` defers *density* (obligation-drain) merges
whose entry movement exceeds the budget — de-amortizing background
maintenance the same way ``serve --pace`` bounds flush work.  Capacity
repairs are exempt: restoring a level invariant is correctness work and
must never be deferred, whatever the budget.
"""

from __future__ import annotations

import pytest

from repro.lsm.disk import (
    DiskLevelingPolicy,
    HornDensityPolicy,
    Manifest,
    PacedHornPolicy,
    build_policy,
)
from repro.lsm.disk.sstable import SSTableMeta


def _meta(fid, lo, hi, entries, tombs):
    return SSTableMeta(
        name=f"sst-{fid:06d}.sst", file_id=fid, entries=entries,
        tombstones=tombs, min_key=lo, max_key=hi, min_seq=1,
        max_seq=entries, blocks=1,
    )


def _density_manifest():
    # candidate 1: 20 entries + 40 overlap = 60 moved, density 10/60;
    # candidate 2: 20 entries + 400 overlap = 420 moved, density 1/420.
    return Manifest(
        next_file_id=10,
        levels=(
            (),
            (_meta(1, "a", "f", 20, 10), _meta(2, "g", "m", 20, 1)),
            (_meta(3, "a", "f", 40, 0), _meta(4, "g", "m", 400, 0)),
        ),
    )


def test_paced_policy_admits_within_budget_candidates():
    task = PacedHornPolicy(100).choose(
        _density_manifest(), memtable_capacity=8, size_ratio=8
    )
    assert task is not None and task.regime == "density"
    assert task.file_ids == (1,)  # 60 moved <= 100


def test_paced_policy_defers_oversized_density_merges():
    # Both candidates move more than the budget: the policy waits
    # rather than spiking the maintenance step.
    assert PacedHornPolicy(50).choose(
        _density_manifest(), memtable_capacity=8, size_ratio=8
    ) is None
    # The unpaced policy would have merged: the deferral is the pace.
    assert HornDensityPolicy().choose(
        _density_manifest(), memtable_capacity=8, size_ratio=8
    ) is not None


def test_capacity_repair_is_exempt_from_the_budget():
    # Level 1 over its budget of 8 * 2^2 = 32 entries: even a pace of 1
    # must not defer the invariant repair.
    manifest = Manifest(
        next_file_id=10,
        levels=((), (_meta(1, "a", "m", 40, 1),), (_meta(2, "a", "z", 5, 0),)),
    )
    task = PacedHornPolicy(1).choose(
        manifest, memtable_capacity=8, size_ratio=2
    )
    assert task is not None and task.regime == "capacity"


def test_paced_policy_validates_budget():
    with pytest.raises(ValueError):
        PacedHornPolicy(0)


def test_build_policy_factory():
    assert type(build_policy("horn")) is HornDensityPolicy
    paced = build_policy("horn", pace=64)
    assert isinstance(paced, PacedHornPolicy)
    assert paced.pace == 64
    # leveling has no density regime, so the budget is inert by design.
    assert type(build_policy("leveling", pace=64)) is DiskLevelingPolicy
    with pytest.raises(ValueError):
        build_policy("tiering")
