"""SSTable format: round-trip, bloom, CRC detection, salvage."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.faults.crashes import flip_byte, truncate_at
from repro.lsm.disk.sstable import (
    KIND_PUT,
    KIND_TOMBSTONE,
    BloomFilter,
    SSTableReader,
    sstable_name,
    write_sstable,
)
from repro.util.errors import InvalidInstanceError, StorageCorruptionError


def _entries(n: int, *, tombstone_every: int = 0):
    rows = []
    for i in range(n):
        kind = (
            KIND_TOMBSTONE
            if tombstone_every and i % tombstone_every == 0
            else KIND_PUT
        )
        value = None if kind == KIND_TOMBSTONE else i * 7
        rows.append((f"key-{i:05d}", i + 1, kind, value))
    return rows


def test_roundtrip_and_meta(tmp_path: Path) -> None:
    rows = _entries(100, tombstone_every=10)
    meta = write_sstable(tmp_path, 3, rows, block_entries=16)
    assert meta.name == sstable_name(3)
    assert meta.entries == 100
    assert meta.tombstones == 10
    assert (meta.min_key, meta.max_key) == ("key-00000", "key-00099")
    assert (meta.min_seq, meta.max_seq) == (1, 100)
    reader = SSTableReader(tmp_path / meta.name)
    assert list(reader.iter_entries()) == rows
    assert reader.get("key-00042") == (43, KIND_PUT, 42 * 7)
    assert reader.get("key-00040") == (41, KIND_TOMBSTONE, None)
    assert reader.get("nope") is None


def test_empty_sstable(tmp_path: Path) -> None:
    meta = write_sstable(tmp_path, 1, [])
    reader = SSTableReader(tmp_path / meta.name)
    assert list(reader.iter_entries()) == []
    assert reader.get("anything") is None


def test_unsorted_entries_rejected(tmp_path: Path) -> None:
    rows = [("b", 1, KIND_PUT, 1), ("a", 2, KIND_PUT, 2)]
    with pytest.raises(InvalidInstanceError):
        write_sstable(tmp_path, 1, rows)
    with pytest.raises(InvalidInstanceError):
        write_sstable(tmp_path, 1, [("a", 1, KIND_PUT, 1)] * 2)


def test_bloom_no_false_negatives(tmp_path: Path) -> None:
    rows = _entries(500)
    meta = write_sstable(tmp_path, 1, rows, block_entries=64)
    reader = SSTableReader(tmp_path / meta.name)
    assert all(reader.may_contain(k) for k, _s, _k, _v in rows)


def test_bloom_saves_block_reads(tmp_path: Path) -> None:
    rows = _entries(500)
    meta = write_sstable(tmp_path, 1, rows, block_entries=64)
    reader = SSTableReader(tmp_path / meta.name)
    misses = sum(
        1 for i in range(500) if reader.get(f"absent-{i:05d}") is None
    )
    assert misses == 500
    # ~1% false-positive rate at 10 bits/key: almost every absent probe
    # must short-circuit at the bloom filter.
    assert reader.block_reads < 50


def test_bloom_filter_roundtrip() -> None:
    bf = BloomFilter.for_entries(100)
    for i in range(100):
        bf.add(("composite", i))
    clone = BloomFilter.from_payload(bf.to_payload())
    assert all(("composite", i) in clone for i in range(100))


def test_block_bitflip_detected_at_probe(tmp_path: Path) -> None:
    rows = _entries(64)
    meta = write_sstable(tmp_path, 1, rows, block_entries=8)
    path = tmp_path / meta.name
    # Damage the first data block's payload (header is 8 bytes, then
    # the 8-byte section frame).
    flip_byte(path, 20, in_place=True)
    reader = SSTableReader(path)  # structural sections are intact
    with pytest.raises(StorageCorruptionError) as exc:
        reader.get(rows[0][0])
    assert exc.value.reason == "bad-block"
    assert exc.value.offset == 8


def test_footer_damage_detected_at_open(tmp_path: Path) -> None:
    meta = write_sstable(tmp_path, 1, _entries(10))
    path = tmp_path / meta.name
    flip_byte(path, path.stat().st_size - 1, in_place=True)
    with pytest.raises(StorageCorruptionError) as exc:
        SSTableReader(path)
    assert exc.value.reason == "bad-footer"


def test_truncation_detected_at_open(tmp_path: Path) -> None:
    meta = write_sstable(tmp_path, 1, _entries(10))
    path = tmp_path / meta.name
    truncate_at(path, path.stat().st_size // 2, in_place=True)
    with pytest.raises(StorageCorruptionError):
        SSTableReader(path)


def test_bad_magic_detected(tmp_path: Path) -> None:
    meta = write_sstable(tmp_path, 1, _entries(10))
    path = tmp_path / meta.name
    data = bytearray(path.read_bytes())
    data[:4] = b"XXXX"
    path.write_bytes(bytes(data))
    with pytest.raises(StorageCorruptionError) as exc:
        SSTableReader(path)
    assert exc.value.reason == "bad-magic"


def test_every_byte_flip_is_detected_or_harmless(tmp_path: Path) -> None:
    """Exhaustive single-bit-flip sweep: every probe either returns the
    written value or raises typed corruption — never a wrong value."""
    rows = _entries(24)
    meta = write_sstable(tmp_path, 1, rows, block_entries=8)
    original = (tmp_path / meta.name).read_bytes()
    victim = tmp_path / "victim.sst"
    for offset in range(len(original)):
        damaged = bytearray(original)
        damaged[offset] ^= 0x40
        victim.write_bytes(bytes(damaged))
        try:
            reader = SSTableReader(victim)
            for k, seq, kind, value in rows:
                got = reader.get(k)
                if got is not None:
                    assert got == (seq, kind, value)
        except StorageCorruptionError:
            continue


def test_salvage_partitions_good_from_bad(tmp_path: Path) -> None:
    rows = _entries(64)
    meta = write_sstable(tmp_path, 1, rows, block_entries=8)
    path = tmp_path / meta.name
    flip_byte(path, 20, in_place=True)  # block 0 only
    reader = SSTableReader(path)
    good, findings = reader.salvage()
    assert [f.block for f in findings] == [0]
    assert findings[0].entries_lost == 8
    assert good == rows[8:]
    assert reader.verify() and reader.verify()[0].reason == "bad-block"


def test_verify_clean_file(tmp_path: Path) -> None:
    meta = write_sstable(tmp_path, 1, _entries(64), block_entries=8)
    assert SSTableReader(tmp_path / meta.name).verify() == []


def test_meta_payload_roundtrip(tmp_path: Path) -> None:
    meta = write_sstable(tmp_path, 9, _entries(30, tombstone_every=3))
    from repro.lsm.disk.sstable import SSTableMeta

    assert SSTableMeta.from_payload(meta.to_payload()) == meta


def test_overlaps() -> None:
    from repro.lsm.disk.sstable import SSTableMeta

    def mk(lo, hi, n=5):
        return SSTableMeta(
            name="x", file_id=1, entries=n, tombstones=0,
            min_key=lo, max_key=hi, min_seq=1, max_seq=n, blocks=1,
        )

    assert mk("a", "c").overlaps(mk("b", "d"))
    assert not mk("a", "c").overlaps(mk("d", "e"))
    assert mk("a", "c").overlaps(mk("c", "e"))
    assert not mk("a", "c", n=0).overlaps(mk("a", "c"))
    assert mk("a", "c").overlaps_range("c", "z")
    assert not mk("a", "c").overlaps_range("d", "z")
